"""Experiment F10 — paper Fig. 10: VH↔VE bandwidth by transfer method.

Four panels: {VH→VE, VE→VH} × {small sizes ≤ 1 KiB, large sizes ≤ 256
MiB}, three methods each:

* **VEO Read/Write** — privileged DMA through VEOS (the Sec. III-D
  transport);
* **VE user DMA** — DMAATB-registered transfers issued by the VE;
* **VE SHM/LHM** — word-wise load/store host memory instructions
  (measured only up to 4 MiB, as in the paper, "due to prohibitive
  runtimes").

Every point is measured by executing transfers on the simulated hardware
(real bytes move through the simulated memories). Shape anchors asserted:
user DMA near peak at 1 MiB vs 64 MiB for VEO; LHM wins only for 1–2
words; SHM wins up to 256 B; VE→VH faster; large-size gap ≈ 7 %.
"""

import math

import pytest

from repro.bench.calibration import PAPER
from repro.bench.figures import ascii_chart, render_series
from repro.hw.specs import GIB, KIB, MIB
from repro.machine import AuroraMachine

from repro.bench.experiments import (
    FIG10_MAX_SIZE as MAX_SIZE,
    fig10_sizes,
    measure_fig10,
)

SIZES = fig10_sizes()


@pytest.fixture(scope="module")
def fig10(report):
    data = measure_fig10(SIZES)
    sections = []
    for direction, label in (("vh_to_ve", "VH => VE"), ("ve_to_vh", "VE => VH")):
        series_gib = {
            name: [v / GIB for v in values]
            for name, values in data[direction].items()
        }
        small = [s for s in SIZES if s <= KIB]
        small_series = {n: v[: len(small)] for n, v in series_gib.items()}
        sections.append(render_series(
            small, small_series,
            title=f"Fig. 10 ({label}), small sizes [GiB/s]",
        ))
        sections.append(render_series(
            SIZES, series_gib,
            title=f"Fig. 10 ({label}), full range [GiB/s]",
        ))
        sections.append(ascii_chart(
            SIZES, series_gib, title=f"Fig. 10 ({label}) — log-log bandwidth",
        ))
    report("fig10_bandwidth", "\n\n".join(sections))
    return data


def _at(data, direction, name, size):
    return data[direction][name][SIZES.index(size)]


class TestFig10Shapes:
    def test_udma_always_beats_veo(self, fig10):
        for direction, veo_name in (("vh_to_ve", "VEO Write"), ("ve_to_vh", "VEO Read")):
            veo = fig10[direction][veo_name]
            udma = fig10[direction]["VE User DMA"]
            assert all(u > v for u, v in zip(udma, veo))

    def test_udma_near_peak_at_1mib(self, fig10):
        for direction in ("vh_to_ve", "ve_to_vh"):
            curve = fig10[direction]["VE User DMA"]
            peak = max(curve)
            assert _at(fig10, direction, "VE User DMA", MIB) >= PAPER.near_peak_fraction * peak

    def test_veo_near_peak_at_64mib_not_before(self, fig10):
        for direction, name in (("vh_to_ve", "VEO Write"), ("ve_to_vh", "VEO Read")):
            curve = fig10[direction][name]
            peak = max(curve)
            assert _at(fig10, direction, name, 64 * MIB) >= PAPER.near_peak_fraction * peak
            assert _at(fig10, direction, name, MIB) < PAPER.near_peak_fraction * peak

    def test_small_size_udma_vs_veo_ratio(self, fig10):
        lo, hi = PAPER.small_ratio_band
        for direction, name in (("vh_to_ve", "VEO Write"), ("ve_to_vh", "VEO Read")):
            ratio = (
                fig10[direction]["VE User DMA"][0] / fig10[direction][name][0]
            )
            assert lo <= ratio <= hi

    def test_large_size_udma_vs_veo_gap(self, fig10):
        for direction, name in (("vh_to_ve", "VEO Write"), ("ve_to_vh", "VEO Read")):
            ratio = _at(fig10, direction, "VE User DMA", MAX_SIZE) / _at(
                fig10, direction, name, MAX_SIZE
            )
            assert ratio == pytest.approx(PAPER.large_ratio, abs=0.03)

    def test_lhm_beats_udma_only_for_one_or_two_words(self, fig10):
        lhm = fig10["vh_to_ve"]["VE LHM"]
        udma = fig10["vh_to_ve"]["VE User DMA"]
        assert lhm[SIZES.index(8)] > udma[SIZES.index(8)]
        assert lhm[SIZES.index(16)] > udma[SIZES.index(16)]
        assert lhm[SIZES.index(32)] < udma[SIZES.index(32)]

    def test_shm_beats_udma_up_to_256b(self, fig10):
        shm = fig10["ve_to_vh"]["VE SHM"]
        udma = fig10["ve_to_vh"]["VE User DMA"]
        for size in (8, 64, 256):
            assert shm[SIZES.index(size)] > udma[SIZES.index(size)], size
        assert shm[SIZES.index(512)] < udma[SIZES.index(512)]

    def test_ve_to_vh_faster_for_bulk_methods(self, fig10):
        for name_down, name_up in (("VEO Write", "VEO Read"), ("VE User DMA", "VE User DMA")):
            down = fig10["vh_to_ve"][name_down]
            up = fig10["ve_to_vh"][name_up]
            faster = sum(u > d for u, d in zip(up, down))
            assert faster >= len(SIZES) - 1

    def test_shm_lhm_capped_at_4mib(self, fig10):
        lhm = fig10["vh_to_ve"]["VE LHM"]
        assert math.isnan(lhm[SIZES.index(8 * MIB)])
        assert not math.isnan(lhm[SIZES.index(4 * MIB)])

    def test_nothing_exceeds_pcie_achievable(self, fig10):
        ceiling = PAPER.pcie_theoretical_peak * PAPER.pcie_achievable_fraction
        for direction in ("vh_to_ve", "ve_to_vh"):
            for curve in fig10[direction].values():
                assert all(not (v == v) or v <= ceiling * 1.001 for v in curve)


class TestFig10Benchmark:
    def test_benchmark_simulated_udma_transfer(self, benchmark):
        machine = AuroraMachine(num_ves=1)
        ve = machine.ve(0)
        segment = machine.vh.shmget(MIB)
        entry = ve.dmaatb.register(segment, 0, MIB)
        staging = ve.hbm.allocate(MIB)
        sim = machine.sim

        def one():
            sim.run(until=sim.process(
                ve.udma.read_host(entry.vehva, ve.hbm, staging.addr, MIB)
            ))

        benchmark(one)
