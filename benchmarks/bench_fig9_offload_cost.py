"""Experiment F9 — paper Fig. 9: cost of offloading an empty kernel.

Three bars, all measured by *executing the protocols* on the simulated
platform (no hard-coded totals):

* ``VEO`` — a native ``veo_call_async`` + ``wait_result`` of an empty VE
  function (paper: ~80 µs);
* ``HAM-Offload (VEO)`` — the Sec. III-D protocol (paper: ~432 µs,
  5.4× native VEO);
* ``HAM-Offload (DMA)`` — the Sec. IV-B protocol (paper: ~6.1 µs, 13.1×
  faster than native VEO, 70.8× faster than HAM-over-VEO).

Also reproduces the Sec. V-A decomposition (S2): the DMA offload is
≈ 1.2 µs of PCIe round trip plus ~5 µs framework overhead, and the
second-socket experiment (S1) lives in ``bench_numa_socket.py``.
"""

import pytest

from repro.backends import DmaCommBackend, VeoCommBackend
from repro.bench.breakdown import offload_breakdown
from repro.bench.calibration import PAPER
from repro.bench.tables import format_time, render_table
from repro.ham import f2f, offloadable
from repro.offload import Runtime

REPS = 60


@offloadable
def fig9_empty_kernel() -> None:
    """The empty kernel: measures pure offloading overhead."""
    return None


from repro.bench.experiments import (
    measure_native_veo_call,
    measure_protocol_offload_cost,
)


def measure_breakdown(backend_cls) -> dict:
    runtime = Runtime(backend_cls())
    phases = offload_breakdown(runtime, f2f(fig9_empty_kernel))
    runtime.shutdown()
    return phases


@pytest.fixture(scope="module")
def fig9(report):
    data = {
        "veo_native": measure_native_veo_call(REPS),
        "ham_veo": measure_protocol_offload_cost(VeoCommBackend, REPS),
        "ham_dma": measure_protocol_offload_cost(DmaCommBackend, REPS),
        "dma_phases": measure_breakdown(DmaCommBackend),
        "veo_phases": measure_breakdown(VeoCommBackend),
    }
    rows = [
        {
            "method": "VEO (native)",
            "measured": format_time(data["veo_native"]),
            "paper": format_time(PAPER.fig9_veo_native),
            "deviation": f"{data['veo_native'] / PAPER.fig9_veo_native - 1:+.1%}",
        },
        {
            "method": "HAM-Offload (VEO)",
            "measured": format_time(data["ham_veo"]),
            "paper": format_time(PAPER.fig9_ham_veo),
            "deviation": f"{data['ham_veo'] / PAPER.fig9_ham_veo - 1:+.1%}",
        },
        {
            "method": "HAM-Offload (DMA)",
            "measured": format_time(data["ham_dma"]),
            "paper": format_time(PAPER.fig9_ham_dma),
            "deviation": f"{data['ham_dma'] / PAPER.fig9_ham_dma - 1:+.1%}",
        },
    ]
    ratios = [
        {
            "ratio": "HAM-VEO / VEO",
            "measured": f"{data['ham_veo'] / data['veo_native']:.1f}x",
            "paper": f"{PAPER.fig9_ratio_ham_veo_over_native}x",
        },
        {
            "ratio": "VEO / HAM-DMA",
            "measured": f"{data['veo_native'] / data['ham_dma']:.1f}x",
            "paper": f"{PAPER.fig9_ratio_native_over_ham_dma}x",
        },
        {
            "ratio": "HAM-VEO / HAM-DMA",
            "measured": f"{data['ham_veo'] / data['ham_dma']:.1f}x",
            "paper": f"{PAPER.fig9_ratio_ham_veo_over_ham_dma}x",
        },
    ]
    def phase_rows(phases: dict) -> list[dict]:
        total = phases["total"]
        return [
            {"phase": label, "duration": format_time(duration)}
            for label, duration in sorted(phases.items())
            if label != "total"
        ] + [{"phase": "TOTAL (phases overlap host/VE)", "duration": format_time(total)}]

    breakdown = [
        {
            "component": "PCIe round trip (one LHM flag poll)",
            "measured": format_time(PAPER.pcie_round_trip),
            "paper": format_time(PAPER.pcie_round_trip),
        },
        {
            "component": "framework + DMA fetch + result path",
            "measured": format_time(data["ham_dma"] - PAPER.pcie_round_trip),
            "paper": f"~{format_time(PAPER.framework_overhead)}",
        },
    ]
    text = (
        render_table(rows, title="Fig. 9 — empty-kernel offload cost (VH to local VE)")
        + "\n\n"
        + render_table(ratios, title="Fig. 9 — speedup ratios")
        + "\n\n"
        + render_table(breakdown, title="Sec. V-A — HAM-DMA cost decomposition")
        + "\n\n"
        + render_table(
            phase_rows(data["dma_phases"]),
            title="HAM-DMA: traced protocol phases (one offload)",
        )
        + "\n\n"
        + render_table(
            phase_rows(data["veo_phases"]),
            title="HAM-VEO: traced protocol phases (one offload)",
        )
    )
    report("fig9_offload_cost", text)
    return data


class TestFig9:
    def test_veo_native_anchor(self, fig9):
        assert fig9["veo_native"] == pytest.approx(PAPER.fig9_veo_native, rel=0.10)

    def test_ham_veo_anchor(self, fig9):
        assert fig9["ham_veo"] == pytest.approx(PAPER.fig9_ham_veo, rel=0.10)

    def test_ham_dma_anchor(self, fig9):
        assert fig9["ham_dma"] == pytest.approx(PAPER.fig9_ham_dma, rel=0.10)

    def test_ratio_ham_veo_over_native(self, fig9):
        ratio = fig9["ham_veo"] / fig9["veo_native"]
        assert ratio == pytest.approx(PAPER.fig9_ratio_ham_veo_over_native, rel=0.15)

    def test_ratio_native_over_ham_dma(self, fig9):
        ratio = fig9["veo_native"] / fig9["ham_dma"]
        assert ratio == pytest.approx(PAPER.fig9_ratio_native_over_ham_dma, rel=0.15)

    def test_ratio_ham_veo_over_ham_dma(self, fig9):
        ratio = fig9["ham_veo"] / fig9["ham_dma"]
        assert ratio == pytest.approx(PAPER.fig9_ratio_ham_veo_over_ham_dma, rel=0.15)

    def test_dma_framework_share(self, fig9):
        # 6.1 µs ≈ 1.2 µs PCIe + ~5 µs framework.
        framework = fig9["ham_dma"] - PAPER.pcie_round_trip
        assert framework == pytest.approx(PAPER.framework_overhead, rel=0.15)

    def test_dma_traced_phases_cover_the_offload(self, fig9):
        phases = dict(fig9["dma_phases"])
        total = phases.pop("total")
        # The LHM flag poll is the PCIe round trip of the decomposition.
        assert phases["dma.ve.lhm_poll"] >= PAPER.pcie_round_trip
        # Span sum ≥ total (host/VE phases overlap), within 2× slack.
        assert total <= sum(phases.values()) <= 2 * total

    def test_veo_phases_dominated_by_privileged_dma_ops(self, fig9):
        phases = fig9["veo_phases"]
        privileged = (
            phases["veo.host.post"]
            + phases["veo.host.poll_flag"]
            + phases["veo.host.read_result"]
        )
        assert privileged / phases["total"] > 0.95

    def test_benchmark_simulated_dma_offload(self, benchmark, fig9):
        """Wall-clock cost of simulating one DMA-protocol offload."""
        runtime = Runtime(DmaCommBackend())
        try:
            benchmark(lambda: runtime.sync(1, f2f(fig9_empty_kernel)))
        finally:
            runtime.shutdown()

    def test_benchmark_simulated_veo_offload(self, benchmark, fig9):
        """Wall-clock cost of simulating one VEO-protocol offload."""
        runtime = Runtime(VeoCommBackend())
        try:
            benchmark(lambda: runtime.sync(1, f2f(fig9_empty_kernel)))
        finally:
            runtime.shutdown()
