"""Experiment M2 (extension) — PCIe switch uplink contention.

The A300-8 block diagram (paper Fig. 3) hangs four VEs off each of two
PCIe switches; each switch feeds one socket through a single x16 uplink.
A single VE's bulk transfer saturates that uplink, so driving several
*same-switch* VEs concurrently cannot scale bulk bandwidth — while
spreading the same transfers *across both switches* doubles it. This
experiment measures aggregate user-DMA bandwidth for three placements.
"""

import pytest

from repro.bench.tables import format_bandwidth, render_table
from repro.hw.specs import GIB, MIB
from repro.machine import AuroraMachine

TRANSFER = 16 * MIB


from repro.bench.experiments import measure_switch_contention


def _aggregate_bandwidth(ve_indices):
    """Kept for the pytest-benchmark case below."""
    from repro.machine import AuroraMachine

    machine = AuroraMachine(num_ves=8, ve_memory_bytes=TRANSFER + 16 * MIB)
    sim = machine.sim
    done = []
    for index in ve_indices:
        ve = machine.ve(index)
        segment = machine.vh.shmget(TRANSFER)
        entry = ve.dmaatb.register(segment, 0, TRANSFER)
        staging = ve.hbm.allocate(TRANSFER)
        done.append(
            sim.process(
                ve.udma.write_host(ve.hbm, staging.addr, entry.vehva, TRANSFER)
            )
        )
    start = sim.now
    sim.run(until=sim.all_of(done))
    return len(ve_indices) * TRANSFER / (sim.now - start)


@pytest.fixture(scope="module")
def contention(report):
    data = measure_switch_contention(TRANSFER)
    rows = [
        {"placement": "1 VE (baseline)", "aggregate": format_bandwidth(data["one_ve"])},
        {
            "placement": "4 VEs, same switch",
            "aggregate": format_bandwidth(data["four_same_switch"]),
        },
        {
            "placement": "4 VEs, 2 per switch",
            "aggregate": format_bandwidth(data["four_across_switches"]),
        },
        {
            "placement": "8 VEs, both switches",
            "aggregate": format_bandwidth(data["eight"]),
        },
    ]
    report("switch_contention", render_table(
        rows,
        title=(
            "M2 — aggregate VE->VH user-DMA bandwidth by VE placement "
            "(16 MiB transfers)"
        ),
    ))
    return data


class TestSwitchContention:
    def test_same_switch_does_not_scale(self, contention):
        # Four VEs behind one uplink ≈ one VE's bandwidth.
        assert contention["four_same_switch"] == pytest.approx(
            contention["one_ve"], rel=0.10
        )

    def test_across_switches_doubles(self, contention):
        ratio = contention["four_across_switches"] / contention["four_same_switch"]
        assert 1.7 < ratio < 2.2

    def test_eight_ves_cap_at_two_uplinks(self, contention):
        assert contention["eight"] == pytest.approx(
            2 * contention["one_ve"], rel=0.15
        )

    def test_baseline_matches_single_ve_peak(self, contention):
        assert contention["one_ve"] == pytest.approx(11.1 * GIB, rel=0.07)

    def test_benchmark_concurrent_transfers(self, benchmark, contention):
        benchmark(lambda: _aggregate_bandwidth([0, 1]))
