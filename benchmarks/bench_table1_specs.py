"""Experiment T1 — paper Table I: VH CPU and VE specifications.

Regenerates the table from the configuration database and checks every
value against the paper.
"""

import pytest

from repro.bench.tables import render_table
from repro.hw.specs import GIB, MIB, VE_TYPE_10B, VH_XEON_GOLD_6126


@pytest.fixture(scope="module")
def table1(report):
    cpu, ve = VH_XEON_GOLD_6126, VE_TYPE_10B
    rows = [
        {"": "Cores", "Intel CPU Xeon Gold 6126": cpu.cores, "NEC VE Type 10B": ve.cores},
        {"": "Threads", "Intel CPU Xeon Gold 6126": cpu.threads, "NEC VE Type 10B": ve.threads},
        {
            "": "Vector Width (double)",
            "Intel CPU Xeon Gold 6126": cpu.vector_width_double,
            "NEC VE Type 10B": ve.vector_width_double,
        },
        {
            "": "Clock Frequency",
            "Intel CPU Xeon Gold 6126": f"{cpu.clock_ghz} GHz",
            "NEC VE Type 10B": f"{ve.clock_ghz} GHz",
        },
        {
            "": "Peak Performance",
            "Intel CPU Xeon Gold 6126": f"{cpu.peak_gflops} GFLOPS",
            "NEC VE Type 10B": f"{ve.peak_gflops} GFLOPS",
        },
        {
            "": "Max. Memory",
            "Intel CPU Xeon Gold 6126": f"{cpu.max_memory_bytes // GIB} GiB (DDR4)",
            "NEC VE Type 10B": f"{ve.max_memory_bytes // GIB} GiB (HBM2)",
        },
        {
            "": "Memory Bandwidth",
            "Intel CPU Xeon Gold 6126": f"{cpu.memory_bandwidth_gb_s:.0f} GB/s",
            "NEC VE Type 10B": f"{ve.memory_bandwidth_gb_s} GB/s",
        },
        {
            "": "L3/LLC",
            "Intel CPU Xeon Gold 6126": f"{cpu.llc_bytes / MIB:.2f} MiB",
            "NEC VE Type 10B": f"{ve.llc_bytes // MIB} MiB",
        },
        {
            "": "TDP",
            "Intel CPU Xeon Gold 6126": f"{cpu.tdp_watts} W",
            "NEC VE Type 10B": f"{ve.tdp_watts} W",
        },
    ]
    text = render_table(rows, title="Table I — processor specifications")
    report("table1_specs", text)
    return rows


class TestTable1:
    def test_cpu_column(self, table1):
        cpu = VH_XEON_GOLD_6126
        assert (cpu.cores, cpu.threads) == (12, 24)
        assert cpu.vector_width_double == 8
        assert cpu.clock_ghz == 2.6
        assert cpu.peak_gflops == 998.4
        assert cpu.max_memory_bytes == 384 * GIB
        assert cpu.memory_bandwidth_gb_s == 128.0
        assert cpu.tdp_watts == 125

    def test_ve_column(self, table1):
        ve = VE_TYPE_10B
        assert (ve.cores, ve.threads) == (8, 8)
        assert ve.vector_width_double == 256
        assert ve.clock_ghz == 1.4
        assert ve.peak_gflops == 2150.4
        assert ve.max_memory_bytes == 48 * GIB
        assert ve.memory_bandwidth_gb_s == 1228.8
        assert ve.tdp_watts == 300

    def test_ve_isa_properties(self, table1):
        # Sec. I-B: 256-word vectors, 64 registers, 3 FMA units, 256 B
        # max PCIe payload.
        ve = VE_TYPE_10B
        assert ve.vector_length_words == 256
        assert ve.vector_registers == 64
        assert ve.fma_units == 3
        assert ve.pcie_max_payload == 256

    def test_benchmark_table_rendering(self, benchmark, table1):
        text = benchmark(lambda: render_table(table1))
        assert "Cores" in text
