"""Experiment T3 — paper Table III: benchmark system configuration."""

import pytest

from repro.bench.tables import render_table
from repro.hw.specs import A300_8, GIB
from repro.hw.topology import SystemTopology


@pytest.fixture(scope="module")
def table3(report):
    spec = A300_8
    rows = [
        {"Item": "System", "Value": spec.name},
        {"Item": "VH CPUs", "Value": f"{spec.num_cpu_sockets}x {spec.cpu.name}"},
        {"Item": "VH Memory", "Value": f"{spec.vh_memory_bytes // GIB} GiB DDR4"},
        {
            "Item": "VE Cards",
            "Value": f"{spec.num_ves}x {spec.ve.name}, "
            f"{spec.ve.max_memory_bytes // GIB} GiB HBM2",
        },
        {
            "Item": "PCIe Config.",
            "Value": f"Gen{spec.pcie_gen} x{spec.pcie_lanes}, "
            f"{spec.num_ves // spec.ves_per_switch} switches x "
            f"{spec.ves_per_switch} VEs",
        },
        {"Item": "VH OS", "Value": spec.vh_os},
        {"Item": "VH compiler", "Value": spec.vh_compiler},
        {"Item": "VEOS", "Value": spec.veos_version},
        {"Item": "VEO", "Value": spec.veo_version},
        {"Item": "VE compiler", "Value": spec.ve_compiler},
    ]
    text = render_table(rows, title="Table III — benchmark system configuration")
    text += "\n\nTopology (Fig. 3):\n" + SystemTopology(spec).describe()
    report("table3_system", text)
    return rows


class TestTable3:
    def test_system_values(self, table3):
        spec = A300_8
        assert spec.num_cpu_sockets == 2
        assert spec.num_ves == 8
        assert spec.vh_memory_bytes == 192 * GIB
        assert spec.veos_version == "1.3.2-4dma"
        assert spec.veo_version == "1.3.2a"
        assert spec.ve_compiler == "NEC NCC 1.6.0"

    def test_topology_matches_fig3(self, table3):
        topo = SystemTopology(A300_8)
        # Two switches, four VEs each, one per socket.
        assert topo.ves_of_socket(0) == [0, 1, 2, 3]
        assert topo.ves_of_socket(1) == [4, 5, 6, 7]
        # Cross-socket access crosses UPI exactly once.
        assert topo.upi_hops(0, 4) == 1
        assert topo.upi_hops(1, 3) == 1

    def test_benchmark_topology_query(self, benchmark, table3):
        topo = SystemTopology(A300_8)
        hops = benchmark(lambda: [topo.upi_hops(s, v) for s in (0, 1) for v in range(8)])
        assert sum(hops) == 8  # half the (socket, ve) pairs are remote
