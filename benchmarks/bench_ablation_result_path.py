"""Experiment A3 — ablation: SHM stores vs user DMA for result messages.

Paper Sec. V-B: "the store instruction (SHM) outperforms VE user DMA for
payloads of up to 256 byte ... This could be exploited for small
messages, sent from the VE to the VH." The DMA protocol does exactly
that — result messages travel as posted SHM stores. Here we run the full
protocol with both result paths across result payload sizes and locate
the crossover.
"""

import pytest

from repro.backends import DmaCommBackend
from repro.bench.harness import measure_sim
from repro.bench.tables import format_size, format_time, render_table
from repro.ham import f2f, offloadable
from repro.offload import Runtime

RESULT_SIZES = [8, 64, 256, 1024, 4096, 16384]
REPS = 20


@offloadable
def produce_payload(n: int) -> bytes:
    """Returns an n-byte result — the reply message scales with n."""
    return b"\x5a" * n


def _sweep(result_path: str) -> dict[int, float]:
    runtime = Runtime(DmaCommBackend(result_path=result_path, msg_size=64 * 1024))
    sim = runtime.backend.sim
    out = {}
    for size in RESULT_SIZES:
        stats = measure_sim(
            lambda s=size: runtime.sync(1, f2f(produce_payload, s)),
            sim, reps=REPS, warmup=3,
        )
        out[size] = stats.mean
    runtime.shutdown()
    return out


@pytest.fixture(scope="module")
def result_path(report):
    data = {"shm": _sweep("shm"), "udma": _sweep("udma")}
    rows = [
        {
            "result size": format_size(size),
            "SHM result path": format_time(data["shm"][size]),
            "user-DMA result path": format_time(data["udma"][size]),
            "winner": "SHM" if data["shm"][size] < data["udma"][size] else "user DMA",
        }
        for size in RESULT_SIZES
    ]
    report("ablation_result_path", render_table(
        rows, title="A3 — offload cost by result-message return path"
    ))
    return data


class TestResultPathAblation:
    def test_shm_wins_for_small_results(self, result_path):
        # The protocol's typical result (tens of bytes) favours SHM —
        # the design choice the paper made.
        assert result_path["shm"][8] < result_path["udma"][8]
        assert result_path["shm"][64] < result_path["udma"][64]

    def test_udma_wins_for_large_results(self, result_path):
        assert result_path["udma"][16384] < result_path["shm"][16384]

    def test_crossover_below_4kib(self, result_path):
        # SHM's sustained word rate (0.06 GiB/s) loses quickly once the
        # store queue saturates; the crossover must appear in the sweep.
        winners = [
            "shm" if result_path["shm"][s] < result_path["udma"][s] else "udma"
            for s in RESULT_SIZES
        ]
        assert winners[0] == "shm"
        assert winners[-1] == "udma"
        assert "udma" in winners[: RESULT_SIZES.index(4096) + 1]

    def test_benchmark_shm_result_offload(self, benchmark, result_path):
        runtime = Runtime(DmaCommBackend(result_path="shm"))
        try:
            benchmark(lambda: runtime.sync(1, f2f(produce_payload, 64)))
        finally:
            runtime.shutdown()
