"""Experiment A4 (ablation) — message slots and asynchronous streaming.

Paper Sec. III-D: each direction has "a set of message buffers and
corresponding notification flags", sized by the implementation. This
ablation asks what that set buys:

* **async streaming vs sync loops** — posting offloads asynchronously
  overlaps the host's bookkeeping (result deserialization, next message
  serialization) with the VE's protocol work, ~1.3× throughput on empty
  kernels;
* **slot count** — with a single-threaded VE message loop, messages
  execute strictly in order, so throughput is *independent* of the slot
  count; extra slots are flow control (how many asyncs may be
  outstanding before the host must drain), not a performance knob.

Both findings are asserted below.
"""

import pytest

from repro.backends import DmaCommBackend
from repro.bench.tables import render_table
from repro.ham import f2f, offloadable
from repro.offload import Runtime

STREAM = 40
SLOTS = [1, 2, 4, 8]


@offloadable
def slot_kernel(tag: int) -> int:
    """Empty kernel body (protocol-bound regime)."""
    return tag


def _throughput(num_slots: int, *, mode: str) -> float:
    backend = DmaCommBackend(num_slots=num_slots)
    runtime = Runtime(backend)
    sim = backend.sim
    runtime.sync(1, f2f(slot_kernel, 0))  # warm-up
    start = sim.now
    if mode == "async":
        futures = [runtime.async_(1, f2f(slot_kernel, i)) for i in range(STREAM)]
        results = [future.get() for future in futures]
    else:
        results = [runtime.sync(1, f2f(slot_kernel, i)) for i in range(STREAM)]
    elapsed = sim.now - start
    runtime.shutdown()
    assert results == list(range(STREAM))
    return STREAM / elapsed


@pytest.fixture(scope="module")
def slots(report):
    data = {
        "sync": _throughput(8, mode="sync"),
        "async": {n: _throughput(n, mode="async") for n in SLOTS},
    }
    rows = [{
        "configuration": "sync loop (8 slots)",
        "offloads/s": f"{data['sync']:,.0f}",
        "vs sync": "1.00x",
    }]
    rows += [
        {
            "configuration": f"async stream, {n} slot(s)",
            "offloads/s": f"{data['async'][n]:,.0f}",
            "vs sync": f"{data['async'][n] / data['sync']:.2f}x",
        }
        for n in SLOTS
    ]
    text = render_table(
        rows,
        title="A4 — empty-kernel offload throughput: streaming and slot count",
    )
    text += (
        "\n\nfinding: slots are flow control, not bandwidth — one VE executes "
        "messages in order, so throughput is slot-independent; asynchrony "
        "itself buys the overlap."
    )
    report("ablation_slots", text)
    return data


class TestSlotAblation:
    def test_async_streaming_beats_sync_loop(self, slots):
        assert slots["async"][8] > slots["sync"] * 1.15

    def test_throughput_independent_of_slot_count(self, slots):
        values = [slots["async"][n] for n in SLOTS]
        assert max(values) / min(values) < 1.05

    def test_flow_control_with_one_slot_still_correct(self, slots):
        # Covered inside _throughput's result check: 40 asyncs through a
        # single slot produce all results exactly once, in order.
        assert slots["async"][1] > 0

    def test_benchmark_stream(self, benchmark, slots):
        benchmark(lambda: _throughput(4, mode="async"))
