"""Experiment M3 (extension) — direct VE-to-VE copies via peer user DMA.

The paper (Sec. I-B) notes the DMAATB can map *other VEs'* memory, making
VE-to-VE user DMA possible; its Table II ``copy`` is host-orchestrated.
This experiment compares both data paths for target-to-target copies:

* **host-staged** (the base implementation / VEO protocol): one
  privileged-DMA read to the host plus one privileged-DMA write back —
  two ~100 µs-latency operations;
* **peer DMA** (the DMA backend's ``copy``): register the source range in
  the destination VE's DMAATB, one user-DMA read — ~2.4 µs latency.
"""

import numpy as np
import pytest

from repro.backends import DmaCommBackend, VeoCommBackend
from repro.bench.harness import measure_sim, scaled_reps
from repro.bench.tables import format_size, format_time, render_table
from repro.hw.specs import KIB, MIB
from repro.machine import AuroraMachine
from repro.offload import Runtime

SIZES = [KIB, 64 * KIB, MIB, 16 * MIB]


def _copy_times(backend_cls) -> dict[int, float]:
    machine = AuroraMachine(num_ves=2, ve_memory_bytes=48 * MIB)
    runtime = Runtime(backend_cls(machine))
    src = runtime.allocate(1, SIZES[-1], np.uint8)
    dst = runtime.allocate(2, SIZES[-1], np.uint8)
    runtime.put(np.arange(SIZES[-1], dtype=np.uint8) % 251, src)
    sim = runtime.backend.sim
    out = {}
    for size in SIZES:
        stats = measure_sim(
            lambda s=size: runtime.copy(src.first(s), dst.first(s)).get(),
            sim, reps=scaled_reps(size, base=6, floor=2), warmup=1,
        )
        out[size] = stats.mean
    # Functional check: the copy really moved the bytes.
    back = np.zeros(SIZES[-1], dtype=np.uint8)
    runtime.get(dst, back)
    assert np.array_equal(back, np.arange(SIZES[-1], dtype=np.uint8) % 251)
    runtime.shutdown()
    return out


@pytest.fixture(scope="module")
def peer_copy(report):
    data = {
        "host_staged": _copy_times(VeoCommBackend),  # base copy_buffer
        "peer_dma": _copy_times(DmaCommBackend),     # direct VE->VE
    }
    rows = [
        {
            "size": format_size(size),
            "host-staged (2x privileged DMA)": format_time(data["host_staged"][size]),
            "peer user DMA": format_time(data["peer_dma"][size]),
            "speedup": f"{data['host_staged'][size] / data['peer_dma'][size]:.1f}x",
        }
        for size in SIZES
    ]
    report("peer_copy", render_table(
        rows, title="M3 — VE-to-VE copy: host-orchestrated vs peer user DMA"
    ))
    return data


class TestPeerCopy:
    def test_peer_dma_always_faster(self, peer_copy):
        for size in SIZES:
            assert peer_copy["peer_dma"][size] < peer_copy["host_staged"][size]

    def test_small_copy_speedup_dominated_by_latency(self, peer_copy):
        # Two ~100 µs privileged ops vs one ~2.4 µs user-DMA read.
        assert peer_copy["host_staged"][KIB] / peer_copy["peer_dma"][KIB] > 30

    def test_large_copy_speedup_approaches_two(self, peer_copy):
        # At 16 MiB both paths are wire-bound; staged moves the bytes
        # twice, so the ratio tends to ~2.
        ratio = peer_copy["host_staged"][16 * MIB] / peer_copy["peer_dma"][16 * MIB]
        assert 1.6 < ratio < 2.4

    def test_benchmark_peer_copy(self, benchmark, peer_copy):
        machine = AuroraMachine(num_ves=2, ve_memory_bytes=8 * MIB)
        runtime = Runtime(DmaCommBackend(machine))
        src = runtime.allocate(1, MIB, np.uint8)
        dst = runtime.allocate(2, MIB, np.uint8)
        try:
            benchmark(lambda: runtime.copy(src, dst).get())
        finally:
            runtime.shutdown()
