"""Experiment M4 (extension) — remote offloading over InfiniBand.

The paper's outlook (Sec. VI) anticipates remote offloading via
heterogeneous MPI. This experiment measures the cost of an empty offload
to a *remote node's* VE (active message over IB → remote host agent →
local DMA protocol → result back over IB) against the local protocols —
the quantitative version of "HAM-Offload applications will also benefit
from remote offloading capabilities".
"""

import pytest

from repro.backends import ClusterBackend
from repro.bench.calibration import PAPER
from repro.bench.harness import measure_sim
from repro.bench.tables import format_time, render_table
from repro.cluster import AuroraCluster
from repro.ham import f2f, offloadable
from repro.offload import Runtime

REPS = 40


@offloadable
def remote_empty_kernel() -> None:
    """Empty kernel for the remote-offload experiment."""
    return None


@pytest.fixture(scope="module")
def remote(report):
    cluster = AuroraCluster(num_nodes=2, ves_per_node=1)
    runtime = Runtime(ClusterBackend(cluster))
    sim = cluster.sim

    def cost(node):
        return measure_sim(
            lambda: runtime.sync(node, f2f(remote_empty_kernel)), sim, reps=REPS
        ).mean

    data = {
        "local": cost(1),
        "remote": cost(2),
        "ib_latency": cluster.timing.ib_latency,
    }
    runtime.shutdown()
    rows = [
        {
            "target": "local VE (DMA protocol)",
            "offload cost": format_time(data["local"]),
            "vs paper's local VEO protocol": f"{432e-6 / data['local']:.0f}x faster",
        },
        {
            "target": "remote VE (DMA over IB)",
            "offload cost": format_time(data["remote"]),
            "vs paper's local VEO protocol": f"{432e-6 / data['remote']:.0f}x faster",
        },
        {
            "target": "IB round trip share",
            "offload cost": format_time(2 * data["ib_latency"]),
            "vs paper's local VEO protocol": "",
        },
    ]
    report("remote_offload", render_table(
        rows, title="M4 — remote offloading across the IB fabric"
    ))
    return data


class TestRemoteOffload:
    def test_remote_more_expensive_than_local(self, remote):
        assert remote["remote"] > remote["local"]

    def test_extra_cost_is_roughly_the_ib_round_trip(self, remote):
        extra = remote["remote"] - remote["local"]
        assert extra == pytest.approx(2 * remote["ib_latency"], rel=0.45)

    def test_remote_dma_still_beats_local_veo_protocol(self, remote):
        # The headline of the extension: remote offloading through the
        # fast protocol is ~45x cheaper than the *local* VEO protocol.
        assert remote["remote"] < PAPER.fig9_ham_veo / 20

    def test_benchmark_remote_offload(self, benchmark, remote):
        cluster = AuroraCluster(num_nodes=2)
        runtime = Runtime(ClusterBackend(cluster))
        try:
            benchmark(lambda: runtime.sync(2, f2f(remote_empty_kernel)))
        finally:
            runtime.shutdown()
