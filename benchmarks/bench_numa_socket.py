"""Experiment S1 — paper Sec. V-A: offloading from the second CPU socket.

"Performing the offload from the second CPU, which has to communicate
with the VE through its UPI connection with the first CPU socket, adds up
to 1 µs to the DMA measurement."

Measured by running the full DMA protocol with the VH process pinned to
socket 0 (local) and socket 1 (remote, one UPI hop to VE 0).
"""

import pytest

from repro.backends import DmaCommBackend
from repro.bench.calibration import PAPER
from repro.bench.tables import format_time, render_table
from repro.ham import f2f, offloadable
from repro.machine import AuroraMachine
from repro.offload import Runtime

REPS = 40


@offloadable
def numa_empty_kernel() -> None:
    """Empty kernel for the NUMA experiment."""
    return None


from repro.bench.experiments import measure_numa_penalty


@pytest.fixture(scope="module")
def numa(report):
    raw = measure_numa_penalty(reps=REPS)
    data = {
        "dma_local": raw["dma_socket0"],
        "dma_remote": raw["dma_socket1"],
        "veo_local": raw["veo_socket0"],
        "veo_remote": raw["veo_socket1"],
    }
    rows = [
        {
            "protocol": "HAM-Offload (DMA)",
            "socket 0 (local)": format_time(data["dma_local"]),
            "socket 1 (UPI hop)": format_time(data["dma_remote"]),
            "added": format_time(data["dma_remote"] - data["dma_local"]),
            "paper": "up to 1 us",
        },
        {
            "protocol": "HAM-Offload (VEO)",
            "socket 0 (local)": format_time(data["veo_local"]),
            "socket 1 (UPI hop)": format_time(data["veo_remote"]),
            "added": format_time(data["veo_remote"] - data["veo_local"]),
            "paper": "(not reported)",
        },
    ]
    report("numa_socket", render_table(
        rows, title="Sec. V-A — offload cost from the second CPU socket"
    ))
    return data


class TestNuma:
    def test_remote_socket_slower(self, numa):
        assert numa["dma_remote"] > numa["dma_local"]
        assert numa["veo_remote"] > numa["veo_local"]

    def test_dma_penalty_up_to_one_microsecond(self, numa):
        extra = numa["dma_remote"] - numa["dma_local"]
        assert 0 < extra <= PAPER.second_socket_extra_max

    def test_penalty_is_small_relative_to_veo_protocol(self, numa):
        # On the 432 µs VEO protocol the UPI penalty is negligible noise.
        extra = numa["veo_remote"] - numa["veo_local"]
        assert extra / numa["veo_local"] < 0.01

    def test_benchmark_remote_socket_offload(self, benchmark, numa):
        runtime = Runtime(DmaCommBackend(AuroraMachine(num_ves=1, socket=1)))
        try:
            benchmark(lambda: runtime.sync(1, f2f(numa_empty_kernel)))
        finally:
            runtime.shutdown()
