"""Experiment G1 — offload cost vs application speedup (granularity).

Paper Sec. V-A (last paragraph): "How much these numbers affect
application runtimes depends on the frequency and granularity of
offloading ... In a similar study with the Intel Xeon Phi accelerator, a
reduction in offloading cost of 13.7× on values of the same order of
magnitude translated into speed-up of up to 2.6× for a real world
application."

We reproduce the *mechanism*: a stream of dgemm tasks of varying size is
offloaded through both protocols (kernel time on the VE from the roofline
model, full protocol execution for every offload). For fine-grained tasks
the DMA protocol's 70× lower overhead translates into large end-to-end
speedups over the VEO protocol; for coarse tasks the protocols converge —
exactly the paper's point that lower overhead makes *more* code feasible
to offload.
"""

import pytest

from repro.backends import DmaCommBackend, VeoCommBackend
from repro.bench.harness import measure_sim
from repro.bench.tables import format_time, render_table
from repro.ham import f2f, offloadable
from repro.hw.roofline import VE_DEVICE, VH_DEVICE
from repro.offload import Runtime
from repro.workloads.kernels import KERNELS

#: dgemm sizes n (matrix n×n) spanning fine to coarse granularity.
SIZES = [24, 48, 96, 192, 384, 768, 1536, 3072]
TASKS_PER_POINT = 8


@offloadable
def granularity_stub(n: int) -> int:
    """Stand-in task body; VE compute time is charged via the roofline."""
    return n


def _makespan(backend_cls, n: int) -> float:
    kernel = KERNELS["dgemm"]
    backend = backend_cls()
    backend.kernel_cost_fn = lambda functor: kernel.time_on(VE_DEVICE, functor.args[0])
    runtime = Runtime(backend)
    sim = backend.sim
    stats = measure_sim(
        lambda: runtime.sync(1, f2f(granularity_stub, n)),
        sim, reps=TASKS_PER_POINT, warmup=2,
    )
    runtime.shutdown()
    return stats.mean * TASKS_PER_POINT


@pytest.fixture(scope="module")
def granularity(report):
    kernel = KERNELS["dgemm"]
    rows = []
    data = {}
    for n in SIZES:
        host = kernel.time_on(VH_DEVICE, n) * TASKS_PER_POINT
        veo = _makespan(VeoCommBackend, n)
        dma = _makespan(DmaCommBackend, n)
        data[n] = {"host": host, "veo": veo, "dma": dma}
        rows.append({
            "dgemm n": n,
            "host only": format_time(host),
            "offload (VEO proto)": format_time(veo),
            "offload (DMA proto)": format_time(dma),
            "DMA vs VEO": f"{veo / dma:.2f}x",
            "DMA vs host": f"{host / dma:.2f}x",
        })
    text = render_table(
        rows,
        title=(
            f"G1 — {TASKS_PER_POINT} dgemm tasks per point: protocol overhead "
            "vs granularity"
        ),
    )
    text += (
        "\n\ncontext: the paper cites a 13.7x offload-cost reduction turning "
        "into up to 2.6x application speedup on Xeon Phi; here the 70x "
        "protocol-cost reduction yields the speedups in the 'DMA vs VEO' "
        "column, decaying toward 1x as kernels grow."
    )
    report("app_granularity", text)
    return data


class TestGranularity:
    def test_dma_protocol_never_slower(self, granularity):
        for n, row in granularity.items():
            assert row["dma"] <= row["veo"] * 1.001, n

    def test_fine_granularity_speedup_exceeds_2_6(self, granularity):
        # For the finest tasks the protocol switch alone buys more than
        # the 2.6x the paper cites for the Xeon Phi application study.
        finest = granularity[SIZES[0]]
        assert finest["veo"] / finest["dma"] > 2.6

    def test_speedup_decays_with_granularity(self, granularity):
        ratios = [granularity[n]["veo"] / granularity[n]["dma"] for n in SIZES]
        assert ratios == sorted(ratios, reverse=True)
        assert ratios[-1] < 1.05  # coarse tasks: protocols converge

    def test_offloading_pays_off_only_beyond_crossover(self, granularity):
        # Tiny kernels: host wins (offload overhead dominates).
        finest = granularity[SIZES[0]]
        assert finest["host"] < finest["veo"]
        # Large kernels: the VE's compute advantage dominates.
        coarsest = granularity[SIZES[-1]]
        assert coarsest["dma"] < coarsest["host"]

    def test_dma_crossover_finer_than_veo(self, granularity):
        """Lower overhead -> offloading pays off at finer granularity
        (the paper's central application-level argument)."""
        def crossover(protocol):
            for n in SIZES:
                if granularity[n][protocol] < granularity[n]["host"]:
                    return n
            return float("inf")

        assert crossover("dma") <= crossover("veo")

    def test_benchmark_fine_grained_offload(self, benchmark, granularity):
        backend = DmaCommBackend()
        kernel = KERNELS["dgemm"]
        backend.kernel_cost_fn = lambda functor: kernel.time_on(VE_DEVICE, functor.args[0])
        runtime = Runtime(backend)
        try:
            benchmark(lambda: runtime.sync(1, f2f(granularity_stub, 24)))
        finally:
            runtime.shutdown()
