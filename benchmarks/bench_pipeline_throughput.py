"""Experiment P2 — pipelined channel transport throughput.

Beyond the paper: the TCP backend's correlation-id reply matching plus
the target-side worker pool let many invocations overlap in flight,
bounded by the in-flight window. The acceptance criterion of the
pipelined transport is a >= 2x sustained invoke throughput over the
serial ``sync`` baseline on the same server.
"""

import pytest

from repro.bench.experiments import measure_pipeline_throughput
from repro.bench.tables import format_time, render_table


@pytest.fixture(scope="module")
def pipeline_data():
    data = measure_pipeline_throughput(invokes=24, kernel_seconds=0.02)
    if data["speedup"] < 2.0:  # one retry absorbs scheduler noise
        data = measure_pipeline_throughput(invokes=24, kernel_seconds=0.02)
    return data


@pytest.fixture(scope="module")
def pipeline_report(report, pipeline_data):
    rows = [
        {"mode": "serial sync",
         "throughput": f"{pipeline_data['serial_throughput']:,.0f} invokes/s",
         "wall time": format_time(pipeline_data["serial_seconds"])},
        {"mode": f"pipelined (window {int(pipeline_data['window'])}, "
                 f"{int(pipeline_data['workers'])} workers)",
         "throughput": f"{pipeline_data['pipelined_throughput']:,.0f} invokes/s",
         "wall time": format_time(pipeline_data["pipelined_seconds"])},
        {"mode": "speedup",
         "throughput": f"{pipeline_data['speedup']:.1f}x", "wall time": "-"},
    ]
    text = render_table(
        rows, title="P2 — pipelined TCP invoke throughput (wall clock)"
    )
    report("pipeline_throughput", text)
    return rows


class TestPipelineThroughput:
    def test_pipelined_at_least_2x_serial(self, pipeline_data, pipeline_report):
        """The tentpole acceptance criterion: >= 2x sustained invoke
        throughput over the serial TCP baseline."""
        assert pipeline_data["speedup"] >= 2.0

    def test_serial_baseline_is_latency_bound(self, pipeline_data):
        # One sync per kernel_seconds at most — if serial were faster,
        # the baseline (and hence the speedup) would be meaningless.
        assert pipeline_data["serial_throughput"] <= 1.0 / pipeline_data[
            "kernel_seconds"
        ]
