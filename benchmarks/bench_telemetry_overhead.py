"""Experiment T1 — telemetry sampling overhead on the offload path.

Observability must be cheap enough to leave on: the acceptance bar is
<= 5% added round-trip latency at ``sample_rate=0.01`` versus telemetry
disabled entirely. The experiment measures TCP round trips of a
representative millisecond-scale kernel under four modes (disabled, and
head sampling at 0.0 / 0.01 / 1.0 with the tail-retention pipeline
installed) on identical fresh servers.

The gate uses the overhead *ratio*, which divides out machine speed —
the absolute means in the committed baseline are informational.

A second gate bounds the flight recorder (the always-on post-mortem
ring): the sampling baseline runs with it armed, ``flight_off`` runs
with noting disabled, and their ratio must clear the same 5% budget.
"""

import pytest

from repro.bench.experiments import measure_telemetry_overhead
from repro.bench.tables import format_time, render_table

OVERHEAD_BUDGET = 1.05  # <= 5% at sample_rate=0.01, per the acceptance bar

_MODES = (
    ("flight_off", "disabled + flight recorder off"),
    ("disabled", "disabled"),
    ("rate_0", "sample_rate=0.0"),
    ("rate_0_01", "sample_rate=0.01"),
    ("rate_1", "sample_rate=1.0"),
)


@pytest.fixture(scope="module")
def overhead_data():
    data = measure_telemetry_overhead(invokes=100)
    if (  # one retry absorbs scheduler noise on either gated ratio
        data["overhead_rate_0_01"] > OVERHEAD_BUDGET
        or data["overhead_flight_on"] > OVERHEAD_BUDGET
    ):
        data = measure_telemetry_overhead(invokes=100)
    return data


@pytest.fixture(scope="module")
def overhead_report(report, overhead_data):
    rows = [
        {"telemetry": label,
         "round trip": format_time(overhead_data[f"{mode}_mean_us"] / 1e6),
         "vs disabled": (
             f"{(overhead_data[f'overhead_{mode}'] - 1.0) * 100:+.1f}%"
             if f"overhead_{mode}" in overhead_data else "-"
         )}
        for mode, label in _MODES
    ]
    rows.append({
        "telemetry": "flight recorder cost",
        "round trip": "-",
        "vs disabled":
            f"{(overhead_data['overhead_flight_on'] - 1.0) * 100:+.1f}%",
    })
    text = render_table(
        rows, title="T1 — telemetry sampling overhead (TCP round trip)"
    )
    report("telemetry_overhead", text)
    return rows


class TestTelemetryOverhead:
    def test_low_rate_sampling_within_budget(self, overhead_data, overhead_report):
        """The acceptance criterion: sampling at 0.01 costs <= 5% of the
        telemetry-disabled round trip."""
        assert overhead_data["overhead_rate_0_01"] <= OVERHEAD_BUDGET

    def test_rate_zero_not_slower_than_low_rate_bound(self, overhead_data):
        # rate 0.0 does strictly less work than 0.01 (no trace is ever
        # retained), so it must clear the same budget.
        assert overhead_data["overhead_rate_0"] <= OVERHEAD_BUDGET

    def test_flight_recorder_within_budget(self, overhead_data):
        """The always-on flight recorder must stay free on the happy
        path: armed vs disabled within the same 5% budget."""
        assert overhead_data["overhead_flight_on"] <= OVERHEAD_BUDGET

    def test_all_modes_measured(self, overhead_data):
        for mode, _label in _MODES:
            assert overhead_data[f"{mode}_mean_us"] > 0.0
