"""Experiment P1 — the functional (wall-clock) backends.

The paper's portability claim: HAM-Offload applications run unchanged on
every communication backend. The ``local`` and ``tcp`` backends are real
Python offloading transports; this bench measures their wall-clock
offload latency and put/get throughput with pytest-benchmark — the
reproduction's analogue of the paper's TCP/MPI reference backends.
"""

import numpy as np
import pytest

from repro.backends import LocalBackend, TcpBackend, spawn_local_server
from repro.bench.harness import measure_wall
from repro.bench.tables import format_time, render_table
from repro.ham import f2f, offloadable
from repro.offload import Runtime


@offloadable
def functional_empty() -> None:
    """Empty kernel for wall-clock latency."""
    return None


@offloadable
def functional_sum(buf) -> float:
    """Reduction over a staged buffer."""
    return float(np.asarray(buf).sum())


@pytest.fixture(scope="module")
def local_rt():
    runtime = Runtime(LocalBackend())
    yield runtime
    runtime.shutdown()


@pytest.fixture(scope="module")
def tcp_rt():
    process, address = spawn_local_server()
    runtime = Runtime(TcpBackend(address, on_shutdown=lambda: process.join(timeout=5)))
    yield runtime
    runtime.shutdown()
    if process.is_alive():  # pragma: no cover
        process.terminate()


@pytest.fixture(scope="module")
def latency_report(report, local_rt, tcp_rt):
    rows = []
    for name, runtime in (("local", local_rt), ("tcp", tcp_rt)):
        stats = measure_wall(
            lambda rt=runtime: rt.sync(1, f2f(functional_empty)), reps=300
        )
        rows.append({
            "backend": name,
            "empty offload (wall clock)": format_time(stats.mean),
            "min": format_time(stats.minimum),
        })
    text = render_table(
        rows, title="P1 — functional backends: wall-clock empty-offload latency"
    )
    report("functional_backends", text)
    return rows


class TestFunctionalBackends:
    def test_local_latency_sane(self, latency_report):
        # In-process round trip should be well under a millisecond.
        local = latency_report[0]
        assert "us" in local["empty offload (wall clock)"]

    def test_report_has_both_backends(self, latency_report):
        assert [r["backend"] for r in latency_report] == ["local", "tcp"]

    def test_benchmark_local_offload(self, benchmark, local_rt):
        benchmark(lambda: local_rt.sync(1, f2f(functional_empty)))

    def test_benchmark_tcp_offload(self, benchmark, tcp_rt):
        benchmark(lambda: tcp_rt.sync(1, f2f(functional_empty)))

    def test_benchmark_tcp_put_1mib(self, benchmark, tcp_rt):
        data = np.random.default_rng(0).random(131072)  # 1 MiB of f8
        ptr = tcp_rt.allocate(1, data.size)
        try:
            benchmark(lambda: tcp_rt.put(data, ptr))
        finally:
            tcp_rt.free(ptr)

    def test_benchmark_local_buffer_kernel(self, benchmark, local_rt):
        data = np.random.default_rng(1).random(4096)
        ptr = local_rt.allocate(1, data.size)
        local_rt.put(data, ptr)
        try:
            result = benchmark(lambda: local_rt.sync(1, f2f(functional_sum, ptr)))
            assert result == pytest.approx(float(data.sum()))
        finally:
            local_rt.free(ptr)
