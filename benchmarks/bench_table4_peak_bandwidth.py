"""Experiment T4 — paper Table IV: max PCIe bandwidths per method.

Peaks are taken over a size sweep on the simulated hardware, exactly like
Fig. 10 but only sampling the region where each method plateaus. For
SHM/LHM the paper's "max" corresponds to the sustained word-rate plateau
(its small-size burst exceeds it; see EXPERIMENTS.md).
"""

import pytest

from repro.bench.calibration import PAPER
from repro.bench.tables import format_bandwidth, render_table
from repro.hw.specs import MIB
from repro.machine import AuroraMachine

PEAK_SIZES = [64 * MIB, 128 * MIB, 256 * MIB]
WORDWISE_SIZE = 4 * MIB  # SHM/LHM measured to 4 MiB in the paper


from repro.bench.experiments import measure_table4


@pytest.fixture(scope="module")
def table4(report):
    data = measure_table4(PEAK_SIZES)
    rows = [
        {
            "Transfer Method": "VEO Read/Write",
            "VH => VE": format_bandwidth(data["veo_write"]),
            "VE => VH": format_bandwidth(data["veo_read"]),
            "paper": "9.9 / 10.4 GiB/s",
        },
        {
            "Transfer Method": "VE User DMA",
            "VH => VE": format_bandwidth(data["udma_read"]),
            "VE => VH": format_bandwidth(data["udma_write"]),
            "paper": "10.6 / 11.1 GiB/s",
        },
        {
            "Transfer Method": "VE SHM/LHM",
            "VH => VE": format_bandwidth(data["lhm"]),
            "VE => VH": format_bandwidth(data["shm"]),
            "paper": "0.01 / 0.06 GiB/s",
        },
    ]
    report("table4_peak_bandwidth", render_table(
        rows, title="Table IV — max PCIe bandwidths between VH and VE"
    ))
    return data


def _drop(gen):
    def wrapper():
        yield from gen
    return wrapper()


class TestTable4:
    def test_veo_write_peak(self, table4):
        assert table4["veo_write"] == pytest.approx(PAPER.table4_veo_write, rel=0.05)

    def test_veo_read_peak(self, table4):
        assert table4["veo_read"] == pytest.approx(PAPER.table4_veo_read, rel=0.05)

    def test_udma_read_peak(self, table4):
        assert table4["udma_read"] == pytest.approx(PAPER.table4_udma_read, rel=0.05)

    def test_udma_write_peak(self, table4):
        assert table4["udma_write"] == pytest.approx(PAPER.table4_udma_write, rel=0.05)

    def test_lhm_plateau(self, table4):
        assert table4["lhm"] == pytest.approx(PAPER.table4_lhm, rel=0.15)

    def test_shm_plateau(self, table4):
        assert table4["shm"] == pytest.approx(PAPER.table4_shm, rel=0.10)

    def test_ordering_matches_paper(self, table4):
        # user DMA > VEO >> word-wise, per direction.
        assert table4["udma_read"] > table4["veo_write"] > table4["lhm"]
        assert table4["udma_write"] > table4["veo_read"] > table4["shm"]

    def test_direction_gap_within_5_percent(self, table4):
        # Paper: "peak bandwidths between the directions differ by up to 5 %".
        assert table4["veo_read"] / table4["veo_write"] <= 1.055
        assert table4["udma_write"] / table4["udma_read"] <= 1.055

    def test_below_pcie_budget(self, table4):
        ceiling = PAPER.pcie_theoretical_peak * PAPER.pcie_achievable_fraction
        for key in ("veo_write", "veo_read", "udma_read", "udma_write"):
            assert table4[key] <= ceiling

    def test_benchmark_peak_measurement(self, benchmark, table4):
        machine = AuroraMachine(num_ves=1, ve_memory_bytes=16 * MIB, vh_memory_bytes=16 * MIB)
        ve = machine.ve(0)
        segment = machine.vh.shmget(8 * MIB)
        entry = ve.dmaatb.register(segment, 0, 8 * MIB)
        staging = ve.hbm.allocate(8 * MIB)
        sim = machine.sim

        def one():
            sim.run(until=sim.process(
                ve.udma.write_host(ve.hbm, staging.addr, entry.vehva, 8 * MIB)
            ))

        benchmark(one)
