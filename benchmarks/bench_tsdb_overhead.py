"""Experiment T2 — TSDB sampler overhead on the offload path.

The time-series sampler must be cheap enough to leave on in
production: the acceptance bar is <= 2% added round-trip latency with
the sampler ticking at its default 1 s interval versus telemetry alone.
The experiment measures TCP round trips of a representative
millisecond-scale kernel with the event recorder enabled in both
modes; the ``tsdb_on`` mode additionally installs the sampler, attaches
the runtime (so scoreboard refreshes run too), and starts the thread —
exactly what ``offload.init(telemetry={"tsdb": True})`` wires up.

The gate uses the overhead *ratio*, which divides out machine speed —
the absolute means in the committed baseline are informational. The
sampler does all its work on its own daemon thread, so a breach here
means sampling cost leaked onto the invoke path (per-invoke hooks or
registry lock contention), not that a tick got slower.
"""

import pytest

from repro.bench.experiments import measure_tsdb_overhead
from repro.bench.tables import format_time, render_table

OVERHEAD_BUDGET = 1.02  # <= 2% with the 1 s sampler on, per the acceptance bar

_MODES = (
    ("tsdb_off", "telemetry, no sampler"),
    ("tsdb_on", "telemetry + tsdb sampler (1 s)"),
)


@pytest.fixture(scope="module")
def overhead_data():
    data = measure_tsdb_overhead(invokes=100)
    if data["overhead_tsdb_on"] > OVERHEAD_BUDGET:
        # one retry absorbs scheduler noise on the gated ratio
        data = measure_tsdb_overhead(invokes=100)
    return data


@pytest.fixture(scope="module")
def overhead_report(report, overhead_data):
    rows = [
        {"mode": label,
         "round trip": format_time(overhead_data[f"{mode}_mean_us"] / 1e6),
         "vs tsdb off": (
             f"{(overhead_data['overhead_tsdb_on'] - 1.0) * 100:+.1f}%"
             if mode == "tsdb_on" else "-"
         )}
        for mode, label in _MODES
    ]
    text = render_table(
        rows, title="T2 — TSDB sampler overhead (TCP round trip)"
    )
    report("tsdb_overhead", text)
    return rows


class TestTsdbOverhead:
    def test_sampler_within_budget(self, overhead_data, overhead_report):
        """The acceptance criterion: the 1 s sampler costs <= 2% of the
        sampler-free round trip."""
        assert overhead_data["overhead_tsdb_on"] <= OVERHEAD_BUDGET

    def test_both_modes_measured(self, overhead_data):
        for mode, _label in _MODES:
            assert overhead_data[f"{mode}_mean_us"] > 0.0
