"""Experiment M1 (extension) — offload throughput scaling across VEs.

The benchmark system has eight VEs (Fig. 3); the paper offloads to one.
This extension measures how aggregate offload throughput scales when the
single host process drives 1–8 VEs concurrently with the DMA protocol:
VE-side kernels overlap perfectly (independent engines), while the host's
serialization/posting work and result polling become the shared resource —
the classic single-driver scaling curve.
"""

import pytest

from repro.backends import DmaCommBackend
from repro.bench.tables import render_table
from repro.ham import f2f, offloadable
from repro.machine import AuroraMachine
from repro.offload import Runtime

KERNEL_TIME = 50e-6
ROUNDS = 12
VE_COUNTS = [1, 2, 4, 8]


@offloadable
def scaling_kernel(tag: int) -> int:
    """Kernel body; VE time is charged via kernel_cost_fn."""
    return tag


from repro.bench.experiments import measure_multi_ve_scaling


@pytest.fixture(scope="module")
def scaling(report):
    data = measure_multi_ve_scaling(VE_COUNTS, kernel_time=KERNEL_TIME, rounds=ROUNDS)
    base = data[1]
    rows = [
        {
            "VEs": n,
            "offloads/s (simulated)": f"{data[n]:,.0f}",
            "speedup": f"{data[n] / base:.2f}x",
            "efficiency": f"{data[n] / base / n:.0%}",
        }
        for n in VE_COUNTS
    ]
    text = render_table(
        rows,
        title=(
            f"M1 — DMA-protocol offload throughput vs number of VEs "
            f"({KERNEL_TIME * 1e6:.0f} us kernels)"
        ),
    )
    report("multi_ve_scaling", text)
    return data


class TestMultiVeScaling:
    def test_throughput_increases_with_ves(self, scaling):
        values = [scaling[n] for n in VE_COUNTS]
        assert values == sorted(values)

    def test_two_ves_nearly_double(self, scaling):
        assert scaling[2] / scaling[1] > 1.7

    def test_eight_ves_beat_four(self, scaling):
        assert scaling[8] > scaling[4]

    def test_efficiency_degrades_gracefully(self, scaling):
        # Single host driver: efficiency at 8 VEs below 100 % but the
        # setup must still deliver clearly more than 4 VEs' throughput.
        assert 0.4 < scaling[8] / scaling[1] / 8 <= 1.0

    def test_benchmark_four_ve_round(self, benchmark, scaling):
        machine = AuroraMachine(num_ves=4)
        backend = DmaCommBackend(machine)
        backend.kernel_cost_fn = lambda functor: KERNEL_TIME
        runtime = Runtime(backend)

        def round_robin():
            futures = [
                runtime.async_(node, f2f(scaling_kernel, 1))
                for node in runtime.targets()
            ]
            for future in futures:
                future.get()

        try:
            benchmark(round_robin)
        finally:
            runtime.shutdown()
