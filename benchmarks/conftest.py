"""Shared infrastructure for the reproduction benchmarks.

Each benchmark module computes its experiment's data once (module-scoped
fixture), asserts the paper anchors, registers a paper-style report, and
benchmarks a representative operation with pytest-benchmark (wall-clock
cost of driving the simulation).

Reports are printed in the terminal summary (so they appear even under
output capture) and written to ``benchmarks/results/<experiment>.txt``.
"""

from __future__ import annotations

import pathlib

import pytest

_REPORTS: list[tuple[str, str]] = []
_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report():
    """Register a named report section: ``report(experiment_id, text)``."""

    def _register(experiment: str, text: str) -> None:
        _REPORTS.append((experiment, text))
        _RESULTS_DIR.mkdir(exist_ok=True)
        path = _RESULTS_DIR / f"{experiment}.txt"
        path.write_text(text + "\n")

    return _register


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("paper reproduction reports")
    for experiment, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"### {experiment}")
        for line in text.splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
    terminalreporter.write_line(
        f"(reports also written to {_RESULTS_DIR}/)"
    )
