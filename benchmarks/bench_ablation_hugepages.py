"""Experiment A2 — ablation: huge pages vs 4 KiB pages on the VH buffer.

Paper Sec. V-B: "To achieve these numbers, it is important to use huge
pages of at least 2 MiB." The privileged DMA manager pays a
per-page translation cost; 4 KiB pages mean 512× more translations per
2 MiB of data.
"""

import pytest

from repro.bench.tables import format_bandwidth, format_size, render_table
from repro.hw.memory import PAGE_4K
from repro.hw.specs import MIB
from repro.machine import AuroraMachine
from repro.veo import VeoProc

SIZES = [256 * 1024, 4 * MIB, 32 * MIB]


from repro.bench.experiments import measure_hugepages_ablation


@pytest.fixture(scope="module")
def hugepages(report):
    data = measure_hugepages_ablation(SIZES)
    rows = [
        {
            "size": format_size(size),
            "2 MiB huge pages": format_bandwidth(data["huge"][size]),
            "4 KiB pages": format_bandwidth(data["small"][size]),
            "huge-page gain": f"{data['huge'][size] / data['small'][size]:.1f}x",
        }
        for size in SIZES
    ]
    report("ablation_hugepages", render_table(
        rows, title="A2 — VEO write bandwidth: huge pages vs 4 KiB pages"
    ))
    return data


class TestHugePages:
    def test_huge_pages_always_faster(self, hugepages):
        for size in SIZES:
            assert hugepages["huge"][size] > hugepages["small"][size]

    def test_small_pages_cripple_large_transfers(self, hugepages):
        # At 32 MiB, 4 KiB pages cost 8192 translations; the paper's
        # "important to use huge pages" should be a multi-x effect.
        gain = hugepages["huge"][32 * MIB] / hugepages["small"][32 * MIB]
        assert gain > 3

    def test_gain_grows_with_size(self, hugepages):
        gains = [hugepages["huge"][s] / hugepages["small"][s] for s in SIZES]
        assert gains == sorted(gains)

    def test_benchmark_small_page_transfer(self, benchmark, hugepages):
        machine = AuroraMachine(num_ves=1, ve_memory_bytes=16 * MIB, vh_memory_bytes=16 * MIB)
        proc = VeoProc(machine, 0)
        vh_buf = machine.vh.ddr.allocate(4 * MIB, page_size=PAGE_4K)
        ve_addr = proc.alloc_mem(4 * MIB)
        benchmark(lambda: proc.transfer_region(
            machine.vh.ddr, vh_buf.addr, ve_addr, 4 * MIB,
            direction="vh_to_ve", page_size=PAGE_4K,
        ))
