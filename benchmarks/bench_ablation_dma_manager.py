"""Experiment A1 — ablation: classic vs 1.3.2-4dma privileged DMA manager.

Paper Sec. III-D: "For larger buffers of a few MiB and more, the
bandwidth achieved by using this mechanism reaches and exceeds 11 GB/s
with the improved DMA manager from VEOS 1.3.2-4dma when huge pages are
employed ... The improved DMA manager uses bulk virtual to physical
translations overlapping descriptor generation and DMA transfers."

We compare VEO write bandwidth with both manager generations.
"""

import pytest

from repro.bench.tables import format_bandwidth, format_size, render_table
from repro.hw.memory import PAGE_HUGE_2M
from repro.hw.specs import GIB, MIB
from repro.machine import AuroraMachine
from repro.veo import VeoProc

SIZES = [MIB, 8 * MIB, 64 * MIB]


from repro.bench.experiments import measure_dma_manager_ablation


@pytest.fixture(scope="module")
def ablation(report):
    data = measure_dma_manager_ablation(SIZES)
    rows = [
        {
            "size": format_size(size),
            "classic manager": format_bandwidth(data["classic"][size]),
            "1.3.2-4dma": format_bandwidth(data["4dma"][size]),
            "improvement": f"{data['4dma'][size] / data['classic'][size]:.2f}x",
        }
        for size in SIZES
    ]
    report("ablation_dma_manager", render_table(
        rows, title="A1 — VEO write bandwidth: classic vs 4dma DMA manager"
    ))
    return data


class TestDmaManagerAblation:
    def test_4dma_faster_everywhere(self, ablation):
        for size in SIZES:
            assert ablation["4dma"][size] > ablation["classic"][size]

    def test_4dma_reaches_paper_bandwidth_at_64mib(self, ablation):
        # "reaches and exceeds 11 GB/s" = 10.2 GiB/s... at 64 MiB our
        # write path sits just below its 9.9 GiB/s Table IV peak.
        assert ablation["4dma"][64 * MIB] >= 9.0 * GIB

    def test_classic_stays_clearly_below(self, ablation):
        assert ablation["classic"][64 * MIB] < 0.9 * ablation["4dma"][64 * MIB]

    def test_improvement_grows_with_translation_pressure(self, ablation):
        # More pages -> more benefit from bulk translation.
        small = ablation["4dma"][MIB] / ablation["classic"][MIB]
        large = ablation["4dma"][64 * MIB] / ablation["classic"][64 * MIB]
        assert large >= small * 0.9  # monotone-ish

    def test_benchmark_classic_transfer(self, benchmark, ablation):
        machine = AuroraMachine(
            num_ves=1, four_dma=False, ve_memory_bytes=16 * MIB, vh_memory_bytes=16 * MIB
        )
        proc = VeoProc(machine, 0)
        vh_buf = machine.vh.ddr.allocate(8 * MIB, page_size=PAGE_HUGE_2M)
        ve_addr = proc.alloc_mem(8 * MIB)
        benchmark(lambda: proc.transfer_region(
            machine.vh.ddr, vh_buf.addr, ve_addr, 8 * MIB, direction="vh_to_ve"
        ))
