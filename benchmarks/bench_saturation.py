"""Experiment S2 — adaptive coalescing on the pipelined TCP hot path.

Two gates on the event-loop + batching refactor, both phrased so they
hold on any host class:

* **No-regression** — adaptive coalescing must not tax the hot path.
  Interleaved batched/unbatched bursts at depth 1024; the ratio of
  median rates is floored *below* 1.0 because on a single-CPU host the
  target drains as fast as the host posts, true in-flight depth hovers
  near the idle threshold, and the coalescer runs in pure-overhead
  mode (every flush is an "idle" flush). Multi-core hosts, where the
  host thread is genuinely wire-bound, measure above 1.0.

* **Coalescing effectiveness** — the acceptance ratio (1.5x) applied
  to the quantity batching actually controls: wire operations per
  invoke. With the target throttled so a real backlog builds, at
  least 1.5x fewer ``sendmsg`` calls than frames must hit the socket
  (measured ~8-16x once the pipeline is deep); every reply must still
  arrive intact, proving the batch grammar is wire-compatible.

Wall-clock rates per depth land in ``BENCH_saturation.json`` (via
``python -m repro.bench.cli saturation``) for the cross-run regression
job, which tracks them with a tolerance band on a fixed runner class.
"""

import pytest

from repro.backends import TcpBackend, spawn_local_server
from repro.bench.experiments import measure_batch_gate
from repro.bench.tables import render_table
from repro.ham import f2f
from repro.offload import Runtime
from repro.workloads.kernels import sleep_kernel

#: Floor for batched-vs-unbatched wall clock (see module docstring).
NO_REGRESSION_FLOOR = 0.7
#: The acceptance ratio, applied to frames per wire operation.
COALESCING_FLOOR = 1.5


@pytest.fixture(scope="module")
def gate_data():
    data = measure_batch_gate(depth=1024, rounds=5)
    if data["batch_speedup"] < NO_REGRESSION_FLOOR:  # one retry for noise
        data = measure_batch_gate(depth=1024, rounds=5)
    return data


@pytest.fixture(scope="module")
def loaded_batch_stats():
    """Coalescer stats for a burst posted faster than the target drains.

    A 2 ms sleep kernel on 2 workers caps the target near 1k invokes/s
    while the host posts far faster, so a real backlog builds and the
    in-flight depth stays above the idle threshold — the regime the
    coalescer exists for.
    """
    process, address = spawn_local_server(workers=2)
    backend = TcpBackend(
        address, batch=True, on_shutdown=lambda: process.join(timeout=10)
    )
    runtime = Runtime(backend, window=512)
    try:
        futures = [
            runtime.async_(1, f2f(sleep_kernel, 0.002)) for _ in range(256)
        ]
        values = [future.get(timeout=60.0) for future in futures]
        stats = backend.stats()["batch"]
        return values, stats
    finally:
        runtime.shutdown()
        if process.is_alive():  # pragma: no cover - cleanup safety
            process.terminate()


@pytest.fixture(scope="module")
def saturation_report(report, gate_data, loaded_batch_stats):
    _, stats = loaded_batch_stats
    rows = [
        {"metric": "unbatched rate (depth 1024)",
         "value": f"{gate_data['unbatched_rate']:,.0f} invokes/s"},
        {"metric": "batched rate (depth 1024)",
         "value": f"{gate_data['batched_rate']:,.0f} invokes/s"},
        {"metric": "batched / unbatched",
         "value": f"{gate_data['batch_speedup']:.2f}x"},
        {"metric": "frames per wire op (loaded)",
         "value": f"{stats['avg_batch_frames']:.1f}"},
    ]
    text = render_table(
        rows, title="S2 — adaptive coalescing on the pipelined TCP path"
    )
    report("saturation", text)
    return rows


class TestCoalescingGates:
    def test_batching_does_not_regress_throughput(
        self, gate_data, saturation_report
    ):
        assert gate_data["batch_speedup"] >= NO_REGRESSION_FLOOR

    def test_loaded_pipeline_coalesces(self, loaded_batch_stats):
        """>= 1.5x fewer wire ops than frames once a backlog exists."""
        values, stats = loaded_batch_stats
        assert stats["avg_batch_frames"] >= COALESCING_FLOOR
        # Wire compatibility: every coalesced frame produced its reply.
        assert values == [0.002] * 256
        assert stats["buffered_frames"] == 0

    def test_load_triggers_budget_flushes(self, loaded_batch_stats):
        """Under load, flushes come from budgets/deadlines, not idling."""
        _, stats = loaded_batch_stats
        reasons = stats["flush_reasons"]
        busy = sum(
            reasons.get(reason, 0)
            for reason in ("count", "size", "deadline", "drive")
        )
        assert busy >= reasons.get("idle", 0)
