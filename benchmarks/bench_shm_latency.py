"""Experiment S1 — shared-memory transport vs TCP on localhost.

The real-path counterpart of the paper's Sec. IV-B headline (6.1 us
shm/DMA offload vs 432 us daemon-mediated VEO): the shm backend's
lock-free SPSC rings replace the socket stack with direct loads and
stores on a shared segment, so a small active message never crosses the
kernel. Gated on both dimensions the ISSUE names: synchronous
small-message RTT and pipelined message throughput.

The gate floors are deliberately below the measured ratios (same
pattern as ``bench_pipeline_throughput``): scheduler noise on a shared
single-CPU CI runner compresses the RTT gap — every synchronous RTT
there pays two mandatory context switches that hit the spinning shm
side hardest. Multi-core hosts, where the LHM/SHM-style polling loop
actually spins concurrently with the peer, measure far above the floor.
"""

import pytest

from repro.bench.experiments import measure_shm_latency
from repro.bench.tables import render_table


@pytest.fixture(scope="module")
def shm_data():
    data = measure_shm_latency(samples=150, rounds=3, burst_rounds=20)
    if (
        data["transport_rtt_speedup"] < 2.5
        or data["transport_throughput_speedup"] < 2.5
    ):  # one retry absorbs scheduler noise
        data = measure_shm_latency(samples=150, rounds=3, burst_rounds=20)
    return data


@pytest.fixture(scope="module")
def shm_report(report, shm_data):
    rows = [
        {"transport": "tcp (localhost)",
         "RTT median": f"{shm_data['tcp_rtt_time_us']:.1f} us",
         "messages/s": f"{shm_data['tcp_throughput']:,.0f}"},
        {"transport": "shm (SPSC rings)",
         "RTT median": f"{shm_data['shm_rtt_time_us']:.1f} us",
         "messages/s": f"{shm_data['shm_throughput']:,.0f}"},
        {"transport": "speedup",
         "RTT median": f"{shm_data['transport_rtt_speedup']:.1f}x",
         "messages/s": f"{shm_data['transport_throughput_speedup']:.1f}x"},
    ]
    text = render_table(rows, title="S1 — shm vs TCP transport (wall clock)")
    report("shm_latency", text)
    return rows


class TestShmLatency:
    def test_rtt_beats_tcp(self, shm_data, shm_report):
        """Small-message RTT must clearly beat TCP on localhost."""
        assert shm_data["transport_rtt_speedup"] >= 2.5

    def test_pipelined_throughput_beats_tcp(self, shm_data):
        """Depth-8 ping bursts: messages/s must clearly beat TCP."""
        assert shm_data["transport_throughput_speedup"] >= 2.5

    def test_rtt_is_single_digit_scale(self, shm_data):
        # The paper's shm offload is 6.1 us; our python analogue should
        # stay within the same order of magnitude on any healthy host.
        assert shm_data["shm_rtt_time_us"] < 100.0
