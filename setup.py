"""Legacy setup shim.

All metadata lives in ``pyproject.toml``; this file only exists so that
``pip install -e .`` works in offline environments that lack the ``wheel``
package (pip then falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
