#!/usr/bin/env python3
"""Side-by-side protocol comparison (the paper's Fig. 9, interactive).

Runs the empty-kernel offload on: a native VEO call, the HAM-over-VEO
protocol (Sec. III-D) and the HAM-over-DMA protocol (Sec. IV-B), then
prints the measured costs, the paper's numbers, and which hardware
facilities each protocol actually touched (privileged DMA operations,
LHM/SHM word counts, user-DMA transfers).

Run::

    python examples/protocol_comparison.py
"""

from repro.backends import DmaCommBackend, VeoCommBackend
from repro.bench.calibration import PAPER
from repro.bench.harness import measure_sim
from repro.machine import AuroraMachine
from repro.offload import Runtime, f2f, offloadable
from repro.veo import VeoProc
from repro.veos.loader import VeLibrary

REPS = 30


@offloadable
def empty() -> None:
    """The empty kernel — measures pure offload overhead."""
    return None


def native_veo() -> float:
    machine = AuroraMachine()
    proc = VeoProc(machine, 0)
    lib = VeLibrary("libempty")
    lib.add_function("empty", lambda: None)
    symbol = proc.load_library(lib).get_symbol("empty")
    ctx = proc.open_context()
    stats = measure_sim(lambda: ctx.call_sync(symbol), machine.sim, reps=REPS)
    proc.destroy()
    return stats.mean


def protocol(backend_cls):
    backend = backend_cls()
    runtime = Runtime(backend)
    stats = measure_sim(
        lambda: runtime.sync(1, f2f(empty)), backend.sim, reps=REPS
    )
    facilities = {
        "privileged DMA ops": backend.proc.daemon.dma_manager.transfer_count,
        "LHM word loads": backend.ve.lhm_ops,
        "SHM word stores": backend.ve.shm_ops,
        "user DMA transfers": backend.ve.udma.transfer_count,
    }
    runtime.shutdown()
    return stats.mean, facilities


def main() -> None:
    veo_native = native_veo()
    ham_veo, veo_fac = protocol(VeoCommBackend)
    ham_dma, dma_fac = protocol(DmaCommBackend)

    print("empty-kernel offload cost (simulated; paper Fig. 9)\n")
    rows = [
        ("VEO (native)", veo_native, PAPER.fig9_veo_native),
        ("HAM-Offload (VEO)", ham_veo, PAPER.fig9_ham_veo),
        ("HAM-Offload (DMA)", ham_dma, PAPER.fig9_ham_dma),
    ]
    for name, measured, paper in rows:
        print(f"  {name:20} {measured * 1e6:8.1f} us   (paper: {paper * 1e6:6.1f} us, "
              f"{measured / paper - 1:+.1%})")
    print()
    print(f"  HAM-VEO / native VEO : {ham_veo / veo_native:5.1f}x  (paper: 5.4x)")
    print(f"  native VEO / HAM-DMA : {veo_native / ham_dma:5.1f}x  (paper: 13.1x)")
    print(f"  HAM-VEO / HAM-DMA    : {ham_veo / ham_dma:5.1f}x  (paper: 70.8x)")

    print("\nhardware facilities touched across the whole run:")
    print(f"  {'facility':22} {'VEO protocol':>14} {'DMA protocol':>14}")
    for key in veo_fac:
        print(f"  {key:22} {veo_fac[key]:>14} {dma_fac[key]:>14}")
    print("\nNote how the DMA protocol's fast path uses no privileged DMA at "
          "all\n(its count stems from setup and put/get only).")


if __name__ == "__main__":
    main()
