#!/usr/bin/env python3
"""Communication/computation overlap with a double-buffered pipeline.

The paper's one-sided protocols let the VH stage the next message while
the VE executes the previous one (Sec. III-D). This example streams data
chunks through an offloaded reduction with pipeline depths 1 (serial)
and 2 (double buffering) on both simulated protocols, showing

* the overlap win of depth 2 over depth 1, and
* how the DMA protocol's small overhead keeps fine-grained streaming
  efficient where the VEO protocol drowns in per-offload cost.

Run::

    python examples/pipeline_overlap.py
"""

import numpy as np

from repro.backends import DmaCommBackend, VeoCommBackend
from repro.offload import Runtime, f2f, offloadable
from repro.workloads import pipelined_map

KERNEL_TIME = 150e-6  # modeled VE compute per chunk
N_CHUNKS = 16
CHUNK_LEN = 2048


@offloadable
def chunk_norm(buf, n: int) -> float:
    """Kernel applied to each staged chunk."""
    view = np.asarray(buf)[:n]
    return float(np.sqrt(np.dot(view, view)))


def run(backend_cls, depth: int) -> float:
    backend = backend_cls()
    backend.kernel_cost_fn = lambda functor: KERNEL_TIME
    runtime = Runtime(backend)
    chunks = [np.full(CHUNK_LEN, float(i)) for i in range(N_CHUNKS)]
    result = pipelined_map(
        runtime, 1, chunks,
        lambda ptr, n: f2f(chunk_norm, ptr, n),
        now=lambda: backend.sim.now,
        depth=depth,
    )
    runtime.shutdown()
    expected = [float(np.sqrt(CHUNK_LEN) * i) for i in range(N_CHUNKS)]
    assert np.allclose(result.results, expected), "wrong results!"
    return result.elapsed


def main() -> None:
    print(f"{N_CHUNKS} chunks x {CHUNK_LEN} doubles, "
          f"{KERNEL_TIME * 1e6:.0f} us VE kernel per chunk\n")
    print(f"{'protocol':10} | {'serial (depth 1)':>18} | {'pipelined (depth 2)':>20} | overlap gain")
    print("-" * 72)
    for name, backend_cls in (("VEO", VeoCommBackend), ("DMA", DmaCommBackend)):
        serial = run(backend_cls, depth=1)
        pipelined = run(backend_cls, depth=2)
        print(f"{name:10} | {serial * 1e3:15.3f} ms | {pipelined * 1e3:17.3f} ms "
              f"| {serial / pipelined:.2f}x")
    print("\nLower bound (pure compute): "
          f"{N_CHUNKS * KERNEL_TIME * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
