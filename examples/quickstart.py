#!/usr/bin/env python3
"""Quickstart — the paper's Fig. 2 program, ported to the Python API.

Computes the inner product of two vectors on a (simulated) NEC Vector
Engine through HAM-Offload: allocate target memory, ``put`` the data,
offload the kernel with ``f2f`` + ``async``, and synchronize on a future.

Run::

    python examples/quickstart.py
"""

import numpy as np

from repro.backends import DmaCommBackend
from repro.offload import Runtime, f2f, offloadable


@offloadable
def inner_prod(a, b, n: int) -> float:
    """The offloaded kernel (paper Fig. 2): dot product of two buffers.

    On the target, ``a`` and ``b`` arrive as live views of VE memory.
    """
    return float(np.dot(np.asarray(a)[:n], np.asarray(b)[:n]))


def main() -> None:
    # One simulated SX-Aurora node, offloading via the paper's fast
    # user-DMA protocol (Sec. IV-B). Swap in LocalBackend() or
    # VeoCommBackend() — the application code below stays identical.
    backend = DmaCommBackend()
    runtime = Runtime(backend)
    sim = backend.sim

    # Host memory.
    n = 1024
    a = np.random.default_rng(1).random(n)
    b = np.random.default_rng(2).random(n)

    # Target memory (node 1 = the VE).
    target = 1
    a_target = runtime.allocate(target, n)
    b_target = runtime.allocate(target, n)

    # Transfer memory.
    runtime.put(a, a_target)
    runtime.put(b, b_target)

    # Asynchronous offload; returns a future.
    start = sim.now
    result = runtime.async_(target, f2f(inner_prod, a_target, b_target, n))

    # ... do something in parallel on the host ...

    # Synchronize on the result future.
    value = result.get()
    elapsed = sim.now - start

    expected = float(np.dot(a, b))
    print(f"offloaded inner product : {value:.6f}")
    print(f"numpy reference         : {expected:.6f}")
    print(f"match                   : {np.isclose(value, expected)}")
    print(f"simulated offload time  : {elapsed * 1e6:.2f} us "
          f"(paper Fig. 9: ~6.1 us framework cost + kernel)")
    desc = runtime.get_node_descriptor(target)
    print(f"offload target          : {desc.name} ({desc.description})")

    runtime.free(a_target)
    runtime.free(b_target)
    runtime.shutdown()


if __name__ == "__main__":
    main()
