#!/usr/bin/env python3
"""A fully traced TCP remote offload, chaos included.

Demonstrates the telemetry subsystem end to end on the real offload
path: telemetry is enabled before the target server forks (so the child
inherits a live recorder), a fault-injecting proxy drops one invoke on
the wire, the resilience policy retries it, and the merged host+target
records are written as a Chrome ``trace_event`` file. Open the trace in
https://ui.perfetto.dev (or ``chrome://tracing``): the host row shows
``offload.serialize -> offload.enqueue -> offload.transport ->
offload.reply -> offload.deserialize``, the server row shows
``offload.execute``, and the injected fault plus the retry appear as
instant events between them.

Run::

    python examples/traced_offload.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.backends import TcpBackend, spawn_local_server
from repro.backends.faulty import FaultInjectingBackend
from repro.offload import Runtime, f2f, offloadable
from repro.offload.resilience import ResiliencePolicy
from repro.telemetry.export import write_chrome_trace
from repro.telemetry.report import render_report


@offloadable
def dot(n: int, seed: int) -> float:
    """An offloaded kernel with deterministic data."""
    rng = np.random.default_rng(seed)
    a, b = rng.random(n), rng.random(n)
    return float(np.dot(a, b))


def main() -> None:
    # Enable telemetry BEFORE forking the server: the child inherits the
    # enabled recorder, so target-side execute spans are captured too.
    recorder = telemetry.enable()
    process, address = spawn_local_server()
    tcp = TcpBackend(address, on_shutdown=lambda: process.join(timeout=5))

    # One scheduled drop (op #2) makes the chaos visible in the trace;
    # the resilience policy retries it, so the run still succeeds.
    backend = FaultInjectingBackend(tcp, schedule={2: "drop"})
    policy = ResiliencePolicy(max_retries=2, backoff_base=0.001, deadline=30.0)
    runtime = Runtime(backend, policy=policy)
    print(f"target server: pid={process.pid}, address={address[0]}:{address[1]}")

    results = [
        runtime.sync(1, f2f(dot, 50_000, seed), idempotent=True)
        for seed in range(5)
    ]
    print(f"5 offloads done, faults injected: {len(backend.fault_log)}, "
          f"retries: {runtime.stats()['retries']}")
    assert len(results) == 5

    # Pull the forked server's records over the wire and merge them into
    # the host timeline (perf_counter_ns is system-wide on Linux, so the
    # two processes share a clock).
    recorder.ingest(tcp.fetch_target_telemetry())
    runtime.shutdown()

    out = Path(tempfile.mkdtemp(prefix="repro-trace-")) / "traced_offload.json"
    write_chrome_trace(out, recorder, metadata={"example": "traced_offload"})
    print(f"trace written: {out}")
    print("open it in https://ui.perfetto.dev or chrome://tracing\n")
    print(render_report(recorder.records(), prefix=""))


if __name__ == "__main__":
    main()
