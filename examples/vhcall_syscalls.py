#!/usr/bin/env python3
"""Reverse offloading: VE system calls served by the Vector Host.

The VE runs no operating system (paper Sec. I-B): every system call of a
VE process is executed by its *pseudo process* on the host — the same
mechanism NEC exposes to applications as **VHcall**. This example runs a
small VE program that opens a channel back to the host: it queries its
pid, writes output, and calls a custom host-registered function, paying
the reverse-offload latency each time.

Run::

    python examples/vhcall_syscalls.py
"""

from repro.machine import AuroraMachine
from repro.veo import VeoProc
from repro.veos.loader import VeLibrary


def main() -> None:
    machine = AuroraMachine()
    proc = VeoProc(machine, 0)
    pseudo = proc.ve_process.pseudo

    # Register a custom VHcall handler on the host side.
    pseudo.register("host_lookup", lambda key: {"alpha": 1.5, "beta": 2.5}[key])

    lib = VeLibrary("libve_app")

    def ve_program():
        """Runs on the VE; every syscall hops to the VH and back."""
        sim = machine.sim
        t0 = sim.now
        pid = yield from pseudo.syscall("getpid")
        yield from pseudo.syscall("write", 1, f"hello from VE pid {pid}\n".encode())
        alpha = yield from pseudo.syscall("host_lookup", "alpha")
        beta = yield from pseudo.syscall("host_lookup", "beta")
        yield from pseudo.syscall(
            "write", 1, f"alpha+beta = {alpha + beta}\n".encode()
        )
        return {"pid": pid, "sum": alpha + beta, "elapsed": sim.now - t0}

    lib.add_server("ve_main", ve_program)
    handle = proc.load_library(lib)
    server = proc.start_server(handle.get_symbol("ve_main"))
    result = machine.sim.run(until=server)

    print("VE program finished.")
    print(f"  result           : pid={result['pid']}, sum={result['sum']}")
    print(f"  syscalls issued  : {pseudo.syscall_count}")
    print(f"  simulated time   : {result['elapsed'] * 1e6:.1f} us "
          f"({machine.timing.veos_syscall_latency * 1e6:.0f} us per reverse offload)")
    print("  captured VE stdout:")
    for _fd, data in pseudo.captured_output:
        print(f"    {data.decode().rstrip()}")
    proc.destroy()


if __name__ == "__main__":
    main()
