#!/usr/bin/env python3
"""2-D heat equation solved with offloaded Jacobi sweeps.

A complete scientific mini-application on the HAM-Offload API, in the
style of the domain-decomposition solvers the paper cites as HAM-Offload
users (Sec. II): the grid lives in VE memory across all iterations, the
host orchestrates pointer-swapped sweeps and only pulls the field back at
the end. The run reports how much of the simulated time the protocol
consumed vs. the kernels — the granularity economics of paper Sec. V-A.

Run::

    python examples/heat_equation.py [grid_n] [sweeps]
"""

import sys

import numpy as np

from repro.backends import DmaCommBackend
from repro.hw.roofline import VE_DEVICE
from repro.offload import Runtime, f2f
from repro.workloads import KERNELS, jacobi_sweep


def main(n: int = 64, sweeps: int = 200) -> None:
    kernel = KERNELS["jacobi"]
    backend = DmaCommBackend()
    backend.kernel_cost_fn = lambda functor: kernel.time_on(VE_DEVICE, n)
    runtime = Runtime(backend)
    sim = backend.sim

    # Initial condition: hot top edge, cold elsewhere.
    grid = np.zeros((n, n))
    grid[0, :] = 100.0

    g = runtime.allocate(1, n * n)
    s = runtime.allocate(1, n * n)
    runtime.put(grid.ravel(), g)
    runtime.put(grid.ravel(), s)

    t0 = sim.now
    src, dst = g, s
    residual = float("inf")
    done_sweeps = 0
    for sweep in range(sweeps):
        residual = runtime.sync(1, f2f(jacobi_sweep, src, dst, n))
        src, dst = dst, src
        done_sweeps = sweep + 1
        if residual < 1e-4:
            break
    elapsed = sim.now - t0

    field = np.zeros(n * n)
    runtime.get(src, field)
    field = field.reshape(n, n)
    runtime.shutdown()

    kernel_time = done_sweeps * kernel.time_on(VE_DEVICE, n)
    print(f"grid {n}x{n}, {done_sweeps} Jacobi sweeps on the simulated VE")
    print(f"  final residual      : {residual:.3e}")
    print(f"  center temperature  : {field[n // 2, n // 2]:.4f}")
    print(f"  simulated total     : {elapsed * 1e3:.3f} ms")
    print(f"  VE kernel share     : {kernel_time / elapsed:.0%} "
          f"({kernel.time_on(VE_DEVICE, n) * 1e6:.2f} us per sweep)")
    print(f"  protocol+memory     : {(elapsed - kernel_time) / elapsed:.0%} "
          "(the offload overhead the paper's DMA protocol minimizes)")
    # Physical sanity: heat flows downward from the hot edge.
    assert field[1, n // 2] > field[n // 2, n // 2] > field[-2, n // 2] >= 0.0
    print("  monotone temperature profile: OK")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
