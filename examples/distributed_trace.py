#!/usr/bin/env python3
"""Distributed causal tracing across two processes, with live /metrics.

The walkthrough for ``docs/observability.md``'s distributed-tracing
section: a TCP target server runs in a forked child, every ``offload()``
mints a W3C-style trace context that rides inside the version-2
active-message header, and the target's ``offload.execute`` spans come
back carrying the same ``trace_id`` — parented to the exact host span
that serialized the message. After clock alignment (ping-pong offset
estimation against the server) the merged Chrome trace is causally
monotone: serialize -> enqueue -> execute -> reply -> deserialize, in
order, across both pids.

While the runtime is up, a stdlib HTTP endpoint serves the live metrics
in Prometheus text format — the same counters and per-phase latency
summaries a real deployment would scrape.

Run::

    python examples/distributed_trace.py
"""

import tempfile
import urllib.request
from pathlib import Path

from repro.backends import TcpBackend, spawn_local_server
from repro.offload import api as offload
from repro.offload import f2f, offloadable
from repro.telemetry import recorder as telemetry
from repro.telemetry.distributed import critical_path, group_by_trace
from repro.telemetry.export import write_chrome_trace
from repro.telemetry.report import render_critical_paths


@offloadable
def fma(a: float, b: float, c: float) -> float:
    """A tiny offloaded kernel (the message cost dominates)."""
    return a * b + c


def main() -> None:
    # Telemetry must be live BEFORE the server forks so the child
    # inherits an enabled recorder; init() then starts the /metrics
    # endpoint on an ephemeral loopback port.
    telemetry.enable()
    process, address = spawn_local_server()
    tcp = TcpBackend(address, on_shutdown=lambda: process.join(timeout=5))
    offload.init(tcp, telemetry={"metrics_port": 0})
    sync = tcp.clock_sync
    print(f"target server: pid={process.pid}, "
          f"clock offset {sync.offset_ns} ns (rtt {sync.rtt_ns} ns)")

    results = [offload.sync(1, f2f(fma, float(i), 2.0, 1.0)) for i in range(4)]
    assert results == [i * 2.0 + 1.0 for i in range(4)]

    # Scrape the live endpoint exactly like Prometheus would.
    server = offload.metrics_server()
    assert server is not None
    body = urllib.request.urlopen(server.url + "/metrics").read().decode()
    interesting = [line for line in body.splitlines()
                   if line.startswith(("repro_future_settled_total",
                                       "repro_phase_offload_serialize"))]
    print(f"metrics endpoint: {server.url}/metrics "
          f"({len(body.splitlines())} lines), e.g.:")
    for line in interesting[:4]:
        print(f"  {line}")

    # finalize() drains the target's telemetry over OP_TELEMETRY (clock
    # aligned) before closing the transport, then stops /metrics.
    recorder = telemetry.get()
    offload.finalize()

    records = recorder.records()
    groups = group_by_trace(records)
    pids = {record.pid for group in groups.values() for record in group}
    print(f"\n{len(groups)} distributed traces across pids {sorted(pids)}")
    for trace_id, group in groups.items():
        spans = [r for r in group if r.kind == "span"]
        execs = [s for s in spans if s.name == "offload.execute"]
        assert execs, f"trace {trace_id} lost its target-side execute span"
        path = critical_path(group)
        starts = [segment["start_ns"] for segment in path]
        assert starts == sorted(starts), "merged timeline is not monotone"

    out = Path(tempfile.mkdtemp(prefix="repro-dist-")) / "distributed_trace.json"
    write_chrome_trace(out, recorder, metadata={"example": "distributed_trace"})
    print(f"merged trace written: {out}\n")
    print(render_critical_paths(records))


if __name__ == "__main__":
    main()
