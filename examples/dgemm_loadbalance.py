#!/usr/bin/env python3
"""Host + Vector Engine load balancing.

Reproduces the application pattern the paper cites (Sec. II, Malý et
al.): a queue of independent dense-matrix tasks is drained by host CPU
and coprocessor *together*, with HAM-Offload's low overhead making the
dynamic distribution profitable.

Three strategies are compared on the simulated platform, with VE kernel
durations from the roofline model and host durations from the host
roofline:

* host-only, offload-everything, and dynamic host+VE balancing.

Run::

    python examples/dgemm_loadbalance.py [n_tasks] [matrix_n]
"""

import sys

from repro.backends import DmaCommBackend
from repro.hw.roofline import VE_DEVICE, VH_DEVICE
from repro.offload import Runtime, f2f, offloadable
from repro.workloads import KERNELS, run_balanced


@offloadable
def dgemm_task(task_id: int, n: int) -> int:
    """One dense-matrix task; VE time is charged via the roofline model."""
    return task_id


def main(n_tasks: int = 24, matrix_n: int = 384) -> None:
    kernel = KERNELS["dgemm"]
    t_vh = kernel.time_on(VH_DEVICE, matrix_n)
    t_ve = kernel.time_on(VE_DEVICE, matrix_n)
    print(f"{n_tasks} dgemm tasks, n={matrix_n}")
    print(f"  host kernel time : {t_vh * 1e6:9.1f} us")
    print(f"  VE   kernel time : {t_ve * 1e6:9.1f} us (vectorised)")

    def make_runtime():
        backend = DmaCommBackend()
        backend.kernel_cost_fn = lambda functor: kernel.time_on(
            VE_DEVICE, functor.args[1]
        )
        return Runtime(backend), backend

    # Strategy 1: host only (no offloading).
    host_only = n_tasks * t_vh

    # Strategy 2: offload everything.
    runtime, backend = make_runtime()
    result_off = run_balanced(
        runtime,
        list(range(n_tasks)),
        make_functor=lambda t: f2f(dgemm_task, t, matrix_n),
        host_execute=lambda t: t,
        now=lambda: backend.sim.now,
        use_host=False,
    )
    runtime.shutdown()

    # Strategy 3: dynamic host + VE balancing.
    runtime, backend = make_runtime()
    result_bal = run_balanced(
        runtime,
        list(range(n_tasks)),
        make_functor=lambda t: f2f(dgemm_task, t, matrix_n),
        host_execute=lambda t: backend._advance(t_vh) or t,
        now=lambda: backend.sim.now,
    )
    runtime.shutdown()

    print()
    print(f"  host only          : {host_only * 1e3:9.3f} ms")
    print(f"  offload everything : {result_off.makespan * 1e3:9.3f} ms "
          f"(speedup {host_only / result_off.makespan:.2f}x)")
    print(f"  host + VE balanced : {result_bal.makespan * 1e3:9.3f} ms "
          f"(speedup {host_only / result_bal.makespan:.2f}x)")
    print(f"    task split       : host={result_bal.host_tasks}, "
          f"ve={sum(result_bal.target_tasks.values())}")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
