#!/usr/bin/env python3
"""Remote offloading across an InfiniBand cluster of Aurora nodes.

The paper closes with: "As soon as NEC's MPI will support heterogeneous
jobs ... HAM-Offload applications will also benefit from remote
offloading capabilities, again without changes in the application code."
This example runs exactly that scenario on the simulated substrate: one
host application drives VEs on three cluster nodes — the application loop
below cannot tell which targets are local and which sit behind the IB
fabric.

Run::

    python examples/remote_cluster_offload.py
"""

import numpy as np

from repro.backends import ClusterBackend
from repro.cluster import AuroraCluster
from repro.offload import Runtime, f2f, offloadable


@offloadable
def partial_sum(buf, lo: int, hi: int) -> float:
    """Reduce one slice of a distributed vector."""
    return float(np.asarray(buf)[lo:hi].sum())


def main() -> None:
    cluster = AuroraCluster(num_nodes=3, ves_per_node=1)
    runtime = Runtime(ClusterBackend(cluster))
    sim = cluster.sim

    print("cluster targets:")
    for node in runtime.targets():
        desc = runtime.get_node_descriptor(node)
        print(f"  node {node}: {desc.name:12} ({desc.description})")

    # Distribute a vector across every VE in the cluster and reduce it
    # in parallel — identical code for local and remote targets.
    n = 30_000
    vector = np.random.default_rng(7).random(n)
    chunks = np.array_split(vector, len(runtime.targets()))

    t0 = sim.now
    futures = []
    for node, chunk in zip(runtime.targets(), chunks):
        ptr = runtime.allocate(node, chunk.size)
        runtime.put(chunk, ptr)
        futures.append(runtime.async_(node, f2f(partial_sum, ptr, 0, chunk.size)))
    total = sum(future.get() for future in futures)
    elapsed = sim.now - t0

    print(f"\ndistributed sum : {total:.6f}")
    print(f"numpy reference : {vector.sum():.6f}")
    print(f"match           : {np.isclose(total, vector.sum())}")
    print(f"simulated time  : {elapsed * 1e6:.1f} us")
    stats = runtime.stats()["backend"]
    print(f"IB traffic      : {stats['ib_messages']} messages, "
          f"{stats['ib_bytes_sent']} bytes")
    runtime.shutdown()


if __name__ == "__main__":
    main()
