#!/usr/bin/env python3
"""Driving all eight Vector Engines of an A300-8 from one host process.

The paper's benchmark system (Fig. 3) carries eight VEs; its evaluation
offloads to one. This example scales the HAM-Offload runtime across every
VE of the simulated machine — including the four behind the *other*
socket's PCIe switch, which pay the UPI penalty — and load-balances a
bag of dgemm tasks over host + 8 VEs.

Run::

    python examples/multi_ve_cluster.py
"""

from repro.backends import DmaCommBackend
from repro.hw.roofline import VE_DEVICE, VH_DEVICE
from repro.machine import AuroraMachine
from repro.offload import Runtime, f2f, offloadable
from repro.workloads import KERNELS, run_balanced

N_TASKS = 64
MATRIX_N = 512


@offloadable
def cluster_dgemm(task_id: int, n: int) -> int:
    """One dense-matrix task (VE time charged via the roofline model)."""
    return task_id


def main() -> None:
    kernel = KERNELS["dgemm"]
    t_vh = kernel.time_on(VH_DEVICE, MATRIX_N)
    t_ve = kernel.time_on(VE_DEVICE, MATRIX_N)

    machine = AuroraMachine(num_ves=8, socket=0)
    backend = DmaCommBackend(machine)
    backend.kernel_cost_fn = lambda functor: kernel.time_on(VE_DEVICE, functor.args[1])
    runtime = Runtime(backend)

    print(f"machine: {machine.spec.name}, {machine.num_ves} VEs")
    print(machine.topology.describe())
    print(f"\n{N_TASKS} dgemm tasks, n={MATRIX_N} "
          f"(host {t_vh * 1e6:.0f} us, VE {t_ve * 1e6:.0f} us per task)\n")

    host_only = N_TASKS * t_vh
    result = run_balanced(
        runtime,
        list(range(N_TASKS)),
        make_functor=lambda t: f2f(cluster_dgemm, t, MATRIX_N),
        host_execute=lambda t: backend._advance(t_vh) or t,
        now=lambda: backend.sim.now,
    )
    runtime.shutdown()

    print(f"host only            : {host_only * 1e3:9.3f} ms")
    print(f"host + 8 VEs balanced: {result.makespan * 1e3:9.3f} ms "
          f"(speedup {host_only / result.makespan:.2f}x)")
    split = ", ".join(
        f"ve{node - 1}={count}" for node, count in sorted(result.target_tasks.items())
    )
    print(f"task split           : host={result.host_tasks}, {split}")
    print(f"\n(the VEs behind socket 1's PCIe switch pay the ~{machine.timing.upi_penalty * 1e6:.2f} us/"
          "transaction UPI penalty the paper measured — negligible at this "
          "granularity)")


if __name__ == "__main__":
    main()
