#!/usr/bin/env python3
"""Real remote offloading over TCP/IP.

The functional counterpart of the paper's generic TCP backend: a target
server process is forked, the host connects over a real socket, and the
same HAM-Offload application code used on the simulated VE runs against
it — active messages genuinely serialized, shipped and executed in
another process.

Run::

    python examples/tcp_remote_offload.py
"""

import time

import numpy as np

from repro.backends import TcpBackend, spawn_local_server
from repro.offload import Runtime, f2f, offloadable


@offloadable
def monte_carlo_pi(samples: int, seed: int) -> float:
    """Estimate pi on the target — a compute kernel with tiny arguments."""
    rng = np.random.default_rng(seed)
    xy = rng.random((samples, 2))
    return 4.0 * float((np.hypot(xy[:, 0], xy[:, 1]) <= 1.0).mean())


@offloadable
def normalize(buf) -> float:
    """Normalize a target-resident vector in place; returns its old norm."""
    view = np.asarray(buf)
    norm = float(np.sqrt(np.dot(view, view)))
    if norm:
        view /= norm
    return norm


def main() -> None:
    process, address = spawn_local_server()
    runtime = Runtime(TcpBackend(address, on_shutdown=lambda: process.join(timeout=5)))
    print(f"target server: pid={process.pid}, address={address[0]}:{address[1]}")

    # Fan out asynchronous offloads (they pipeline on the socket).
    t0 = time.perf_counter()
    futures = [
        runtime.async_(1, f2f(monte_carlo_pi, 200_000, seed)) for seed in range(8)
    ]
    estimates = [f.get() for f in futures]
    elapsed = time.perf_counter() - t0
    print(f"pi estimates (8 async offloads, {elapsed * 1e3:.1f} ms): "
          f"mean = {np.mean(estimates):.5f}")

    # Buffer management on the remote target.
    n = 4096
    data = np.random.default_rng(0).random(n)
    ptr = runtime.allocate(1, n)
    runtime.put(data, ptr)
    old_norm = runtime.sync(1, f2f(normalize, ptr))
    back = np.zeros(n)
    runtime.get(ptr, back)
    print(f"remote normalize: previous norm = {old_norm:.4f}, "
          f"new norm = {np.linalg.norm(back):.6f}")
    runtime.free(ptr)

    runtime.shutdown()
    print("server shut down cleanly:", not process.is_alive())


if __name__ == "__main__":
    main()
