#!/usr/bin/env python
"""Seeded randomized-fault soak against a live transport backend.

Drives a live offload stack — a forked target server over real sockets
(``--backend tcp``, default) or over shared-memory SPSC rings
(``--backend shm``) — through a :class:`FaultInjectingBackend` for a
wall-clock duration, checking the resilience layer's two core promises:

* **zero hangs** — every operation completes or raises within its
  deadline (a watchdog thread hard-exits if the loop stops ticking);
* **no unraised corruption** — every injected fault surfaces as a typed
  :class:`ReproError` subclass, and every data roundtrip that *didn't*
  raise must read back exactly what was written.

Exit status: 0 on a clean soak, 1 on unraised corruption or an untyped
error, 2 on a hang (watchdog). Same seed, same schedule: failures
reproduce.

A second mode, ``--noisy-tenant``, soaks the QoS layer instead of the
fault injector: one best-effort tenant floods a QoS-enabled runtime
while a premium tenant keeps a modest request rate, and the run fails
unless the premium tenant's p99 latency and SLO hold while the shed /
rejection counters show the noisy tenant absorbed the overload.

A third mode, ``--async``, runs the fault soak from a single asyncio
event loop: every offload is *awaited* through ``Future.__await__``
rather than collected with a blocking ``get``, proving the awaitable
surface holds the same promises (typed errors, no hangs, no unraised
corruption) under the same fault schedule. Composes with ``--backend``.

A fourth mode, ``--anomaly``, validates the TSDB anomaly pipeline end
to end: a three-target fan-out stack gets a seeded mid-run delay burst
injected into one target, and the run fails unless the burst raises a
``telemetry.anomaly`` event on that target's reply-latency series, a
subsequent straggling offload hedges *away* from the anomalous target,
and the flight recorder dumped a ``telemetry_anomaly`` crash bundle
whose ``timeseries.json`` covers the incident.

Usage::

    PYTHONPATH=src python scripts/chaos_smoke.py --seed 7 --duration 30
    PYTHONPATH=src python scripts/chaos_smoke.py --backend shm --duration 30
    PYTHONPATH=src python scripts/chaos_smoke.py --async --duration 20
    PYTHONPATH=src python scripts/chaos_smoke.py --noisy-tenant --duration 20
    PYTHONPATH=src python scripts/chaos_smoke.py --anomaly --crash-dir /tmp/cb
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time
import traceback
import warnings
from collections import Counter

import numpy as np

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _path in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.backends import (
    FaultInjectingBackend,
    ShmBackend,
    TcpBackend,
    spawn_local_server,
    spawn_shm_server,
)
from repro.errors import ReproError
from repro.ham import f2f
from repro.offload import ResiliencePolicy, Runtime

from tests import apps  # the offloadable catalog shared with the fork


def build_stack(seed: int, args: argparse.Namespace):
    """Spawn a fresh server + faulty transport backend + resilient runtime."""
    if args.backend == "shm":
        process, segment = spawn_shm_server(
            startup_timeout=args.deadline * 10
        )
        transport = ShmBackend(
            segment,
            alive_fn=process.is_alive,
            on_shutdown=lambda: process.join(timeout=5),
        )
    else:
        process, address = spawn_local_server(
            startup_timeout=args.deadline * 10
        )
        transport = TcpBackend(
            address, on_shutdown=lambda: process.join(timeout=5)
        )
    faulty = FaultInjectingBackend(
        transport,
        seed=seed,
        drop_rate=args.drop,
        delay_rate=args.delay,
        disconnect_rate=args.disconnect,
        corrupt_rate=args.corrupt,
        delay_range=(0.0, min(0.05, args.deadline / 4)),
    )
    policy = ResiliencePolicy(
        deadline=args.deadline,
        max_retries=2,
        backoff_base=0.01,
        backoff_max=0.1,
        seed=seed,
        down_after=5,
        probe_interval=0.2,
    )
    runtime = Runtime(faulty, policy=policy)
    return process, transport, faulty, runtime


def teardown_stack(process, runtime) -> None:
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ResourceWarning)  # chaos leaks buffers
        try:
            runtime.shutdown()
        except ReproError:
            pass
    if process.is_alive():
        process.terminate()
        process.join(timeout=5)


def run_noisy_tenant(args: argparse.Namespace) -> int:
    """Overload soak: a flooding tenant must not hurt the premium one.

    Stack: live TCP server + QoS runtime with a small fair window and
    queue. Several best-effort worker threads flood it; one premium
    thread keeps a steady, modest rate. Pass criteria:

    * no ``telemetry.slo_breach`` event for the premium tenant;
    * premium p99 latency under ``--premium-p99`` seconds;
    * the noisy tenant visibly absorbed the overload (load-shed or
      admission-rejected at least once) — otherwise the run proved
      nothing about fairness.
    """
    from repro.errors import AdmissionRejectedError
    from repro.offload import (
        BEST_EFFORT,
        PREMIUM,
        QoSConfig,
        TenantPolicy,
    )
    from repro.telemetry import recorder as telemetry
    from repro.telemetry.slo import SLO, SLOMonitor

    recorder = telemetry.enable()
    recorder.slo = SLOMonitor(
        (
            SLO(name="qos-availability", phase="offload",
                threshold_ns=None, objective=0.99),
            SLO(name="qos-latency", phase="offload",
                threshold_ns=int(args.premium_p99 * 1e9), objective=0.95),
        ),
        fast_window=20,
        slow_window=60,
        min_samples=10,
        emit=recorder.force_event,
        metrics=recorder.metrics,
    )

    config = QoSConfig(
        tenants={
            "premium": TenantPolicy(weight=4.0, priority=PREMIUM),
            # The noisy tenant is also rate limited, so overload is
            # absorbed by *both* mechanisms: admission rejections at the
            # gate and load shedding in the queue.
            "noisy": TenantPolicy(
                weight=1.0, priority=BEST_EFFORT, rate=400.0, burst=50.0
            ),
        },
        window=4,
        max_queue_depth=8,
    )
    process, address = spawn_local_server(startup_timeout=30.0)
    tcp = TcpBackend(address, on_shutdown=lambda: process.join(timeout=5))
    runtime = Runtime(tcp, qos=config)

    stop = threading.Event()
    premium_latencies: list[float] = []
    noisy_outcomes: Counter[str] = Counter()
    failures: list[str] = []

    def noisy_worker() -> None:
        functor = f2f(apps.sleep_then, 0.002, 0)
        while not stop.is_set():
            try:
                runtime.sync(1, functor, tenant="noisy", timeout=args.deadline)
                noisy_outcomes["ok"] += 1
            except AdmissionRejectedError as exc:
                noisy_outcomes[type(exc).__name__] += 1
                # Misbehaving clients retry fast, but not busy-spin
                # fast; keeps the soak an overload test, not a CPU burn.
                time.sleep(0.001)
            except ReproError as exc:
                noisy_outcomes[type(exc).__name__] += 1

    def premium_worker() -> None:
        functor = f2f(apps.sleep_then, 0.002, 0)
        while not stop.is_set():
            start = time.monotonic()
            try:
                runtime.sync(1, functor, tenant="premium",
                             timeout=args.deadline)
            except ReproError as exc:
                failures.append(type(exc).__name__)
            else:
                premium_latencies.append(time.monotonic() - start)
            # A paying customer's steady trickle, not a flood.
            time.sleep(0.01)

    workers = [threading.Thread(target=noisy_worker, daemon=True)
               for _ in range(8)]
    workers.append(threading.Thread(target=premium_worker, daemon=True))
    for worker in workers:
        worker.start()
    time.sleep(args.duration)
    stop.set()
    for worker in workers:
        worker.join(timeout=args.deadline * 4)
    stats = runtime.stats()
    teardown_stack(process, runtime)

    qos = stats.get("qos", {})
    shed = sum(entry.get("shed", 0)
               for entry in qos.get("window", {}).get("tenants", {}).values())
    rejected = qos.get("admission", {}).get("noisy", {}).get("rejected", 0)
    premium_breaches = [
        r for r in recorder.records()
        if r.kind == "event" and r.name == "telemetry.slo_breach"
        and r.attrs.get("tenant") == "premium"
    ]
    p99 = (
        float(np.percentile(premium_latencies, 99))
        if premium_latencies else float("inf")
    )

    print(
        f"noisy-tenant soak: premium ops={len(premium_latencies)} "
        f"p99={p99 * 1e3:.1f} ms, premium failures={len(failures)}, "
        f"noisy outcomes={dict(noisy_outcomes)}, "
        f"shed={shed}, noisy rejected={rejected}", flush=True,
    )
    for name, state in recorder.slo.snapshot().items():
        print(
            f"slo {name}: {state['bad']}/{state['total']} bad, "
            f"breached={state['breached']}", flush=True,
        )

    if not premium_latencies:
        print("NOISY-TENANT FAIL: premium tenant completed no operations")
        return 1
    if premium_breaches:
        print(
            f"NOISY-TENANT FAIL: {len(premium_breaches)} slo_breach "
            "event(s) for the premium tenant under best-effort flood"
        )
        return 1
    if p99 > args.premium_p99:
        print(
            f"NOISY-TENANT FAIL: premium p99 {p99 * 1e3:.1f} ms exceeds "
            f"the {args.premium_p99 * 1e3:.0f} ms bound"
        )
        return 1
    if shed + rejected == 0:
        print(
            "NOISY-TENANT FAIL: no load was shed or rejected — the flood "
            "never saturated the stack, the run proved nothing"
        )
        return 1
    print("noisy-tenant soak OK: premium SLO held, overload absorbed "
          "by the noisy tenant", flush=True)
    return 0


def run_anomaly(args: argparse.Namespace) -> int:
    """Straggler → anomaly → hedge-away → crash bundle, end to end.

    Stack: three forked TCP targets behind one :class:`FanoutBackend`,
    with target 2's transport wrapped in a :class:`FaultInjectingBackend`
    whose *schedule* injects a deterministic burst of long delays midway
    through the run (no random rates — same seed, same incident). The
    TSDB samples fast (50 ms) so the incident spans many ticks.

    Pass criteria:

    * the burst drives the median/MAD detector into a
      ``telemetry.anomaly`` event on ``target.reply.2.p95``;
    * while the anomaly is active, a straggling idempotent offload to
      target 1 hedges to a duplicate and the hedge *avoids* target 2
      (``avoided`` names it, the secondary is a different node);
    * the anomaly dumped a ``telemetry_anomaly`` crash bundle whose
      ``timeseries.json`` contains the anomalous series.
    """
    import tempfile

    from repro.backends import FanoutBackend
    from repro.offload import HedgePolicy
    from repro.telemetry import flightrecorder
    from repro.telemetry import recorder as telemetry
    from repro.telemetry.tsdb import AnomalyDetector, install_tsdb

    crash_dir = args.crash_dir or tempfile.mkdtemp(prefix="chaos-anomaly-")
    flightrecorder.configure(crash_dir)
    recorder = telemetry.enable()
    tsdb = install_tsdb(recorder, interval=0.05)
    # Watch the per-target reply-latency series only: the injected
    # straggle manifests there deterministically, while the in-flight
    # gauges flicker 0/1 with the sync loop and would add noise.
    tsdb.detector = AnomalyDetector(
        tsdb.store, recorder.metrics, prefixes=("target.reply.",),
        emit=recorder.force_event,
    )

    base_per_node = 40  # clean warmup invokes per target
    burst_ops = 6       # scheduled long-delay invokes on target 2
    servers = [spawn_local_server(startup_timeout=30.0, workers=2)
               for _ in range(3)]
    inners = [
        TcpBackend(address, on_shutdown=lambda p=proc: p.join(timeout=5))
        for proc, address in servers
    ]
    # Target 2's op index counts only its own invokes, so the burst
    # window is exactly ops [base_per_node, base_per_node + burst_ops).
    inners[1] = FaultInjectingBackend(
        inners[1],
        seed=args.seed,
        drop_rate=0.0, delay_rate=0.0, disconnect_rate=0.0, corrupt_rate=0.0,
        delay_range=(0.25, 0.4),
        schedule={base_per_node + i: "delay" for i in range(burst_ops)},
    )
    policy = ResiliencePolicy(
        deadline=5.0, max_retries=2, backoff_base=0.01, backoff_max=0.1,
        seed=args.seed,
        hedge=HedgePolicy(
            percentile=95.0, multiplier=1.0, min_wait=0.05, min_samples=10,
        ),
    )
    runtime = Runtime(FanoutBackend(inners), policy=policy)
    tsdb.attach_runtime(runtime)
    tsdb.start()

    code = 1
    try:
        # Phase A — clean baseline: steady fast traffic to every target
        # builds flat target.reply.<n>.p95 series and the sleep_then
        # profile the hedge trigger reads.
        for i in range(base_per_node):
            for node in (1, 2, 3):
                runtime.sync(node, f2f(apps.sleep_then, 0.002, i),
                             timeout=5.0)
        # Let the sampler accumulate a long *flat* stretch of the p95
        # series: the median/MAD window must stay anchored at the
        # baseline through the whole burst-plus-hedge window, or the
        # anomaly self-recovers before the hedge phase can observe it.
        time.sleep(8.0)

        # Phase B — the injected straggler: every scheduled invoke on
        # target 2 stalls 0.25-0.4 s in the transport, dragging its
        # reply p95 far above the flat baseline. A different kernel
        # (add) keeps the hedge kernel's profile clean.
        for i in range(burst_ops):
            runtime.sync(2, f2f(apps.add, i, i), timeout=5.0)
        deadline = time.monotonic() + 5.0
        while (2 not in tsdb.detector.anomalous_nodes()
               and time.monotonic() < deadline):
            time.sleep(0.05)
        if 2 not in tsdb.detector.anomalous_nodes():
            print(
                "ANOMALY FAIL: delay burst on target 2 never flagged it — "
                f"active anomalies: {tsdb.detector.anomalies()}"
            )
            return 1

        # Phase C — the hedge: a genuinely slow idempotent offload to
        # target 1 waits past the trigger (min_wait 50 ms vs the ~ms
        # profile), so the runtime duplicates it; the advisory reorder
        # must route the duplicate around the anomalous target 2.
        hedged = None
        for attempt in range(5):
            runtime.sync(1, f2f(apps.sleep_then, 0.3, attempt),
                         idempotent=True, timeout=5.0)
            hedges = [
                r for r in recorder.records()
                if r.kind == "event" and r.name == "resilience.hedge"
            ]
            if hedges:
                hedged = hedges[-1]
                break
        if hedged is None:
            print("ANOMALY FAIL: no hedge fired for the straggling offload")
            return 1
        code = 0
    finally:
        tsdb.stop()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ResourceWarning)
            runtime.shutdown()
        for process, _address in servers:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
    if code != 0:
        return code

    anomaly_events = [
        r for r in recorder.records()
        if r.kind == "event" and r.name == "telemetry.anomaly"
        and str(r.attrs.get("series", "")).startswith("target.reply.2")
    ]
    secondary = hedged.attrs.get("secondary")
    avoided = list(hedged.attrs.get("avoided") or [])
    bundles = [
        b for b in flightrecorder.find_bundles(crash_dir)
        if "telemetry_anomaly" in b.name
    ]

    print(
        f"anomaly run: {len(anomaly_events)} anomaly event(s) on target 2, "
        f"hedge secondary={secondary} avoided={avoided}, "
        f"{len(bundles)} telemetry_anomaly bundle(s) in {crash_dir}",
        flush=True,
    )
    if not anomaly_events:
        print("ANOMALY FAIL: no telemetry.anomaly event on target.reply.2.*")
        return 1
    if secondary == 2 or 2 not in avoided:
        print(
            "ANOMALY FAIL: the hedge did not route away from the anomalous "
            f"target (secondary={secondary}, avoided={avoided})"
        )
        return 1
    if not bundles:
        print(f"ANOMALY FAIL: no telemetry_anomaly crash bundle in {crash_dir}")
        return 1
    try:
        bundle = flightrecorder.load_bundle(bundles[-1])
    except ValueError as exc:
        print(f"ANOMALY FAIL: unreadable crash bundle: {exc}")
        return 1
    series = bundle.get("timeseries") or {}
    if "target.reply.2.p95" not in series:
        print(
            "ANOMALY FAIL: crash bundle timeseries.json misses the "
            f"anomalous series (has {sorted(series)[:8]}...)"
        )
        return 1
    print(
        "anomaly chaos OK: straggler flagged, hedge avoided it, bundle "
        f"captured {len(series)} series", flush=True,
    )
    return 0


def run_async_soak(args: argparse.Namespace) -> int:
    """Fault soak driven entirely from one asyncio event loop.

    Same live stack as the default mode, but no blocking ``get``
    anywhere: each wave posts a handful of offloads and awaits them
    concurrently through ``Future.__await__``. The awaited path has no
    retry loop to hide a dropped frame behind, so every await carries a
    bounded timeout; a timed-out wave (or a dead transport) makes the
    supervisor recycle the whole stack, exactly like the sync loop does
    when the transport is poisoned — leaked window slots from abandoned
    awaits cannot accumulate across epochs.

    Pass criteria mirror the sync soak: zero hangs (watchdog), zero
    unraised corruption, every fault surfaced as a typed
    :class:`ReproError` (or a counted await timeout).
    """
    import asyncio

    last_tick = [time.monotonic()]
    hang_budget = args.deadline * 10 + 10.0

    def watchdog() -> None:
        while True:
            time.sleep(1.0)
            stall = time.monotonic() - last_tick[0]
            if stall > hang_budget:
                print(
                    f"WATCHDOG: async soak stalled for {stall:.1f} s — HANG",
                    flush=True,
                )
                os._exit(2)

    threading.Thread(target=watchdog, daemon=True).start()

    rng = np.random.default_rng(args.seed)
    surfaced: Counter[str] = Counter()
    stack = build_stack(args.seed, args)
    epoch = args.seed
    respawns = 0
    ops = 0

    async def settle(future):
        return await future

    async def soak() -> int:
        nonlocal stack, epoch, respawns, ops
        deadline_end = time.monotonic() + args.duration
        while time.monotonic() < deadline_end:
            last_tick[0] = time.monotonic()
            process, transport, faulty, runtime = stack
            width = 4 + int(rng.integers(5))
            pairs = [
                (int(rng.integers(1000)), int(rng.integers(1000)))
                for _ in range(width)
            ]
            futures = []
            try:
                for a, b in pairs:
                    futures.append(runtime.async_(1, f2f(apps.add, a, b)))
            except ReproError as exc:
                # Posting itself can raise under faults (open circuit,
                # poisoned transport); the posted prefix still settles.
                # Unlike runtime.sync there is no retry loop backing
                # off for us, so breathe before the next wave rather
                # than busy-spinning against an open circuit.
                surfaced[type(exc).__name__] += 1
                await asyncio.sleep(0.05)
            outcomes = await asyncio.gather(
                *(
                    asyncio.wait_for(settle(f), timeout=args.deadline * 4)
                    for f in futures
                ),
                return_exceptions=True,
            )
            ops += len(futures)
            timed_out = False
            wave_errors = False
            for (a, b), outcome in zip(pairs, outcomes):
                if isinstance(outcome, asyncio.TimeoutError):
                    surfaced["AwaitTimeout"] += 1
                    timed_out = True
                elif isinstance(outcome, ReproError):
                    surfaced[type(outcome).__name__] += 1
                    wave_errors = True
                elif isinstance(outcome, BaseException):
                    print("UNTYPED ERROR escaped the awaited path:")
                    traceback.print_exception(
                        type(outcome), outcome, outcome.__traceback__
                    )
                    return 1
                elif outcome != a + b:
                    print(
                        f"UNRAISED CORRUPTION: awaited add({a},{b}) "
                        f"-> {outcome}"
                    )
                    return 1
            if timed_out or not transport._alive:
                teardown_stack(process, runtime)
                epoch += 1
                respawns += 1
                stack = build_stack(epoch, args)
            elif wave_errors:
                faulty.reconnect()
        return 0

    try:
        code = asyncio.run(soak())
    finally:
        process, _transport, _faulty, runtime = stack
        teardown_stack(process, runtime)

    if code == 0:
        print(
            f"async chaos smoke OK: {ops} awaited ops in "
            f"{args.duration:.0f} s on {args.backend}, {respawns} respawns, "
            f"surfaced errors: {dict(surfaced) or 'none'}"
        )
    return code


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--backend",
        choices=("tcp", "shm"),
        default="tcp",
        help="live transport under the fault injector: tcp sockets or "
        "the shared-memory SPSC-ring backend (default tcp)",
    )
    parser.add_argument("--duration", type=float, default=30.0, help="soak seconds")
    parser.add_argument("--deadline", type=float, default=1.0, help="per-op deadline")
    parser.add_argument("--drop", type=float, default=0.05)
    parser.add_argument("--delay", type=float, default=0.05)
    parser.add_argument("--disconnect", type=float, default=0.02)
    parser.add_argument("--corrupt", type=float, default=0.03)
    parser.add_argument(
        "--trace-out",
        default=None,
        help="write a Chrome trace of the soak (spans, faults, retries) here",
    )
    parser.add_argument(
        "--assert-slo-breach",
        action="store_true",
        help="fail (exit 1) unless the injected faults drive the SLO "
        "burn-rate monitor into at least one telemetry.slo_breach event",
    )
    parser.add_argument(
        "--crash-dir",
        default=None,
        help="arm the flight recorder to dump crash bundles here, "
        "SIGKILL the target server once mid-soak (a real injected peer "
        "death, on top of the fault schedule), and fail (exit 1) unless "
        "the death left a readable crash bundle behind",
    )
    parser.add_argument(
        "--async",
        dest="async_soak",
        action="store_true",
        help="drive the fault soak from one asyncio event loop: every "
        "offload awaited through Future.__await__ instead of a blocking "
        "get (composes with --backend tcp|shm)",
    )
    parser.add_argument(
        "--anomaly",
        action="store_true",
        help="TSDB anomaly acceptance instead of a soak: a scheduled "
        "delay burst on one fan-out target must raise a "
        "telemetry.anomaly event, make a straggler's hedge avoid that "
        "target, and dump a telemetry_anomaly crash bundle with "
        "timeseries.json (see run_anomaly; composes with --crash-dir)",
    )
    parser.add_argument(
        "--noisy-tenant",
        action="store_true",
        help="overload soak instead of fault injection: a best-effort "
        "tenant floods a QoS runtime and the premium tenant's SLO must "
        "hold (see run_noisy_tenant)",
    )
    parser.add_argument(
        "--premium-p99",
        type=float,
        default=0.25,
        help="premium-tenant p99 latency bound in seconds "
        "(--noisy-tenant mode)",
    )
    args = parser.parse_args()

    if args.anomaly:
        return run_anomaly(args)
    if args.noisy_tenant:
        return run_noisy_tenant(args)
    if args.async_soak:
        return run_async_soak(args)

    if args.crash_dir:
        from repro.telemetry import flightrecorder

        flightrecorder.configure(args.crash_dir)

    recorder = None
    if args.trace_out or args.assert_slo_breach:
        from repro.telemetry import recorder as telemetry
        from repro.telemetry.slo import SLO, SLOMonitor

        recorder = telemetry.enable()
        # Chaos-tuned objectives: tight enough that the configured fault
        # rates must breach within a short soak, loose enough that a
        # clean run would not. Completions feed these through
        # complete_offload; breaches land in the ring via force_event
        # (bypassing any sampling gate) and flip /healthz to degraded.
        recorder.slo = SLOMonitor(
            (
                SLO(name="chaos-availability", phase="offload",
                    threshold_ns=None, objective=0.999),
                SLO(name="chaos-latency", phase="offload",
                    threshold_ns=int(0.03 * 1e9), objective=0.99),
            ),
            fast_window=20,
            slow_window=60,
            min_samples=10,
            emit=recorder.force_event,
            metrics=recorder.metrics,
        )

    last_tick = [time.monotonic()]
    hang_budget = args.deadline * 10 + 10.0

    def watchdog() -> None:
        while True:
            time.sleep(1.0)
            stall = time.monotonic() - last_tick[0]
            if stall > hang_budget:
                print(f"WATCHDOG: soak loop stalled for {stall:.1f} s — HANG", flush=True)
                os._exit(2)

    threading.Thread(target=watchdog, daemon=True).start()

    rng = np.random.default_rng(args.seed)
    process, transport, faulty, runtime = build_stack(args.seed, args)
    deadline_end = time.monotonic() + args.duration
    ops = 0
    respawns = 0
    surfaced: Counter[str] = Counter()
    epoch = args.seed
    target_killed = False

    try:
        while time.monotonic() < deadline_end:
            last_tick[0] = time.monotonic()
            if (
                args.crash_dir
                and not target_killed
                and time.monotonic() > deadline_end - args.duration / 2
            ):
                # Injected peer death: SIGKILL the live target mid-soak.
                # The client's receiver must detect the death, fail the
                # pending futures and dump a flight-recorder bundle; the
                # respawn path below then recycles the stack as usual.
                process.kill()
                target_killed = True
            step = ops % 7
            ops += 1
            try:
                if step in (0, 1, 2, 3):
                    a, b = int(rng.integers(1000)), int(rng.integers(1000))
                    result = runtime.sync(1, f2f(apps.add, a, b), idempotent=True)
                    if result != a + b:
                        print(f"UNRAISED CORRUPTION: add({a},{b}) -> {result}")
                        return 1
                elif step == 4:
                    data = rng.random(256)
                    ptr = runtime.allocate(1, data.size)
                    try:
                        runtime.put(data, ptr)
                        back = np.empty_like(data)
                        runtime.get(ptr, back)
                        if not np.array_equal(back, data):
                            print("UNRAISED CORRUPTION: put/get roundtrip mismatch")
                            return 1
                    finally:
                        try:
                            runtime.free(ptr)
                        except ReproError as exc:
                            surfaced[type(exc).__name__] += 1
                elif step == 5:
                    futures = [
                        runtime.async_(1, f2f(apps.add, i, 1)) for i in range(4)
                    ]
                    for i, future in enumerate(futures):
                        if future.get(timeout=args.deadline) != i + 1:
                            print("UNRAISED CORRUPTION: async pipeline mismatch")
                            return 1
                else:
                    runtime.heartbeat()
            except ReproError as exc:
                surfaced[type(exc).__name__] += 1
                faulty.reconnect()
                if not transport._alive:
                    # The transport was poisoned (or the server died):
                    # recycle the whole stack, like a supervisor would.
                    teardown_stack(process, runtime)
                    epoch += 1
                    respawns += 1
                    process, transport, faulty, runtime = build_stack(epoch, args)
            except Exception:
                print("UNTYPED ERROR escaped the resilience layer:")
                traceback.print_exc()
                return 1
    finally:
        teardown_stack(process, runtime)
        slo_breaches = 0
        if recorder is not None:
            slo_breaches = sum(
                1 for r in recorder.records()
                if r.kind == "event" and r.name == "telemetry.slo_breach"
            )
            if recorder.slo is not None:
                for name, state in recorder.slo.snapshot().items():
                    print(
                        f"slo {name}: {state['bad']}/{state['total']} bad, "
                        f"fast burn {state['fast_burn']:.1f}, "
                        f"slow burn {state['slow_burn']:.1f}, "
                        f"breached={state['breached']}", flush=True,
                    )
                health = ("degraded" if recorder.slo.breached() else "ok")
                print(
                    f"slo_breach events: {slo_breaches}, "
                    f"final health: {health}", flush=True,
                )
            if args.trace_out:
                from repro.telemetry.export import write_chrome_trace

                write_chrome_trace(args.trace_out, recorder)
                print(f"chaos trace written: {args.trace_out}", flush=True)

    if args.crash_dir:
        from repro.telemetry import flightrecorder

        bundles = flightrecorder.find_bundles(args.crash_dir)
        deaths = [b for b in bundles if "peer_death" in b.name]
        if not deaths:
            print(
                "FLIGHT RECORDER SILENT: the SIGKILLed target left no "
                "peer_death crash bundle in " + args.crash_dir
            )
            return 1
        try:
            latest = flightrecorder.load_bundle(deaths[-1])
        except ValueError as exc:
            print(f"FLIGHT RECORDER CORRUPT: unreadable bundle: {exc}")
            return 1
        print(
            f"crash bundles: {len(bundles)} "
            f"({len(deaths)} peer_death), latest death captured "
            f"{latest['manifest'].get('events')} events", flush=True,
        )

    if args.assert_slo_breach and slo_breaches == 0:
        print(
            "SLO MONITOR SILENT: injected faults raised no "
            "telemetry.slo_breach event"
        )
        return 1

    print(
        f"chaos smoke OK: {ops} ops in {args.duration:.0f} s, "
        f"{faulty.stats()['faults_injected']} faults in final epoch, "
        f"{respawns} respawns, surfaced errors: {dict(surfaced) or 'none'}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
