#!/usr/bin/env python
"""Seeded randomized-fault soak against the TCP backend.

Drives a live TCP offload stack (forked target server, real sockets)
through a :class:`FaultInjectingBackend` for a wall-clock duration,
checking the resilience layer's two core promises:

* **zero hangs** — every operation completes or raises within its
  deadline (a watchdog thread hard-exits if the loop stops ticking);
* **no unraised corruption** — every injected fault surfaces as a typed
  :class:`ReproError` subclass, and every data roundtrip that *didn't*
  raise must read back exactly what was written.

Exit status: 0 on a clean soak, 1 on unraised corruption or an untyped
error, 2 on a hang (watchdog). Same seed, same schedule: failures
reproduce.

Usage::

    PYTHONPATH=src python scripts/chaos_smoke.py --seed 7 --duration 30
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time
import traceback
import warnings
from collections import Counter

import numpy as np

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _path in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.backends import FaultInjectingBackend, TcpBackend, spawn_local_server
from repro.errors import ReproError
from repro.ham import f2f
from repro.offload import ResiliencePolicy, Runtime

from tests import apps  # the offloadable catalog shared with the fork


def build_stack(seed: int, args: argparse.Namespace):
    """Spawn a fresh server + faulty TCP backend + resilient runtime."""
    process, address = spawn_local_server(startup_timeout=args.deadline * 10)
    tcp = TcpBackend(address, on_shutdown=lambda: process.join(timeout=5))
    faulty = FaultInjectingBackend(
        tcp,
        seed=seed,
        drop_rate=args.drop,
        delay_rate=args.delay,
        disconnect_rate=args.disconnect,
        corrupt_rate=args.corrupt,
        delay_range=(0.0, min(0.05, args.deadline / 4)),
    )
    policy = ResiliencePolicy(
        deadline=args.deadline,
        max_retries=2,
        backoff_base=0.01,
        backoff_max=0.1,
        seed=seed,
        down_after=5,
        probe_interval=0.2,
    )
    runtime = Runtime(faulty, policy=policy)
    return process, tcp, faulty, runtime


def teardown_stack(process, runtime) -> None:
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ResourceWarning)  # chaos leaks buffers
        try:
            runtime.shutdown()
        except ReproError:
            pass
    if process.is_alive():
        process.terminate()
        process.join(timeout=5)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--duration", type=float, default=30.0, help="soak seconds")
    parser.add_argument("--deadline", type=float, default=1.0, help="per-op deadline")
    parser.add_argument("--drop", type=float, default=0.05)
    parser.add_argument("--delay", type=float, default=0.05)
    parser.add_argument("--disconnect", type=float, default=0.02)
    parser.add_argument("--corrupt", type=float, default=0.03)
    parser.add_argument(
        "--trace-out",
        default=None,
        help="write a Chrome trace of the soak (spans, faults, retries) here",
    )
    parser.add_argument(
        "--assert-slo-breach",
        action="store_true",
        help="fail (exit 1) unless the injected faults drive the SLO "
        "burn-rate monitor into at least one telemetry.slo_breach event",
    )
    args = parser.parse_args()

    recorder = None
    if args.trace_out or args.assert_slo_breach:
        from repro.telemetry import recorder as telemetry
        from repro.telemetry.slo import SLO, SLOMonitor

        recorder = telemetry.enable()
        # Chaos-tuned objectives: tight enough that the configured fault
        # rates must breach within a short soak, loose enough that a
        # clean run would not. Completions feed these through
        # complete_offload; breaches land in the ring via force_event
        # (bypassing any sampling gate) and flip /healthz to degraded.
        recorder.slo = SLOMonitor(
            (
                SLO(name="chaos-availability", phase="offload",
                    threshold_ns=None, objective=0.999),
                SLO(name="chaos-latency", phase="offload",
                    threshold_ns=int(0.03 * 1e9), objective=0.99),
            ),
            fast_window=20,
            slow_window=60,
            min_samples=10,
            emit=recorder.force_event,
            metrics=recorder.metrics,
        )

    last_tick = [time.monotonic()]
    hang_budget = args.deadline * 10 + 10.0

    def watchdog() -> None:
        while True:
            time.sleep(1.0)
            stall = time.monotonic() - last_tick[0]
            if stall > hang_budget:
                print(f"WATCHDOG: soak loop stalled for {stall:.1f} s — HANG", flush=True)
                os._exit(2)

    threading.Thread(target=watchdog, daemon=True).start()

    rng = np.random.default_rng(args.seed)
    process, tcp, faulty, runtime = build_stack(args.seed, args)
    deadline_end = time.monotonic() + args.duration
    ops = 0
    respawns = 0
    surfaced: Counter[str] = Counter()
    epoch = args.seed

    try:
        while time.monotonic() < deadline_end:
            last_tick[0] = time.monotonic()
            step = ops % 7
            ops += 1
            try:
                if step in (0, 1, 2, 3):
                    a, b = int(rng.integers(1000)), int(rng.integers(1000))
                    result = runtime.sync(1, f2f(apps.add, a, b), idempotent=True)
                    if result != a + b:
                        print(f"UNRAISED CORRUPTION: add({a},{b}) -> {result}")
                        return 1
                elif step == 4:
                    data = rng.random(256)
                    ptr = runtime.allocate(1, data.size)
                    try:
                        runtime.put(data, ptr)
                        back = np.empty_like(data)
                        runtime.get(ptr, back)
                        if not np.array_equal(back, data):
                            print("UNRAISED CORRUPTION: put/get roundtrip mismatch")
                            return 1
                    finally:
                        try:
                            runtime.free(ptr)
                        except ReproError as exc:
                            surfaced[type(exc).__name__] += 1
                elif step == 5:
                    futures = [
                        runtime.async_(1, f2f(apps.add, i, 1)) for i in range(4)
                    ]
                    for i, future in enumerate(futures):
                        if future.get(timeout=args.deadline) != i + 1:
                            print("UNRAISED CORRUPTION: async pipeline mismatch")
                            return 1
                else:
                    runtime.heartbeat()
            except ReproError as exc:
                surfaced[type(exc).__name__] += 1
                faulty.reconnect()
                if not tcp._alive:
                    # The transport was poisoned (or the server died):
                    # recycle the whole stack, like a supervisor would.
                    teardown_stack(process, runtime)
                    epoch += 1
                    respawns += 1
                    process, tcp, faulty, runtime = build_stack(epoch, args)
            except Exception:
                print("UNTYPED ERROR escaped the resilience layer:")
                traceback.print_exc()
                return 1
    finally:
        teardown_stack(process, runtime)
        slo_breaches = 0
        if recorder is not None:
            slo_breaches = sum(
                1 for r in recorder.records()
                if r.kind == "event" and r.name == "telemetry.slo_breach"
            )
            if recorder.slo is not None:
                for name, state in recorder.slo.snapshot().items():
                    print(
                        f"slo {name}: {state['bad']}/{state['total']} bad, "
                        f"fast burn {state['fast_burn']:.1f}, "
                        f"slow burn {state['slow_burn']:.1f}, "
                        f"breached={state['breached']}", flush=True,
                    )
                health = ("degraded" if recorder.slo.breached() else "ok")
                print(
                    f"slo_breach events: {slo_breaches}, "
                    f"final health: {health}", flush=True,
                )
            if args.trace_out:
                from repro.telemetry.export import write_chrome_trace

                write_chrome_trace(args.trace_out, recorder)
                print(f"chaos trace written: {args.trace_out}", flush=True)

    if args.assert_slo_breach and slo_breaches == 0:
        print(
            "SLO MONITOR SILENT: injected faults raised no "
            "telemetry.slo_breach event"
        )
        return 1

    print(
        f"chaos smoke OK: {ops} ops in {args.duration:.0f} s, "
        f"{faulty.stats()['faults_injected']} faults in final epoch, "
        f"{respawns} respawns, surfaced errors: {dict(surfaced) or 'none'}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
