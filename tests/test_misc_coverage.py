"""Edge-case tests for smaller modules: errors hierarchy, tracer modes,
slot layout, futures, breakdown helper, VEO request states."""

import pytest

import repro.errors as errors_mod
from repro.backends import LocalBackend
from repro.backends._sim_common import SlotLayout
from repro.bench.breakdown import offload_breakdown
from repro.errors import BackendError, FutureError, ReproError, VeoCommandError
from repro.ham import f2f
from repro.offload import Runtime
from repro.offload.future import CompletedHandle, Future
from repro.sim import Simulator, Tracer
from repro.veo.request import RequestState, VeoRequest

from tests import apps


class TestErrorHierarchy:
    def test_every_exported_error_is_a_repro_error(self):
        exception_types = [
            obj
            for name, obj in vars(errors_mod).items()
            if isinstance(obj, type)
            and issubclass(obj, BaseException)
            and obj.__module__ == "repro.errors"
        ]
        assert len(exception_types) > 15
        for exc_type in exception_types:
            assert issubclass(exc_type, ReproError), exc_type

    def test_remote_execution_error_carries_traceback(self):
        from repro.errors import RemoteExecutionError

        error = RemoteExecutionError("boom", remote_traceback="TB")
        assert error.remote_traceback == "TB"

    def test_catching_base_class_catches_everything(self):
        from repro.errors import DmaatbError

        with pytest.raises(ReproError):
            raise DmaatbError("x")


class TestTracerModes:
    def test_record_events_mode(self):
        sim = Simulator()
        tracer = Tracer(record_events=True).attach(sim)
        sim.timeout(1.0)
        sim.run()
        assert any(r.kind == "event" for r in tracer.records)

    def test_spans_filter_by_prefix(self):
        sim = Simulator()
        tracer = Tracer().attach(sim)
        tracer.span("a.x", 0.0)
        tracer.span("b.y", 0.0)
        assert len(tracer.spans("a.")) == 1
        assert tracer.total_duration("") == 0.0


class TestSlotLayout:
    def test_addresses(self):
        layout = SlotLayout(base=100, num_slots=3, msg_size=64)
        assert layout.slot_stride == 72
        assert layout.total_size == 216
        assert layout.flag_addr(0) == 100
        assert layout.msg_addr(0) == 108
        assert layout.flag_addr(2) == 100 + 2 * 72

    def test_bounds_checked(self):
        layout = SlotLayout(base=0, num_slots=2, msg_size=8)
        with pytest.raises(BackendError):
            layout.flag_addr(2)
        with pytest.raises(BackendError):
            layout.msg_addr(-1)


class TestFutureEdgeCases:
    def test_completed_handle_error_replays(self):
        future = Future(CompletedHandle(error=ValueError("stored")))
        with pytest.raises(ValueError, match="stored"):
            future.get()
        with pytest.raises(ValueError, match="stored"):
            future.get()  # error is cached, not lost

    def test_test_then_get(self):
        future = Future(CompletedHandle(41))
        assert future.test()
        assert future.get() == 41

    def test_detached_future_raises(self):
        future = Future(CompletedHandle(1))
        future._handle = None
        future._done = False
        with pytest.raises(FutureError):
            future.get()


class TestBreakdownHelper:
    def test_requires_simulated_backend(self):
        runtime = Runtime(LocalBackend())
        with pytest.raises(BackendError, match="simulated backend"):
            offload_breakdown(runtime, f2f(apps.empty_kernel))
        runtime.shutdown()


class TestVeoRequestStates:
    def test_wait_on_dry_simulation_raises(self):
        sim = Simulator()
        request = VeoRequest(sim, 1, label="never")
        with pytest.raises(VeoCommandError, match="ran dry"):
            request.wait_result()

    def test_state_transitions(self):
        sim = Simulator()
        request = VeoRequest(sim, 2)
        assert request.state is RequestState.PENDING
        request._complete("v")
        assert request.peek_result() == (RequestState.DONE, "v")
        assert request.wait_result() == "v"

    def test_error_state(self):
        sim = Simulator()
        request = VeoRequest(sim, 3)
        request._fail(RuntimeError("inner"))
        assert request.state is RequestState.ERROR
        with pytest.raises(VeoCommandError) as excinfo:
            request.wait_result()
        assert isinstance(excinfo.value.__cause__, RuntimeError)


class TestTopologyVariants:
    def test_single_socket_spec(self):
        from dataclasses import replace

        from repro.hw.specs import A300_8
        from repro.hw.topology import SystemTopology

        small = replace(A300_8, num_cpu_sockets=1, num_ves=2, ves_per_switch=2)
        topo = SystemTopology(small)
        assert topo.upi_hops(0, 0) == 0
        assert topo.upi_hops(0, 1) == 0
        assert topo.ves_of_socket(0) == [0, 1]
