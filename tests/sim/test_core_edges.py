"""Additional simulation-kernel edge cases."""

import pytest

from repro.errors import DeadlockError
from repro.sim import Simulator


@pytest.fixture()
def sim():
    return Simulator()


class TestConditionEdges:
    def test_any_of_with_already_processed_event(self, sim):
        early = sim.timeout(0.0, value="early")
        sim.run()
        assert early.processed

        def proc():
            result = yield sim.any_of([early, sim.timeout(10.0)])
            return list(result.values())

        assert sim.run(until=sim.process(proc())) == ["early"]
        assert sim.now == 0.0

    def test_all_of_with_mixed_processed_and_pending(self, sim):
        early = sim.timeout(0.0, value="a")
        sim.run()

        def proc():
            result = yield sim.all_of([early, sim.timeout(2.0, value="b")])
            return sorted(v for v in result.values())

        assert sim.run(until=sim.process(proc())) == ["a", "b"]
        assert sim.now == 2.0

    def test_yield_already_failed_event_raises_in_process(self, sim):
        bad = sim.event()
        bad.fail(ValueError("late joiner"))
        sim.run()

        def proc():
            yield bad

        with pytest.raises(ValueError, match="late joiner"):
            sim.run(until=sim.process(proc()))


class TestRunSemantics:
    def test_run_until_already_processed_event_returns_value(self, sim):
        ev = sim.timeout(1.0, value=7)
        sim.run()
        assert sim.run(until=ev) == 7

    def test_run_until_failed_event_reraises(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("stored failure"))
        with pytest.raises(RuntimeError, match="stored failure"):
            sim.run(until=ev)

    def test_nested_processes_three_deep(self, sim):
        def leaf():
            yield sim.timeout(1.0)
            return 1

        def middle():
            value = yield sim.process(leaf())
            yield sim.timeout(1.0)
            return value + 1

        def root():
            value = yield sim.process(middle())
            return value + 1

        assert sim.run(until=sim.process(root())) == 3
        assert sim.now == 2.0

    def test_run_until_never_triggered_event_deadlocks(self, sim):
        orphan = sim.event()
        sim.timeout(5.0)
        with pytest.raises(DeadlockError):
            sim.run(until=orphan)

    def test_zero_delay_chain_makes_progress(self, sim):
        count = {"n": 0}

        def proc():
            for _ in range(100):
                yield sim.timeout(0.0)
                count["n"] += 1

        sim.run(until=sim.process(proc()))
        assert count["n"] == 100
        assert sim.now == 0.0
