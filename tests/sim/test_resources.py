"""Unit tests for simulation resources (Resource, Store, Channel)."""

import pytest

from repro.errors import ProcessError
from repro.sim import Channel, Resource, Simulator, Store


@pytest.fixture()
def sim():
    return Simulator()


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_immediate_grant_below_capacity(self, sim):
        res = Resource(sim, capacity=2)
        granted = []

        def proc(i):
            yield res.request()
            granted.append(i)

        sim.process(proc(0))
        sim.process(proc(1))
        sim.run()
        assert sorted(granted) == [0, 1]
        assert res.in_use == 2

    def test_mutex_serialises_critical_sections(self, sim):
        res = Resource(sim, capacity=1)
        active = {"n": 0, "max": 0}

        def proc():
            yield res.request()
            active["n"] += 1
            active["max"] = max(active["max"], active["n"])
            yield sim.timeout(1.0)
            active["n"] -= 1
            res.release()

        for _ in range(5):
            sim.process(proc())
        sim.run()
        assert active["max"] == 1
        assert sim.now == 5.0

    def test_fifo_ordering(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def proc(i):
            yield sim.timeout(i * 0.1)  # stagger arrival
            yield res.request()
            order.append(i)
            yield sim.timeout(1.0)
            res.release()

        for i in range(4):
            sim.process(proc(i))
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_release_without_request_raises(self, sim):
        res = Resource(sim)
        with pytest.raises(ProcessError):
            res.release()

    def test_interrupted_waiter_does_not_leak_capacity(self, sim):
        from repro.sim import Interrupt

        res = Resource(sim, capacity=1)
        order = []

        def holder():
            yield res.request()
            yield sim.timeout(10.0)
            res.release()

        def doomed():
            try:
                yield res.request()
            except Interrupt:
                order.append("interrupted")
                return
            order.append("granted")  # pragma: no cover - must not happen
            res.release()

        def survivor():
            yield sim.timeout(1.0)
            yield res.request()
            order.append(("survivor", sim.now))
            res.release()

        sim.process(holder())
        victim = sim.process(doomed())
        sim.process(survivor())
        sim.run(until=0.5)
        victim.interrupt()
        sim.run()
        # The unit freed at t=10 must reach the survivor, not the dead
        # waiter, and capacity must fully recover.
        assert order == ["interrupted", ("survivor", 10.0)]
        assert res.in_use == 0

    def test_queue_length(self, sim):
        res = Resource(sim, capacity=1)

        def holder():
            yield res.request()
            yield sim.timeout(10.0)
            res.release()

        def waiter():
            yield res.request()
            res.release()

        sim.process(holder())
        sim.process(waiter())
        sim.run(until=1.0)
        assert res.queue_length == 1
        sim.run()
        assert res.queue_length == 0


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append(item)

        sim.process(consumer())
        store.put("x")
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((item, sim.now))

        def producer():
            yield sim.timeout(3.0)
            store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [("late", 3.0)]

    def test_fifo_order(self, sim):
        store = Store(sim)
        for i in range(5):
            store.put(i)
        got = []

        def consumer():
            for _ in range(5):
                item = yield store.get()
                got.append(item)

        sim.process(consumer())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_bounded_store_blocks_putter(self, sim):
        store = Store(sim, capacity=1)
        timeline = []

        def producer():
            yield store.put("a")
            timeline.append(("a", sim.now))
            yield store.put("b")
            timeline.append(("b", sim.now))

        def consumer():
            yield sim.timeout(5.0)
            yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert timeline == [("a", 0.0), ("b", 5.0)]

    def test_try_get(self, sim):
        store = Store(sim)
        assert store.try_get() == (False, None)
        store.put(7)
        sim.run()
        assert store.try_get() == (True, 7)

    def test_len(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)


class TestChannel:
    def test_zero_delay_delivery(self, sim):
        chan = Channel(sim)
        got = []

        def consumer():
            msg = yield chan.recv()
            got.append((msg, sim.now))

        sim.process(consumer())
        chan.send("hi")
        sim.run()
        assert got == [("hi", 0.0)]

    def test_delay_applied(self, sim):
        chan = Channel(sim, delay=2.0)
        got = []

        def consumer():
            msg = yield chan.recv()
            got.append((msg, sim.now))

        sim.process(consumer())
        chan.send("hi")
        sim.run()
        assert got == [("hi", 2.0)]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            Channel(sim, delay=-1.0)

    def test_message_order_preserved(self, sim):
        chan = Channel(sim, delay=1.0)
        got = []

        def consumer():
            for _ in range(3):
                msg = yield chan.recv()
                got.append(msg)

        sim.process(consumer())
        for i in range(3):
            chan.send(i)
        sim.run()
        assert got == [0, 1, 2]


class TestTracer:
    def test_span_and_point_records(self, sim):
        from repro.sim import Tracer

        tracer = Tracer().attach(sim)

        def proc():
            start = sim.now
            yield sim.timeout(2.0)
            tracer.span("phase.a", start)
            tracer.point("milestone")

        sim.process(proc())
        sim.run()
        assert tracer.total_duration("phase") == 2.0
        assert any(r.kind == "point" and r.label == "milestone" for r in tracer.records)

    def test_fired_event_count(self, sim):
        from repro.sim import Tracer

        tracer = Tracer().attach(sim)
        sim.timeout(1.0)
        sim.timeout(2.0)
        sim.run()
        assert tracer.fired_events == 2

    def test_detach(self, sim):
        from repro.sim import Tracer

        tracer = Tracer().attach(sim)
        tracer.detach()
        assert sim.tracer is None

    def test_clear(self, sim):
        from repro.sim import Tracer

        tracer = Tracer().attach(sim)
        tracer.point("x")
        tracer.clear()
        assert tracer.records == []
