"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import DeadlockError, ProcessError, SimTimeError
from repro.sim import Event, Interrupt, Simulator, Timeout


@pytest.fixture()
def sim():
    return Simulator()


class TestClockAndTimeouts:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_timeout_advances_clock(self, sim):
        sim.timeout(2.5)
        sim.run()
        assert sim.now == 2.5

    def test_timeout_value_delivered_to_process(self, sim):
        seen = []

        def proc():
            value = yield sim.timeout(1.0, value="hello")
            seen.append(value)

        sim.process(proc())
        sim.run()
        assert seen == ["hello"]

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimTimeError):
            sim.timeout(-1.0)

    def test_run_until_time(self, sim):
        def proc():
            for _ in range(10):
                yield sim.timeout(1.0)

        sim.process(proc())
        sim.run(until=4.5)
        assert sim.now == 4.5

    def test_run_until_past_raises(self, sim):
        sim.timeout(5.0)
        sim.run()
        with pytest.raises(SimTimeError):
            sim.run(until=1.0)

    def test_events_fire_in_time_order(self, sim):
        order = []
        for delay in (3.0, 1.0, 2.0):
            sim.timeout(delay).callbacks.append(
                lambda ev, d=delay: order.append(d)
            )
        sim.run()
        assert order == [1.0, 2.0, 3.0]

    def test_same_time_events_fire_fifo(self, sim):
        order = []
        for idx in range(5):
            sim.timeout(1.0).callbacks.append(lambda ev, i=idx: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_peek(self, sim):
        assert sim.peek() == float("inf")
        sim.timeout(7.0)
        assert sim.peek() == 7.0


class TestEvents:
    def test_manual_succeed(self, sim):
        ev = sim.event()
        assert not ev.triggered
        ev.succeed(42)
        assert ev.triggered and not ev.processed
        sim.run()
        assert ev.processed and ev.value == 42

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(ProcessError):
            ev.succeed()

    def test_fail_requires_exception(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_failed_event_raises_in_process(self, sim):
        caught = []

        def proc():
            try:
                yield ev
            except ValueError as exc:
                caught.append(str(exc))

        ev = sim.event()
        sim.process(proc())
        ev.fail(ValueError("boom"))
        sim.run()
        assert caught == ["boom"]

    def test_yield_already_processed_event(self, sim):
        ev = sim.event()
        ev.succeed("early")
        sim.run()

        got = []

        def proc():
            value = yield ev  # processed long ago
            got.append(value)

        sim.process(proc())
        sim.run()
        assert got == ["early"]


class TestProcesses:
    def test_process_return_value(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "done"

        p = sim.process(proc())
        assert sim.run(until=p) == "done"

    def test_process_waits_for_process(self, sim):
        def child():
            yield sim.timeout(2.0)
            return 99

        def parent():
            value = yield sim.process(child())
            return value + 1

        assert sim.run(until=sim.process(parent())) == 100
        assert sim.now == 2.0

    def test_process_exception_propagates_through_run(self, sim):
        def proc():
            yield sim.timeout(1.0)
            raise RuntimeError("kaput")

        with pytest.raises(RuntimeError, match="kaput"):
            sim.run(until=sim.process(proc()))

    def test_yield_non_event_raises(self, sim):
        def proc():
            yield 5  # type: ignore[misc]

        sim.process(proc())
        with pytest.raises(ProcessError):
            sim.run()

    def test_non_generator_rejected(self, sim):
        with pytest.raises(ProcessError):
            sim.process(lambda: None)  # type: ignore[arg-type]

    def test_is_alive(self, sim):
        def proc():
            yield sim.timeout(1.0)

        p = sim.process(proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_interrupt_delivers_cause(self, sim):
        causes = []

        def victim():
            try:
                yield sim.timeout(100.0)
            except Interrupt as intr:
                causes.append(intr.cause)

        def attacker(target):
            yield sim.timeout(1.0)
            target.interrupt("stop it")

        target = sim.process(victim())
        sim.process(attacker(target))
        sim.run(until=target)
        assert causes == ["stop it"]
        # The victim finished at interrupt time; the abandoned 100 s timeout
        # stays scheduled but nobody listens to it.
        assert sim.now == 1.0

    def test_interrupt_finished_process_rejected(self, sim):
        def proc():
            yield sim.timeout(1.0)

        p = sim.process(proc())
        sim.run()
        with pytest.raises(ProcessError):
            p.interrupt()

    def test_interrupted_process_can_continue(self, sim):
        trace = []

        def victim():
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                trace.append(("interrupted", sim.now))
            yield sim.timeout(5.0)
            trace.append(("done", sim.now))

        def attacker(target):
            yield sim.timeout(2.0)
            target.interrupt()

        p = sim.process(victim())
        sim.process(attacker(p))
        sim.run()
        assert trace == [("interrupted", 2.0), ("done", 7.0)]


class TestConditions:
    def test_all_of(self, sim):
        t1 = sim.timeout(1.0, value="a")
        t2 = sim.timeout(3.0, value="b")

        def proc():
            result = yield sim.all_of([t1, t2])
            return sorted(result.values())

        assert sim.run(until=sim.process(proc())) == ["a", "b"]
        assert sim.now == 3.0

    def test_any_of(self, sim):
        t1 = sim.timeout(1.0, value="fast")
        t2 = sim.timeout(3.0, value="slow")

        def proc():
            result = yield sim.any_of([t1, t2])
            return list(result.values())

        assert sim.run(until=sim.process(proc())) == ["fast"]
        assert sim.now == 1.0

    def test_empty_all_of_fires_immediately(self, sim):
        def proc():
            result = yield sim.all_of([])
            return result

        assert sim.run(until=sim.process(proc())) == {}

    def test_all_of_failure_propagates(self, sim):
        bad = sim.event()

        def proc():
            yield sim.all_of([sim.timeout(10.0), bad])

        p = sim.process(proc())
        bad.fail(ValueError("nope"))
        with pytest.raises(ValueError, match="nope"):
            sim.run(until=p)


class TestRunUntil:
    def test_predicate_satisfied(self, sim):
        counter = {"n": 0}

        def proc():
            while True:
                yield sim.timeout(1.0)
                counter["n"] += 1

        sim.process(proc())
        assert sim.run_until(lambda: counter["n"] >= 5)
        assert sim.now == 5.0

    def test_queue_runs_dry(self, sim):
        sim.timeout(1.0)
        assert not sim.run_until(lambda: False)

    def test_limit_respected(self, sim):
        def proc():
            while True:
                yield sim.timeout(1.0)

        sim.process(proc())
        assert not sim.run_until(lambda: False, limit=10.0)
        assert sim.now <= 10.0

    def test_max_steps_guard(self, sim):
        def proc():
            while True:
                yield sim.timeout(1.0)

        sim.process(proc())
        with pytest.raises(DeadlockError):
            sim.run_until(lambda: False, max_steps=100)

    def test_run_dry_until_event_raises_deadlock(self, sim):
        ev = sim.event()  # never triggered
        with pytest.raises(DeadlockError):
            sim.run(until=ev)

    def test_step_on_empty_queue_raises(self, sim):
        with pytest.raises(DeadlockError):
            sim.step()


class TestTimeoutClass:
    def test_timeout_is_event(self, sim):
        assert isinstance(sim.timeout(0.0), Event)
        assert isinstance(sim.timeout(0.0), Timeout)

    def test_zero_delay_ok(self, sim):
        sim.timeout(0.0)
        sim.run()
        assert sim.now == 0.0
