"""Edge cases of ``report.py``: --profile, mixed headers, JSON output."""

import json

import pytest

from repro.telemetry.distributed import ClockSync, merge_traces
from repro.telemetry.export import write_chrome_trace, write_jsonl
from repro.telemetry.recorder import EventRecord, SpanRecord
from repro.telemetry.report import main as report_main
from repro.telemetry.report import profile_from_records


def traced_span(trace_id, name, start_ns, duration_ns, span_id, **attrs):
    return SpanRecord(
        name=name, category="offload", start_ns=start_ns,
        duration_ns=duration_ns, span_id=span_id, parent_id=0,
        pid=10, tid=20, attrs=attrs, trace_id=trace_id,
    )


def offload_trace(trace_id="aa" * 16, functor="apps.add", nbytes=64,
                  error=False):
    execute_attrs = {"error": "ValueError"} if error else {}
    return [
        traced_span(trace_id, "offload.serialize", 1000, 500, 1,
                    functor=functor, bytes=nbytes),
        traced_span(trace_id, "offload.execute", 1600, 2000, 2,
                    **execute_attrs),
    ]


class TestProfileCli:
    def test_profile_on_empty_trace_exits_zero(self, tmp_path, capsys):
        path = write_jsonl(tmp_path / "empty.jsonl", [])
        assert report_main([str(path), "--profile"]) == 0
        assert capsys.readouterr().out.strip() == "no records"

    def test_profile_table_lists_kernels(self, tmp_path, capsys):
        path = write_jsonl(tmp_path / "t.jsonl", offload_trace())
        assert report_main([str(path), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "apps.add" in out
        assert "kernel" in out

    def test_profile_sort_tail_accepted(self, tmp_path, capsys):
        path = write_jsonl(tmp_path / "t.jsonl", offload_trace())
        assert report_main(
            [str(path), "--profile", "--profile-sort", "tail"]
        ) == 0
        assert "apps.add" in capsys.readouterr().out

    def test_mixed_v1_v2_records_do_not_crash(self, tmp_path, capsys):
        # v1-era records carry no trace_id; a trace mixing both eras must
        # flow through every view, with the untraced half simply absent
        # from per-trace groupings.
        legacy = [
            SpanRecord(name="offload.serialize", category="offload",
                       start_ns=100, duration_ns=50, span_id=9,
                       parent_id=0, pid=1, tid=1),
            EventRecord(name="fault.injected", category="fault", ts_ns=120,
                        span_id=10, parent_id=9, pid=1, tid=1),
        ]
        path = write_jsonl(tmp_path / "mixed.jsonl",
                           legacy + offload_trace())
        for view in ("--profile", "--per-message", "--critical-path"):
            assert report_main([str(path), view]) == 0
        out = capsys.readouterr().out
        assert "apps.add" in out

    def test_chrome_format_also_accepted(self, tmp_path, capsys):
        path = write_chrome_trace(tmp_path / "t.json", offload_trace())
        assert report_main([str(path), "--profile"]) == 0
        assert "apps.add" in capsys.readouterr().out


class TestJsonRoundTrip:
    def test_json_payload_from_merged_trace(self, tmp_path, capsys):
        # Host half + target half, merged through the clock mapping, then
        # reported as JSON: the payload must parse and carry all views.
        trace_id = "bb" * 16
        host = [
            traced_span(trace_id, "offload.serialize", 1000, 500, 1,
                        functor="apps.add", bytes=64),
            traced_span(trace_id, "offload.wait", 1600, 4000, 2),
        ]
        target = [
            traced_span(trace_id, "offload.execute", 900_000, 2000, 3),
        ]
        merged = merge_traces(host, target, ClockSync(offset_ns=-897_000,
                                                      rtt_ns=100,
                                                      samples=3))
        path = write_jsonl(tmp_path / "merged.jsonl", merged)
        assert report_main(
            [str(path), "--profile", "--per-message", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"phases", "messages", "profile"}
        assert payload["profile"]["apps.add"]["count"] == 1
        phases = payload["profile"]["apps.add"]["phases"]
        assert "offload.execute" in phases
        (message,) = payload["messages"]
        assert message["trace_id"] == trace_id

    def test_json_on_plain_trace_parses(self, tmp_path, capsys):
        path = write_jsonl(tmp_path / "t.jsonl", offload_trace())
        assert report_main([str(path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "phases" in payload


class TestProfileFromRecords:
    def test_kernel_from_serialize_functor(self):
        snapshot = profile_from_records(offload_trace(functor="apps.mul"))
        (name,) = snapshot
        assert name == "apps.mul"
        assert snapshot[name]["bytes"] == 64
        assert snapshot[name]["errors"] == 0

    def test_error_attr_marks_the_offload(self):
        snapshot = profile_from_records(offload_trace(error=True))
        assert snapshot["apps.add"]["errors"] == 1

    def test_handler_fallback_then_unknown(self):
        trace_id = "cc" * 16
        handler_only = [
            traced_span(trace_id, "offload.execute", 100, 50, 1,
                        handler="HandlerKernel"),
        ]
        anonymous = [
            traced_span("dd" * 16, "offload.wait", 100, 50, 2),
        ]
        snapshot = profile_from_records(handler_only + anonymous)
        assert set(snapshot) == {"HandlerKernel", "<unknown>"}

    def test_untraced_records_contribute_nothing(self):
        legacy = SpanRecord(
            name="offload.execute", category="offload", start_ns=1,
            duration_ns=1, span_id=1, parent_id=0, pid=1, tid=1,
        )
        assert profile_from_records([legacy]) == {}

    def test_round_trip_is_trace_wall_extent(self):
        snapshot = profile_from_records(offload_trace())
        total = snapshot["apps.add"]["phases"]["offload"]
        # serialize starts at 1000, execute ends at 3600 -> 2600 ns.
        assert total["count"] == 1
        assert total["mean"] * 1e9 == pytest.approx(2600, rel=1e-6)
