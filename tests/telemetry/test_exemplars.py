"""Exemplar retention on log histograms and OpenMetrics exposition."""

import re

from repro.telemetry.metrics import LogHistogram, MetricsRegistry
from repro.telemetry.promexport import to_prometheus


class TestLogHistogramExemplars:
    def test_disabled_by_default(self):
        hist = LogHistogram()
        hist.observe(0.01, trace_id="abc")
        assert "exemplars" not in hist.summary()

    def test_retains_most_recent_per_bucket(self):
        hist = LogHistogram(bounds=(0.001, 0.01, 0.1), exemplars=True)
        hist.observe(0.005, trace_id="first")
        hist.observe(0.006, trace_id="second")  # same bucket: wins
        hist.observe(0.05, trace_id="slow")
        summary = hist.summary()
        exemplars = {trace: (bound, value)
                     for bound, trace, value in summary["exemplars"]}
        assert "first" not in exemplars
        assert exemplars["second"] == (0.01, 0.006)
        assert exemplars["slow"] == (0.1, 0.05)

    def test_overflow_bucket_exemplar_uses_inf(self):
        hist = LogHistogram(bounds=(0.001,), exemplars=True)
        hist.observe(10.0, trace_id="huge")
        [(bound, trace, value)] = hist.summary()["exemplars"]
        assert bound == "+Inf"
        assert trace == "huge"
        assert value == 10.0

    def test_observation_without_trace_id_keeps_old_exemplar(self):
        hist = LogHistogram(bounds=(1.0,), exemplars=True)
        hist.observe(0.5, trace_id="keep")
        hist.observe(0.6)  # unsampled: must not evict the exemplar
        [(_, trace, value)] = hist.summary()["exemplars"]
        assert trace == "keep"
        assert value == 0.5

    def test_enable_exemplars_retroactively_via_registry(self):
        reg = MetricsRegistry()
        hist = reg.log_histogram("phase.k.offload")
        hist.observe(0.01, trace_id="early")  # dropped: not enabled yet
        same = reg.log_histogram("phase.k.offload", exemplars=True)
        assert same is hist
        hist.observe(0.01, trace_id="late")
        [(_, trace, _)] = hist.summary()["exemplars"]
        assert trace == "late"


#: One exposition line: name{labels} value, optionally trailed by an
#: OpenMetrics exemplar `# {trace_id="..."} value`.
_SAMPLE_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'            # metric name
    r'(\{[a-zA-Z0-9_]+="[^"]*"'             # first label
    r'(,[a-zA-Z0-9_]+="[^"]*")*\})?'        # further labels
    r' (-?[0-9.eE+-]+|[+-]?Inf|NaN)'        # value
    r'( # \{trace_id="[^"]+"\} -?[0-9.eE+-]+)?$'  # exemplar
)
_COMMENT_LINE = re.compile(
    r"^# ((HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+|EOF)$"
)


class TestExemplarExposition:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("offload.issued").inc(4)
        reg.gauge("window.in_flight").set(1.0)
        hist = reg.log_histogram(
            "phase.k.offload", bounds=(0.001, 0.01, 0.1), exemplars=True
        )
        hist.observe(0.005, trace_id="abc123")
        hist.observe(0.05, trace_id="def456")
        hist.observe(5.0)  # overflow, no exemplar
        return reg

    def test_bucket_lines_carry_exemplars(self):
        text = to_prometheus(self._registry().snapshot(), openmetrics=True)
        assert re.search(
            r'repro_phase_k_offload_bucket\{le="0\.01"\} 1'
            r' # \{trace_id="abc123"\} 0\.005', text)
        assert '# {trace_id="def456"} 0.05' in text
        # The overflow observation had no trace id: its +Inf line is bare.
        inf_line = next(line for line in text.splitlines()
                        if 'le="+Inf"' in line)
        assert "#" not in inf_line

    def test_openmetrics_ends_with_eof(self):
        text = to_prometheus(self._registry().snapshot(), openmetrics=True)
        assert text.endswith("# EOF\n")
        # The counter family is named without _total in OpenMetrics;
        # the sample line keeps the suffix.
        assert "# TYPE repro_offload_issued counter" in text
        assert "repro_offload_issued_total 4" in text

    def test_plain_format_never_carries_exemplars(self):
        # Prometheus text format 0.0.4 has no exemplar syntax: trailing
        # content after the value is parsed as a malformed timestamp and
        # fails the whole scrape, so the default rendering must be bare.
        text = to_prometheus(self._registry().snapshot())
        for line in text.splitlines():
            assert "trace_id" not in line, line
        assert "# EOF" not in text
        assert "# TYPE repro_offload_issued_total counter" in text

    def test_every_line_passes_the_grammar(self):
        text = to_prometheus(self._registry().snapshot(), openmetrics=True)
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("#"):
                assert _COMMENT_LINE.match(line), line
            else:
                assert _SAMPLE_LINE.match(line), line

    def test_histogram_without_exemplars_renders_unchanged(self):
        reg = MetricsRegistry()
        hist = reg.log_histogram("plain", bounds=(0.001,))
        hist.observe(0.0005)
        text = to_prometheus(reg.snapshot(), openmetrics=True)
        for line in text.splitlines():
            assert "trace_id" not in line


class TestMetricsEndpointNegotiation:
    """/metrics serves 0.0.4 by default, OpenMetrics only on Accept."""

    def _server(self):
        from repro.telemetry.promexport import MetricsServer

        reg = MetricsRegistry()
        hist = reg.log_histogram(
            "phase.k.offload", bounds=(0.01,), exemplars=True)
        hist.observe(0.005, trace_id="abc123")
        return MetricsServer(reg.snapshot)

    def test_default_scrape_is_plain_and_exemplar_free(self):
        import urllib.request

        srv = self._server()
        try:
            with urllib.request.urlopen(
                    srv.url + "/metrics", timeout=5) as rsp:
                assert "version=0.0.4" in rsp.headers["Content-Type"]
                body = rsp.read().decode()
            assert "trace_id" not in body
            assert "# EOF" not in body
        finally:
            srv.close()

    def test_openmetrics_accept_negotiates_exemplars(self):
        import urllib.request

        srv = self._server()
        try:
            request = urllib.request.Request(
                srv.url + "/metrics",
                headers={"Accept": "application/openmetrics-text"},
            )
            with urllib.request.urlopen(request, timeout=5) as rsp:
                assert "application/openmetrics-text" in \
                    rsp.headers["Content-Type"]
                body = rsp.read().decode()
            assert '# {trace_id="abc123"} 0.005' in body
            assert body.endswith("# EOF\n")
        finally:
            srv.close()
