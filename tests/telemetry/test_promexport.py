"""Tests for the Prometheus text exporter and the /metrics endpoint."""

import json
import urllib.error
import urllib.request

import pytest

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.promexport import (
    MetricsServer,
    TelemetryConfig,
    sanitize_metric_name,
    to_prometheus,
)


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("offload.sync.time") == \
            "repro_offload_sync_time"

    def test_invalid_chars_and_leading_digit(self):
        assert sanitize_metric_name("4dma-rate") == "repro__4dma_rate"

    def test_custom_prefix(self):
        assert sanitize_metric_name("x", prefix="app_") == "app_x"


class TestToPrometheus:
    @pytest.fixture()
    def registry(self):
        reg = MetricsRegistry()
        reg.counter("offload.issued").inc(5)
        reg.gauge("tcp.pending_replies").set(1.5)
        hist = reg.histogram("phase.offload.execute")
        for value in (0.010, 0.020, 0.030):
            hist.observe(value)
        return reg

    def test_counter_rendering(self, registry):
        text = to_prometheus(registry.snapshot())
        assert "# TYPE repro_offload_issued_total counter" in text
        assert "repro_offload_issued_total 5" in text

    def test_gauge_rendering(self, registry):
        text = to_prometheus(registry.snapshot())
        assert "# TYPE repro_tcp_pending_replies gauge" in text
        assert "repro_tcp_pending_replies 1.5" in text

    def test_histogram_as_summary(self, registry):
        text = to_prometheus(registry.snapshot())
        assert "# TYPE repro_phase_offload_execute summary" in text
        assert 'repro_phase_offload_execute{quantile="0.5"} 0.02' in text
        assert 'repro_phase_offload_execute{quantile="0.95"}' in text
        assert "repro_phase_offload_execute_count 3" in text
        # _sum reconstructed as mean * count (exact).
        sum_line = next(line for line in text.splitlines()
                        if line.startswith("repro_phase_offload_execute_sum"))
        assert float(sum_line.split()[1]) == pytest.approx(0.060)

    def test_empty_snapshot(self):
        text = to_prometheus({"counters": {}, "gauges": {}, "histograms": {}})
        assert text == "\n"

    def test_ends_with_newline(self, registry):
        assert to_prometheus(registry.snapshot()).endswith("\n")


class TestTelemetryConfig:
    def test_coerce_bool(self):
        assert TelemetryConfig.coerce(True).enabled is True
        assert TelemetryConfig.coerce(False).enabled is False

    def test_coerce_dict(self):
        config = TelemetryConfig.coerce({"metrics_port": 9100, "capacity": 16})
        assert config.metrics_port == 9100
        assert config.capacity == 16
        assert config.enabled is True

    def test_coerce_passthrough(self):
        config = TelemetryConfig(metrics_port=0)
        assert TelemetryConfig.coerce(config) is config

    def test_coerce_rejects_junk(self):
        with pytest.raises(TypeError):
            TelemetryConfig.coerce(42)
        with pytest.raises(TypeError):
            TelemetryConfig.coerce({"bogus_field": 1})


class TestMetricsServer:
    @pytest.fixture()
    def server(self):
        reg = MetricsRegistry()
        reg.counter("offload.issued").inc(2)
        srv = MetricsServer(reg.snapshot)
        yield srv
        srv.close()

    def test_serves_metrics(self, server):
        with urllib.request.urlopen(server.url + "/metrics", timeout=5) as rsp:
            assert rsp.status == 200
            assert "version=0.0.4" in rsp.headers["Content-Type"]
            body = rsp.read().decode()
        assert "repro_offload_issued_total 2" in body

    def test_serves_healthz(self, server):
        with urllib.request.urlopen(server.url + "/healthz", timeout=5) as rsp:
            assert json.load(rsp) == {"status": "ok"}

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url + "/nope", timeout=5)
        assert err.value.code == 404

    def test_ephemeral_port_resolved(self, server):
        host, port = server.address
        assert host == "127.0.0.1"
        assert port > 0

    def test_scrape_sees_live_updates(self):
        reg = MetricsRegistry()
        srv = MetricsServer(reg.snapshot)
        try:
            reg.counter("live").inc()
            body = urllib.request.urlopen(
                srv.url + "/metrics", timeout=5).read().decode()
            assert "repro_live_total 1" in body
            reg.counter("live").inc(9)
            body = urllib.request.urlopen(
                srv.url + "/metrics", timeout=5).read().decode()
            assert "repro_live_total 10" in body
        finally:
            srv.close()
