"""Tests for the Prometheus text exporter and the /metrics endpoint."""

import json
import re
import urllib.error
import urllib.request

import pytest

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.promexport import (
    MetricsServer,
    TelemetryConfig,
    sanitize_metric_name,
    to_prometheus,
)


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("offload.sync.time") == \
            "repro_offload_sync_time"

    def test_invalid_chars_and_leading_digit(self):
        assert sanitize_metric_name("4dma-rate") == "repro__4dma_rate"

    def test_custom_prefix(self):
        assert sanitize_metric_name("x", prefix="app_") == "app_x"


class TestToPrometheus:
    @pytest.fixture()
    def registry(self):
        reg = MetricsRegistry()
        reg.counter("offload.issued").inc(5)
        reg.gauge("tcp.pending_replies").set(1.5)
        hist = reg.histogram("phase.offload.execute")
        for value in (0.010, 0.020, 0.030):
            hist.observe(value)
        return reg

    def test_counter_rendering(self, registry):
        text = to_prometheus(registry.snapshot())
        assert "# TYPE repro_offload_issued_total counter" in text
        assert "repro_offload_issued_total 5" in text

    def test_gauge_rendering(self, registry):
        text = to_prometheus(registry.snapshot())
        assert "# TYPE repro_tcp_pending_replies gauge" in text
        assert "repro_tcp_pending_replies 1.5" in text

    def test_histogram_as_summary(self, registry):
        text = to_prometheus(registry.snapshot())
        assert "# TYPE repro_phase_offload_execute summary" in text
        assert 'repro_phase_offload_execute{quantile="0.5"} 0.02' in text
        assert 'repro_phase_offload_execute{quantile="0.95"}' in text
        assert "repro_phase_offload_execute_count 3" in text
        # _sum reconstructed as mean * count (exact).
        sum_line = next(line for line in text.splitlines()
                        if line.startswith("repro_phase_offload_execute_sum"))
        assert float(sum_line.split()[1]) == pytest.approx(0.060)

    def test_empty_snapshot(self):
        text = to_prometheus({"counters": {}, "gauges": {}, "histograms": {}})
        assert text == "\n"

    def test_ends_with_newline(self, registry):
        assert to_prometheus(registry.snapshot()).endswith("\n")


class TestHistogramBuckets:
    """Log histograms render as *native* Prometheus histogram series."""

    @pytest.fixture()
    def registry(self):
        reg = MetricsRegistry()
        hist = reg.log_histogram(
            "phase.offload.offload", bounds=(0.001, 0.01, 0.1)
        )
        for value in (0.0005, 0.005, 0.05, 5.0):
            hist.observe(value)
        return reg

    def test_histogram_type_and_bucket_lines(self, registry):
        text = to_prometheus(registry.snapshot())
        assert "# TYPE repro_phase_offload_offload histogram" in text
        assert 'repro_phase_offload_offload_bucket{le="0.001"} 1' in text
        assert 'repro_phase_offload_offload_bucket{le="0.01"} 2' in text
        assert 'repro_phase_offload_offload_bucket{le="0.1"} 3' in text
        assert 'repro_phase_offload_offload_bucket{le="+Inf"} 4' in text

    def test_sum_and_count(self, registry):
        lines = to_prometheus(registry.snapshot()).splitlines()
        sum_line = next(
            line for line in lines
            if line.startswith("repro_phase_offload_offload_sum")
        )
        assert float(sum_line.split()[1]) == pytest.approx(5.0555)
        assert "repro_phase_offload_offload_count 4" in lines

    def test_inf_bucket_synthesized_when_missing(self):
        # Hand-built snapshots (e.g. merged from JSON) may lack the +Inf
        # bucket; the exposition format requires it.
        snapshot = {
            "counters": {}, "gauges": {},
            "histograms": {
                "h": {"count": 2, "mean": 1.0, "buckets": [[0.5, 1]]}
            },
        }
        text = to_prometheus(snapshot)
        assert 'repro_h_bucket{le="+Inf"} 2' in text


class TestExpositionGrammar:
    """Every line of the full dump obeys the 0.0.4 text format."""

    _COMMENT = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
    _SAMPLE = re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*"                 # metric name
        r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"\})?'     # optional one label
        r" (NaN|[+-]Inf|[+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$"
    )

    def test_full_dump_parses(self):
        reg = MetricsRegistry()
        reg.counter("offload.issued").inc(3)
        reg.gauge("slo.lat.fast_burn").set(2.5)
        reg.histogram("ring.phase").observe(0.01)
        log = reg.log_histogram("phase.offload.offload")
        for value in (0.001, 0.2, 40.0):
            log.observe(value)
        text = to_prometheus(reg.snapshot())
        assert text.endswith("\n")
        for line in text.rstrip("\n").splitlines():
            assert self._COMMENT.match(line) or self._SAMPLE.match(line), (
                f"line violates exposition grammar: {line!r}"
            )

    def test_type_declared_before_samples(self):
        reg = MetricsRegistry()
        reg.log_histogram("h").observe(1.0)
        lines = to_prometheus(reg.snapshot()).rstrip("\n").splitlines()
        type_at = next(i for i, line in enumerate(lines)
                       if line.startswith("# TYPE repro_h "))
        first_sample = next(i for i, line in enumerate(lines)
                            if line.startswith("repro_h_bucket"))
        assert type_at < first_sample


class TestTelemetryConfig:
    def test_coerce_bool(self):
        assert TelemetryConfig.coerce(True).enabled is True
        assert TelemetryConfig.coerce(False).enabled is False

    def test_coerce_dict(self):
        config = TelemetryConfig.coerce({"metrics_port": 9100, "capacity": 16})
        assert config.metrics_port == 9100
        assert config.capacity == 16
        assert config.enabled is True

    def test_coerce_passthrough(self):
        config = TelemetryConfig(metrics_port=0)
        assert TelemetryConfig.coerce(config) is config

    def test_coerce_rejects_junk(self):
        with pytest.raises(TypeError):
            TelemetryConfig.coerce(42)
        with pytest.raises(TypeError):
            TelemetryConfig.coerce({"bogus_field": 1})

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_coerce_validates_sample_rate(self, rate):
        with pytest.raises(ValueError, match="sample_rate"):
            TelemetryConfig.coerce({"sample_rate": rate})

    def test_coerce_accepts_boundary_rates(self):
        assert TelemetryConfig.coerce({"sample_rate": 0.0}).sample_rate == 0.0
        assert TelemetryConfig.coerce({"sample_rate": 1.0}).sample_rate == 1.0
        assert TelemetryConfig.coerce(True).sample_rate is None

    def test_coerce_normalizes_slo_dicts(self):
        from repro.telemetry.slo import SLO

        config = TelemetryConfig.coerce({
            "slos": (
                {"name": "lat", "phase": "offload", "threshold_ns": 10**6,
                 "objective": 0.99},
                SLO(name="avail", phase="offload", threshold_ns=None,
                    objective=0.999),
            ),
        })
        assert all(isinstance(s, SLO) for s in config.slos)
        assert [s.name for s in config.slos] == ["lat", "avail"]

    def test_coerce_propagates_bad_slo_fields(self):
        with pytest.raises(ValueError, match="objective"):
            TelemetryConfig.coerce({
                "slos": ({"name": "x", "phase": "offload",
                          "threshold_ns": 1, "objective": 2.0},),
            })


class TestMetricsServer:
    @pytest.fixture()
    def server(self):
        reg = MetricsRegistry()
        reg.counter("offload.issued").inc(2)
        srv = MetricsServer(reg.snapshot)
        yield srv
        srv.close()

    def test_serves_metrics(self, server):
        with urllib.request.urlopen(server.url + "/metrics", timeout=5) as rsp:
            assert rsp.status == 200
            assert "version=0.0.4" in rsp.headers["Content-Type"]
            body = rsp.read().decode()
        assert "repro_offload_issued_total 2" in body

    def test_serves_healthz(self, server):
        with urllib.request.urlopen(server.url + "/healthz", timeout=5) as rsp:
            assert json.load(rsp) == {"status": "ok"}

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url + "/nope", timeout=5)
        assert err.value.code == 404

    def test_ephemeral_port_resolved(self, server):
        host, port = server.address
        assert host == "127.0.0.1"
        assert port > 0

    def test_healthz_reflects_health_fn(self):
        health = {"status": "ok", "breached": []}
        reg = MetricsRegistry()
        srv = MetricsServer(reg.snapshot, health_fn=lambda: health)
        try:
            with urllib.request.urlopen(srv.url + "/healthz", timeout=5) as rsp:
                assert json.load(rsp) == {"status": "ok", "breached": []}
            # A later breach must show on the next probe, no restart.
            health["status"] = "degraded"
            health["breached"] = ["offload-latency"]
            with urllib.request.urlopen(srv.url + "/healthz", timeout=5) as rsp:
                body = json.load(rsp)
            assert body["status"] == "degraded"
            assert body["breached"] == ["offload-latency"]
        finally:
            srv.close()

    def test_scrape_sees_live_updates(self):
        reg = MetricsRegistry()
        srv = MetricsServer(reg.snapshot)
        try:
            reg.counter("live").inc()
            body = urllib.request.urlopen(
                srv.url + "/metrics", timeout=5).read().decode()
            assert "repro_live_total 1" in body
            reg.counter("live").inc(9)
            body = urllib.request.urlopen(
                srv.url + "/metrics", timeout=5).read().decode()
            assert "repro_live_total 10" in body
        finally:
            srv.close()
