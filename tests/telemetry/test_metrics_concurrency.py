"""Concurrent scrape-vs-mutate: /metrics under registry churn.

Four scraper threads hammer the metrics endpoint while a mutator keeps
creating instruments and folding observations (with exemplars) — the
shape of a real deployment where Prometheus scrapes mid-offload. Every
response must parse as complete, well-formed exposition text; no tearing,
no duplicate TYPE lines, no exceptions surfacing as 500s.
"""

import threading
import urllib.request

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.promexport import MetricsServer

SCRAPERS = 4
SCRAPES_PER_THREAD = 25


def test_concurrent_scrapes_while_registry_mutates():
    reg = MetricsRegistry()
    stop = threading.Event()
    mutator_error: list[BaseException] = []

    def mutate():
        i = 0
        try:
            while not stop.is_set():
                i += 1
                reg.counter(f"offload.issued").inc()
                reg.counter(f"target.errors.{i % 3 + 1}").inc(i % 2)
                reg.gauge(f"window.in_flight").set(i % 7)
                reg.gauge(f"health.node_state.{i % 3 + 1}").set(1.0)
                hist = reg.log_histogram(
                    f"target.reply.{i % 3 + 1}", exemplars=True)
                hist.observe(0.001 * (i % 50 + 1), trace_id=f"{i:08x}")
                reg.histogram("offload.sync.time").observe(0.001 * (i % 9))
        except BaseException as exc:  # noqa: BLE001 - reported by the test
            mutator_error.append(exc)

    srv = MetricsServer(reg.snapshot)
    mutator = threading.Thread(target=mutate, daemon=True)
    mutator.start()
    bodies: list[str] = []
    errors: list[BaseException] = []

    def scrape():
        try:
            for _ in range(SCRAPES_PER_THREAD):
                with urllib.request.urlopen(
                        srv.url + "/metrics", timeout=10) as rsp:
                    assert rsp.status == 200
                    bodies.append(rsp.read().decode())
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    try:
        scrapers = [threading.Thread(target=scrape) for _ in range(SCRAPERS)]
        for thread in scrapers:
            thread.start()
        for thread in scrapers:
            thread.join(timeout=60)
            assert not thread.is_alive(), "scraper wedged"
    finally:
        stop.set()
        mutator.join(timeout=10)
        srv.close()

    assert not errors, errors
    assert not mutator_error, mutator_error
    assert len(bodies) == SCRAPERS * SCRAPES_PER_THREAD
    for body in bodies:
        assert body.endswith("\n")
        seen_types: set[str] = set()
        for line in body.splitlines():
            if line.startswith("# TYPE "):
                metric = line.split()[2]
                # A torn snapshot would render one family twice.
                assert metric not in seen_types, f"duplicate TYPE {metric}"
                seen_types.add(metric)
    # The mutator made progress while being scraped.
    final = reg.snapshot()
    assert final["counters"]["offload.issued"] > 0
    assert any(name.startswith("target.reply.")
               for name in final["histograms"])
