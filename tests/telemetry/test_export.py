"""Round-trip tests for the trace exporters and the sim bridge."""

import json

import pytest

from repro.sim.core import Simulator
from repro.sim.trace import TraceRecord, Tracer
from repro.telemetry.export import (
    dicts_to_records,
    durations_by_name,
    load_any,
    parse_chrome_trace,
    read_jsonl,
    records_to_dicts,
    to_chrome,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.recorder import EventRecord, Recorder, SpanRecord
from repro.telemetry.report import main as report_main, render_report, summarize
from repro.telemetry.simbridge import sim_to_chrome, write_sim_chrome_trace


def sample_records():
    return [
        SpanRecord(
            name="offload.serialize", category="offload", start_ns=1000,
            duration_ns=500, span_id=1, parent_id=0, pid=10, tid=20,
            attrs={"bytes": 64},
        ),
        SpanRecord(
            name="offload.execute", category="offload", start_ns=1600,
            duration_ns=2000, span_id=2, parent_id=1, pid=11, tid=21,
            attrs={},
        ),
        EventRecord(
            name="fault.injected", category="fault", ts_ns=1700,
            span_id=3, parent_id=2, pid=11, tid=21, attrs={"kind": "drop"},
        ),
    ]


class TestDictRoundTrip:
    def test_round_trip_is_identity(self):
        records = sample_records()
        assert dicts_to_records(records_to_dicts(records)) == records

    def test_rows_are_json_safe(self):
        json.dumps(records_to_dicts(sample_records()))

    def test_unknown_row_type_rejected(self):
        with pytest.raises(ValueError, match="unknown record row"):
            dicts_to_records([{"type": "mystery"}])


class TestChrome:
    def test_round_trip_preserves_shape_and_durations(self):
        records = sample_records()
        back = parse_chrome_trace(to_chrome(records))
        assert len(back) == len(records)
        by_name = {r.name: r for r in back}
        original = {r.name: r for r in records}
        for name, rec in by_name.items():
            ref = original[name]
            assert rec.span_id == ref.span_id
            assert rec.parent_id == ref.parent_id
            assert rec.attrs == ref.attrs
            if rec.kind == "span":
                assert rec.duration_ns == ref.duration_ns

    def test_timestamps_normalized_to_origin(self):
        obj = to_chrome(sample_records())
        assert min(e["ts"] for e in obj["traceEvents"]) == 0.0
        assert obj["metadata"]["origin_ns"] == 1000

    def test_file_round_trip(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", sample_records())
        back = parse_chrome_trace(path)
        assert [r.name for r in back] == [r.name for r in sample_records()]

    def test_accepts_recorder(self):
        rec = Recorder()
        with rec.span("x"):
            pass
        assert len(to_chrome(rec)["traceEvents"]) == 1

    def test_rejects_non_trace(self):
        with pytest.raises(ValueError, match="traceEvents"):
            parse_chrome_trace({"foo": 1})


class TestJsonl:
    def test_file_round_trip(self, tmp_path):
        records = sample_records()
        path = write_jsonl(tmp_path / "trace.jsonl", records)
        assert read_jsonl(path) == records

    def test_load_any_sniffs_both_formats(self, tmp_path):
        records = sample_records()
        chrome = write_chrome_trace(tmp_path / "t.json", records)
        jsonl = write_jsonl(tmp_path / "t.jsonl", records)
        assert [r.name for r in load_any(chrome)] == [r.name for r in records]
        assert load_any(jsonl) == records


class TestReport:
    def test_durations_by_name_groups_spans(self):
        groups = durations_by_name(sample_records(), prefix="offload.")
        assert groups == {
            "offload.serialize": [5e-7],
            "offload.execute": [2e-6],
        }

    def test_summarize_percentiles(self):
        summary = summarize(sample_records())
        assert summary["offload.execute"]["count"] == 1
        assert summary["offload.execute"]["p95"] == pytest.approx(2e-6)

    def test_render_report_lists_phases_and_events(self):
        text = render_report(sample_records())
        assert "offload.serialize" in text
        assert "offload.execute" in text
        assert "fault.injected" in text
        assert "p95" in text

    def test_render_report_empty(self):
        assert "no spans matched" in render_report([])

    def test_cli_main(self, tmp_path, capsys):
        path = write_chrome_trace(tmp_path / "trace.json", sample_records())
        assert report_main([str(path), "--prefix", "offload."]) == 0
        out = capsys.readouterr().out
        assert "offload.execute" in out

    def test_cli_rejects_bad_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"not\": \"a trace\"}")
        with pytest.raises(SystemExit):
            report_main([str(bad)])


class TestSimBridge:
    def test_tracer_records_convert(self):
        sim = Simulator()
        tracer = Tracer().attach(sim)
        sim.run(until=sim.timeout(1e-6))
        tracer.span("dma.fetch", start=0.0)
        tracer.point("flag.set")
        obj = sim_to_chrome(tracer)
        names = [e["name"] for e in obj["traceEvents"]]
        assert names[0] == "process_name"  # metadata row
        assert "dma.fetch" in names and "flag.set" in names
        span = next(e for e in obj["traceEvents"] if e["name"] == "dma.fetch")
        assert span["ph"] == "X"
        assert span["ts"] == pytest.approx(0.0)
        assert span["dur"] == pytest.approx(1.0)  # 1 µs in trace units

    def test_written_file_parses_as_chrome_trace(self, tmp_path):
        records = [TraceRecord(time=2e-6, kind="span", label="x", duration=1e-6)]
        path = write_sim_chrome_trace(tmp_path / "sim.json", records)
        back = parse_chrome_trace(path)
        assert [r.name for r in back] == ["x"]
        assert back[0].duration_ns == 1000


def traced_records(trace="aa" * 16):
    """Two-process records of one distributed trace."""
    return [
        SpanRecord(
            name="offload.serialize", category="offload", start_ns=1000,
            duration_ns=500, span_id=1, parent_id=0, pid=10, tid=20,
            attrs={}, trace_id=trace,
        ),
        SpanRecord(
            name="offload.execute", category="offload", start_ns=1800,
            duration_ns=700, span_id=2, parent_id=1, pid=11, tid=21,
            attrs={}, trace_id=trace,
        ),
        SpanRecord(
            name="offload.deserialize", category="offload", start_ns=2700,
            duration_ns=200, span_id=3, parent_id=0, pid=10, tid=20,
            attrs={}, trace_id=trace,
        ),
    ]


class TestReportCliModes:
    def test_empty_trace_prints_no_records_and_exits_zero(self, tmp_path, capsys):
        path = write_chrome_trace(tmp_path / "empty.json", [])
        assert report_main([str(path)]) == 0
        assert "no records" in capsys.readouterr().out

    def test_empty_jsonl_too(self, tmp_path, capsys):
        path = write_jsonl(tmp_path / "empty.jsonl", [])
        assert report_main([str(path)]) == 0
        assert "no records" in capsys.readouterr().out

    def test_format_json(self, tmp_path, capsys):
        path = write_chrome_trace(tmp_path / "trace.json", sample_records())
        assert report_main([str(path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "offload.serialize" in payload["phases"]
        assert payload["phases"]["offload.execute"]["count"] == 1

    def test_format_json_with_messages(self, tmp_path, capsys):
        path = write_chrome_trace(tmp_path / "trace.json", traced_records())
        assert report_main([str(path), "--format", "json",
                            "--per-message"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (message,) = payload["messages"]
        assert message["trace_id"] == "aa" * 16
        assert message["spans"] == 3
        phases = [seg["phase"] for seg in message["critical_path"]]
        assert "offload.execute" in phases

    def test_per_message_table(self, tmp_path, capsys):
        path = write_chrome_trace(tmp_path / "trace.json", traced_records())
        assert report_main([str(path), "--per-message"]) == 0
        out = capsys.readouterr().out
        assert "per-message traces" in out
        assert ("aa" * 16)[:16] in out

    def test_critical_path_table(self, tmp_path, capsys):
        path = write_chrome_trace(tmp_path / "trace.json", traced_records())
        assert report_main([str(path), "--critical-path"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "offload.execute" in out
        assert "(wait)" in out

    def test_untraced_records_yield_helpful_message(self, tmp_path, capsys):
        path = write_chrome_trace(tmp_path / "trace.json", sample_records())
        assert report_main([str(path), "--per-message"]) == 0
        assert "no traced messages" in capsys.readouterr().out


class TestSimBridgeReportRoundTrip:
    def test_sim_trace_flows_through_report_cli(self, tmp_path, capsys):
        # The full bridge: sim Tracer -> Chrome file -> report table.
        sim = Simulator()
        tracer = Tracer().attach(sim)
        sim.run(until=sim.timeout(5e-6))
        tracer.span("dma.descriptor", start=0.0)
        tracer.span("dma.transfer", start=1e-6)
        tracer.point("dma.done")
        path = write_sim_chrome_trace(tmp_path / "sim.json", tracer)
        assert report_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "dma.descriptor" in out
        assert "dma.transfer" in out
        assert "dma.done" in out
        assert "p95" in out
