"""Shared fixtures: keep the process-global telemetry switch clean."""

import pytest

from repro.telemetry import recorder as telemetry


@pytest.fixture(autouse=True)
def _reset_telemetry():
    """Tests must not leak an enabled recorder into each other."""
    telemetry.disable()
    yield
    telemetry.disable()
