"""Unit tests for the span/event recorder and its global switchboard."""

import threading

import pytest

from repro.telemetry import recorder as telemetry
from repro.telemetry.recorder import NOOP_SPAN, Recorder


class FakeClock:
    """Deterministic nanosecond clock advancing by a fixed step per read."""

    def __init__(self, step_ns: int = 1000) -> None:
        self.now = 0
        self.step = step_ns

    def __call__(self) -> int:
        self.now += self.step
        return self.now


class TestSpans:
    def test_span_records_duration_and_attrs(self):
        rec = Recorder(clock_ns=FakeClock(500))
        with rec.span("offload.execute", bytes=128) as span:
            span.set("handler", "add")
        (record,) = rec.spans()
        assert record.name == "offload.execute"
        assert record.duration_ns == 500
        assert record.attrs == {"bytes": 128, "handler": "add"}
        assert record.end_ns == record.start_ns + record.duration_ns

    def test_nested_spans_link_parent_ids(self):
        rec = Recorder(clock_ns=FakeClock())
        with rec.span("outer") as outer:
            with rec.span("inner") as inner:
                assert rec.current_span_id() == inner.span_id
            assert rec.current_span_id() == outer.span_id
        by_name = {r.name: r for r in rec.spans()}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id == 0
        assert rec.current_span_id() == 0

    def test_exception_closes_span_and_tags_error(self):
        rec = Recorder(clock_ns=FakeClock())
        with pytest.raises(ValueError):
            with rec.span("offload.execute"):
                raise ValueError("boom")
        (record,) = rec.spans()
        assert record.attrs["error"] == "ValueError"
        assert rec.current_span_id() == 0

    def test_events_record_parent_and_attrs(self):
        rec = Recorder(clock_ns=FakeClock())
        with rec.span("outer") as outer:
            rec.event("fault.injected", category="fault", kind="drop")
        (event,) = rec.events()
        assert event.name == "fault.injected"
        assert event.category == "fault"
        assert event.parent_id == outer.span_id
        assert event.attrs == {"kind": "drop"}


class TestRing:
    def test_capacity_bounds_retention_and_counts_drops(self):
        rec = Recorder(capacity=4, clock_ns=FakeClock())
        for i in range(10):
            rec.event(f"e{i}")
        assert len(rec.records()) == 4
        assert rec.recorded == 10
        assert rec.dropped == 6
        assert [r.name for r in rec.records()] == ["e6", "e7", "e8", "e9"]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Recorder(capacity=0)

    def test_drain_empties_atomically(self):
        rec = Recorder(clock_ns=FakeClock())
        rec.event("a")
        rec.event("b")
        drained = rec.drain()
        assert [r.name for r in drained] == ["a", "b"]
        assert rec.records() == []

    def test_ingest_merges_foreign_records(self):
        src = Recorder(clock_ns=FakeClock())
        src.event("remote")
        dst = Recorder(clock_ns=FakeClock())
        dst.event("local")
        dst.ingest(src.drain())
        assert sorted(r.name for r in dst.records()) == ["local", "remote"]

    def test_clear_keeps_counting_ids(self):
        rec = Recorder(clock_ns=FakeClock())
        with rec.span("a") as s1:
            pass
        rec.clear()
        with rec.span("b") as s2:
            pass
        assert rec.records()[0].name == "b"
        assert s2.span_id > s1.span_id


class TestThreadSafety:
    def test_concurrent_spans_nest_per_thread(self):
        rec = Recorder(capacity=100_000)
        errors = []

        def worker(tag):
            try:
                for _ in range(200):
                    with rec.span(f"outer.{tag}") as outer:
                        with rec.span(f"inner.{tag}") as inner:
                            assert inner.parent_id == outer.span_id
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert rec.recorded == 4 * 200 * 2
        # Every inner span's parent must be an outer span of the same tag.
        outers = {}
        for r in rec.spans("outer."):
            outers[r.span_id] = r.name.split(".", 1)[1]
        for r in rec.spans("inner."):
            assert outers[r.parent_id] == r.name.split(".", 1)[1]


class TestSwitchboard:
    def test_enable_disable_cycle(self):
        assert not telemetry.enabled()
        rec = telemetry.enable()
        assert telemetry.enabled()
        assert telemetry.get() is rec
        assert telemetry.enable() is rec  # idempotent
        detached = telemetry.disable()
        assert detached is rec
        assert not telemetry.enabled()
        assert telemetry.get() is None

    def test_enable_with_injected_recorder(self):
        rec = Recorder(clock_ns=FakeClock())
        assert telemetry.enable(recorder=rec) is rec
        with telemetry.span("x"):
            pass
        assert rec.spans()[0].name == "x"

    def test_disabled_span_is_noop_singleton(self):
        assert telemetry.span("a") is NOOP_SPAN
        assert telemetry.span("b") is telemetry.span("c")
        with telemetry.span("a") as s:
            s.set("k", 1)
        assert telemetry.current_span_id() == 0

    def test_disabled_helpers_do_nothing(self):
        telemetry.event("e")
        telemetry.count("c")
        telemetry.gauge("g", 1.0)
        telemetry.observe("h", 1.0)
        # Nothing recorded anywhere once enabled afterwards.
        rec = telemetry.enable()
        assert rec.records() == []
        assert rec.metrics.snapshot()["counters"] == {}

    def test_enabled_helpers_record(self):
        rec = telemetry.enable()
        with telemetry.span("s", node=1):
            telemetry.event("e")
        telemetry.count("c", 3)
        telemetry.gauge("g", 2.5)
        telemetry.observe("h", 0.1)
        assert [r.name for r in rec.spans()] == ["s"]
        assert [r.name for r in rec.events()] == ["e"]
        snap = rec.metrics.snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 2.5
        assert snap["histograms"]["h"]["count"] == 1
