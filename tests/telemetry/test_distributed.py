"""Tests for clock alignment, trace merging and critical paths."""

import pytest

from repro.telemetry.distributed import (
    ClockSync,
    align_records,
    causal_offset_bounds,
    critical_path,
    group_by_trace,
    merge_traces,
    trace_summary,
)
from repro.telemetry.recorder import EventRecord, SpanRecord

HOST_PID = 100
TARGET_PID = 200
TRACE = "ab" * 16


def span(name, start, dur, *, span_id=0, parent=0, pid=HOST_PID, trace=TRACE):
    return SpanRecord(
        name=name, category="offload", start_ns=start, duration_ns=dur,
        span_id=span_id, parent_id=parent, pid=pid, tid=1, trace_id=trace,
    )


def event(name, ts, *, pid=HOST_PID, trace=TRACE):
    return EventRecord(
        name=name, category="offload", ts_ns=ts, span_id=0, parent_id=0,
        pid=pid, tid=1, trace_id=trace,
    )


class TestClockSync:
    def test_estimate_recovers_known_offset(self):
        # Target clock runs 1000 ns ahead; symmetric 100 ns one-way trip.
        host = iter(range(0, 10_000, 1000))

        def probe():
            t0 = next(host)
            return t0, t0 + 100 + 1000, t0 + 200

        sync = ClockSync.estimate(probe, rounds=4)
        assert sync.offset_ns == -1000
        assert sync.rtt_ns == 200
        assert sync.samples == 4
        assert sync.to_host_ns(5000) == 4000

    def test_estimate_prefers_min_rtt_round(self):
        rounds = iter([
            (0, 5000, 10_000),   # rtt 10000, noisy
            (100, 1350, 500),    # rtt 400, tight: offset = 300 - 1350
            (600, 9000, 5000),   # rtt 4400
        ])
        sync = ClockSync.estimate(lambda: next(rounds), rounds=3)
        assert sync.rtt_ns == 400
        assert sync.offset_ns == 300 - 1350

    def test_estimate_rejects_bad_rounds(self):
        with pytest.raises(ValueError):
            ClockSync.estimate(lambda: (100, 0, 50), rounds=1)
        with pytest.raises(ValueError):
            ClockSync.estimate(lambda: (0, 0, 0), rounds=0)

    def test_identity(self):
        sync = ClockSync.identity()
        assert sync.offset_ns == 0 and sync.samples == 0
        assert sync.to_host_ns(123) == 123


class TestAlignment:
    def test_align_shifts_spans_and_events(self):
        records = [span("a", 1000, 10), event("e", 2000)]
        shifted = align_records(records, -500)
        assert shifted[0].start_ns == 500
        assert shifted[0].duration_ns == 10
        assert shifted[1].ts_ns == 1500

    def test_align_zero_offset_is_identity(self):
        records = [span("a", 1000, 10)]
        assert align_records(records, 0) == records

    def test_causal_bounds_from_matched_trace(self):
        host = [
            span("offload.serialize", 1000, 100, span_id=1),
            span("offload.reply", 5000, 100, span_id=2),
        ]
        target = [span("offload.execute", 9000, 500, pid=TARGET_PID)]
        lo, hi = causal_offset_bounds(host, target)
        # execute must start >= 1000 -> offset >= 1000 - 9000 = -8000
        # execute must end <= 5100 -> offset <= 5100 - 9500 = -4400
        assert lo == -8000
        assert hi == -4400

    def test_bounds_empty_without_matches(self):
        assert causal_offset_bounds([], []) == (None, None)
        host = [span("offload.serialize", 0, 1, span_id=1)]
        other = [span("offload.execute", 50, 10, trace="ff" * 16)]
        assert causal_offset_bounds(host, other) == (None, None)

    def test_merge_clamps_offset_into_causal_window(self):
        host = [
            span("offload.serialize", 1000, 100, span_id=1),
            span("offload.reply", 5000, 100, span_id=2),
        ]
        target = [span("offload.execute", 9000, 500, pid=TARGET_PID)]
        # Estimated offset 0 would put execute at 9000, after the reply:
        # clamping pulls it inside [send, receipt].
        merged = merge_traces(host, target, ClockSync(offset_ns=0))
        execute = next(r for r in merged if r.name == "offload.execute")
        assert execute.start_ns >= 1000
        assert execute.end_ns <= 5100
        assert [r.name for r in merged] == [
            "offload.serialize", "offload.execute", "offload.reply",
        ]

    def test_merge_without_sync_uses_bounds_alone(self):
        host = [
            span("offload.serialize", 1000, 100, span_id=1),
            span("offload.reply", 8000, 100, span_id=2),
        ]
        target = [span("offload.execute", 500, 200, pid=TARGET_PID)]
        merged = merge_traces(host, target)
        execute = next(r for r in merged if r.name == "offload.execute")
        assert execute.start_ns >= 1000


class TestGroupingAndPaths:
    def test_group_by_trace_skips_untraced(self):
        records = [
            span("a", 0, 1),
            span("b", 5, 1, trace="cd" * 16),
            span("untraced", 2, 1, trace=""),
        ]
        groups = group_by_trace(records)
        assert set(groups) == {TRACE, "cd" * 16}
        assert [r.name for r in groups[TRACE]] == ["a"]

    def test_critical_path_covers_whole_trace(self):
        records = [
            span("offload.serialize", 0, 100, span_id=1),
            span("offload.enqueue", 120, 50, span_id=2),
            span("offload.execute", 200, 300, span_id=10, parent=1,
                 pid=TARGET_PID),
            span("offload.deserialize", 600, 40, span_id=3),
        ]
        path = critical_path(records)
        names = [seg["phase"] for seg in path]
        assert names == [
            "offload.serialize", "(wait)", "offload.enqueue", "(wait)",
            "offload.execute", "(wait)", "offload.deserialize",
        ]
        starts = [seg["start_ns"] for seg in path]
        assert starts == sorted(starts)
        assert sum(seg["duration_ns"] for seg in path) == 640

    def test_cross_process_parent_does_not_demote_host_span(self):
        # execute parents to the host serialize span; serialize must
        # still count as a phase (only same-pid children demote).
        records = [
            span("offload.serialize", 0, 100, span_id=1),
            span("offload.execute", 200, 50, span_id=10, parent=1,
                 pid=TARGET_PID),
        ]
        names = [seg["phase"] for seg in critical_path(records)]
        assert "offload.serialize" in names
        assert "offload.execute" in names

    def test_local_parent_is_demoted(self):
        records = [
            span("offload.transport", 0, 100, span_id=1),
            span("offload.reply", 20, 30, span_id=2, parent=1),
        ]
        names = [seg["phase"] for seg in critical_path(records)]
        assert "offload.transport" not in names
        assert "offload.reply" in names

    def test_overlapping_phase_hands_over(self):
        # enqueue still open when execute starts: execute takes over.
        records = [
            span("offload.enqueue", 0, 500, span_id=1),
            span("offload.execute", 200, 100, span_id=10, pid=TARGET_PID),
        ]
        path = critical_path(records)
        assert [seg["phase"] for seg in path][:2] == [
            "offload.enqueue", "offload.execute",
        ]
        assert path[0]["duration_ns"] == 200
        starts = [seg["start_ns"] for seg in path]
        assert starts == sorted(starts)

    def test_critical_path_empty(self):
        assert critical_path([]) == []
        assert critical_path([event("only.events", 5)]) == []

    def test_trace_summary(self):
        records = [
            span("offload.serialize", 0, 100, span_id=1),
            span("offload.execute", 200, 50, span_id=10, parent=1,
                 pid=TARGET_PID),
            event("resilience.retry", 150),
        ]
        summary = trace_summary(records)
        assert summary["trace_id"] == TRACE
        assert summary["spans"] == 2
        assert summary["events"] == 1
        assert summary["pids"] == [HOST_PID, TARGET_PID]
        assert summary["total_ns"] == 250
        assert summary["critical_path"]
