"""Unit tests for the metric instruments and percentile math."""

import threading

import numpy as np
import pytest

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)


class TestPercentile:
    def test_matches_numpy(self):
        samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for q in (0, 25, 50, 75, 95, 100):
            assert percentile(samples, q) == pytest.approx(
                float(np.percentile(samples, q))
            )

    def test_single_sample(self):
        assert percentile([7.0], 95) == 7.0

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_thread_safe(self):
        c = Counter()
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(1000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_and_add(self):
        g = Gauge()
        g.set(10)
        g.add(-2.5)
        assert g.value == 7.5


class TestHistogram:
    def test_summary(self):
        h = Histogram()
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["mean"] == pytest.approx(2.5)
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["p50"] == pytest.approx(2.5)

    def test_empty_summary(self):
        assert Histogram().summary()["count"] == 0

    def test_window_wraps_but_lifetime_counts(self):
        h = Histogram(maxlen=2)
        for v in [1.0, 2.0, 3.0]:
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["mean"] == pytest.approx(2.0)  # lifetime mean
        assert s["min"] == 2.0  # window dropped the 1.0


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("offload.issued").inc(2)
        reg.gauge("queue.depth").set(3)
        reg.histogram("latency").observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"offload.issued": 2}
        assert snap["gauges"] == {"queue.depth": 3.0}
        assert snap["histograms"]["latency"]["count"] == 1

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.clear()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
