"""SLO declarations and multi-window burn-rate alerting."""

import pytest

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.slo import SLO, SLOMonitor, default_slos


def latency_slo(**overrides):
    base = dict(name="lat", phase="offload", threshold_ns=1000,
                objective=0.9)
    base.update(overrides)
    return SLO(**base)


def tight_monitor(slo=None, **overrides):
    """Small windows so a handful of observes moves the burn rates."""
    base = dict(fast_window=10, slow_window=20, min_samples=5)
    base.update(overrides)
    return SLOMonitor((slo or latency_slo(),), **base)


class TestSLO:
    def test_requires_name(self):
        with pytest.raises(ValueError, match="name"):
            SLO(name="", phase="offload", threshold_ns=1, objective=0.9)

    @pytest.mark.parametrize("objective", [0.0, 1.0, -0.5, 1.5])
    def test_objective_must_be_open_unit_interval(self, objective):
        with pytest.raises(ValueError, match="objective"):
            latency_slo(objective=objective)

    @pytest.mark.parametrize("threshold_ns", [0, -1])
    def test_threshold_must_be_positive_when_set(self, threshold_ns):
        with pytest.raises(ValueError, match="threshold_ns"):
            latency_slo(threshold_ns=threshold_ns)

    def test_latency_slo_bad_on_slow_or_error(self):
        slo = latency_slo(threshold_ns=1000)
        assert not slo.is_bad(1000, error=False)  # at threshold is good
        assert slo.is_bad(1001, error=False)
        assert slo.is_bad(1, error=True)

    def test_availability_slo_bad_only_on_error(self):
        slo = latency_slo(threshold_ns=None)
        assert not slo.is_bad(10**12, error=False)
        assert slo.is_bad(0, error=True)

    def test_default_slos_cover_latency_and_availability(self):
        slos = default_slos()
        thresholds = {s.threshold_ns is None for s in slos}
        assert thresholds == {True, False}
        assert all(s.phase == "offload" for s in slos)


class TestMonitorValidation:
    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            SLOMonitor((latency_slo(), latency_slo(objective=0.5)))

    @pytest.mark.parametrize("fast,slow", [(0, 10), (20, 10)])
    def test_rejects_bad_windows(self, fast, slow):
        with pytest.raises(ValueError, match="fast_window"):
            SLOMonitor((latency_slo(),), fast_window=fast, slow_window=slow)

    def test_rejects_nonpositive_burn_threshold(self):
        with pytest.raises(ValueError, match="burn_threshold"):
            SLOMonitor((latency_slo(),), burn_threshold=0.0)

    def test_defaults_to_default_slos(self):
        assert {s.name for s in SLOMonitor().slos} == {
            s.name for s in default_slos()
        }


class TestBurnRateAlerting:
    def test_burn_math(self):
        mon = tight_monitor()
        for _ in range(8):
            mon.observe("offload", 500)
        mon.observe("offload", 500, error=True)
        mon.observe("offload", 500, error=True)
        state = mon.snapshot()["lat"]
        # budget 0.1; fast window holds 10 ops, 2 bad -> burn 2.0.
        assert state["fast_burn"] == pytest.approx(2.0)
        assert state["slow_burn"] == pytest.approx(2.0)
        assert state["total"] == 10
        assert state["bad"] == 2

    def test_breach_fires_once_and_recovery_follows(self):
        events = []

        def emit(name, **attrs):
            events.append((name, attrs))

        mon = tight_monitor(emit=emit)
        for _ in range(5):
            mon.observe("offload", 5000)  # all bad: burn 10x
        assert [name for name, _ in events] == ["telemetry.slo_breach"]
        name, attrs = events[0]
        assert attrs["slo"] == "lat"
        assert attrs["phase"] == "offload"
        assert attrs["fast_burn"] >= 2.0
        assert attrs["objective"] == 0.9
        assert mon.breached() == ["lat"]

        # Good traffic washes the fast window clean -> one recovery.
        for _ in range(15):
            mon.observe("offload", 10)
        assert [name for name, _ in events] == [
            "telemetry.slo_breach", "telemetry.slo_recovered",
        ]
        assert mon.breached() == []

    def test_min_samples_guards_cold_start(self):
        mon = tight_monitor(min_samples=5)
        for _ in range(4):
            mon.observe("offload", 5000)
        assert mon.breached() == []
        mon.observe("offload", 5000)
        assert mon.breached() == ["lat"]

    def test_slow_window_filters_blips(self):
        # A burst that saturates the fast window but not the slow one
        # must not page: both windows have to burn hot.
        mon = tight_monitor(fast_window=5, slow_window=100, min_samples=5,
                            slo=latency_slo(objective=0.5))
        for _ in range(95):
            mon.observe("offload", 10)
        for _ in range(5):
            mon.observe("offload", 5000)
        state = mon.snapshot()["lat"]
        assert state["fast_burn"] >= 2.0
        assert state["slow_burn"] < 2.0
        assert mon.breached() == []

    def test_phase_filtering(self):
        mon = tight_monitor()
        for _ in range(50):
            mon.observe("offload.serialize", 10**9, error=True)
        assert mon.snapshot()["lat"]["total"] == 0
        assert mon.breached() == []

    def test_observe_phase_is_an_alias(self):
        mon = tight_monitor()
        mon.observe_phase("offload", 1)
        assert mon.snapshot()["lat"]["total"] == 1

    def test_window_counts_match_brute_force(self):
        # The O(1) incremental bad counts must agree with recounting the
        # retained window after arbitrary eviction traffic.
        mon = tight_monitor(fast_window=7, slow_window=13)
        pattern = [0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0, 1, 0, 0, 1, 1, 0, 1]
        for bad in pattern:
            mon.observe("offload", 5000 if bad else 10)
        (state,) = mon._states.values()
        assert state.fast_bad == sum(pattern[-7:])
        assert state.slow_bad == sum(pattern[-13:])
        assert len(state.fast) == 7
        assert len(state.slow) == 13


class TestGaugeExport:
    def test_burn_gauges_land_in_metrics_snapshot(self):
        reg = MetricsRegistry()
        mon = tight_monitor(metrics=reg)
        for _ in range(5):
            mon.observe("offload", 5000)
        gauges = reg.snapshot()["gauges"]
        assert gauges["slo.lat.fast_burn"] >= 2.0
        assert gauges["slo.lat.slow_burn"] >= 2.0
        assert gauges["slo.lat.breached"] == 1.0

    def test_snapshot_shape(self):
        mon = tight_monitor()
        mon.observe("offload", 10)
        state = mon.snapshot()["lat"]
        assert state == {
            "phase": "offload",
            "threshold_ns": 1000,
            "objective": 0.9,
            "total": 1,
            "bad": 0,
            "fast_burn": 0.0,
            "slow_burn": 0.0,
            "breached": False,
        }
