"""Live introspection: OP_INTROSPECT, RuntimeInspector, /introspect, top.

The contract under test: every transport answers ``introspect_target``
with the same payload shape, the inspector merges host + target + the
flight recorder into one snapshot, the metrics server serves it as
JSON, and ``repro top`` renders it without touching the network.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.backends import (
    LocalBackend,
    ShmBackend,
    TcpBackend,
    spawn_local_server,
    spawn_shm_server,
)
from repro.ham import f2f
from repro.offload import Runtime
from repro.telemetry import top
from repro.telemetry.inspect import SNAPSHOT_SCHEMA_VERSION, RuntimeInspector

from tests import apps

#: Every transport's introspect payload must carry exactly these keys.
_PAYLOAD_KEYS = {
    "role", "transport", "pid", "workers", "pending_invokes",
    "messages_executed", "live_buffers", "rings",
}


def _check_payload(payload, transport):
    assert _PAYLOAD_KEYS <= set(payload)
    assert payload["role"] == "target"
    assert payload["transport"] == transport
    assert isinstance(payload["pid"], int)
    assert payload["workers"]["pool_size"] >= 1
    assert payload["messages_executed"] >= 1


class TestIntrospectTarget:
    def test_local_round_trip(self):
        runtime = Runtime(LocalBackend())
        try:
            runtime.sync(1, f2f(apps.add, 1, 2))
            payload = runtime.backend.introspect_target()
        finally:
            runtime.shutdown()
        _check_payload(payload, "local")
        assert payload["rings"] is None

    def test_tcp_round_trip(self):
        process, address = spawn_local_server()
        backend = TcpBackend(
            address, on_shutdown=lambda: process.join(timeout=5)
        )
        runtime = Runtime(backend)
        try:
            runtime.sync(1, f2f(apps.add, 1, 2))
            payload = backend.introspect_target(timeout=5.0)
        finally:
            runtime.shutdown()
        _check_payload(payload, "tcp")
        assert payload["rings"] is None
        # The worker decrements its active counter after sending the
        # reply, so a probe racing the tail of the last sync may still
        # see it — a live view, not a settled ledger.
        assert payload["pending_invokes"] in (0, 1)

    def test_shm_round_trip_reports_rings(self):
        process, segment = spawn_shm_server()
        backend = ShmBackend(
            segment,
            alive_fn=process.is_alive,
            on_shutdown=lambda: process.join(timeout=5),
        )
        runtime = Runtime(backend)
        try:
            runtime.sync(1, f2f(apps.add, 1, 2))
            payload = backend.introspect_target(timeout=5.0)
        finally:
            runtime.shutdown()
        _check_payload(payload, "shm")
        rings = payload["rings"]
        assert rings["capacity"] > 0
        for ring in (rings["request"], rings["reply"]):
            assert {"used", "capacity", "spin_waits",
                    "sleep_stalls", "stalled_s"} <= set(ring)

    def test_payload_shape_is_transport_agnostic(self):
        """The tool contract: tcp and shm answer identical key sets."""
        process, address = spawn_local_server()
        tcp = TcpBackend(address, on_shutdown=lambda: process.join(timeout=5))
        tcp_runtime = Runtime(tcp)
        try:
            tcp_runtime.sync(1, f2f(apps.add, 1, 2))
            tcp_payload = tcp.introspect_target(timeout=5.0)
        finally:
            tcp_runtime.shutdown()
        shm_process, segment = spawn_shm_server()
        shm = ShmBackend(
            segment,
            alive_fn=shm_process.is_alive,
            on_shutdown=lambda: shm_process.join(timeout=5),
        )
        shm_runtime = Runtime(shm)
        try:
            shm_runtime.sync(1, f2f(apps.add, 1, 2))
            shm_payload = shm.introspect_target(timeout=5.0)
        finally:
            shm_runtime.shutdown()
        assert set(tcp_payload) == set(shm_payload)


class TestRuntimeInspector:
    def test_snapshot_merges_host_target_and_flight(self):
        runtime = Runtime(LocalBackend())
        try:
            runtime.sync(1, f2f(apps.add, 1, 2))
            snapshot = RuntimeInspector(runtime).snapshot()
        finally:
            runtime.shutdown()
        assert snapshot["schema_version"] == SNAPSHOT_SCHEMA_VERSION
        assert snapshot["host"]["pid"] > 0
        window = snapshot["host"]["window"]
        assert window["in_flight"] == 0 and window["limit"] > 0
        assert snapshot["target"]["role"] == "target"
        assert {"noted", "dropped", "dumps", "crash_dir"} <= set(
            snapshot["flight"]
        )

    def test_probe_target_false_skips_the_wire(self):
        runtime = Runtime(LocalBackend())
        try:
            snapshot = RuntimeInspector(runtime).snapshot(probe_target=False)
        finally:
            runtime.shutdown()
        assert snapshot["target"] is None

    def test_snapshot_is_json_serializable(self):
        """The /introspect endpoint must be able to serve it verbatim."""
        runtime = Runtime(LocalBackend())
        try:
            snapshot = RuntimeInspector(runtime).snapshot()
        finally:
            runtime.shutdown()
        json.dumps(snapshot, default=str)


class TestIntrospectEndpoint:
    def test_endpoint_serves_the_snapshot(self):
        from repro.offload import api as offload

        offload.init(LocalBackend(), telemetry={"metrics_port": 0})
        try:
            offload.sync(1, f2f(apps.add, 2, 3))
            url = offload.metrics_server().url
            snapshot = top.fetch_snapshot(url)
            assert snapshot["host"]["pid"] > 0
            assert snapshot["target"]["transport"] == "local"
            # offload.introspect() returns the same merged payload.
            direct = offload.introspect()
            assert set(direct) == set(snapshot)
        finally:
            offload.finalize()

    def test_server_without_introspect_fn_404s(self):
        from repro.telemetry.metrics import MetricsRegistry
        from repro.telemetry.promexport import MetricsServer

        server = MetricsServer(MetricsRegistry().snapshot)
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/introspect", timeout=2)
            assert err.value.code == 404
        finally:
            server.close()


class TestTopRendering:
    def _snapshot(self):
        return {
            "schema_version": 1,
            "host": {
                "pid": 100,
                "window": {
                    "in_flight": 2, "limit": 8,
                    "handles": [
                        {"corr": 1, "label": "stencil"},
                        {"corr": 2, "label": "stencil"},
                    ],
                },
                "transport": {
                    "backend": "shm",
                    "request_ring": {"used": 512, "capacity": 1024,
                                     "sleep_stalls": 3},
                    "reply_ring": {"used": 0, "capacity": 1024},
                    "pending_replies": 2,
                },
                "health": {1: {"health": "up"}},
            },
            "target": {
                "role": "target", "transport": "shm", "pid": 200,
                "workers": {"pool_size": 4, "active": 1},
                "pending_invokes": 1, "messages_executed": 42,
                "live_buffers": 2,
                "rings": {"capacity": 1024,
                          "request": {"used": 512, "capacity": 1024},
                          "reply": {"used": 0, "capacity": 1024}},
            },
            "flight": {"noted": 7, "dropped": 0, "dumps": [],
                       "crash_dir": None},
        }

    def test_render_frame_shows_all_sections(self):
        frame = top.render_frame(self._snapshot(), source="test")
        assert "HOST  pid 100" in frame
        assert "2/8 in flight" in frame
        assert "stencilx2" in frame
        assert "512/1024 (50.0%) (3 stalls)" in frame
        assert "TARGET  pid 200 (shm)" in frame
        assert "1/4 active" in frame
        assert "executed 42" in frame
        assert "FLIGHT  noted 7" in frame
        assert "1:up" in frame

    def test_render_frame_handles_unreachable_target(self):
        snapshot = self._snapshot()
        snapshot["target"] = {"role": "target", "error": "unreachable"}
        frame = top.render_frame(snapshot, source="test")
        assert "TARGET  unreachable" in frame

    def test_render_frame_handles_error_payload(self):
        frame = top.render_frame(
            {"error": "offload API not initialized"}, source="test"
        )
        assert "offload API not initialized" in frame

    def test_render_frame_shows_tsdb_series_and_anomalies(self):
        snapshot = self._snapshot()
        snapshot["tsdb"] = {
            "samples": 30, "interval": 1.0,
            "series": {
                "target.in_flight.1": {
                    "last": 2.0, "rate": 0.0,
                    "points": [0.0, 1.0, 2.0, 4.0, 2.0],
                },
                "offload.issued": {
                    "last": 90.0, "rate": 10.5,
                    "points": [50.0, 60.0, 70.0, 80.0, 90.0],
                },
            },
            "anomalies": [{"series": "target.in_flight.1", "score": 7.3,
                           "since": 123.0}],
        }
        frame = top.render_frame(snapshot, source="test")
        assert "SERIES  samples 30" in frame
        assert "target.in_flight.1" in frame
        assert "10.500/s" in frame
        assert "ANOMALY target.in_flight.1=7.3" in frame
        # Sparkline blocks present for the varying series.
        assert any(ch in frame for ch in "▁▂▃▄▅▆▇█")

    def test_sparkline_shapes(self):
        assert top.sparkline([]) == ""
        assert top.sparkline([5.0, 5.0, 5.0]) == "▁▁▁"
        ramp = top.sparkline([0.0, 1.0, 2.0, 3.0])
        assert ramp[0] == "▁" and ramp[-1] == "█"
        assert len(top.sparkline(list(range(100)), width=24)) == 24

    def test_once_against_dead_endpoint_exits_nonzero(self, capsys):
        rc = top.main(["http://127.0.0.1:1", "--once", "--timeout", "0.2"])
        assert rc == 1
        assert "unreachable" in capsys.readouterr().out

    def test_once_against_live_endpoint_exits_zero(self, capsys):
        from repro.offload import api as offload

        offload.init(LocalBackend(), telemetry={"metrics_port": 0})
        try:
            rc = top.main([offload.metrics_server().url, "--once"])
        finally:
            offload.finalize()
        assert rc == 0
        assert "HOST" in capsys.readouterr().out

    def test_json_one_shot_prints_raw_snapshot(self, capsys):
        from repro.offload import api as offload

        offload.init(LocalBackend(),
                     telemetry={"metrics_port": 0, "tsdb": True})
        try:
            offload.sync(1, f2f(apps.add, 2, 3))
            rc = top.main([offload.metrics_server().url, "--json"])
        finally:
            offload.finalize()
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SNAPSHOT_SCHEMA_VERSION
        assert payload["host"]["pid"] > 0
        assert "tsdb" in payload

    def test_json_against_dead_endpoint_exits_nonzero(self, capsys):
        rc = top.main(["http://127.0.0.1:1", "--json", "--timeout", "0.2"])
        assert rc == 1
        out = capsys.readouterr()
        assert out.out == ""
        assert "unreachable" in out.err


class TestTsdbSnapshot:
    def test_snapshot_has_tsdb_section_when_installed(self):
        from repro.telemetry import recorder as telemetry
        from repro.telemetry.tsdb import install_tsdb

        telemetry.enable()
        recorder = telemetry.get()
        tsdb = install_tsdb(recorder)
        runtime = Runtime(LocalBackend())
        try:
            tsdb.attach_runtime(runtime)
            runtime.sync(1, f2f(apps.add, 1, 2))
            import time as _time
            now = _time.time()
            for i in range(5):
                tsdb.store.record("target.in_flight.1", float(i), now - 4 + i)
                tsdb.store.record("offload.issued", float(i * 2), now - 4 + i)
            section = RuntimeInspector(runtime).tsdb_snapshot()
        finally:
            runtime.shutdown()
            recorder.tsdb = None
        entry = section["series"]["target.in_flight.1"]
        assert entry["last"] == 4.0
        assert entry["points"] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert section["series"]["offload.issued"]["rate"] == pytest.approx(
            2.0)
        assert section["anomalies"] == []

    def test_snapshot_tsdb_none_when_not_installed(self):
        runtime = Runtime(LocalBackend())
        try:
            snapshot = RuntimeInspector(runtime).snapshot(probe_target=False)
        finally:
            runtime.shutdown()
        assert snapshot["tsdb"] is None
