"""Flight recorder: bounded ring, crash bundles, offline reading.

The recorder is a module-global singleton armed at import; tests here
mostly exercise fresh :class:`FlightRecorder` instances, and the ones
that touch the global (``configure``) restore its state afterwards.
"""

import json

import pytest

from repro.telemetry import flightrecorder
from repro.telemetry.flightrecorder import (
    BUNDLE_EVENTS,
    BUNDLE_MANIFEST,
    FlightRecorder,
)


@pytest.fixture(autouse=True)
def _restore_global():
    """Tests must not leave the process-global recorder armed."""
    flight = flightrecorder.get()
    saved = (flight.crash_dir, flight.capacity, flight.debounce)
    yield
    flight.crash_dir, _, flight.debounce = saved
    flight.enabled = True


class TestRing:
    def test_note_is_bounded_and_counts_drops(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.note("tick", i=i)
        assert len(rec.records()) == 4
        assert rec.noted == 10
        assert rec.dropped == 6
        # Lossy toward the *old* end: recency is the point.
        assert [attrs["i"] for _, _, attrs in rec.records()] == [6, 7, 8, 9]

    def test_disabled_recorder_notes_nothing(self):
        rec = FlightRecorder(capacity=4)
        rec.enabled = False
        rec.note("tick")
        assert rec.records() == []
        assert rec.noted == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_clear_keeps_counters(self):
        rec = FlightRecorder(capacity=4)
        rec.note("tick")
        rec.clear()
        assert rec.records() == []
        assert rec.noted == 1


class TestTriggerAndDump:
    def test_trigger_without_crash_dir_notes_but_never_writes(self, tmp_path):
        rec = FlightRecorder(capacity=8, crash_dir=None)
        rec.crash_dir = None  # defeat any REPRO_CRASH_DIR in the env
        assert rec.trigger("boom") is None
        assert rec.records()[-1][1] == "flight.trigger"
        assert rec.dumps == []

    def test_trigger_writes_a_complete_bundle(self, tmp_path):
        rec = FlightRecorder(capacity=8, crash_dir=tmp_path)
        rec.note("qos.shed", tenant="noisy")
        bundle = rec.trigger("node_down", node=3)
        assert bundle is not None and bundle.is_dir()
        assert "node_down" in bundle.name
        manifest = json.loads((bundle / BUNDLE_MANIFEST).read_text())
        assert manifest["reason"] == "node_down"
        assert manifest["attrs"] == {"node": "3"}
        assert manifest["events"] == 2  # the shed + the trigger itself
        rows = [
            json.loads(line)
            for line in (bundle / BUNDLE_EVENTS).read_text().splitlines()
        ]
        assert rows[0]["name"] == "qos.shed"
        assert rows[0]["attrs"] == {"tenant": "noisy"}
        assert rows[-1]["name"] == "flight.trigger"
        assert (bundle / "inflight.json").is_file()
        assert (bundle / "config.json").is_file()

    def test_reason_is_sanitized_into_the_directory_name(self, tmp_path):
        rec = FlightRecorder(capacity=8, crash_dir=tmp_path)
        bundle = rec.trigger("weird/../reason !")
        assert bundle is not None
        assert "/" not in bundle.name.replace(str(tmp_path), "")
        assert ".." not in bundle.name

    def test_debounce_coalesces_and_force_bypasses(self, tmp_path):
        rec = FlightRecorder(capacity=8, crash_dir=tmp_path, debounce=60.0)
        first = rec.trigger("boom")
        assert first is not None
        assert rec.trigger("boom") is None  # inside the window
        forced = rec.trigger("sigusr2", force=True)
        assert forced is not None and forced != first
        # The coalesced trigger is accounted in the forced manifest.
        manifest = json.loads((forced / BUNDLE_MANIFEST).read_text())
        assert manifest["suppressed_triggers"] == 1

    def test_dumps_property_lists_bundles_oldest_first(self, tmp_path):
        rec = FlightRecorder(capacity=8, crash_dir=tmp_path, debounce=0.0)
        a = rec.trigger("one")
        b = rec.trigger("two")
        assert rec.dumps == [a, b]


class TestOfflineReading:
    def _bundle(self, tmp_path):
        rec = FlightRecorder(capacity=8, crash_dir=tmp_path)
        rec.note("health.transition", node=1, health="suspect")
        return rec.trigger("peer_death")

    def test_load_bundle_round_trips(self, tmp_path):
        bundle = self._bundle(tmp_path)
        loaded = flightrecorder.load_bundle(bundle)
        assert loaded["manifest"]["reason"] == "peer_death"
        assert [e["name"] for e in loaded["events"]] == [
            "health.transition", "flight.trigger",
        ]
        assert loaded["skipped_lines"] == 0

    def test_truncated_events_are_skipped_not_fatal(self, tmp_path):
        bundle = self._bundle(tmp_path)
        with (bundle / BUNDLE_EVENTS).open("a") as fh:
            fh.write('{"name": "half-written')
        loaded = flightrecorder.load_bundle(bundle)
        assert loaded["skipped_lines"] == 1
        assert len(loaded["events"]) == 2

    def test_missing_manifest_raises(self, tmp_path):
        (tmp_path / "notabundle").mkdir()
        with pytest.raises(ValueError, match="not a crash bundle"):
            flightrecorder.load_bundle(tmp_path / "notabundle")

    def test_unparseable_manifest_raises(self, tmp_path):
        bundle = self._bundle(tmp_path)
        (bundle / BUNDLE_MANIFEST).write_text("{broken")
        with pytest.raises(ValueError, match="unparseable manifest"):
            flightrecorder.load_bundle(bundle)

    def test_find_bundles_ignores_non_bundles(self, tmp_path):
        bundle = self._bundle(tmp_path)
        (tmp_path / "junk").mkdir()
        (tmp_path / "loose-file").write_text("x")
        assert flightrecorder.find_bundles(tmp_path) == [bundle]
        assert flightrecorder.find_bundles(tmp_path / "missing") == []


class TestConfigure:
    def test_configure_arms_the_global_recorder(self, tmp_path):
        flight = flightrecorder.configure(
            tmp_path, debounce=0.0, install_signal=False
        )
        assert flight is flightrecorder.get()
        flightrecorder.note("tick")
        bundle = flightrecorder.trigger("boom")
        assert bundle is not None and bundle.parent == tmp_path

    def test_configure_resizes_preserving_recent(self, tmp_path):
        flight = flightrecorder.get()
        original = flight.capacity
        try:
            flight.clear()
            for i in range(6):
                flight.note("tick", i=i)
            flightrecorder.configure(capacity=3, install_signal=False)
            assert flight.capacity == 3
            assert [a["i"] for _, _, a in flight.records()] == [3, 4, 5]
        finally:
            flightrecorder.configure(capacity=original, install_signal=False)


class TestIncident:
    def test_recovery_notes_without_dumping(self, tmp_path):
        flight = flightrecorder.get()
        flight.crash_dir = tmp_path
        flight.clear()
        before = list(flight.dumps)
        assert flightrecorder.incident(
            "telemetry.slo_recovered", slo="offload-latency") is None
        assert flight.records()[-1][1] == "telemetry.slo_recovered"
        assert flight.dumps == before

    def test_entry_notes_and_dumps(self, tmp_path):
        flight = flightrecorder.get()
        flight.crash_dir = tmp_path
        flight.debounce = 0.0
        flight.clear()
        bundle = flightrecorder.incident(
            "telemetry.anomaly", dump_reason="telemetry_anomaly",
            series="target.reply.1.p95", score=9.2,
        )
        assert bundle is not None and "telemetry_anomaly" in bundle.name
        names = [name for _, name, _ in flight.records()]
        assert "telemetry.anomaly" in names
        manifest = json.loads((bundle / BUNDLE_MANIFEST).read_text())
        assert manifest["attrs"]["series"] == "target.reply.1.p95"


class TestTimeseriesBundle:
    def test_bundle_includes_timeseries_json(self, tmp_path):
        from repro.telemetry import recorder as telemetry
        from repro.telemetry.flightrecorder import BUNDLE_TIMESERIES
        from repro.telemetry.tsdb import install_tsdb

        telemetry.enable()
        recorder = telemetry.get()
        tsdb = install_tsdb(recorder)
        try:
            import time as _time
            now = _time.time()
            for i in range(5):
                tsdb.store.record(
                    "target.in_flight.1", float(i), now - 4 + i)
            rec = FlightRecorder(capacity=8, crash_dir=tmp_path)
            bundle = rec.dump("anomaly")
            payload = json.loads((bundle / BUNDLE_TIMESERIES).read_text())
            assert payload["target.in_flight.1"]["v"] == [
                0.0, 1.0, 2.0, 3.0, 4.0]
            loaded = flightrecorder.load_bundle(bundle)
            assert loaded["timeseries"] == payload
        finally:
            recorder.tsdb = None
            telemetry.disable()

    def test_no_tsdb_no_timeseries_file(self, tmp_path):
        from repro.telemetry.flightrecorder import BUNDLE_TIMESERIES

        rec = FlightRecorder(capacity=8, crash_dir=tmp_path)
        bundle = rec.dump("boom")
        assert not (bundle / BUNDLE_TIMESERIES).exists()
        assert flightrecorder.load_bundle(bundle)["timeseries"] is None

    def test_timeseries_window_bounds_the_dump(self, tmp_path):
        from repro.telemetry import recorder as telemetry
        from repro.telemetry.flightrecorder import BUNDLE_TIMESERIES
        from repro.telemetry.tsdb import install_tsdb

        telemetry.enable()
        recorder = telemetry.get()
        tsdb = install_tsdb(recorder)
        try:
            import time as _time
            now = _time.time()
            tsdb.store.record("g", 1.0, now - 10_000)  # far outside
            tsdb.store.record("g", 2.0, now)
            rec = FlightRecorder(capacity=8, crash_dir=tmp_path)
            rec.timeseries_window = 60.0
            bundle = rec.dump("boom")
            payload = json.loads((bundle / BUNDLE_TIMESERIES).read_text())
            assert payload["g"]["v"] == [2.0]
        finally:
            recorder.tsdb = None
            telemetry.disable()


class TestTransportSnapshot:
    class _Backend:
        def stats(self):
            return {
                "backend": "tcp",
                "reactor": {"max_lag_us": 120, "loops": 42},
                "batch": {"flush_reasons": {"deadline": 3, "full": 1}},
            }

    class _Runtime:
        def __init__(self):
            self.backend = TestTransportSnapshot._Backend()

    def test_metrics_json_carries_reactor_and_flush_reasons(self, tmp_path):
        rec = FlightRecorder(capacity=8, crash_dir=tmp_path)
        runtime = self._Runtime()  # held: the recorder only weak-refs it
        rec.attach(runtime)
        bundle = rec.dump("boom")
        metrics = json.loads((bundle / "metrics.json").read_text())
        [entry] = metrics["transport"]
        assert entry["reactor"]["max_lag_us"] == 120
        assert entry["flush_reasons"] == {"deadline": 3, "full": 1}

    def test_statless_backend_contributes_nothing(self, tmp_path):
        class _Plain:
            def stats(self):
                return {"backend": "local"}

        class _Rt:
            backend = _Plain()

        rec = FlightRecorder(capacity=8, crash_dir=tmp_path)
        runtime = _Rt()
        rec.attach(runtime)
        assert rec._transport_snapshot() == []


class TestRuntimeIntegration:
    def test_runtime_attach_fills_inflight_and_config(self, tmp_path):
        from repro.backends import LocalBackend
        from repro.offload import Runtime

        from tests import apps  # noqa: F401 - registers the catalog

        runtime = Runtime(LocalBackend())
        try:
            rec = flightrecorder.get()
            rec.crash_dir = tmp_path
            bundle = rec.dump("manual")
            loaded = flightrecorder.load_bundle(bundle)
            backends = [e.get("backend") for e in loaded["inflight"]]
            assert "LocalBackend" in backends
            assert any(
                c.get("backend") == "LocalBackend" for c in loaded["config"]
            )
        finally:
            runtime.shutdown()

    def test_clean_shutdown_detaches(self):
        from repro.backends import LocalBackend
        from repro.offload import Runtime

        runtime = Runtime(LocalBackend())
        flight = flightrecorder.get()
        runtime.shutdown()
        assert runtime not in flight._runtimes
