"""``repro.telemetry.report`` on flight-recorder crash bundles.

A directory argument flips the report tool into post-mortem mode.
Contract: a valid bundle renders and exits 0, a truncated events file
is survivable (skipped lines are counted, exit 0), an empty bundle is
a fact not a crash (exit 0), and a directory that is not a bundle is a
usage error (exit 2, argparse convention).
"""

import json

import pytest

from repro.telemetry import flightrecorder
from repro.telemetry.flightrecorder import BUNDLE_EVENTS, FlightRecorder
from repro.telemetry.report import main, render_bundle


@pytest.fixture()
def bundle(tmp_path):
    rec = FlightRecorder(capacity=16, crash_dir=tmp_path)
    for i in range(3):
        rec.note("qos.shed", tenant="noisy", seq=i)
    rec.note("health.transition", node=1, health="down")
    return rec.trigger("node_down", node=1)


class TestRenderBundle:
    def test_renders_manifest_events_and_tail(self, bundle):
        text = render_bundle(flightrecorder.load_bundle(bundle))
        assert "reason=node_down" in text
        assert "events retained 5" in text
        assert "qos.shed" in text
        assert "last events:" in text
        assert "flight.trigger" in text

    def test_truncation_is_reported(self, bundle):
        with (bundle / BUNDLE_EVENTS).open("a") as fh:
            fh.write('{"cut off')
        text = render_bundle(flightrecorder.load_bundle(bundle))
        assert "1 truncated event line(s) skipped" in text

    def test_empty_bundle_renders_header_only(self, tmp_path):
        rec = FlightRecorder(capacity=16, crash_dir=tmp_path)
        empty = rec.dump("manual")
        (empty / BUNDLE_EVENTS).write_text("")
        loaded = flightrecorder.load_bundle(empty)
        loaded["events"] = []
        text = render_bundle(loaded)
        assert "reason=manual" in text
        assert "no recorded events" in text


class TestMainOnDirectories:
    def test_valid_bundle_exits_zero(self, bundle, capsys):
        assert main([str(bundle)]) == 0
        out = capsys.readouterr().out
        assert "crash bundle: reason=node_down" in out

    def test_truncated_bundle_exits_zero(self, bundle, capsys):
        with (bundle / BUNDLE_EVENTS).open("a") as fh:
            fh.write('{"cut off')
        assert main([str(bundle)]) == 0
        assert "skipped" in capsys.readouterr().out

    def test_bundle_without_events_file_exits_zero(self, bundle, capsys):
        (bundle / BUNDLE_EVENTS).unlink()
        assert main([str(bundle)]) == 0
        assert "no recorded events" in capsys.readouterr().out

    def test_non_bundle_directory_exits_two(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main([str(tmp_path)])
        assert exc.value.code == 2
        assert "not a crash bundle" in capsys.readouterr().err

    def test_json_format_emits_the_loaded_bundle(self, bundle, capsys):
        assert main([str(bundle), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["manifest"]["reason"] == "node_down"
        assert [e["name"] for e in payload["events"]][-1] == "flight.trigger"

    def test_plain_file_still_goes_through_trace_path(self, tmp_path, capsys):
        trace = tmp_path / "empty.jsonl"
        trace.write_text("")
        assert main([str(trace)]) == 0
        assert "no records" in capsys.readouterr().out
