"""Head sampling + tail retention: the adaptive trace pipeline."""

import random

import pytest

from repro.backends.local import LocalBackend
from repro.ham import f2f
from repro.offload import api as offload_api
from repro.telemetry import context as trace_context
from repro.telemetry import recorder as telemetry
from repro.telemetry.recorder import EventRecord, Recorder, SpanRecord
from repro.telemetry.sampling import HeadSampler, TailPipeline, complete_offload

from tests import apps


def unsampled_ctx():
    return trace_context.new_trace(sampled=False)


def span_for(ctx, name="offload.serialize", duration_ns=1000, **attrs):
    return SpanRecord(
        name=name, category="offload", start_ns=100, duration_ns=duration_ns,
        span_id=1, parent_id=0, pid=10, tid=20, attrs=attrs,
        trace_id=ctx.trace_id_hex,
    )


class TestHeadSampler:
    @pytest.mark.parametrize("rate", [-0.1, 1.1, 2.0])
    def test_rejects_rate_outside_unit_interval(self, rate):
        with pytest.raises(ValueError, match="sample_rate"):
            HeadSampler(rate)

    def test_rate_one_samples_everything(self):
        sampler = HeadSampler(1.0)
        assert all(sampler.new_trace().sampled for _ in range(50))

    def test_rate_zero_samples_nothing(self):
        sampler = HeadSampler(0.0)
        assert not any(sampler.new_trace().sampled for _ in range(50))

    def test_decision_is_deterministic_per_trace_id(self):
        # Any process evaluating the same id must agree — that is what
        # lets the v2 header flag and a recomputation coexist.
        sampler_a, sampler_b = HeadSampler(0.37), HeadSampler(0.37)
        rng = random.Random(7)
        for _ in range(200):
            trace_id = rng.getrandbits(128) | 1
            assert sampler_a.decide(trace_id) == sampler_b.decide(trace_id)

    def test_half_rate_splits_uniform_ids(self):
        sampler = HeadSampler(0.5)
        rng = random.Random(11)
        hits = sum(
            sampler.decide(rng.getrandbits(128) | 1) for _ in range(4000)
        )
        assert 0.45 < hits / 4000 < 0.55

    def test_minted_context_carries_verdict(self):
        ctx = HeadSampler(0.0).new_trace()
        assert not ctx.sampled
        assert ctx.flags == 0


class TestTailPipeline:
    def test_fast_unsampled_trace_is_dropped_after_fold(self):
        rec = Recorder()
        pipe = TailPipeline(min_samples=5)
        ctx = unsampled_ctx()
        pipe.stage(span_for(ctx))
        kept = pipe.complete(rec, ctx, duration_ns=1000)
        assert not kept
        assert rec.records() == []
        assert rec.metrics.snapshot()["counters"]["trace.tail_dropped"] == 1

    def test_errored_trace_retained_even_before_min_samples(self):
        rec = Recorder()
        pipe = TailPipeline(min_samples=50)
        ctx = unsampled_ctx()
        pipe.stage(span_for(ctx))
        assert pipe.complete(rec, ctx, duration_ns=1000, error=True)
        assert [r.trace_id for r in rec.records()] == [ctx.trace_id_hex]
        counters = rec.metrics.snapshot()["counters"]
        assert counters["trace.tail_retained"] == 1
        assert counters["trace.tail_retained_error"] == 1

    def test_slow_outlier_promoted_into_the_ring(self):
        rec = Recorder()
        pipe = TailPipeline(min_samples=5, window=64)
        # Warm the rolling window with ordinary round trips.
        for _ in range(20):
            pipe.complete(rec, trace_context.new_trace(), duration_ns=1000)
        ctx = unsampled_ctx()
        pipe.stage(span_for(ctx, name="offload.serialize"))
        pipe.stage(span_for(ctx, name="offload.execute"))
        assert pipe.complete(rec, ctx, duration_ns=50_000)
        names = {r.name for r in rec.records()}
        assert names == {"offload.serialize", "offload.execute"}
        counters = rec.metrics.snapshot()["counters"]
        assert counters["trace.tail_retained_slow"] == 1

    def test_threshold_excludes_the_current_duration(self):
        # The first-ever outlier must be judged against the *previous*
        # window, or it would raise the bar it is measured by.
        rec = Recorder()
        pipe = TailPipeline(min_samples=5, window=64)
        for _ in range(10):
            pipe.complete(rec, trace_context.new_trace(), duration_ns=1000)
        ctx = unsampled_ctx()
        pipe.stage(span_for(ctx))
        assert pipe.complete(rec, ctx, duration_ns=10_000_000)

    def test_sampled_trace_only_feeds_the_window(self):
        rec = Recorder()
        pipe = TailPipeline()
        assert pipe.complete(rec, trace_context.new_trace(), duration_ns=500)
        assert rec.records() == []

    def test_pending_bounded_by_eviction(self):
        rec = Recorder()
        pipe = TailPipeline(max_pending=2)
        contexts = [unsampled_ctx() for _ in range(3)]
        for ctx in contexts:
            pipe.stage(span_for(ctx))
        assert pipe.pending_traces() == 2
        assert pipe.evicted == 1
        # The evicted (oldest) trace has nothing left to promote.
        assert not pipe.complete(rec, contexts[0], duration_ns=1, error=True)

    def test_per_trace_record_cap(self):
        pipe = TailPipeline(max_records_per_trace=2)
        ctx = unsampled_ctx()
        for _ in range(4):
            pipe.stage(span_for(ctx))
        assert pipe.overflowed == 2
        assert pipe.staged == 2

    def test_untraced_records_are_ignored(self):
        pipe = TailPipeline()
        record = EventRecord(
            name="loose", category="offload", ts_ns=1, span_id=1,
            parent_id=0, pid=1, tid=1,
        )
        pipe.stage(record)
        assert pipe.pending_traces() == 0

    def test_staged_spans_feed_kernel_phase_profiles(self):
        rec = Recorder()
        pipe = TailPipeline(min_samples=50)
        ctx = unsampled_ctx()
        pipe.stage(span_for(ctx, name="offload.execute", duration_ns=2000))
        pipe.complete(rec, ctx, duration_ns=4000, kernel="my_kernel")
        summary = rec.profiles.snapshot()["my_kernel"]
        assert summary["phases"]["offload.execute"]["count"] == 1

    def test_clear_resets_staging_and_window(self):
        pipe = TailPipeline()
        ctx = unsampled_ctx()
        pipe.stage(span_for(ctx))
        pipe.clear()
        assert pipe.pending_traces() == 0


class TestCompleteOffload:
    def test_noop_while_telemetry_disabled(self):
        complete_offload(unsampled_ctx(), kernel="k", duration_ns=10)

    def test_feeds_profiles_and_slo(self):
        from repro.telemetry.slo import SLO, SLOMonitor

        rec = Recorder()
        rec.slo = SLOMonitor(
            (SLO(name="lat", phase="offload", threshold_ns=100,
                 objective=0.5),),
            min_samples=1,
        )
        complete_offload(
            trace_context.new_trace(), kernel="k", duration_ns=500,
            recorder=rec,
        )
        assert rec.profiles.snapshot()["k"]["count"] == 1
        assert rec.slo.snapshot()["lat"]["bad"] == 1


class TestUnsampledOffloadEndToEnd:
    """Satellite (a): the dormant ``sampled`` flag, fixed end-to-end."""

    def test_unsampled_offload_zero_spans_but_counters_bump(self):
        try:
            offload_api.init(LocalBackend(), telemetry={"sample_rate": 0.0})
            assert offload_api.sync(1, f2f(apps.add, 2, 3)) == 5
            rec = telemetry.get()
            # The whole trace — host and execute side — stays out of the
            # ring: staged by the tail pipeline, dropped at completion.
            assert rec.records() == []
            counters = rec.metrics.snapshot()["counters"]
            assert counters["offload.issued"] == 1
            assert counters["future.settled"] == 1
            assert counters["trace.tail_dropped"] == 1
            # ... while every aggregate still saw the offload.
            (profile,) = rec.profiles.snapshot().values()
            assert profile["count"] == 1
            hists = rec.metrics.snapshot()["histograms"]
            assert any(name.startswith("phase.offload.") for name in hists)
        finally:
            offload_api.finalize()

    def test_sampled_offload_still_records_spans(self):
        try:
            offload_api.init(LocalBackend(), telemetry={"sample_rate": 1.0})
            assert offload_api.sync(1, f2f(apps.add, 2, 3)) == 5
            rec = telemetry.get()
            assert {r.name for r in rec.spans()} >= {
                "offload.serialize", "offload.execute"
            }
        finally:
            offload_api.finalize()

    def test_slow_outlier_survives_zero_sampling(self):
        # The tentpole's acceptance story: rate 0, warm traffic, then an
        # injected straggler — the straggler's spans must land in the
        # ring with their trace intact.
        try:
            offload_api.init(
                LocalBackend(),
                telemetry={"sample_rate": 0.0, "tail_min_samples": 5},
            )
            rec = telemetry.get()
            # Warm with a kernel whose duration dwarfs scheduler noise:
            # the rolling p99 of ten near-empty offloads is so tight
            # that a sub-millisecond stall on a loaded single-CPU box
            # reads as an outlier and flakes the empty-ring assertion.
            for _ in range(10):
                offload_api.sync(1, f2f(apps.sleep_then, 0.01, None))
            assert rec.records() == []
            offload_api.sync(1, f2f(apps.sleep_then, 0.2, None))
            retained = rec.spans()
            assert retained, "slow outlier was not tail-retained"
            assert len({r.trace_id for r in retained}) == 1
            counters = rec.metrics.snapshot()["counters"]
            assert counters["trace.tail_retained_slow"] == 1
        finally:
            offload_api.finalize()
