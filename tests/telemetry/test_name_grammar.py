"""Lint: every metric/series name follows one dotted-segment grammar.

The registry namespace is flat, so the only structure series names have
is the convention: dot-separated segments of ``[A-Za-z0-9_-]``, with
discriminating labels (node id, ring name, tenant, series) as the
*final* segments — ``health.node_state.<node>``,
``target.reply.<node>.p95``, ``slo.offload-latency.fast_burn``. This
test pins the grammar both statically (every name literal in the
source) and dynamically (every series a live TSDB tick produces), so a
new subsystem cannot quietly invent a second naming scheme.
"""

import re
from pathlib import Path

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tsdb import AnomalyDetector, Scoreboard, Tsdb

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: One dotted segment: plain token, f-string placeholder (a runtime
#: label), or the profiler's ``<anonymous>``/``<unknown>`` sentinels.
_SEGMENT = re.compile(r"^([A-Za-z0-9_-]+|\{[^{}]+\}|<[a-z]+>)$")

#: Instrument-getter calls whose first argument names a series.
_NAME_CALL = re.compile(
    r"\.(?:counter|gauge|histogram|log_histogram|record)\(\s*"
    r"\n?\s*(f?)\"([^\"]+)\""
)


def assert_valid_name(name: str, *, where: str = "") -> None:
    # F-string placeholders may contain dotted expressions
    # (``{state.slo.name}``); each is one runtime label segment.
    name = re.sub(r"\{[^{}]+\}", "{label}", name)
    segments = name.split(".")
    # A literal like "phase." concatenated with a runtime value leaves a
    # trailing empty segment; the runtime part is checked dynamically.
    if segments and segments[-1] == "":
        segments = segments[:-1]
    assert segments, f"{where}: empty metric name"
    for segment in segments:
        assert _SEGMENT.match(segment), (
            f"{where}: segment {segment!r} of {name!r} breaks the "
            "dotted-name grammar [A-Za-z0-9_-]"
        )


class TestStaticGrammar:
    def test_every_source_literal_matches(self):
        checked = 0
        for path in sorted(SRC.rglob("*.py")):
            text = path.read_text()
            for match in _NAME_CALL.finditer(text):
                checked += 1
                assert_valid_name(match.group(2), where=str(path))
        # The scan must actually be biting: the codebase registers many
        # instruments by literal name.
        assert checked > 30


class _GrammarBackend:
    def per_target_stats(self):
        return {1: {"in_flight": 1, "queue_bytes": 10, "ring_fill": 0.5}}

    def introspect_target(self, timeout=None):
        return {"targets": [{"node": 1, "pending_invokes": 2}]}


class _GrammarRuntime:
    backend = _GrammarBackend()
    monitor = None


class TestDynamicGrammar:
    def test_every_live_series_matches(self):
        reg = MetricsRegistry()
        reg.counter("offload.issued").inc()
        reg.gauge("health.node_state.1").set(1.0)
        reg.log_histogram("target.reply.1").observe(0.01)
        reg.log_histogram("kernel.<anonymous>.offload").observe(0.01)
        reg.gauge("slo.offload-latency.fast_burn").set(0.1)
        tsdb = Tsdb(reg, interval=1.0)
        tsdb.attach_runtime(_GrammarRuntime())
        tsdb.scoreboard.probe = True
        tsdb.scoreboard.probe_interval = 0.0
        for tick in range(10):
            tsdb.sample_once(now=float(tick + 1))
        for name in tsdb.store.names():
            assert_valid_name(name, where="tsdb store")
        for section in ("counters", "gauges", "histograms"):
            for name in reg.snapshot()[section]:
                assert_valid_name(name, where=f"registry {section}")

    def test_anomaly_gauges_match(self):
        reg = MetricsRegistry()
        tsdb = Tsdb(reg, interval=1.0)
        det = AnomalyDetector(tsdb.store, reg, min_samples=5)
        for tick in range(19):
            tsdb.store.record("target.in_flight.1", 1.0, float(tick))
        tsdb.store.record("target.in_flight.1", 99.0, 19.0)
        det.evaluate(now=19.0)
        for name in reg.snapshot()["gauges"]:
            assert_valid_name(name, where="anomaly gauges")

    def test_grammar_rejects_what_it_should(self):
        import pytest

        for bad in ("", "a..b", "a b", "a.b!", "emoji.🔥"):
            with pytest.raises(AssertionError):
                assert_valid_name(bad)
