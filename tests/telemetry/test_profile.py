"""Log-bucketed histograms and continuous per-kernel profiles."""

import pytest

from repro.telemetry.metrics import LogHistogram, MetricsRegistry
from repro.telemetry.profile import (
    KernelProfile,
    KernelProfiler,
    render_profile_table,
)


class TestLogHistogram:
    def test_lifetime_stats(self):
        hist = LogHistogram()
        for value in (0.001, 0.002, 0.003):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(0.002)
        assert summary["min"] == pytest.approx(0.001)
        assert summary["max"] == pytest.approx(0.003)

    def test_empty_summary_is_all_zeros(self):
        summary = LogHistogram().summary()
        assert summary == {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                           "p50": 0.0, "p95": 0.0, "p99": 0.0, "buckets": []}

    def test_percentiles_clamp_to_observed_range(self):
        hist = LogHistogram()
        hist.observe(0.0015)
        # Interpolating within the winning bucket must never leave the
        # [min, max] envelope, however coarse the bucket.
        assert hist.percentile(0) == pytest.approx(0.0015)
        assert hist.percentile(50) == pytest.approx(0.0015)
        assert hist.percentile(100) == pytest.approx(0.0015)

    def test_percentile_ordering(self):
        hist = LogHistogram()
        for i in range(1, 101):
            hist.observe(i / 1000.0)
        p50, p95, p99 = (hist.percentile(q) for q in (50, 95, 99))
        assert p50 <= p95 <= p99
        assert 0.03 < p50 < 0.08
        assert p99 <= 0.1

    def test_percentile_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="percentile"):
            LogHistogram().percentile(101)

    def test_custom_bounds_validated(self):
        with pytest.raises(ValueError, match="increasing"):
            LogHistogram(bounds=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="positive"):
            LogHistogram(bounds=(0.0, 1.0))

    def test_buckets_cumulative_and_end_with_inf(self):
        hist = LogHistogram(bounds=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05, 5.0):
            hist.observe(value)
        buckets = hist.summary()["buckets"]
        assert buckets[-1] == ["+Inf", 4]
        les = [le for le, _ in buckets[:-1]]
        counts = [count for _, count in buckets]
        assert les == [0.001, 0.01, 0.1]
        assert counts == sorted(counts)  # cumulative => monotone
        assert counts == [1, 2, 3, 4]

    def test_registry_get_or_create_and_type_guard(self):
        reg = MetricsRegistry()
        hist = reg.log_histogram("phase.offload.offload")
        assert reg.log_histogram("phase.offload.offload") is hist
        with pytest.raises(TypeError, match="log histogram"):
            reg.histogram("phase.offload.offload")
        reg.histogram("ring")
        with pytest.raises(TypeError, match="ring histogram"):
            reg.log_histogram("ring")


class TestKernelProfile:
    def test_record_accumulates(self):
        prof = KernelProfile("axpy")
        prof.record(1_000_000)
        prof.record(3_000_000, error=True)
        prof.add_bytes(4096)
        summary = prof.summary()
        assert summary["kernel"] == "axpy"
        assert summary["count"] == 2
        assert summary["errors"] == 1
        assert summary["bytes"] == 4096
        total = summary["phases"]["offload"]
        assert total["count"] == 2
        assert total["mean"] == pytest.approx(0.002)

    def test_record_phase_keeps_streams_separate(self):
        prof = KernelProfile("axpy")
        prof.record(2_000_000)
        prof.record_phase("offload.execute", 1_000_000)
        phases = prof.summary()["phases"]
        assert set(phases) == {"offload", "offload.execute"}
        # phase folds don't inflate the offload count
        assert prof.summary()["count"] == 1


class TestKernelProfiler:
    def test_get_or_create_by_kernel(self):
        profiler = KernelProfiler()
        assert profiler.profile("a") is profiler.profile("a")
        assert profiler.profile("a") is not profiler.profile("b")

    def test_snapshot_sorted_by_kernel(self):
        profiler = KernelProfiler()
        profiler.record("zeta", 1000)
        profiler.record("alpha", 1000)
        assert list(profiler.snapshot()) == ["alpha", "zeta"]

    def test_metric_series_names(self):
        profiler = KernelProfiler()
        profiler.record("axpy", 1_000_000)
        profiler.record_phase("axpy", "offload.execute", 500_000)
        series = profiler.metric_series()
        assert set(series) == {
            "kernel.axpy.offload", "kernel.axpy.offload.execute",
        }
        assert series["kernel.axpy.offload"]["count"] == 1
        assert series["kernel.axpy.offload"]["buckets"][-1][0] == "+Inf"

    def test_clear(self):
        profiler = KernelProfiler()
        profiler.record("axpy", 1000)
        profiler.clear()
        assert profiler.snapshot() == {}


class TestRenderProfileTable:
    @staticmethod
    def _snapshot(*specs):
        """specs: (name, durations_ns...) -> profiler snapshot."""
        profiler = KernelProfiler()
        for name, *durations in specs:
            for duration in durations:
                profiler.record(name, duration)
        return profiler.snapshot()

    def test_empty_snapshot_message(self):
        assert render_profile_table({}) == "no kernel profiles recorded"

    def test_rejects_unknown_sort(self):
        with pytest.raises(ValueError, match="sort_by"):
            render_profile_table({}, sort_by="bytes")

    def test_total_vs_tail_ranking_flip(self):
        # many-fast dominates cumulative time; few-slow dominates p99.
        snapshot = self._snapshot(
            ("many_fast", *([1_000_000] * 50)),   # 50 ms total, 1 ms tail
            ("few_slow", 20_000_000),             # 20 ms total, 20 ms tail
        )
        by_total = render_profile_table(snapshot, sort_by="total").splitlines()
        by_tail = render_profile_table(snapshot, sort_by="tail").splitlines()
        assert by_total[2].startswith("many_fast")
        assert by_tail[2].startswith("few_slow")

    def test_limit_truncates_rows(self):
        snapshot = self._snapshot(("a", 1000), ("b", 1000), ("c", 1000))
        table = render_profile_table(snapshot, limit=1)
        assert len(table.splitlines()) == 3  # header + rule + one row
