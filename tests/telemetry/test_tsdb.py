"""Tests for the in-process time-series store, scoreboard and detector."""

import pytest

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tsdb import (
    AnomalyDetector,
    Scoreboard,
    SeriesRing,
    TimeSeriesStore,
    Tsdb,
    install_tsdb,
)


class TestSeriesRing:
    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            SeriesRing(1)

    def test_items_oldest_first_before_wrap(self):
        ring = SeriesRing(4)
        for i in range(3):
            ring.append(float(i), float(i * 10))
        assert ring.items() == [(0.0, 0.0), (1.0, 10.0), (2.0, 20.0)]
        assert len(ring) == 3
        assert ring.last() == (2.0, 20.0)

    def test_items_oldest_first_after_wraparound(self):
        ring = SeriesRing(4)
        for i in range(7):  # overwrite 0..2; retained: 3,4,5,6
            ring.append(float(i), float(i * 10))
        assert len(ring) == 4
        assert ring.items() == [
            (3.0, 30.0), (4.0, 40.0), (5.0, 50.0), (6.0, 60.0)
        ]
        assert ring.last() == (6.0, 60.0)

    def test_since_filter(self):
        ring = SeriesRing(8)
        for i in range(5):
            ring.append(float(i), float(i))
        assert ring.items(since=3.0) == [(3.0, 3.0), (4.0, 4.0)]

    def test_empty(self):
        ring = SeriesRing(4)
        assert ring.items() == []
        assert ring.last() is None
        assert len(ring) == 0


class TestStoreQueries:
    def test_rate_of_steady_counter_ramp(self):
        store = TimeSeriesStore(retention=16)
        # +10/s for 5 samples: 0, 10, 20, 30, 40.
        for i in range(5):
            store.record("offload.issued", i * 10.0, float(i))
        assert store.rate("offload.issued") == pytest.approx(10.0)
        assert store.delta("offload.issued") == pytest.approx(40.0)

    def test_rate_survives_ring_wraparound(self):
        store = TimeSeriesStore(retention=4)
        for i in range(10):  # only the last 4 samples retained
            store.record("c", i * 5.0, float(i))
        assert store.range("c")[0] == (6.0, 30.0)
        assert store.rate("c") == pytest.approx(5.0)

    def test_rate_counter_reset(self):
        store = TimeSeriesStore(retention=8)
        # 0 -> 10 -> 20 -> restart -> 5 -> 15 over 4 s: the post-reset
        # sample counts as an increase from zero, PromQL-style.
        for ts, value in enumerate((0.0, 10.0, 20.0, 5.0, 15.0)):
            store.record("c", value, float(ts))
        # increases: 10 + 10 + 5 + 10 = 35 over 4 s
        assert store.rate("c") == pytest.approx(35.0 / 4.0)

    def test_rate_needs_two_samples(self):
        store = TimeSeriesStore()
        assert store.rate("missing") == 0.0
        store.record("c", 1.0, 0.0)
        assert store.rate("c") == 0.0

    def test_range_window_anchored_at_newest_sample(self):
        store = TimeSeriesStore(retention=16)
        for i in range(10):
            store.record("g", float(i), float(i))
        # Sampler stopped at t=9: a 3 s window still answers.
        assert store.range("g", window=3.0) == [
            (6.0, 6.0), (7.0, 7.0), (8.0, 8.0), (9.0, 9.0)
        ]
        assert store.range("g", window=3.0, now=5.0) == [
            (2.0, 2.0), (3.0, 3.0), (4.0, 4.0), (5.0, 5.0)
        ]

    def test_percentile_of_window(self):
        store = TimeSeriesStore(retention=32)
        for i in range(10):
            store.record("lat", float(i * 10), float(i))
        assert store.percentile_of_window("lat", 50) == pytest.approx(
            40.0, abs=10.0)
        assert store.percentile_of_window("lat", 100) == 90.0

    def test_max_series_cap(self):
        store = TimeSeriesStore(retention=4, max_series=2)
        store.record("a", 1.0, 0.0)
        store.record("b", 1.0, 0.0)
        store.record("c", 1.0, 0.0)  # refused
        assert store.names() == ["a", "b"]
        assert store.dropped_series == 1
        store.record("a", 2.0, 1.0)  # existing series still writable
        assert store.latest("a") == 2.0

    def test_to_json_shape(self):
        store = TimeSeriesStore(retention=4)
        store.record("x", 1.0, 100.0)
        store.record("x", 2.0, 101.0)
        dump = store.to_json()
        assert dump == {"x": {"t": [100.0, 101.0], "v": [1.0, 2.0]}}

    def test_observe_snapshot_derives_histogram_series(self):
        reg = MetricsRegistry()
        reg.counter("offload.issued").inc(3)
        reg.gauge("window.in_flight").set(2.0)
        hist = reg.log_histogram("target.reply.1")
        for v in (0.01, 0.02, 0.03):
            hist.observe(v)
        store = TimeSeriesStore()
        store.observe_snapshot(reg.snapshot(), ts=1.0)
        assert store.latest("offload.issued") == 3.0
        assert store.latest("window.in_flight") == 2.0
        assert store.latest("target.reply.1.count") == 3.0
        assert store.latest("target.reply.1.p95") > 0.0


class _FakeBackend:
    def __init__(self):
        self.stats_table = {
            1: {"in_flight": 2, "queue_bytes": 100},
            2: {"in_flight": 0, "queue_bytes": 0, "ring_fill": 0.25},
        }

    def per_target_stats(self):
        return self.stats_table

    def introspect_target(self, timeout=None):
        return {"targets": [{"node": 1, "pending_invokes": 4},
                            {"node": 2, "pending_invokes": 0}]}


class _FakeMonitor:
    def snapshot(self):
        return {1: {"health": "healthy"}, 2: {"health": "degraded"}}


class _FakeRuntime:
    def __init__(self):
        self.backend = _FakeBackend()
        self.monitor = _FakeMonitor()


class TestScoreboard:
    def test_refresh_writes_per_target_series(self):
        store = TimeSeriesStore()
        board = Scoreboard(store)
        board.attach_runtime(_FakeRuntime())
        board.refresh(now=1.0)
        assert store.latest("target.in_flight.1") == 2.0
        assert store.latest("target.queue_bytes.1") == 100.0
        assert store.latest("target.ring_fill.2") == 0.25
        # ring_fill absent for node 1 (tcp-style stats have none)
        assert "target.ring_fill.1" not in store.names()

    def test_error_rate_derived_from_errors_counter(self):
        store = TimeSeriesStore()
        board = Scoreboard(store)
        board.attach_runtime(_FakeRuntime())
        # 5 errors in 5 s on target 1 -> ~1/s.
        for ts in range(6):
            store.record("target.errors.1", float(ts), float(ts))
        board.refresh(now=5.0)
        assert store.latest("target.error_rate.1") == pytest.approx(1.0)

    def test_probe_feeds_pending_invokes(self):
        store = TimeSeriesStore()
        board = Scoreboard(store, probe=True, probe_interval=0.0)
        board.attach_runtime(_FakeRuntime())
        board.refresh(now=1.0)
        assert store.latest("target.pending_invokes.1") == 4.0
        assert store.latest("target.pending_invokes.2") == 0.0

    def test_vectors_merge_reply_p95_and_health(self):
        store = TimeSeriesStore()
        board = Scoreboard(store)
        board.attach_runtime(_FakeRuntime())
        board.refresh(now=1.0)
        store.record("target.reply.1.p95", 0.125, 1.0)
        vectors = board.vectors()
        assert vectors[1]["in_flight"] == 2.0
        assert vectors[1]["reply.p95"] == 0.125
        assert vectors[1]["health"] == "healthy"
        assert vectors[2]["health"] == "degraded"

    def test_refresh_without_runtime_is_a_noop(self):
        store = TimeSeriesStore()
        Scoreboard(store).refresh(now=1.0)
        assert store.names() == []


def _feed_flat(store, name, value, count=20, start=0.0):
    for i in range(count):
        store.record(name, value, start + float(i))


class TestAnomalyDetector:
    def test_flat_series_never_flags(self):
        store = TimeSeriesStore()
        det = AnomalyDetector(store, window=60.0, min_samples=5)
        _feed_flat(store, "target.in_flight.1", 2.0)
        assert det.evaluate(now=19.0) == []
        assert det.anomalies() == []

    def test_spike_enters_and_recovers_with_hysteresis(self):
        store = TimeSeriesStore()
        events = []
        det = AnomalyDetector(
            store, window=60.0, min_samples=5,
            emit=lambda name, **kw: events.append((name, kw)),
        )
        _feed_flat(store, "target.in_flight.1", 2.0, count=19)
        store.record("target.in_flight.1", 50.0, 19.0)  # the spike
        # First deviant tick only arms the entry (enter_ticks=2).
        assert det.evaluate(now=19.0) == []
        assert det.anomalies() == []
        store.record("target.in_flight.1", 50.0, 20.0)  # it persists
        entered = det.evaluate(now=20.0)
        assert [e["series"] for e in entered] == ["target.in_flight.1"]
        assert det.anomalies()[0]["series"] == "target.in_flight.1"
        assert events[0][0] == "telemetry.anomaly"
        # Back to baseline: score collapses below threshold/2 -> recovery.
        for i in range(21, 40):
            store.record("target.in_flight.1", 2.0, float(i))
        assert det.evaluate(now=39.0) == []
        assert det.anomalies() == []
        assert events[-1][0] == "telemetry.anomaly_recovered"

    def test_single_tick_blip_never_enters(self):
        store = TimeSeriesStore()
        events = []
        det = AnomalyDetector(
            store, window=60.0, min_samples=5,
            emit=lambda name, **kw: events.append((name, kw)),
        )
        _feed_flat(store, "target.in_flight.1", 2.0, count=19)
        store.record("target.in_flight.1", 50.0, 19.0)  # one-tick blip
        assert det.evaluate(now=19.0) == []
        store.record("target.in_flight.1", 2.0, 20.0)  # gone next tick
        assert det.evaluate(now=20.0) == []
        assert det.anomalies() == []
        assert events == []

    def test_idle_zero_baseline_first_sample_does_not_flap(self):
        # An idle target's in_flight/error_rate is constant 0; the first
        # request afterwards must not score ~1e9 and demote the target.
        store = TimeSeriesStore()
        det = AnomalyDetector(store, window=60.0, min_samples=5)
        _feed_flat(store, "target.in_flight.1", 0.0, count=19)
        store.record("target.in_flight.1", 1.0, 19.0)  # traffic resumes
        assert det.evaluate(now=19.0) == []
        assert det.score("target.in_flight.1", now=19.0) is None
        store.record("target.in_flight.1", 1.0, 20.0)
        assert det.evaluate(now=20.0) == []
        assert det.anomalies() == []

    def test_cumulative_series_excluded_from_scoring(self):
        # Monotone counter levels (histogram .count derivatives, raw
        # error counters) always drift off their trailing median under
        # normal traffic; only their rates are anomaly material.
        store = TimeSeriesStore()
        det = AnomalyDetector(store, min_samples=5)
        assert not det.watches("target.reply.1.count")
        assert not det.watches("target.errors.1")
        assert det.watches("target.reply.1.p95")
        assert det.watches("target.error_rate.1")
        # A ramping .count series never flags even across many ticks.
        for tick in range(19):
            store.record("target.reply.1.count", float(tick * 10),
                         float(tick))
        store.record("target.reply.1.count", 400.0, 19.0)
        assert det.evaluate(now=19.0) == []
        assert det.evaluate(now=19.0) == []
        assert det.anomalies() == []

    def test_score_gauges_exported(self):
        store = TimeSeriesStore()
        reg = MetricsRegistry()
        det = AnomalyDetector(store, reg, min_samples=5)
        _feed_flat(store, "target.queue_bytes.2", 10.0)
        det.evaluate(now=19.0)
        snap = reg.snapshot()
        assert "anomaly.score.target.queue_bytes.2" in snap["gauges"]

    def test_anomalous_nodes_parses_target_ids(self):
        store = TimeSeriesStore()
        det = AnomalyDetector(store, min_samples=5)
        _feed_flat(store, "target.reply.3.p95", 0.001, count=19)
        store.record("target.reply.3.p95", 1.0, 19.0)
        det.evaluate(now=19.0)
        store.record("target.reply.3.p95", 1.0, 20.0)
        det.evaluate(now=20.0)
        assert det.anomalous_nodes() == {3}

    def test_non_target_prefixes_ignored_by_default(self):
        store = TimeSeriesStore()
        det = AnomalyDetector(store, min_samples=5)
        _feed_flat(store, "offload.issued", 1.0, count=19)
        store.record("offload.issued", 1e6, 19.0)
        assert det.evaluate(now=19.0) == []


class TestTsdb:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            Tsdb(MetricsRegistry(), interval=0.0)

    def test_sample_once_ticks_everything(self):
        reg = MetricsRegistry()
        reg.counter("offload.issued").inc()
        tsdb = Tsdb(reg, interval=1.0)
        tsdb.attach_runtime(_FakeRuntime())
        tsdb.sample_once(now=1.0)
        tsdb.sample_once(now=2.0)
        assert tsdb.samples == 2
        assert tsdb.store.latest("offload.issued") == 1.0
        assert tsdb.store.latest("target.in_flight.1") == 2.0

    def test_thread_lifecycle(self):
        tsdb = Tsdb(MetricsRegistry(), interval=0.01)
        tsdb.start()
        tsdb.start()  # idempotent
        try:
            deadline = 200
            while tsdb.samples == 0 and deadline:
                deadline -= 1
                import time
                time.sleep(0.005)
            assert tsdb.samples > 0
        finally:
            tsdb.stop()
        tsdb.stop()  # idempotent

    def test_stop_clears_active_anomalies(self):
        # A stopped sampler never observes recovery; stale anomalies
        # would demote targets forever in the hedger and /healthz.
        tsdb = Tsdb(MetricsRegistry(), interval=0.01)
        _feed_flat(tsdb.store, "target.in_flight.1", 2.0, count=19)
        tsdb.store.record("target.in_flight.1", 50.0, 19.0)
        tsdb.detector.evaluate(now=19.0)
        tsdb.store.record("target.in_flight.1", 50.0, 20.0)
        tsdb.detector.evaluate(now=20.0)
        assert tsdb.detector.anomalies()
        tsdb.start()
        tsdb.stop()
        assert tsdb.detector.anomalies() == []
        assert tsdb.detector.anomalous_nodes() == set()

    def test_install_tsdb_attaches_but_does_not_start(self):
        from repro.telemetry.recorder import Recorder

        recorder = Recorder()
        tsdb = install_tsdb(recorder, interval=0.5, retention=10)
        assert recorder.tsdb is tsdb
        assert tsdb._thread is None
        assert tsdb.interval == 0.5
        assert tsdb.store.retention == 10


class TestHedgeAdvisory:
    def test_anomalous_candidates_demoted_never_removed(self):
        from repro.offload.hedging import Hedger
        from repro.telemetry import recorder as telemetry

        telemetry.enable()
        recorder = telemetry.get()
        tsdb = install_tsdb(recorder)
        try:
            _feed_flat(tsdb.store, "target.reply.2.p95", 0.001, count=19)
            tsdb.store.record("target.reply.2.p95", 5.0, 19.0)
            tsdb.detector.evaluate(now=19.0)
            tsdb.store.record("target.reply.2.p95", 5.0, 20.0)
            tsdb.detector.evaluate(now=20.0)
            assert tsdb.detector.anomalous_nodes() == {2}
            reordered, avoided = Hedger._prefer_non_anomalous(
                [2, 3, 4])
            assert reordered == [3, 4, 2]
            assert avoided == {2}
            # All-anomalous fleet: order preserved, nothing dropped.
            for node in (3, 4):
                series = f"target.reply.{node}.p95"
                _feed_flat(tsdb.store, series, 0.001, count=19)
                tsdb.store.record(series, 5.0, 19.0)
            tsdb.detector.evaluate(now=19.0)
            for node in (3, 4):
                tsdb.store.record(f"target.reply.{node}.p95", 5.0, 20.0)
            tsdb.detector.evaluate(now=20.0)
            reordered, avoided = Hedger._prefer_non_anomalous(
                [2, 3, 4])
            assert reordered == [2, 3, 4]
            assert avoided == set()
        finally:
            recorder.tsdb = None

    def test_no_tsdb_no_reorder(self):
        from repro.offload.hedging import Hedger

        reordered, avoided = Hedger._prefer_non_anomalous([1, 2])
        assert reordered == [1, 2]
        assert avoided == set()
