"""End-to-end tests: the instrumented offload path produces real traces."""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.backends import TcpBackend, spawn_local_server
from repro.backends.faulty import FaultInjectingBackend
from repro.backends.local import LocalBackend
from repro.errors import InjectedFaultError
from repro.ham import f2f
from repro.offload import Runtime
from repro.offload import api as offload_api
from repro.offload.resilience import HealthMonitor, NodeHealth, ResiliencePolicy
from repro.telemetry import recorder as telemetry
from repro.telemetry.export import to_chrome, write_chrome_trace

from tests import apps

#: The tentpole's phase taxonomy for one offload (host-side names).
HOST_PHASES = {
    "offload.serialize",
    "offload.transport",
    "offload.deserialize",
}


class TestLocalBackendPhases:
    def test_sync_offload_produces_phase_spans(self):
        rec = telemetry.enable()
        rt = Runtime(LocalBackend())
        assert rt.sync(1, f2f(apps.add, 1, 2)) == 3
        rt.shutdown()
        names = {r.name for r in rec.spans()}
        assert HOST_PHASES <= names
        assert "offload.execute" in names  # in-process target

    def test_execute_nests_under_transport(self):
        rec = telemetry.enable()
        rt = Runtime(LocalBackend())
        rt.sync(1, f2f(apps.add, 1, 2))
        rt.shutdown()
        transport = next(r for r in rec.spans("offload.transport"))
        execute = next(r for r in rec.spans("offload.execute"))
        assert execute.parent_id == transport.span_id

    def test_counters_track_offload_outcomes(self):
        rec = telemetry.enable()
        rt = Runtime(LocalBackend())
        for _ in range(3):
            rt.sync(1, f2f(apps.empty_kernel))
        rt.shutdown()
        counters = rec.metrics.snapshot()["counters"]
        assert counters["offload.issued"] == 3
        assert counters["offload.completed"] == 3
        assert counters["execute.messages"] == 3
        assert counters["future.settled"] == 3

    def test_data_transfer_spans_and_byte_counters(self):
        rec = telemetry.enable()
        rt = Runtime(LocalBackend())
        ptr = rt.allocate(1, 32)
        rt.put(np.zeros(32), ptr)
        out = np.empty(32)
        rt.get(ptr, out)
        rt.free(ptr)
        rt.shutdown()
        names = {r.name for r in rec.spans()}
        assert {"offload.allocate", "data.put", "data.get", "offload.free"} <= names
        counters = rec.metrics.snapshot()["counters"]
        assert counters["data.bytes_put"] == 32 * 8
        assert counters["data.bytes_got"] == 32 * 8
        assert counters["buffers.allocated"] == 1
        assert counters["buffers.freed"] == 1

    def test_remote_error_tagged_on_execute_span(self):
        rec = telemetry.enable()
        rt = Runtime(LocalBackend())
        with pytest.raises(Exception, match="boom"):
            rt.sync(1, f2f(apps.raise_value_error, "boom"))
        rt.shutdown()
        counters = rec.metrics.snapshot()["counters"]
        assert counters["execute.errors"] == 1

    def test_disabled_telemetry_leaves_no_trace(self):
        rt = Runtime(LocalBackend())
        rt.sync(1, f2f(apps.add, 1, 2))
        rt.shutdown()
        rec = telemetry.enable()
        assert rec.records() == []


class TestApiInit:
    def test_init_telemetry_flag_enables_recorder(self):
        try:
            offload_api.init(LocalBackend(), telemetry=True)
            assert telemetry.enabled()
            assert offload_api.sync(1, f2f(apps.add, 2, 2)) == 4
            assert telemetry.get().spans("offload.")
        finally:
            offload_api.finalize()

    def test_init_default_keeps_telemetry_off(self):
        try:
            offload_api.init(LocalBackend())
            assert not telemetry.enabled()
        finally:
            offload_api.finalize()


class TestFaultAndResilienceEvents:
    def test_injected_fault_emits_event(self):
        rec = telemetry.enable()
        backend = FaultInjectingBackend(LocalBackend(), schedule={0: "drop"})
        rt = Runtime(backend)
        with pytest.raises(InjectedFaultError):
            rt.sync(1, f2f(apps.empty_kernel))
        rt.shutdown()
        (event,) = rec.events("fault.injected")
        assert event.attrs["kind"] == "drop"
        assert rec.metrics.snapshot()["counters"]["faults.injected"] == 1

    def test_retry_emits_resilience_events(self):
        rec = telemetry.enable()
        backend = FaultInjectingBackend(LocalBackend(), schedule={0: "drop"})
        policy = ResiliencePolicy(max_retries=2, backoff_base=0.0, jitter=0.0)
        rt = Runtime(backend, policy=policy)
        rt._sleep = lambda _s: None
        assert rt.sync(1, f2f(apps.add, 1, 1), idempotent=True) == 2
        rt.shutdown()
        assert rec.events("resilience.retry")
        counters = rec.metrics.snapshot()["counters"]
        assert counters["offload.retries"] >= 1

    def test_health_transitions_emit_events(self):
        rec = telemetry.enable()
        clock = iter(float(i) for i in range(100))
        monitor = HealthMonitor(
            ResiliencePolicy(degraded_after=1, down_after=2),
            clock=lambda: next(clock),
        )
        for _ in range(2):
            monitor.record_failure(7)
        assert monitor.health(7) is NodeHealth.DOWN
        monitor.record_success(7)
        transitions = [
            (e.attrs["previous"], e.attrs["new"])
            for e in rec.events("health.transition")
        ]
        assert transitions == [
            ("healthy", "degraded"),
            ("degraded", "down"),
            ("down", "healthy"),
        ]
        counters = rec.metrics.snapshot()["counters"]
        assert counters["health.transitions"] == 3
        assert counters["health.circuit_opened"] == 1


class TestLeakWarning:
    def test_leak_warning_names_node_and_alloc_span(self):
        telemetry.enable()
        rt = Runtime(LocalBackend())
        ptr = rt.allocate(1, 4)
        alloc_span = rt._live_buffers[(ptr.node, ptr.addr)][1]
        assert alloc_span != 0
        with pytest.warns(ResourceWarning, match="leaked") as records:
            rt.shutdown()
        message = str(records[0].message)
        assert f"{ptr.addr:#x}" in message
        assert f"node {ptr.node}" in message
        assert f"alloc span {alloc_span:#x}" in message

    def test_leak_warning_without_telemetry_shows_zero_span(self):
        rt = Runtime(LocalBackend())
        ptr = rt.allocate(1, 4)
        with pytest.warns(ResourceWarning, match="leaked") as records:
            rt.shutdown()
        message = str(records[0].message)
        assert f"{ptr.addr:#x}" in message
        assert "alloc span 0x0" in message


class TestTcpEndToEnd:
    @pytest.fixture()
    def traced_rt(self):
        recorder = telemetry.enable()
        process, address = spawn_local_server()
        backend = TcpBackend(address, on_shutdown=lambda: process.join(timeout=5))
        runtime = Runtime(backend)
        yield runtime, backend, recorder
        runtime.shutdown()
        if process.is_alive():  # pragma: no cover - cleanup safety
            process.terminate()

    def test_remote_offload_covers_all_phases(self, traced_rt, tmp_path):
        runtime, backend, recorder = traced_rt
        assert runtime.sync(1, f2f(apps.add, 20, 22)) == 42
        # The forked server inherited the enabled recorder; pull its
        # records over the wire and merge them into the host timeline.
        target_records = backend.fetch_target_telemetry()
        execute_spans = [
            r for r in target_records if r.kind == "span"
            and r.name == "offload.execute"
        ]
        assert execute_spans
        assert execute_spans[0].pid != os.getpid()
        host_names = {r.name for r in recorder.spans()}
        assert {
            "offload.serialize", "offload.enqueue", "offload.transport",
            "offload.reply", "offload.deserialize",
        } <= host_names
        recorder.ingest(target_records)
        # The merged trace is a valid Chrome trace covering both sides.
        trace = to_chrome(recorder)
        names = {e["name"] for e in trace["traceEvents"]}
        assert "offload.execute" in names and "offload.enqueue" in names
        path = write_chrome_trace(tmp_path / "trace.json", recorder)
        assert path.exists()

    def test_report_cli_on_real_trace(self, traced_rt, tmp_path):
        runtime, backend, recorder = traced_rt
        for i in range(5):
            runtime.sync(1, f2f(apps.add, i, i))
        recorder.ingest(backend.fetch_target_telemetry())
        path = write_chrome_trace(tmp_path / "trace.json", recorder)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.telemetry.report", str(path)],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "offload.execute" in proc.stdout
        assert "p95" in proc.stdout
