"""HealthMonitor state exported as Prometheus gauges."""

from __future__ import annotations

from repro.offload.resilience import HealthMonitor, ResiliencePolicy
from repro.telemetry import recorder as telemetry
from repro.telemetry.promexport import to_prometheus

POLICY = ResiliencePolicy(degraded_after=1, down_after=3)


class TestHealthGauges:
    def test_state_machine_mirrors_onto_gauges(self):
        recorder = telemetry.enable()
        monitor = HealthMonitor(POLICY)
        monitor.record_success(1)
        gauges = recorder.metrics.snapshot()["gauges"]
        assert gauges["health.node_state.1"] == 0
        assert gauges["health.consecutive_failures.1"] == 0

        monitor.record_failure(1)
        gauges = recorder.metrics.snapshot()["gauges"]
        assert gauges["health.node_state.1"] == 1  # degraded
        assert gauges["health.consecutive_failures.1"] == 1

        monitor.record_failure(1)
        monitor.record_failure(1)
        gauges = recorder.metrics.snapshot()["gauges"]
        assert gauges["health.node_state.1"] == 2  # down
        assert gauges["health.consecutive_failures.1"] == 3

        # Recovery snaps both gauges back.
        monitor.record_success(1)
        gauges = recorder.metrics.snapshot()["gauges"]
        assert gauges["health.node_state.1"] == 0
        assert gauges["health.consecutive_failures.1"] == 0

    def test_gauges_are_per_node(self):
        recorder = telemetry.enable()
        monitor = HealthMonitor(POLICY)
        monitor.record_failure(1)
        monitor.record_success(2)
        gauges = recorder.metrics.snapshot()["gauges"]
        assert gauges["health.node_state.1"] == 1
        assert gauges["health.node_state.2"] == 0

    def test_renders_in_prometheus_exposition(self):
        recorder = telemetry.enable()
        monitor = HealthMonitor(POLICY)
        monitor.record_failure(3)
        text = to_prometheus(recorder.metrics.snapshot())
        assert "repro_health_node_state_3 1" in text
        assert "repro_health_consecutive_failures_3 1" in text

    def test_no_recorder_no_crash(self):
        telemetry.disable()
        monitor = HealthMonitor(POLICY)
        monitor.record_failure(1)
        monitor.record_success(1)
