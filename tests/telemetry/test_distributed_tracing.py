"""End-to-end tests: one causal trace across the process boundary."""

import os

import pytest

from repro.backends import TcpBackend, spawn_local_server
from repro.backends.base import Backend
from repro.backends.faulty import FaultInjectingBackend
from repro.backends.local import LocalBackend
from repro.ham import f2f
from repro.offload import Runtime
from repro.offload.node import HOST_NODE, NodeDescriptor
from repro.telemetry import recorder as telemetry
from repro.telemetry.distributed import critical_path, group_by_trace
from repro.telemetry.export import to_chrome

from tests import apps


class TestLocalBackendTracing:
    def test_offload_spans_share_one_trace_id(self):
        rec = telemetry.enable()
        rt = Runtime(LocalBackend())
        assert rt.sync(1, f2f(apps.add, 1, 2)) == 3
        rt.shutdown()
        spans = [s for s in rec.spans("offload.")
                 if s.name != "offload.health_probe"]
        trace_ids = {s.trace_id for s in spans}
        assert len(trace_ids) == 1
        assert "" not in trace_ids

    def test_distinct_offloads_get_distinct_traces(self):
        rec = telemetry.enable()
        rt = Runtime(LocalBackend())
        rt.sync(1, f2f(apps.add, 1, 2))
        rt.sync(1, f2f(apps.add, 3, 4))
        rt.shutdown()
        serializes = rec.spans("offload.serialize")
        assert len(serializes) == 2
        assert serializes[0].trace_id != serializes[1].trace_id

    def test_async_future_joins_the_offload_trace(self):
        rec = telemetry.enable()
        rt = Runtime(LocalBackend())
        future = rt.async_(1, f2f(apps.add, 5, 6))
        assert future.get() == 11
        rt.shutdown()
        serialize = rec.spans("offload.serialize")[0]
        deserialize = rec.spans("offload.deserialize")[0]
        assert deserialize.trace_id == serialize.trace_id

    def test_untraced_without_telemetry(self):
        # No recorder: offloads must not mint contexts (v1 headers).
        rt = Runtime(LocalBackend())
        assert rt.sync(1, f2f(apps.add, 1, 2)) == 3
        rt.shutdown()

    def test_chrome_export_carries_trace_id(self):
        rec = telemetry.enable()
        rt = Runtime(LocalBackend())
        rt.sync(1, f2f(apps.add, 1, 2))
        rt.shutdown()
        trace = to_chrome(rec)
        execute = next(e for e in trace["traceEvents"]
                       if e.get("name") == "offload.execute")
        assert len(execute["trace_id"]) == 32


class TestRetryReparenting:
    def test_retries_share_the_offload_trace(self):
        from repro.offload.resilience import ResiliencePolicy

        rec = telemetry.enable()
        backend = FaultInjectingBackend(LocalBackend(), schedule={0: "drop"})
        policy = ResiliencePolicy(max_retries=2, backoff_base=0.0, jitter=0.0)
        rt = Runtime(backend, policy=policy)
        rt._sleep = lambda _s: None
        assert rt.sync(1, f2f(apps.add, 1, 1), idempotent=True) == 2
        rt.shutdown()
        (retry,) = rec.events("resilience.retry")
        (fault,) = rec.events("fault.injected")
        serializes = rec.spans("offload.serialize")
        # The drop hits attempt #1 before it serialized; the successful
        # retry serialized under the SAME trace, and the fault + retry
        # events are stamped with it too — cause and effect in one tree.
        assert len(serializes) == 1
        assert retry.trace_id == serializes[0].trace_id != ""
        assert fault.trace_id == retry.trace_id


class TestTcpTracing:
    @pytest.fixture()
    def traced(self):
        recorder = telemetry.enable()
        process, address = spawn_local_server()
        backend = TcpBackend(address, on_shutdown=lambda: process.join(timeout=5))
        runtime = Runtime(backend)
        yield runtime, backend, recorder
        runtime.shutdown()
        if process.is_alive():  # pragma: no cover - cleanup safety
            process.terminate()

    def test_execute_parents_to_host_serialize_span(self, traced):
        runtime, backend, recorder = traced
        assert runtime.sync(1, f2f(apps.add, 20, 22)) == 42
        recorder.ingest(backend.fetch_target_telemetry())
        serialize = recorder.spans("offload.serialize")[0]
        execute = next(s for s in recorder.spans("offload.execute"))
        assert execute.pid != os.getpid()
        assert execute.trace_id == serialize.trace_id != ""
        assert execute.parent_id == serialize.span_id

    def test_clock_sync_estimated_at_connect(self, traced):
        _runtime, backend, _recorder = traced
        assert backend.clock_sync.samples > 0
        assert backend.clock_sync.rtt_ns > 0

    def test_merged_critical_path_is_monotone(self, traced):
        runtime, backend, recorder = traced
        for i in range(3):
            assert runtime.sync(1, f2f(apps.add, i, i)) == 2 * i
        recorder.ingest(backend.fetch_target_telemetry())
        groups = group_by_trace(recorder.records())
        assert len(groups) == 3
        for group in groups.values():
            path = critical_path(group)
            names = [seg["phase"] for seg in path]
            assert "offload.execute" in names
            starts = [seg["start_ns"] for seg in path]
            assert starts == sorted(starts)

    def test_shutdown_drains_target_telemetry(self):
        recorder = telemetry.enable()
        process, address = spawn_local_server()
        backend = TcpBackend(address, on_shutdown=lambda: process.join(timeout=5))
        runtime = Runtime(backend)
        assert runtime.sync(1, f2f(apps.add, 1, 2)) == 3
        assert not recorder.spans("offload.execute")
        runtime.shutdown()  # drains OP_TELEMETRY before closing
        assert recorder.spans("offload.execute")


class _StubBackend(Backend):
    """Minimal backend for shutdown-drain unit tests."""

    name = "stub"

    def __init__(self):
        self.shutdown_called = False

    def num_nodes(self):
        return 2

    def descriptor(self, node):
        return NodeDescriptor(node, "stub", "host", "stub")

    def post_invoke(self, node, functor):  # pragma: no cover - unused
        raise NotImplementedError

    def drive(self, handle, *, blocking, timeout=None):  # pragma: no cover
        raise NotImplementedError

    def alloc_buffer(self, node, nbytes):  # pragma: no cover - unused
        raise NotImplementedError

    def free_buffer(self, node, addr):  # pragma: no cover - unused
        raise NotImplementedError

    def write_buffer(self, node, addr, data):  # pragma: no cover - unused
        raise NotImplementedError

    def read_buffer(self, node, addr, nbytes):  # pragma: no cover - unused
        raise NotImplementedError

    def shutdown(self):
        self.shutdown_called = True


class TestShutdownDrain:
    def test_failing_pull_emits_event_not_exception(self):
        rec = telemetry.enable()

        class Hanging(_StubBackend):
            def fetch_target_telemetry(self, timeout=None, align=True):
                raise TimeoutError("target wedged")

        backend = Hanging()
        rt = Runtime(backend)
        rt.shutdown()  # must not raise
        assert backend.shutdown_called
        (event,) = rec.events("telemetry.pull_failed")
        assert event.attrs["error"] == "TimeoutError"
        counters = rec.metrics.snapshot()["counters"]
        assert counters["telemetry.pull_failures"] == 1

    def test_drain_passes_short_timeout(self):
        telemetry.enable()
        seen = {}

        class Observing(_StubBackend):
            def fetch_target_telemetry(self, timeout=None, align=True):
                seen["timeout"] = timeout
                return []

        rt = Runtime(Observing())
        rt.shutdown()
        assert seen["timeout"] is not None
        assert seen["timeout"] <= 5.0

    def test_no_drain_without_telemetry(self):
        calls = []

        class Observing(_StubBackend):
            def fetch_target_telemetry(self, timeout=None, align=True):
                calls.append(timeout)
                return []

        rt = Runtime(Observing())
        rt.shutdown()
        assert calls == []

    def test_backend_without_fetch_is_fine(self):
        telemetry.enable()
        backend = _StubBackend()
        rt = Runtime(backend)
        rt.shutdown()
        assert backend.shutdown_called

    def test_faulty_wrapper_forwards_fetch(self):
        telemetry.enable()

        class Providing(_StubBackend):
            def fetch_target_telemetry(self, timeout=None, align=True):
                return ["sentinel"]

        proxy = FaultInjectingBackend(Providing())
        assert proxy.fetch_target_telemetry() == ["sentinel"]

    def test_faulty_wrapper_over_plain_backend_returns_empty(self):
        proxy = FaultInjectingBackend(_StubBackend())
        assert proxy.fetch_target_telemetry() == []
