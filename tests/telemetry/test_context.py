"""Tests for the distributed trace context (W3C-traceparent style)."""

import pytest

from repro.telemetry import context as trace_context
from repro.telemetry.context import FLAG_SAMPLED, TraceContext


class TestTraceContext:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceContext(trace_id=0)
        with pytest.raises(ValueError):
            TraceContext(trace_id=1 << 128)
        with pytest.raises(ValueError):
            TraceContext(trace_id=1, span_id=1 << 64)
        with pytest.raises(ValueError):
            TraceContext(trace_id=1, span_id=-1)

    def test_flags_reflect_sampled(self):
        assert TraceContext(trace_id=1).flags == FLAG_SAMPLED
        assert TraceContext(trace_id=1, sampled=False).flags == 0

    def test_child_reparents_same_identity(self):
        ctx = TraceContext(trace_id=0xABC, span_id=1)
        child = ctx.child(99)
        assert child.trace_id == ctx.trace_id
        assert child.span_id == 99
        assert child.sampled == ctx.sampled

    def test_traceparent_round_trip(self):
        ctx = TraceContext(trace_id=0xDEADBEEF, span_id=0x1234, sampled=True)
        text = ctx.to_traceparent()
        assert text == f"00-{0xDEADBEEF:032x}-{0x1234:016x}-01"
        assert TraceContext.from_traceparent(text) == ctx

    def test_traceparent_unsampled(self):
        ctx = TraceContext(trace_id=5, sampled=False)
        assert ctx.to_traceparent().endswith("-00")
        assert TraceContext.from_traceparent(ctx.to_traceparent()).sampled is False

    @pytest.mark.parametrize("bad", [
        "", "00-abc", "zz-" + "0" * 32 + "-" + "0" * 16 + "-01",
        "00-" + "0" * 32 + "-" + "0" * 16 + "-01",  # zero trace id
        "00-" + "1" * 31 + "-" + "0" * 16 + "-01",  # short trace field
    ])
    def test_traceparent_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            TraceContext.from_traceparent(bad)


class TestActivation:
    def test_default_is_no_context(self):
        assert trace_context.current() is None
        assert trace_context.current_trace_id_hex() == ""

    def test_activate_installs_and_restores(self):
        ctx = TraceContext(trace_id=7)
        with trace_context.activate(ctx) as active:
            assert active is ctx
            assert trace_context.current() is ctx
            assert trace_context.current_trace_id_hex() == ctx.trace_id_hex
        assert trace_context.current() is None

    def test_activate_none_is_passthrough(self):
        outer = TraceContext(trace_id=9)
        with trace_context.activate(outer):
            with trace_context.activate(None):
                assert trace_context.current() is outer

    def test_nesting_restores_outer(self):
        outer, inner = TraceContext(trace_id=1), TraceContext(trace_id=2)
        with trace_context.activate(outer):
            with trace_context.activate(inner):
                assert trace_context.current() is inner
            assert trace_context.current() is outer

    def test_unsampled_context_hides_trace_id(self):
        with trace_context.activate(TraceContext(trace_id=3, sampled=False)):
            assert trace_context.current() is not None
            assert trace_context.current_trace_id_hex() == ""

    def test_new_trace_is_random_and_valid(self):
        a, b = trace_context.new_trace(), trace_context.new_trace()
        assert a.trace_id != b.trace_id
        assert a.span_id == 0
        assert a.sampled is True
