"""Disabled-telemetry overhead guards.

The contract from the recorder module docstring: while telemetry is off,
instrumented call sites reduce to a single global read plus a shared
no-op object — nothing is recorded, nothing accumulates, and the cost
per call stays far below a microsecond-scale offload budget. Thresholds
here are deliberately generous absolute bounds so slow CI machines do
not flake, while still catching accidental "always record" regressions
(which cost orders of magnitude more).
"""

import time

from repro.telemetry import recorder as telemetry
from repro.telemetry.recorder import NOOP_SPAN


def per_call_ns(fn, reps=20_000):
    start = time.perf_counter_ns()
    for _ in range(reps):
        fn()
    return (time.perf_counter_ns() - start) / reps


class TestDisabledPath:
    def test_span_returns_shared_noop(self):
        assert telemetry.span("offload.execute", bytes=1) is NOOP_SPAN
        assert telemetry.span("a") is telemetry.span("b")

    def test_no_state_accumulates_while_disabled(self):
        for i in range(100):
            with telemetry.span("s", i=i):
                telemetry.event("e")
                telemetry.count("c")
                telemetry.observe("h", 0.1)
        rec = telemetry.enable()
        assert rec.records() == []
        assert rec.recorded == 0
        snap = rec.metrics.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_disabled_span_cost_is_negligible(self):
        def instrumented():
            with telemetry.span("offload.execute"):
                pass

        # A generous absolute bound: a disabled span must cost well under
        # 5 µs per call (observed ~0.1-0.3 µs; a recording span costs more
        # than the bound, so enabling-by-accident trips this).
        assert per_call_ns(instrumented) < 5_000

    def test_disabled_count_cost_is_negligible(self):
        assert per_call_ns(lambda: telemetry.count("c")) < 5_000

    def test_disabled_event_cost_is_negligible(self):
        assert per_call_ns(lambda: telemetry.event("e", node=1)) < 5_000


class TestEnabledSanity:
    def test_enabled_span_records_each_call(self):
        rec = telemetry.enable()
        for _ in range(10):
            with telemetry.span("s"):
                pass
        assert len(rec.spans("s")) == 10
