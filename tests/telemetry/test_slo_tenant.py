"""Per-tenant SLO evaluation: isolation, cardinality cap, surfacing."""

from __future__ import annotations

from repro.telemetry.slo import SLO, SLOMonitor

#: A tight availability SLO that breaches after a couple of errors.
AVAIL = SLO(name="avail", phase="offload", threshold_ns=None, objective=0.9)


def _monitor(**kwargs):
    events = []

    def emit(name, **attrs):
        events.append((name, attrs))

    monitor = SLOMonitor(
        [AVAIL], fast_window=10, slow_window=20, min_samples=4,
        burn_threshold=2.0, emit=emit, **kwargs,
    )
    return monitor, events


class TestTenantIsolation:
    def test_noisy_tenant_breaches_alone(self):
        monitor, events = _monitor()
        # Plenty of global good traffic from the quiet tenant...
        for _ in range(40):
            monitor.observe("offload", 1, tenant="quiet")
        # ...then one tenant fails hard.
        for _ in range(10):
            monitor.observe("offload", 1, error=True, tenant="noisy")
        breached = monitor.breached()
        assert "avail[noisy]" in breached
        assert "avail[quiet]" not in breached
        breach_events = [attrs for name, attrs in events
                         if name == "telemetry.slo_breach"]
        assert any(attrs["slo"] == "avail[noisy]"
                   and attrs["tenant"] == "noisy"
                   for attrs in breach_events)
        assert all(attrs.get("tenant") != "quiet" for attrs in breach_events)

    def test_global_state_always_fed(self):
        monitor, _ = _monitor()
        for _ in range(10):
            monitor.observe("offload", 1, error=True, tenant="noisy")
        # With *only* bad traffic, the global SLO breaches too — the
        # tenant dimension adds attribution, it never hides load.
        assert "avail" in monitor.breached()

    def test_tenantless_observe_feeds_global_only(self):
        monitor, _ = _monitor()
        for _ in range(10):
            monitor.observe("offload", 1, error=True)
        snapshot = monitor.snapshot()
        assert list(snapshot) == ["avail"]
        assert snapshot["avail"]["bad"] == 10

    def test_recovery_event_carries_tenant(self):
        monitor, events = _monitor()
        for _ in range(10):
            monitor.observe("offload", 1, error=True, tenant="t")
        for _ in range(30):
            monitor.observe("offload", 1, tenant="t")
        recovered = [attrs for name, attrs in events
                     if name == "telemetry.slo_recovered"]
        assert any(attrs["slo"] == "avail[t]" for attrs in recovered)


class TestCardinalityCap:
    def test_tenants_beyond_cap_fold_into_global(self):
        monitor, _ = _monitor(max_tenants=2)
        for tenant in ("a", "b", "c", "d"):
            monitor.observe("offload", 1, error=True, tenant=tenant)
        snapshot = monitor.snapshot()
        assert "avail[a]" in snapshot and "avail[b]" in snapshot
        assert "avail[c]" not in snapshot and "avail[d]" not in snapshot
        # Overflow traffic still counts globally.
        assert snapshot["avail"]["bad"] == 4

    def test_known_tenant_keeps_its_state_at_cap(self):
        monitor, _ = _monitor(max_tenants=1)
        monitor.observe("offload", 1, tenant="a")
        monitor.observe("offload", 1, error=True, tenant="b")  # over cap
        monitor.observe("offload", 1, error=True, tenant="a")
        assert monitor.snapshot()["avail[a]"]["bad"] == 1


class TestSnapshot:
    def test_tenant_entries_carry_identity(self):
        monitor, _ = _monitor()
        monitor.observe("offload", 1, error=True, tenant="gold")
        entry = monitor.snapshot()["avail[gold]"]
        assert entry["tenant"] == "gold"
        assert entry["total"] == 1 and entry["bad"] == 1

    def test_tenant_gauges_registered_lazily(self):
        from repro.telemetry.metrics import MetricsRegistry

        registry = MetricsRegistry()
        monitor = SLOMonitor(
            [AVAIL], fast_window=10, slow_window=20, min_samples=4,
            metrics=registry,
        )
        monitor.observe("offload", 1, error=True, tenant="gold")
        gauges = registry.snapshot()["gauges"]
        assert "slo.avail.tenant.gold.fast_burn" in gauges
        assert "slo.avail.tenant.gold.breached" in gauges
