"""Tests for the AuroraMachine assembly."""

import pytest

from repro.hw.params import DEFAULT_TIMING
from repro.machine import AuroraMachine


class TestMachineAssembly:
    def test_default_single_ve(self):
        machine = AuroraMachine()
        assert machine.num_ves == 1
        assert machine.ve(0).index == 0
        assert machine.daemon(0).ve is machine.ve(0)
        assert machine.link(0) is machine.ve(0).link

    def test_eight_ve_machine(self):
        machine = AuroraMachine(num_ves=8)
        assert machine.num_ves == 8
        assert {ve.index for ve in machine.ves} == set(range(8))

    def test_upi_hops_follow_socket(self):
        local = AuroraMachine(num_ves=8, socket=0)
        assert [link.upi_hops for link in local.links] == [0, 0, 0, 0, 1, 1, 1, 1]
        remote = AuroraMachine(num_ves=8, socket=1)
        assert [link.upi_hops for link in remote.links] == [1, 1, 1, 1, 0, 0, 0, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            AuroraMachine(num_ves=0)
        with pytest.raises(ValueError):
            AuroraMachine(num_ves=9)
        with pytest.raises(ValueError):
            AuroraMachine(socket=2)

    def test_custom_timing_propagates(self):
        slow = DEFAULT_TIMING.with_overrides(udma_read_latency=1.0)
        machine = AuroraMachine(timing=slow)
        assert machine.ve(0).timing.udma_read_latency == 1.0
        assert machine.daemon(0).dma_manager.timing.udma_read_latency == 1.0

    def test_four_dma_flag_propagates(self):
        classic = AuroraMachine(four_dma=False)
        assert not classic.daemon(0).dma_manager.four_dma
        modern = AuroraMachine(four_dma=True)
        assert modern.daemon(0).dma_manager.four_dma

    def test_tracer_attached(self):
        machine = AuroraMachine()
        assert machine.sim.tracer is machine.tracer

    def test_separate_machines_isolated(self):
        a = AuroraMachine()
        b = AuroraMachine()
        a.sim.timeout(1.0)
        a.sim.run()
        assert a.sim.now == 1.0
        assert b.sim.now == 0.0

    def test_scratch_region_is_vh_ddr(self):
        machine = AuroraMachine()
        assert machine.scratch_region() is machine.vh.ddr
