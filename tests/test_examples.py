"""Smoke tests: every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

EXPECTED_MARKERS = {
    "quickstart.py": "match                   : True",
    "dgemm_loadbalance.py": "host + VE balanced",
    "distributed_trace.py": "merged trace written:",
    "pipeline_overlap.py": "overlap gain",
    "tcp_remote_offload.py": "server shut down cleanly: True",
    "traced_offload.py": "trace written:",
    "protocol_comparison.py": "HAM-VEO / HAM-DMA",
    "vhcall_syscalls.py": "hello from VE pid",
    "multi_ve_cluster.py": "host + 8 VEs balanced",
    "heat_equation.py": "monotone temperature profile: OK",
    "remote_cluster_offload.py": "match           : True",
}


def test_every_example_has_an_expectation():
    assert set(EXAMPLES) == set(EXPECTED_MARKERS), (
        "examples and EXPECTED_MARKERS out of sync"
    )


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTED_MARKERS[name] in result.stdout
