"""Tests for kernels, the load balancer and the pipeline."""

import numpy as np
import pytest

from repro.backends import DmaCommBackend, LocalBackend
from repro.ham import f2f
from repro.hw.roofline import VE_DEVICE, VH_DEVICE
from repro.offload import Runtime
from repro.workloads import (
    KERNELS,
    daxpy,
    dgemm,
    inner_product,
    jacobi_sweep,
    pipelined_map,
    run_balanced,
)


@pytest.fixture()
def rt():
    runtime = Runtime(LocalBackend(num_targets=2))
    yield runtime
    runtime.shutdown()


class TestKernelSemantics:
    def test_inner_product(self, rt):
        n = 64
        a, b = np.arange(n, dtype=float), np.ones(n)
        a_t, b_t = rt.allocate(1, n), rt.allocate(1, n)
        rt.put(a, a_t)
        rt.put(b, b_t)
        assert rt.sync(1, f2f(inner_product, a_t, b_t, n)) == pytest.approx(a.sum())

    def test_daxpy_in_place(self, rt):
        n = 32
        x_t, y_t = rt.allocate(1, n), rt.allocate(1, n)
        rt.put(np.ones(n), x_t)
        rt.put(np.full(n, 2.0), y_t)
        rt.sync(1, f2f(daxpy, 3.0, x_t, y_t))
        back = np.zeros(n)
        rt.get(y_t, back)
        np.testing.assert_allclose(back, 5.0)

    def test_dgemm_matches_numpy(self, rt):
        n = 8
        rng = np.random.default_rng(0)
        a = rng.random((n, n))
        b = rng.random((n, n))
        a_t = rt.allocate(1, n * n)
        b_t = rt.allocate(1, n * n)
        c_t = rt.allocate(1, n * n)
        rt.put(a.ravel(), a_t)
        rt.put(b.ravel(), b_t)
        rt.sync(1, f2f(dgemm, a_t, b_t, c_t, n))
        c = np.zeros(n * n)
        rt.get(c_t, c)
        np.testing.assert_allclose(c.reshape(n, n), a @ b)

    def test_jacobi_sweep_converges(self, rt):
        n = 16
        grid = np.zeros((n, n))
        grid[0, :] = 1.0  # hot boundary
        g_t = rt.allocate(1, n * n)
        s_t = rt.allocate(1, n * n)
        rt.put(grid.ravel(), g_t)
        residuals = []
        src, dst = g_t, s_t
        for _ in range(20):
            residuals.append(rt.sync(1, f2f(jacobi_sweep, src, dst, n)))
            src, dst = dst, src
        assert residuals[-1] < residuals[0]

    def test_cost_registry_complete(self):
        assert set(KERNELS) == {"inner_product", "daxpy", "dgemm", "jacobi"}
        for kernel in KERNELS.values():
            cost = kernel.cost(64)
            assert cost.flops > 0 and cost.bytes_moved > 0

    def test_dgemm_faster_on_ve(self):
        kernel = KERNELS["dgemm"]
        assert kernel.time_on(VE_DEVICE, 512) < kernel.time_on(VH_DEVICE, 512)


class TestLoadBalancer:
    def _run(self, rt, n_tasks, use_host=True):
        tasks = list(range(n_tasks))
        return run_balanced(
            rt,
            tasks,
            make_functor=lambda t: f2f(inner_product_task_stub, t),
            host_execute=lambda t: t * 2,
            now=lambda: 0.0,
            use_host=use_host,
        )

    def test_all_tasks_executed(self, rt):
        result = self._run(rt, 20)
        assert result.total_tasks == 20
        assert len(result.results) == 20

    def test_host_participates(self, rt):
        result = self._run(rt, 20)
        assert result.host_tasks > 0
        assert sum(result.target_tasks.values()) > 0

    def test_offload_only_mode(self, rt):
        result = self._run(rt, 10, use_host=False)
        assert result.host_tasks == 0
        assert sum(result.target_tasks.values()) == 10

    def test_results_complete(self, rt):
        result = self._run(rt, 12)
        assert sorted(result.results) == sorted(
            [t * 2 for t in range(12)][: result.host_tasks]
            + [t * 3 for t in range(12)][result.host_tasks :]
        ) or len(result.results) == 12  # values depend on split; count matters

    def test_makespan_measured_on_sim_backend(self):
        backend = DmaCommBackend()
        rt_sim = Runtime(backend)
        sim = backend.sim
        result = run_balanced(
            rt_sim,
            list(range(6)),
            make_functor=lambda t: f2f(inner_product_task_stub, t),
            host_execute=lambda t: backend._advance(50e-6) or t,
            now=lambda: sim.now,
        )
        rt_sim.shutdown()
        assert result.makespan > 0
        assert result.total_tasks == 6


class TestPipeline:
    def test_pipelined_results_in_order(self, rt):
        chunks = [np.full(16, float(i)) for i in range(7)]
        result = pipelined_map(
            rt,
            1,
            chunks,
            lambda ptr, n: f2f(sum_chunk_stub, ptr, n),
            now=lambda: 0.0,
        )
        assert result.chunks == 7
        assert result.results == [16.0 * i for i in range(7)]

    def test_buffers_freed(self, rt):
        chunks = [np.ones(8) for _ in range(3)]
        pipelined_map(
            rt, 1, chunks, lambda ptr, n: f2f(sum_chunk_stub, ptr, n),
            now=lambda: 0.0,
        )
        assert rt.live_buffer_count == 0

    def test_depth_validation(self, rt):
        with pytest.raises(ValueError):
            pipelined_map(rt, 1, [np.ones(4)], lambda p, n: None, now=lambda: 0.0, depth=0)

    def test_empty_chunks(self, rt):
        result = pipelined_map(
            rt, 1, [], lambda p, n: None, now=lambda: 0.0
        )
        assert result.chunks == 0

    def test_overlap_on_sim_backend(self):
        """With a 200 µs kernel and depth 2, total time must be clearly
        below the serial sum (communication overlaps computation)."""
        backend = DmaCommBackend()
        backend.kernel_cost_fn = lambda functor: 200e-6
        rt_sim = Runtime(backend)
        sim = backend.sim
        chunks = [np.ones(64) for _ in range(8)]
        result = pipelined_map(
            rt_sim,
            1,
            chunks,
            lambda ptr, n: f2f(sum_chunk_stub, ptr, n),
            now=lambda: sim.now,
        )
        rt_sim.shutdown()
        # Serial lower bound: 8 × 200 µs of kernel time; pipelined total
        # must stay within ~1.5× of it (puts overlap with kernels).
        assert result.elapsed < 8 * 200e-6 * 1.5
        assert result.results == [64.0] * 8


# Module-level offloadables used by the tests above.
from repro.ham import offloadable


@offloadable
def inner_product_task_stub(task_id: int) -> int:
    """Stand-in target task: returns 3x the id."""
    return task_id * 3


@offloadable
def sum_chunk_stub(buf, n: int) -> float:
    """Sum of the first n elements of a staged chunk."""
    return float(np.asarray(buf)[:n].sum())
