"""Unit tests for simulated memory regions and the allocator."""

import numpy as np
import pytest

from repro.errors import BadAddressError, DoubleFreeError, OutOfMemoryError
from repro.hw.memory import MemoryRegion, PAGE_4K, PAGE_HUGE_2M


@pytest.fixture()
def mem():
    return MemoryRegion("test", 1024 * 1024, default_page_size=PAGE_4K)


class TestAllocator:
    def test_basic_allocate_free(self, mem):
        alloc = mem.allocate(100)
        assert alloc.size == 100
        assert alloc.page_size == PAGE_4K
        assert mem.live_allocations == 1
        mem.free(alloc)
        assert mem.live_allocations == 0

    def test_allocations_page_aligned(self, mem):
        a = mem.allocate(100)
        b = mem.allocate(100)
        assert a.addr % PAGE_4K == 0
        assert b.addr % PAGE_4K == 0
        assert b.addr >= a.addr + PAGE_4K  # no page sharing

    def test_allocations_do_not_overlap(self, mem):
        allocs = [mem.allocate(3000) for _ in range(10)]
        spans = sorted((a.addr, a.end) for a in allocs)
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_freed_space_is_reused(self, mem):
        a = mem.allocate(512 * 1024)
        mem.free(a)
        b = mem.allocate(512 * 1024)
        assert b.addr == a.addr

    def test_out_of_memory(self, mem):
        with pytest.raises(OutOfMemoryError):
            mem.allocate(2 * 1024 * 1024)

    def test_oom_message_mentions_free_bytes(self, mem):
        mem.allocate(1024 * 1024 - PAGE_4K)
        with pytest.raises(OutOfMemoryError, match="free"):
            mem.allocate(8 * PAGE_4K)

    def test_double_free_detected(self, mem):
        a = mem.allocate(64)
        mem.free(a)
        with pytest.raises(DoubleFreeError):
            mem.free(a)

    def test_foreign_free_detected(self, mem):
        other = MemoryRegion("other", 1024 * 1024, default_page_size=PAGE_4K)
        foreign = other.allocate(64)
        with pytest.raises(DoubleFreeError):
            mem.free(foreign)

    def test_zero_size_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.allocate(0)

    def test_coalescing_allows_full_reallocation(self, mem):
        allocs = [mem.allocate(PAGE_4K) for _ in range(mem.size // PAGE_4K)]
        with pytest.raises(OutOfMemoryError):
            mem.allocate(PAGE_4K)
        for alloc in allocs:
            mem.free(alloc)
        # After freeing everything the region is one extent again.
        big = mem.allocate(mem.size)
        assert big.addr == 0

    def test_fragmentation_then_coalesce(self, mem):
        a = mem.allocate(PAGE_4K)
        b = mem.allocate(PAGE_4K)
        c = mem.allocate(PAGE_4K)
        mem.free(b)
        mem.free(a)
        mem.free(c)
        assert mem.free_bytes == mem.size

    def test_huge_page_allocation(self):
        mem = MemoryRegion("huge", 8 * PAGE_HUGE_2M)
        alloc = mem.allocate(100, page_size=PAGE_HUGE_2M)
        assert alloc.page_size == PAGE_HUGE_2M
        assert alloc.pages() == 1
        big = mem.allocate(3 * PAGE_HUGE_2M)
        assert big.pages() == 3

    def test_stats(self, mem):
        a = mem.allocate(PAGE_4K)
        b = mem.allocate(PAGE_4K)
        assert mem.bytes_allocated == 2 * PAGE_4K
        assert mem.peak_allocated == 2 * PAGE_4K
        mem.free(a)
        mem.free(b)
        assert mem.bytes_allocated == 0
        assert mem.peak_allocated == 2 * PAGE_4K
        assert mem.total_allocations == 2

    def test_allocation_at(self, mem):
        a = mem.allocate(100)
        assert mem.allocation_at(a.addr) == a
        assert mem.allocation_at(a.addr + 50) == a
        with pytest.raises(BadAddressError):
            mem.allocation_at(a.addr + PAGE_4K)


class TestRawAccess:
    def test_write_read_roundtrip(self, mem):
        data = bytes(range(256))
        mem.write(1000, data)
        assert mem.read(1000, 256) == data

    def test_numpy_write(self, mem):
        arr = np.arange(16, dtype=np.float64)
        mem.write(0, arr)
        back = np.frombuffer(mem.read(0, arr.nbytes), dtype=np.float64)
        np.testing.assert_array_equal(back, arr)

    def test_view_is_zero_copy(self, mem):
        view = mem.view(0, 8)
        view[:] = 7
        assert mem.read(0, 8) == bytes([7] * 8)

    def test_out_of_bounds_write(self, mem):
        with pytest.raises(BadAddressError):
            mem.write(mem.size - 4, b"12345678")

    def test_out_of_bounds_read(self, mem):
        with pytest.raises(BadAddressError):
            mem.read(mem.size, 1)

    def test_negative_address(self, mem):
        with pytest.raises(BadAddressError):
            mem.read(-1, 1)

    def test_u64_roundtrip(self, mem):
        mem.write_u64(128, 0xDEAD_BEEF_CAFE_F00D)
        assert mem.read_u64(128) == 0xDEAD_BEEF_CAFE_F00D

    def test_u64_unaligned_offset_ok(self, mem):
        mem.write_u64(3, 42)
        assert mem.read_u64(3) == 42

    def test_initial_memory_zeroed(self, mem):
        assert mem.read(0, 64) == bytes(64)

    def test_invalid_region_size(self):
        with pytest.raises(ValueError):
            MemoryRegion("bad", 0)
