"""Unit tests for PCIe switch-uplink sharing (extension M2 mechanics)."""

import pytest

from repro.hw.pcie import PcieLink
from repro.machine import AuroraMachine
from repro.sim import Resource, Simulator


@pytest.fixture()
def sim():
    return Simulator()


class TestUplinkSharing:
    def test_links_without_uplink_run_concurrently(self, sim):
        a, b = PcieLink(sim, "a"), PcieLink(sim, "b")

        def proc(link):
            yield from link.transfer(1.0, 1, "vh_to_ve")

        done = [sim.process(proc(a)), sim.process(proc(b))]
        sim.run(until=sim.all_of(done))
        assert sim.now == pytest.approx(1.0)

    def test_links_sharing_uplink_serialise(self, sim):
        uplink = Resource(sim)
        a = PcieLink(sim, "a", uplink=uplink)
        b = PcieLink(sim, "b", uplink=uplink)

        def proc(link):
            yield from link.transfer(1.0, 1, "vh_to_ve")

        done = [sim.process(proc(a)), sim.process(proc(b))]
        sim.run(until=sim.all_of(done))
        assert sim.now == pytest.approx(2.0)

    def test_distinct_uplinks_do_not_interfere(self, sim):
        a = PcieLink(sim, "a", uplink=Resource(sim))
        b = PcieLink(sim, "b", uplink=Resource(sim))

        def proc(link):
            yield from link.transfer(1.0, 1, "vh_to_ve")

        done = [sim.process(proc(a)), sim.process(proc(b))]
        sim.run(until=sim.all_of(done))
        assert sim.now == pytest.approx(1.0)

    def test_machine_wires_uplinks_per_switch(self):
        machine = AuroraMachine(num_ves=8)
        uplinks = {id(link.uplink) for link in machine.links[:4]}
        assert len(uplinks) == 1  # VEs 0-3 share switch 0
        assert machine.links[0].uplink is not machine.links[4].uplink

    def test_single_ve_machine_still_has_uplink(self):
        machine = AuroraMachine(num_ves=1)
        assert machine.links[0].uplink is machine.switch_uplinks[0]
