"""Tests for VectorEngine, VectorHost, specs and topology."""

import pytest

from repro.errors import DmaError, HardwareError
from repro.hw import (
    A300_8,
    PcieLink,
    SystemTopology,
    VE_TYPE_10B,
    VH_XEON_GOLD_6126,
    VectorEngine,
    VectorHost,
)
from repro.hw.params import DEFAULT_TIMING, WORD
from repro.hw.roofline import KernelCost, VE_DEVICE, VE_SCALAR_DEVICE, VH_DEVICE
from repro.sim import Simulator


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def ve(sim):
    link = PcieLink(sim, "pcie0")
    return VectorEngine(sim, 0, DEFAULT_TIMING, link, memory_bytes=16 * 2**20)


@pytest.fixture()
def vh(sim):
    return VectorHost(sim, DEFAULT_TIMING, memory_bytes=16 * 2**20)


class TestSpecs:
    def test_table1_values(self):
        assert VH_XEON_GOLD_6126.cores == 12
        assert VH_XEON_GOLD_6126.threads == 24
        assert VE_TYPE_10B.cores == 8
        assert VE_TYPE_10B.vector_width_double == 256
        assert VE_TYPE_10B.peak_gflops == pytest.approx(2150.4)
        assert VE_TYPE_10B.memory_bandwidth_gb_s == pytest.approx(1228.8)

    def test_system_composition(self):
        assert A300_8.num_ves == 8
        assert A300_8.num_cpu_sockets == 2
        assert A300_8.vh_memory_bytes == 192 * 2**30

    def test_socket_of_ve(self):
        assert A300_8.socket_of_ve(0) == 0
        assert A300_8.socket_of_ve(3) == 0
        assert A300_8.socket_of_ve(4) == 1
        assert A300_8.socket_of_ve(7) == 1
        with pytest.raises(ValueError):
            A300_8.socket_of_ve(8)


class TestTopology:
    def test_local_ve_no_upi(self):
        topo = SystemTopology()
        assert topo.upi_hops(0, 0) == 0
        assert topo.upi_hops(1, 4) == 0

    def test_remote_ve_one_upi_hop(self):
        topo = SystemTopology()
        assert topo.upi_hops(1, 0) == 1
        assert topo.upi_hops(0, 7) == 1

    def test_ves_of_socket(self):
        topo = SystemTopology()
        assert topo.ves_of_socket(0) == [0, 1, 2, 3]
        assert topo.ves_of_socket(1) == [4, 5, 6, 7]

    def test_describe_mentions_all_ves(self):
        text = SystemTopology().describe()
        for ve in range(8):
            assert f"ve{ve}" in text


class TestVectorEngineLhmShm:
    def _register_host(self, vh, ve, size=4096):
        seg = vh.shmget(size)
        return seg, ve.dmaatb.register(seg, 0, size)

    def test_lhm_reads_host_memory(self, sim, ve, vh):
        seg, entry = self._register_host(vh, ve)
        seg.write(64, b"hello-world-....")

        def proc():
            data = yield from ve.lhm_read(entry.vehva + 64, 16)
            return data

        assert sim.run(until=sim.process(proc())) == b"hello-world-...."
        assert ve.lhm_ops == 2  # 16 bytes = 2 words

    def test_lhm_u64_flag_read(self, sim, ve, vh):
        seg, entry = self._register_host(vh, ve)
        seg.write_u64(0, 12345)

        def proc():
            value = yield from ve.lhm_read_u64(entry.vehva)
            return value

        assert sim.run(until=sim.process(proc())) == 12345
        assert sim.now == pytest.approx(DEFAULT_TIMING.lhm_time(WORD))

    def test_shm_store_visible_after_delay(self, sim, ve, vh):
        seg, entry = self._register_host(vh, ve)

        def proc():
            yield from ve.shm_write(entry.vehva, b"\xaa" * 16)

        issue_done = sim.process(proc())
        sim.run(until=issue_done)
        # Posted stores: issued but not yet visible.
        assert seg.read(0, 16) == bytes(16)
        sim.run()
        assert seg.read(0, 16) == b"\xaa" * 16

    def test_shm_u64(self, sim, ve, vh):
        seg, entry = self._register_host(vh, ve)

        def proc():
            yield from ve.shm_write_u64(entry.vehva + 8, 0xFEED)

        sim.run(until=sim.process(proc()))
        sim.run()
        assert seg.read_u64(8) == 0xFEED

    def test_shm_zero_bytes_rejected(self, sim, ve, vh):
        _seg, entry = self._register_host(vh, ve)

        def proc():
            yield from ve.shm_write(entry.vehva, b"")

        with pytest.raises(DmaError):
            sim.run(until=sim.process(proc()))


class TestVectorHostShm:
    def test_segment_lifecycle(self, vh):
        seg = vh.shmget(8192)
        assert vh.segment_by_key(seg.key) is seg
        assert vh.live_segments == 1
        vh.shmrm(seg)
        assert vh.live_segments == 0
        with pytest.raises(HardwareError):
            vh.segment_by_key(seg.key)

    def test_unique_keys(self, vh):
        a = vh.shmget(4096)
        b = vh.shmget(4096)
        assert a.key != b.key

    def test_huge_page_flag(self, vh):
        huge = vh.shmget(4 * 2**20, huge_pages=True)
        small = vh.shmget(4 * 2**20, huge_pages=False)
        assert huge.default_page_size == 2 * 2**20
        assert small.default_page_size == 4096

    def test_bad_size(self, vh):
        with pytest.raises(HardwareError):
            vh.shmget(0)

    def test_double_remove(self, vh):
        seg = vh.shmget(4096)
        vh.shmrm(seg)
        with pytest.raises(HardwareError):
            vh.shmrm(seg)


class TestRoofline:
    def test_vectorised_ve_beats_vh_on_streaming(self):
        # A memory-bound kernel: the VE's HBM2 should win by ~10x.
        cost = KernelCost(flops=1e6, bytes_moved=1e8)
        assert VE_DEVICE.kernel_time(cost) < VH_DEVICE.kernel_time(cost) / 5

    def test_scalar_ve_slower_than_vh(self):
        # The paper's motivation: scalar code runs slowly on the VE.
        cost = KernelCost(flops=1e8, bytes_moved=1e6)
        assert VE_SCALAR_DEVICE.kernel_time(cost) > VH_DEVICE.kernel_time(cost)

    def test_startup_dominates_tiny_kernels(self):
        tiny = KernelCost(flops=10, bytes_moved=10)
        assert VE_DEVICE.kernel_time(tiny) == pytest.approx(VE_DEVICE.startup, rel=0.01)

    def test_scaled(self):
        cost = KernelCost(flops=100, bytes_moved=200)
        double = cost.scaled(2)
        assert double.flops == 200 and double.bytes_moved == 400

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            VE_DEVICE.kernel_time(KernelCost(flops=-1, bytes_moved=0))

    def test_arithmetic_balance_positive(self):
        assert VE_DEVICE.arithmetic_balance() > 0
