"""Tests for the PCIe link model."""

import pytest

from repro.hw.pcie import PcieLink
from repro.sim import Simulator


@pytest.fixture()
def sim():
    return Simulator()


class TestPcieLink:
    def test_transfer_charges_duration(self, sim):
        link = PcieLink(sim)

        def proc():
            yield from link.transfer(1e-3, 1000, "vh_to_ve")

        sim.run(until=sim.process(proc()))
        assert sim.now == pytest.approx(1e-3)
        assert link.busy_time == pytest.approx(1e-3)

    def test_concurrent_transfers_serialise(self, sim):
        link = PcieLink(sim)

        def proc():
            yield from link.transfer(1e-3, 100, "vh_to_ve")

        done = [sim.process(proc()) for _ in range(4)]
        sim.run(until=sim.all_of(done))
        assert sim.now == pytest.approx(4e-3)

    def test_byte_accounting_by_direction(self, sim):
        link = PcieLink(sim)

        def proc():
            yield from link.transfer(1e-6, 10, "vh_to_ve")
            yield from link.transfer(1e-6, 20, "ve_to_vh")

        sim.run(until=sim.process(proc()))
        assert (link.bytes_vh_to_ve, link.bytes_ve_to_vh) == (10, 20)

    def test_word_ops_bypass_arbitration(self, sim):
        link = PcieLink(sim)
        link.word_op("ve_to_vh")
        assert link.word_op_count == 1
        assert link.bytes_ve_to_vh == 8

    def test_invalid_direction(self, sim):
        link = PcieLink(sim)
        with pytest.raises(ValueError):
            link.word_op("up")

    def test_negative_duration(self, sim):
        link = PcieLink(sim)

        def proc():
            yield from link.transfer(-1.0, 10, "vh_to_ve")

        with pytest.raises(ValueError):
            sim.run(until=sim.process(proc()))

    def test_negative_upi_hops(self, sim):
        with pytest.raises(ValueError):
            PcieLink(sim, upi_hops=-1)

    def test_queue_length_visible(self, sim):
        link = PcieLink(sim)

        def proc():
            yield from link.transfer(1.0, 1, "vh_to_ve")

        for _ in range(3):
            sim.process(proc())
        sim.run(until=0.5)
        assert link.queue_length == 2
