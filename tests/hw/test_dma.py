"""Tests for the DMAATB and the user DMA engine."""

import numpy as np
import pytest

from repro.errors import DmaatbError, DmaError
from repro.hw.dma import Dmaatb, UserDmaEngine, VEHVA_BASE
from repro.hw.memory import MemoryRegion, PAGE_4K
from repro.hw.params import DEFAULT_TIMING
from repro.hw.pcie import PcieLink
from repro.sim import Simulator


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def host_mem():
    return MemoryRegion("host", 1024 * 1024, default_page_size=PAGE_4K)


@pytest.fixture()
def ve_mem():
    return MemoryRegion("ve", 1024 * 1024, default_page_size=PAGE_4K)


class TestDmaatb:
    def test_register_translate(self, host_mem):
        atb = Dmaatb()
        entry = atb.register(host_mem, 4096, 8192)
        region, addr = atb.translate(entry.vehva, 100)
        assert region is host_mem and addr == 4096
        region, addr = atb.translate(entry.vehva + 1000, 100)
        assert addr == 5096

    def test_vehva_ranges_disjoint(self, host_mem):
        atb = Dmaatb()
        e1 = atb.register(host_mem, 0, 5000)
        e2 = atb.register(host_mem, 8192, 5000)
        assert e1.end <= e2.vehva or e2.end <= e1.vehva
        assert e1.vehva >= VEHVA_BASE

    def test_unregistered_range_fails(self, host_mem):
        atb = Dmaatb()
        entry = atb.register(host_mem, 0, 4096)
        with pytest.raises(DmaatbError):
            atb.translate(entry.vehva, 8192)  # overruns the registration
        with pytest.raises(DmaatbError):
            atb.translate(VEHVA_BASE - 4096, 8)

    def test_unregister(self, host_mem):
        atb = Dmaatb()
        entry = atb.register(host_mem, 0, 4096)
        atb.unregister(entry)
        with pytest.raises(DmaatbError):
            atb.translate(entry.vehva, 8)
        with pytest.raises(DmaatbError):
            atb.unregister(entry)

    def test_capacity_limit(self, host_mem):
        atb = Dmaatb(capacity=2)
        atb.register(host_mem, 0, 64)
        atb.register(host_mem, 4096, 64)
        with pytest.raises(DmaatbError):
            atb.register(host_mem, 8192, 64)

    def test_bad_range_rejected(self, host_mem):
        atb = Dmaatb()
        with pytest.raises(DmaatbError):
            atb.register(host_mem, 0, 0)
        with pytest.raises(DmaatbError):
            atb.register(host_mem, host_mem.size - 4, 8)


class TestUserDmaEngine:
    def _engine(self, sim, host_mem):
        atb = Dmaatb()
        link = PcieLink(sim)
        return UserDmaEngine(sim, DEFAULT_TIMING, atb, link), atb, link

    def test_read_host_moves_real_bytes(self, sim, host_mem, ve_mem):
        engine, atb, _link = self._engine(sim, host_mem)
        entry = atb.register(host_mem, 0, 4096)
        payload = bytes(range(200))
        host_mem.write(100, payload)

        def proc():
            yield from engine.read_host(entry.vehva + 100, ve_mem, 500, 200)

        sim.run(until=sim.process(proc()))
        assert ve_mem.read(500, 200) == payload

    def test_write_host_moves_real_bytes(self, sim, host_mem, ve_mem):
        engine, atb, _link = self._engine(sim, host_mem)
        entry = atb.register(host_mem, 0, 4096)
        payload = np.random.default_rng(0).integers(0, 256, 300, dtype=np.uint8)
        ve_mem.write(0, payload)

        def proc():
            yield from engine.write_host(ve_mem, 0, entry.vehva + 50, 300)

        sim.run(until=sim.process(proc()))
        assert host_mem.read(50, 300) == payload.tobytes()

    def test_transfer_charges_model_time(self, sim, host_mem, ve_mem):
        engine, atb, _link = self._engine(sim, host_mem)
        entry = atb.register(host_mem, 0, 65536)
        size = 65536

        def proc():
            yield from engine.read_host(entry.vehva, ve_mem, 0, size)

        sim.run(until=sim.process(proc()))
        expected = DEFAULT_TIMING.udma_transfer_time(size, direction="vh_to_ve")
        assert sim.now == pytest.approx(expected)

    def test_unregistered_transfer_fails(self, sim, host_mem, ve_mem):
        engine, _atb, _link = self._engine(sim, host_mem)

        def proc():
            yield from engine.read_host(VEHVA_BASE, ve_mem, 0, 64)

        with pytest.raises(DmaatbError):
            sim.run(until=sim.process(proc()))

    def test_concurrent_transfers_serialise_on_engine(self, sim, host_mem, ve_mem):
        engine, atb, _link = self._engine(sim, host_mem)
        entry = atb.register(host_mem, 0, 65536)
        one = DEFAULT_TIMING.udma_transfer_time(1024, direction="vh_to_ve")

        def proc():
            yield from engine.read_host(entry.vehva, ve_mem, 0, 1024)

        done = [sim.process(proc()) for _ in range(3)]
        sim.run(until=sim.all_of(done))
        assert sim.now == pytest.approx(3 * one)

    def test_link_accounting(self, sim, host_mem, ve_mem):
        engine, atb, link = self._engine(sim, host_mem)
        entry = atb.register(host_mem, 0, 4096)

        def proc():
            yield from engine.read_host(entry.vehva, ve_mem, 0, 1000)
            yield from engine.write_host(ve_mem, 0, entry.vehva, 2000)

        sim.run(until=sim.process(proc()))
        assert link.bytes_vh_to_ve == 1000
        assert link.bytes_ve_to_vh == 2000
        assert link.transfer_count == 2

    def test_validate_local(self, sim, host_mem, ve_mem):
        engine, _atb, _link = self._engine(sim, host_mem)
        engine.validate_local(ve_mem, 0, 64)
        with pytest.raises(DmaError):
            engine.validate_local(ve_mem, ve_mem.size, 8)
