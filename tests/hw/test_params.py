"""Tests of the timing model's analytical properties.

Calibration against the paper's absolute anchors is tested separately in
``tests/bench/test_calibration.py``; here we check structural properties
(monotonicity, direction asymmetry, parameter plumbing).
"""

import pytest

from repro.hw.params import DEFAULT_TIMING, TimingModel, US, WORD
from repro.hw.specs import GIB, KIB, MIB
from repro.hw.memory import PAGE_4K, PAGE_HUGE_2M


@pytest.fixture()
def tm():
    return DEFAULT_TIMING


class TestVeoTransfer:
    def test_monotone_in_size(self, tm):
        times = [
            tm.veo_transfer_time(s, direction="vh_to_ve", page_size=PAGE_HUGE_2M)
            for s in (8, 64, KIB, MIB, 16 * MIB)
        ]
        assert times == sorted(times)

    def test_write_slower_than_read_for_small(self, tm):
        # VE→VH is the generally faster direction (paper Sec. V-B).
        write = tm.veo_transfer_time(8, direction="vh_to_ve", page_size=PAGE_HUGE_2M)
        read = tm.veo_transfer_time(8, direction="ve_to_vh", page_size=PAGE_HUGE_2M)
        assert write > read

    def test_small_pages_cost_more(self, tm):
        small = tm.veo_transfer_time(16 * MIB, direction="vh_to_ve", page_size=PAGE_4K)
        huge = tm.veo_transfer_time(16 * MIB, direction="vh_to_ve", page_size=PAGE_HUGE_2M)
        assert small > huge

    def test_classic_dma_manager_slower(self, tm):
        classic = tm.veo_transfer_time(
            16 * MIB, direction="vh_to_ve", page_size=PAGE_HUGE_2M, four_dma=False
        )
        improved = tm.veo_transfer_time(
            16 * MIB, direction="vh_to_ve", page_size=PAGE_HUGE_2M, four_dma=True
        )
        assert classic > improved

    def test_upi_hop_adds_latency(self, tm):
        local = tm.veo_transfer_time(8, direction="vh_to_ve", page_size=PAGE_HUGE_2M)
        remote = tm.veo_transfer_time(
            8, direction="vh_to_ve", page_size=PAGE_HUGE_2M, upi_hops=1
        )
        assert remote == pytest.approx(local + tm.upi_penalty)

    def test_negative_size_rejected(self, tm):
        with pytest.raises(ValueError):
            tm.veo_transfer_time(-1, direction="vh_to_ve", page_size=PAGE_4K)

    def test_unknown_direction_rejected(self, tm):
        with pytest.raises(ValueError):
            tm.veo_transfer_time(8, direction="sideways", page_size=PAGE_4K)


class TestUserDma:
    def test_much_faster_than_veo_for_small(self, tm):
        veo = tm.veo_transfer_time(8, direction="vh_to_ve", page_size=PAGE_HUGE_2M)
        dma = tm.udma_transfer_time(8, direction="vh_to_ve")
        assert veo / dma > 20

    def test_bandwidth_capped_by_pcie(self, tm):
        fast = tm.with_overrides(udma_write_bandwidth=100 * GIB)
        time = fast.udma_transfer_time(GIB, direction="ve_to_vh")
        implied_bw = GIB / time
        assert implied_bw <= fast.pcie_max_bandwidth * 1.001

    def test_ve_to_vh_faster(self, tm):
        down = tm.udma_transfer_time(MIB, direction="vh_to_ve")
        up = tm.udma_transfer_time(MIB, direction="ve_to_vh")
        assert up < down

    def test_unknown_direction_rejected(self, tm):
        with pytest.raises(ValueError):
            tm.udma_transfer_time(8, direction="x")


class TestLhmShm:
    def test_single_lhm_word_close_to_pcie_rtt(self, tm):
        assert tm.lhm_time(WORD) == pytest.approx(tm.pcie_read_rtt, rel=0.25)

    def test_lhm_linear_in_words(self, tm):
        t1 = tm.lhm_time(WORD)
        t10 = tm.lhm_time(10 * WORD)
        assert t10 - t1 == pytest.approx(9 * tm.lhm_per_word)

    def test_shm_burst_then_sustained(self, tm):
        burst_words = tm.shm_queue_words
        t_burst = tm.shm_time(burst_words * WORD)
        t_more = tm.shm_time((burst_words + 1) * WORD)
        assert t_more - t_burst == pytest.approx(tm.shm_per_word_sustained)

    def test_shm_beats_lhm(self, tm):
        for size in (WORD, 256, 4 * KIB):
            assert tm.shm_time(size) < tm.lhm_time(size)

    def test_sub_word_access_rounds_up(self, tm):
        assert tm.lhm_time(1) == tm.lhm_time(WORD)
        assert tm.shm_time(1) == tm.shm_time(WORD)


class TestVeoCall:
    def test_call_time_sum_of_parts(self, tm):
        assert tm.veo_call_time() == pytest.approx(
            tm.veo_call_cpu_overhead
            + tm.veo_call_submit_latency
            + tm.veo_call_return_latency
        )

    def test_remote_socket_adds_under_a_microsecond(self, tm):
        # Paper Sec. V-A: "adds up to 1 µs".
        extra = tm.veo_call_time(upi_hops=1) - tm.veo_call_time()
        assert 0 < extra <= 1.0 * US


class TestOverrides:
    def test_with_overrides_returns_new_model(self, tm):
        slow = tm.with_overrides(udma_read_latency=1.0)
        assert slow is not tm
        assert slow.udma_read_latency == 1.0
        assert tm.udma_read_latency != 1.0

    def test_frozen(self, tm):
        with pytest.raises(AttributeError):
            tm.udma_read_latency = 0.0  # type: ignore[misc]

    def test_memcpy_devices(self, tm):
        assert tm.memcpy_time(MIB, device="ve") < tm.memcpy_time(MIB, device="vh")
