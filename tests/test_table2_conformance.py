"""API conformance against paper Table II.

Every element of the paper's API overview must exist here with the
documented semantics. This is an executable version of Table II.
"""

import inspect

import numpy as np
import pytest

import repro
from repro.backends import LocalBackend
from repro.ham import f2f
from repro.offload import BufferPtr, Future, NodeDescriptor, Runtime
from repro.offload import api as offload_api

from tests import apps


@pytest.fixture()
def rt():
    runtime = Runtime(LocalBackend(num_targets=2))
    yield runtime
    runtime.shutdown()


class TestTableII:
    def test_node_t_is_an_address_type(self, rt):
        # "Address type of a process, i.e. an offload host or target."
        assert isinstance(rt.this_node(), int)
        assert all(isinstance(n, int) for n in rt.targets())

    def test_node_descriptor_contains_node_information(self, rt):
        # "Contains information on a node (e.g. name or device-type)."
        desc = rt.get_node_descriptor(1)
        assert isinstance(desc, NodeDescriptor)
        assert desc.name and desc.device_type

    def test_buffer_ptr_includes_node_address(self, rt):
        # "Pointer to a target memory address of type T. The node
        # address is included."
        ptr = rt.allocate(2, 4, np.float32)
        assert ptr.node == 2
        assert ptr.dtype == np.float32

    def test_future_has_test_and_get(self, rt):
        # "Provides non-blocking test() and blocking get() accessors."
        future = rt.async_(1, f2f(apps.add, 1, 1))
        assert isinstance(future, Future)
        assert callable(future.test) and callable(future.get)
        assert future.get() == 2

    def test_f2f_binds_arguments_to_function(self):
        # "binds arguments to a function and returns an offloadable
        # functor object."
        functor = f2f(apps.add, 1, 2)
        assert functor.args == (1, 2)
        assert functor.type_name.endswith("::add")

    def test_sync_performs_synchronous_offload(self, rt):
        assert rt.sync(1, f2f(apps.add, 40, 2)) == 42

    def test_async_returns_future(self, rt):
        assert isinstance(rt.async_(1, f2f(apps.empty_kernel)), Future)

    def test_allocate_and_free(self, rt):
        ptr = rt.allocate(1, 8)
        assert isinstance(ptr, BufferPtr)
        rt.free(ptr)

    def test_put_writes_host_to_target(self, rt):
        # "Writes data from host memory ... into target memory."
        ptr = rt.allocate(1, 4)
        future = rt.put(np.ones(4), ptr)
        assert isinstance(future, Future)
        future.get()

    def test_get_reads_target_to_host(self, rt):
        ptr = rt.allocate(1, 4)
        rt.put(np.full(4, 5.0), ptr)
        out = np.zeros(4)
        rt.get(ptr, out).get()
        np.testing.assert_array_equal(out, 5.0)

    def test_copy_between_targets_orchestrated_by_host(self, rt):
        # "Performs a direct copy between memory on two offload targets.
        # The operation is orchestrated by the host."
        a = rt.allocate(1, 4)
        b = rt.allocate(2, 4)
        rt.put(np.arange(4.0), a)
        rt.copy(a, b).get()
        out = np.zeros(4)
        rt.get(b, out)
        np.testing.assert_array_equal(out, np.arange(4.0))

    def test_num_nodes_counts_processes(self, rt):
        # "Returns the number of processes of the running application."
        assert rt.num_nodes() == 3

    def test_this_node_is_current_process(self, rt):
        assert rt.this_node() == 0

    def test_sync_and_async_versions_available(self):
        # "For most functions, synchronous and asynchronous versions are
        # available."
        assert callable(Runtime.sync) and callable(Runtime.async_)

    def test_free_function_api_mirrors_every_element(self):
        for name in (
            "sync", "async_", "allocate", "free", "put", "get", "copy",
            "num_nodes", "this_node", "get_node_descriptor",
        ):
            assert callable(getattr(offload_api, name)), name


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__

    def test_main_names_reexported(self):
        for name in ("Runtime", "BufferPtr", "Future", "f2f", "offloadable",
                     "AuroraMachine", "NodeDescriptor"):
            assert hasattr(repro, name), name

    def test_public_functions_have_docstrings(self):
        """Every public callable of the offload API is documented."""
        for module in (Runtime,):
            for name, member in inspect.getmembers(module):
                if name.startswith("_"):
                    continue
                if callable(member):
                    assert member.__doc__, f"{module.__name__}.{name} undocumented"
