"""Every calibration anchor must hold for the default timing model."""

import pytest

from repro.bench.calibration import PAPER, bandwidth_curve, check_timing_model, transfer_time
from repro.hw.params import DEFAULT_TIMING
from repro.hw.specs import GIB, KIB, MIB


class TestAnchors:
    def test_all_checks_pass(self):
        checks = check_timing_model(DEFAULT_TIMING)
        failures = [
            f"{c.name}: expected {c.expected:.4g}, got {c.actual:.4g} "
            f"({c.deviation:+.1%}) {c.note}"
            for c in checks
            if not c.passed
        ]
        assert not failures, "\n".join(failures)

    def test_check_count_is_substantial(self):
        # Guards against accidentally dropping anchors.
        assert len(check_timing_model(DEFAULT_TIMING)) >= 20

    def test_detects_a_broken_model(self):
        broken = DEFAULT_TIMING.with_overrides(udma_read_latency=50e-6)
        checks = check_timing_model(broken)
        assert any(not c.passed for c in checks)


class TestTransferTime:
    def test_methods_cover_fig10(self):
        for method in ("veo", "udma", "shm_lhm"):
            for direction in ("vh_to_ve", "ve_to_vh"):
                assert transfer_time(DEFAULT_TIMING, method, direction, KIB) > 0

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            transfer_time(DEFAULT_TIMING, "carrier-pigeon", "vh_to_ve", 8)

    def test_bandwidth_curves_monotone_towards_peak(self):
        sizes = [2**e for e in range(3, 29)]
        for method in ("veo", "udma"):
            curve = bandwidth_curve(DEFAULT_TIMING, method, "vh_to_ve", sizes)
            assert all(b2 >= b1 * 0.999 for b1, b2 in zip(curve, curve[1:]))

    def test_udma_always_beats_veo(self):
        # Paper Sec. V-B: "VE user DMA is always faster than VEO".
        sizes = [2**e for e in range(3, 29)]
        for direction in ("vh_to_ve", "ve_to_vh"):
            veo = bandwidth_curve(DEFAULT_TIMING, "veo", direction, sizes)
            udma = bandwidth_curve(DEFAULT_TIMING, "udma", direction, sizes)
            assert all(u > v for u, v in zip(udma, veo))

    def test_ve_to_vh_generally_faster(self):
        # Paper: "transferring data from the VE to the VH is in general faster".
        sizes = [2**e for e in range(3, 29)]
        for method in ("veo", "udma"):
            down = bandwidth_curve(DEFAULT_TIMING, method, "vh_to_ve", sizes)
            up = bandwidth_curve(DEFAULT_TIMING, method, "ve_to_vh", sizes)
            faster = sum(u > d for u, d in zip(up, down))
            assert faster >= len(sizes) - 2

    def test_shm_vs_veo_read_crossover_tens_of_kib(self):
        """Documented deviation: paper says SHM beats VEO reads up to
        32 KiB; with VEO-read latency pinned by Fig. 9 ours crosses near
        8 KiB. Assert the qualitative story: SHM wins at 4 KiB, loses at
        64 KiB."""
        t = DEFAULT_TIMING
        assert transfer_time(t, "shm_lhm", "ve_to_vh", 4 * KIB) < transfer_time(
            t, "veo", "ve_to_vh", 4 * KIB
        )
        assert transfer_time(t, "shm_lhm", "ve_to_vh", 64 * KIB) > transfer_time(
            t, "veo", "ve_to_vh", 64 * KIB
        )


class TestPaperConstants:
    def test_fig9_ratios_consistent(self):
        assert PAPER.fig9_ham_veo / PAPER.fig9_veo_native == pytest.approx(
            PAPER.fig9_ratio_ham_veo_over_native, rel=0.01
        )
        assert PAPER.fig9_veo_native / PAPER.fig9_ham_dma == pytest.approx(
            PAPER.fig9_ratio_native_over_ham_dma, rel=0.01
        )
        assert PAPER.fig9_ham_veo / PAPER.fig9_ham_dma == pytest.approx(
            PAPER.fig9_ratio_ham_veo_over_ham_dma, rel=0.01
        )

    def test_breakdown_sums_to_total(self):
        assert PAPER.pcie_round_trip + PAPER.framework_overhead == pytest.approx(
            PAPER.fig9_ham_dma, rel=0.05
        )

    def test_pcie_budget(self):
        assert PAPER.pcie_theoretical_peak * PAPER.pcie_achievable_fraction == (
            pytest.approx(13.4 * GIB, rel=0.01)
        )
