"""Tests for the bench CLI and the shared experiments module."""

import subprocess
import sys

import pytest

from repro.bench import experiments as exp
from repro.bench.calibration import PAPER
from repro.hw.specs import MIB


class TestExperimentsModule:
    def test_fig9_matches_anchors(self):
        data = exp.measure_fig9(reps=10)
        assert data["veo_native"] == pytest.approx(PAPER.fig9_veo_native, rel=0.10)
        assert data["ham_veo"] == pytest.approx(PAPER.fig9_ham_veo, rel=0.10)
        assert data["ham_dma"] == pytest.approx(PAPER.fig9_ham_dma, rel=0.10)

    def test_fig10_small_sweep_shapes(self):
        sizes = exp.fig10_sizes(4 * MIB)
        data = exp.measure_fig10(sizes, rep_base=2)
        assert set(data["vh_to_ve"]) == {"VEO Write", "VE User DMA", "VE LHM"}
        assert set(data["ve_to_vh"]) == {"VEO Read", "VE User DMA", "VE SHM"}
        for direction in ("vh_to_ve", "ve_to_vh"):
            for curve in data[direction].values():
                assert len(curve) == len(sizes)

    def test_numa_keys(self):
        data = exp.measure_numa_penalty(reps=3)
        assert set(data) == {
            "dma_socket0", "dma_socket1", "veo_socket0", "veo_socket1",
        }
        assert data["dma_socket1"] > data["dma_socket0"]

    def test_multi_ve_scaling_monotone(self):
        data = exp.measure_multi_ve_scaling([1, 2], rounds=3)
        assert data[2] > data[1]


class TestCli:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.bench.cli", *args],
            capture_output=True, text=True, timeout=300,
        )

    def test_fig9_quick(self):
        result = self._run("fig9", "--quick")
        assert result.returncode == 0
        assert "HAM-Offload (DMA)" in result.stdout
        assert "speedup ratios" in result.stdout

    def test_table4_quick(self):
        result = self._run("table4", "--quick")
        assert result.returncode == 0
        assert "VE User DMA" in result.stdout

    def test_unknown_experiment_rejected(self):
        result = self._run("fig99")
        assert result.returncode != 0
