"""Unit tests for the benchmarking framework (stats, harness, rendering)."""

import pytest

from repro.bench.figures import ascii_chart, render_series
from repro.bench.harness import measure_sim, measure_wall, scaled_reps
from repro.bench.stats import Stats
from repro.bench.tables import (
    format_bandwidth,
    format_size,
    format_time,
    render_table,
)
from repro.sim import Simulator


class TestStats:
    def test_from_samples(self):
        stats = Stats.from_samples([1.0, 2.0, 3.0])
        assert stats.n == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.std == pytest.approx(1.0)

    def test_single_sample(self):
        stats = Stats.from_samples([5.0])
        assert stats.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Stats.from_samples([])

    def test_bandwidth(self):
        stats = Stats.from_samples([0.5])
        assert stats.bandwidth(100) == pytest.approx(200.0)

    def test_bandwidth_zero_mean_rejected(self):
        with pytest.raises(ValueError):
            Stats.from_samples([0.0]).bandwidth(1)


class TestHarness:
    def test_measure_sim_counts_only_measured_reps(self):
        sim = Simulator()
        calls = {"n": 0}

        def op():
            calls["n"] += 1
            sim.run(until=sim.now + 1.0)

        stats = measure_sim(op, sim, reps=5, warmup=3)
        assert calls["n"] == 8
        assert stats.n == 5
        assert stats.mean == pytest.approx(1.0)

    def test_measure_wall(self):
        stats = measure_wall(lambda: None, reps=10, warmup=2)
        assert stats.n == 10
        assert stats.mean >= 0

    def test_reps_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            measure_sim(lambda: None, sim, reps=0)
        with pytest.raises(ValueError):
            measure_wall(lambda: None, reps=0)

    def test_scaled_reps_shrinks_with_size(self):
        assert scaled_reps(8) == 50
        assert scaled_reps(256 * 2**20) == 3
        assert scaled_reps(8, base=10) == 10
        with pytest.raises(ValueError):
            scaled_reps(0)


class TestTables:
    def test_format_time_units(self):
        assert format_time(2e-6) == "2.00 us"
        assert format_time(1.5e-3) == "1.500 ms"
        assert format_time(2.5) == "2.500 s"
        assert format_time(-2e-6) == "-2.00 us"

    def test_format_bandwidth(self):
        assert format_bandwidth(2**30) == "1.00 GiB/s"

    def test_format_size(self):
        assert format_size(8) == "8 B"
        assert format_size(4096) == "4 KiB"
        assert format_size(2**21) == "2 MiB"
        assert format_size(2**30) == "1 GiB"
        assert format_size(2**10 + 1) == "1025 B"

    def test_render_table_alignment(self):
        text = render_table(
            [{"a": 1, "b": "xx"}, {"a": 222, "b": "y"}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "b" in lines[2]
        # All body lines equal width.
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1

    def test_render_table_empty(self):
        assert "(empty)" in render_table([], title="X")

    def test_render_table_explicit_columns(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")


class TestFigures:
    def test_render_series(self):
        text = render_series(
            [8, 16], {"m1": [1.0, 2.0], "m2": [3.0, 4.0]}, title="F"
        )
        assert "8 B" in text and "16 B" in text
        assert "m1" in text and "m2" in text

    def test_render_series_nan_shown_as_dash(self):
        text = render_series([8], {"m": [float("nan")]})
        assert "-" in text

    def test_render_series_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series([8, 16], {"m": [1.0]})

    def test_ascii_chart_contains_all_series_markers(self):
        text = ascii_chart(
            [1, 10, 100], {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]}
        )
        assert "*=a" in text and "o=b" in text
        grid = "\n".join(text.splitlines()[1:])
        assert "*" in grid and "o" in grid

    def test_ascii_chart_empty(self):
        assert "(no data)" in ascii_chart([1], {"a": [float("nan")]})

    def test_ascii_chart_skips_nonpositive_on_log_axes(self):
        text = ascii_chart([1, 2], {"a": [0.0, 5.0]})
        assert text  # does not raise
