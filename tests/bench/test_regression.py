"""Tests for the perf-regression gate (repro.bench.regression)."""

import json

import pytest

from repro.bench.regression import (
    compare_dirs,
    direction_for,
    flatten_metrics,
    main,
)


def write_bench(directory, name, data):
    directory.mkdir(parents=True, exist_ok=True)
    payload = {"schema_version": 1, "experiment": name, "data": data}
    (directory / f"BENCH_{name}.json").write_text(json.dumps(payload))


class TestDirections:
    def test_times_regress_upward(self):
        assert direction_for("BENCH_fig9/stats/ham_dma/median") == "lower"
        assert direction_for("x/offload_cost") == "lower"
        assert direction_for("suite/latency/p95") == "lower"

    def test_bandwidths_regress_downward(self):
        assert direction_for("BENCH_table4/peaks/shm") == "higher"
        assert direction_for("suite/bandwidth/1024") == "higher"
        assert direction_for("BENCH_scaling/multi_ve/4") == "higher"

    def test_lower_tokens_win_over_higher(self):
        # A time inside a bandwidth suite is still a time.
        assert direction_for("BENCH_fig10/setup_time") == "lower"

    def test_unknown_is_two_sided(self):
        assert direction_for("mystery/metric") == "both"


class TestFlatten:
    def test_nested_dicts_flatten_to_paths(self):
        metrics = flatten_metrics(
            {"data": {"a": {"b": 1.5, "c": 2}, "d": 3.0}}, "BENCH_x"
        )
        assert metrics == {
            "BENCH_x/a/b": 1.5, "BENCH_x/a/c": 2.0, "BENCH_x/d": 3.0,
        }

    def test_lists_collapse_to_median(self):
        metrics = flatten_metrics({"data": {"curve": [1.0, 9.0, 5.0]}}, "B")
        assert metrics == {"B/curve[median]": 5.0}

    def test_non_numeric_leaves_skipped(self):
        metrics = flatten_metrics(
            {"data": {"label": "text", "flag": True, "n": 7}}, "B"
        )
        assert metrics == {"B/n": 7.0}


class TestCompare:
    def test_identical_dirs_all_ok(self, tmp_path):
        data = {"costs": {"dma": 1e-6}}
        write_bench(tmp_path / "base", "numa", data)
        write_bench(tmp_path / "fresh", "numa", data)
        comparisons = compare_dirs(tmp_path / "base", tmp_path / "fresh", 0.05)
        assert [c.status for c in comparisons] == ["ok"]

    def test_time_increase_regresses(self, tmp_path):
        write_bench(tmp_path / "base", "numa", {"costs": {"dma": 1e-6}})
        write_bench(tmp_path / "fresh", "numa", {"costs": {"dma": 2e-6}})
        (comparison,) = compare_dirs(tmp_path / "base", tmp_path / "fresh", 0.05)
        assert comparison.status == "regressed"
        assert comparison.delta == pytest.approx(1.0)

    def test_time_decrease_improves(self, tmp_path):
        write_bench(tmp_path / "base", "numa", {"costs": {"dma": 2e-6}})
        write_bench(tmp_path / "fresh", "numa", {"costs": {"dma": 1e-6}})
        (comparison,) = compare_dirs(tmp_path / "base", tmp_path / "fresh", 0.05)
        assert comparison.status == "improved"

    def test_bandwidth_drop_regresses(self, tmp_path):
        write_bench(tmp_path / "base", "table4", {"peaks": {"shm": 100.0}})
        write_bench(tmp_path / "fresh", "table4", {"peaks": {"shm": 50.0}})
        (comparison,) = compare_dirs(tmp_path / "base", tmp_path / "fresh", 0.05)
        assert comparison.status == "regressed"

    def test_within_tolerance_is_ok(self, tmp_path):
        write_bench(tmp_path / "base", "numa", {"costs": {"dma": 100.0}})
        write_bench(tmp_path / "fresh", "numa", {"costs": {"dma": 104.0}})
        (comparison,) = compare_dirs(tmp_path / "base", tmp_path / "fresh", 0.05)
        assert comparison.status == "ok"

    def test_missing_and_new_metrics(self, tmp_path):
        write_bench(tmp_path / "base", "numa", {"costs": {"dma": 1.0}})
        write_bench(tmp_path / "fresh", "numa", {"costs": {"veo": 2.0}})
        statuses = {c.path: c.status for c in
                    compare_dirs(tmp_path / "base", tmp_path / "fresh", 0.05)}
        assert statuses["BENCH_numa/costs/dma"] == "missing"
        assert statuses["BENCH_numa/costs/veo"] == "new"


class TestCli:
    def test_exit_zero_when_clean(self, tmp_path, capsys):
        data = {"costs": {"dma": 1.0}}
        write_bench(tmp_path / "base", "numa", data)
        write_bench(tmp_path / "fresh", "numa", data)
        code = main(["--fresh", str(tmp_path / "fresh"),
                     "--baseline", str(tmp_path / "base")])
        assert code == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        write_bench(tmp_path / "base", "numa", {"costs": {"dma": 1.0}})
        write_bench(tmp_path / "fresh", "numa", {"costs": {"dma": 10.0}})
        code = main(["--fresh", str(tmp_path / "fresh"),
                     "--baseline", str(tmp_path / "base")])
        assert code == 1
        assert "regressed" in capsys.readouterr().out

    def test_exit_two_without_baseline(self, tmp_path, capsys):
        write_bench(tmp_path / "fresh", "numa", {"costs": {"dma": 1.0}})
        code = main(["--fresh", str(tmp_path / "fresh"),
                     "--baseline", str(tmp_path / "missing")])
        assert code == 2
        assert "--update-baseline" in capsys.readouterr().out

    def test_update_baseline_creates_files(self, tmp_path):
        write_bench(tmp_path / "fresh", "numa", {"costs": {"dma": 1.0}})
        baseline = tmp_path / "base"
        assert main(["--fresh", str(tmp_path / "fresh"),
                     "--baseline", str(baseline), "--update-baseline"]) == 0
        assert (baseline / "BENCH_numa.json").exists()
        # And a subsequent comparison is clean.
        assert main(["--fresh", str(tmp_path / "fresh"),
                     "--baseline", str(baseline)]) == 0

    def test_errors_without_fresh_files(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--fresh", str(tmp_path / "nope")])

    def test_wider_tolerance_accepts_shift(self, tmp_path):
        write_bench(tmp_path / "base", "numa", {"costs": {"dma": 1.0}})
        write_bench(tmp_path / "fresh", "numa", {"costs": {"dma": 1.2}})
        args = ["--fresh", str(tmp_path / "fresh"),
                "--baseline", str(tmp_path / "base")]
        assert main(args) == 1
        assert main(args + ["--tolerance", "0.5"]) == 0


class TestCommittedBaseline:
    def test_repo_baseline_exists_and_parses(self):
        import pathlib

        baseline = pathlib.Path(__file__).parents[2] / \
            "benchmarks" / "results" / "baseline"
        files = sorted(baseline.glob("BENCH_*.json"))
        assert files, "committed bench baseline is missing"
        for file in files:
            payload = json.loads(file.read_text())
            assert flatten_metrics(payload, file.stem)
