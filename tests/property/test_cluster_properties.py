"""Property tests for the cluster backend: linearizability across nodes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import ClusterBackend
from repro.cluster import AuroraCluster
from repro.ham import f2f, offloadable
from repro.offload import Runtime


@offloadable
def cluster_tagged(tag: int) -> int:
    """Identity kernel for matching results to calls."""
    return tag


# (target_choice, sync?) per operation; targets resolved modulo the
# actual target count at runtime.
schedules = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5), st.booleans()),
    min_size=1,
    max_size=10,
)


class TestClusterLinearizability:
    @given(schedule=schedules)
    @settings(max_examples=6, deadline=None)
    def test_every_call_returns_its_own_result(self, schedule):
        cluster = AuroraCluster(num_nodes=2, ves_per_node=1)
        runtime = Runtime(ClusterBackend(cluster))
        try:
            targets = runtime.targets()
            pending = []
            results = {}
            for index, (target_choice, is_sync) in enumerate(schedule):
                node = targets[target_choice % len(targets)]
                if is_sync:
                    results[index] = runtime.sync(node, f2f(cluster_tagged, index))
                else:
                    pending.append((index, runtime.async_(node, f2f(cluster_tagged, index))))
            for index, future in pending:
                results[index] = future.get()
        finally:
            runtime.shutdown()
        assert results == {i: i for i in range(len(schedule))}

    @given(n_messages=st.integers(min_value=1, max_value=15))
    @settings(max_examples=6, deadline=None)
    def test_remote_stream_in_order(self, n_messages):
        cluster = AuroraCluster(num_nodes=2, ves_per_node=1)
        runtime = Runtime(ClusterBackend(cluster))
        try:
            futures = [
                runtime.async_(2, f2f(cluster_tagged, i)) for i in range(n_messages)
            ]
            assert [f.get() for f in futures] == list(range(n_messages))
        finally:
            runtime.shutdown()
