"""Property-based tests of serialization and the wire format."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import SerializationError
from repro.ham.functor import Functor
from repro.ham.message import (
    HEADER_SIZE,
    MSG_ERROR,
    MSG_INVOKE,
    MSG_RESULT,
    MSG_SHUTDOWN,
    build_message,
    parse_message,
)
from repro.ham.serialization import deserialize, serialize

# JSON-ish nested Python data.
json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**63), max_value=2**63 - 1)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=30)
    | st.binary(max_size=30),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=10), children, max_size=5),
    max_leaves=25,
)

arrays = hnp.arrays(
    dtype=st.sampled_from([np.uint8, np.int32, np.int64, np.float32, np.float64, np.complex128]),
    shape=hnp.array_shapes(max_dims=3, max_side=8),
    elements=st.just(0) | st.integers(min_value=0, max_value=100),
)


class TestSerializationProperties:
    @given(value=json_like)
    @settings(max_examples=120, deadline=None)
    def test_python_roundtrip_identity(self, value):
        assert deserialize(serialize(value)) == value

    @given(arr=arrays)
    @settings(max_examples=80, deadline=None)
    def test_numpy_roundtrip_preserves_everything(self, arr):
        back = deserialize(serialize(arr))
        assert back.dtype == arr.dtype
        assert back.shape == arr.shape
        np.testing.assert_array_equal(back, arr)

    @given(junk=st.binary(min_size=0, max_size=64))
    @settings(max_examples=120, deadline=None)
    def test_garbage_never_crashes_decoder(self, junk):
        """Arbitrary bytes either decode or raise SerializationError —
        never any other exception (robustness of the receive path)."""
        try:
            deserialize(junk)
        except SerializationError:
            pass

    @given(
        args=st.lists(json_like, max_size=6),
        kwargs=st.dictionaries(
            st.text(alphabet="abcdefghij_", min_size=1, max_size=8),
            json_like,
            max_size=4,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_functor_args_framing_roundtrip(self, args, kwargs):
        functor = Functor("t", tuple(args), tuple(sorted(kwargs.items())))
        back_args, back_kwargs = Functor.deserialize_args(functor.serialize_args())
        assert back_args == tuple(args)
        assert back_kwargs == kwargs


class TestWireFormatProperties:
    kinds = st.sampled_from([MSG_INVOKE, MSG_RESULT, MSG_ERROR, MSG_SHUTDOWN])

    @given(
        kind=kinds,
        key=st.integers(min_value=0, max_value=2**63 - 1),
        msg_id=st.integers(min_value=0, max_value=2**63 - 1),
        payload=st.binary(max_size=200),
    )
    @settings(max_examples=120, deadline=None)
    def test_header_roundtrip(self, kind, key, msg_id, payload):
        header, body = parse_message(build_message(kind, key, msg_id, payload))
        assert (header.kind, header.handler_key, header.msg_id) == (kind, key, msg_id)
        assert body == payload

    @given(
        payload=st.binary(max_size=100),
        cut=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_truncation_always_detected(self, payload, cut):
        data = build_message(MSG_INVOKE, 1, 2, payload)
        truncated = data[: max(0, len(data) - 1 - cut)]
        with pytest.raises(SerializationError):
            parse_message(truncated)

    @given(
        payload=st.binary(max_size=100),
        position=st.integers(min_value=0, max_value=3),
        value=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=100, deadline=None)
    def test_corrupted_prefix_never_crashes(self, payload, position, value):
        """Flipping early header bytes (magic/version/kind) either still
        parses (benign flip) or raises SerializationError."""
        data = bytearray(build_message(MSG_RESULT, 0, 0, payload))
        data[position] = value
        try:
            parse_message(bytes(data))
        except SerializationError:
            pass

    @given(payload=st.binary(max_size=50), extra=st.binary(min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_trailing_bytes_ignored(self, payload, extra):
        """Slot buffers are larger than messages: parsing must read exactly
        the declared payload length and ignore the slack."""
        data = build_message(MSG_INVOKE, 3, 4, payload) + extra
        header, body = parse_message(data)
        assert body == payload
        assert header.payload_len == len(payload)
