"""Property-based tests of the memory allocators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.backends._target_memory import HostedBuffers
from repro.errors import DoubleFreeError, OutOfMemoryError
from repro.hw.memory import MemoryRegion, PAGE_4K

REGION_SIZE = 64 * PAGE_4K


class RegionAllocatorMachine(RuleBasedStateMachine):
    """Random alloc/free/write sequences against the region allocator."""

    def __init__(self):
        super().__init__()
        self.region = MemoryRegion("prop", REGION_SIZE, default_page_size=PAGE_4K)
        self.live = {}
        self.counter = 0

    @rule(size=st.integers(min_value=1, max_value=3 * PAGE_4K))
    def allocate(self, size):
        try:
            alloc = self.region.allocate(size)
        except OutOfMemoryError:
            return
        # Stamp the allocation with a unique pattern.
        self.counter += 1
        pattern = bytes([self.counter % 251] * size)
        self.region.write(alloc.addr, pattern)
        self.live[alloc.addr] = (alloc, pattern)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def free_one(self, data):
        addr = data.draw(st.sampled_from(sorted(self.live)))
        alloc, _pattern = self.live.pop(addr)
        self.region.free(alloc)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def double_free_detected(self, data):
        addr = data.draw(st.sampled_from(sorted(self.live)))
        alloc, _ = self.live[addr]
        self.region.free(alloc)
        del self.live[addr]
        with pytest.raises(DoubleFreeError):
            self.region.free(alloc)

    @invariant()
    def no_overlap(self):
        spans = sorted((a.addr, a.end) for a, _p in self.live.values())
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    @invariant()
    def data_integrity(self):
        """Every live allocation still holds its own pattern — no
        allocation ever scribbles over another."""
        for addr, (alloc, pattern) in self.live.items():
            assert self.region.read(addr, alloc.size) == pattern

    @invariant()
    def accounting_consistent(self):
        padded = sum(
            -(-a.size // a.page_size) * a.page_size for a, _p in self.live.values()
        )
        assert self.region.bytes_allocated == padded
        assert self.region.free_bytes + padded == REGION_SIZE
        assert self.region.live_allocations == len(self.live)


TestRegionAllocator = RegionAllocatorMachine.TestCase
TestRegionAllocator.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)


class HostedBuffersMachine(RuleBasedStateMachine):
    """Random operations against the functional-backend buffer table."""

    def __init__(self):
        super().__init__()
        self.buffers = HostedBuffers()
        self.live = {}
        self.freed = []
        self.counter = 0

    @rule(size=st.integers(min_value=1, max_value=4096))
    def alloc(self, size):
        addr = self.buffers.alloc(size)
        assert addr not in self.live
        self.counter += 1
        pattern = bytes([self.counter % 251] * size)
        self.buffers.write(addr, pattern)
        self.live[addr] = pattern

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def free(self, data):
        addr = data.draw(st.sampled_from(sorted(self.live)))
        self.buffers.free(addr)
        del self.live[addr]
        self.freed.append(addr)

    @precondition(lambda self: self.freed)
    @rule(data=st.data())
    def stale_address_rejected(self, data):
        """Addresses are never reused: stale pointers always fault."""
        addr = data.draw(st.sampled_from(self.freed))
        from repro.errors import BadAddressError, DoubleFreeError as DF

        with pytest.raises((BadAddressError, DF)):
            self.buffers.read(addr, 1)

    @precondition(lambda self: self.live)
    @rule(data=st.data(), offset=st.integers(min_value=0, max_value=64))
    def offset_reads_consistent(self, data, offset):
        addr = data.draw(st.sampled_from(sorted(self.live)))
        pattern = self.live[addr]
        if offset >= len(pattern):
            return
        chunk = self.buffers.read(addr + offset, len(pattern) - offset)
        assert chunk == pattern[offset:]

    @invariant()
    def integrity(self):
        for addr, pattern in self.live.items():
            assert self.buffers.read(addr, len(pattern)) == pattern
        assert self.buffers.live_count == len(self.live)


TestHostedBuffers = HostedBuffersMachine.TestCase
TestHostedBuffers.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
