"""Property-based end-to-end tests of the offload protocols.

The linearizability property: any interleaving of synchronous and
asynchronous offloads executes every message exactly once, and every
future receives exactly its own call's result.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import DmaCommBackend, LocalBackend, VeoCommBackend
from repro.ham import f2f, offloadable
from repro.offload import Runtime


@offloadable
def tag_and_square(tag: int, value: float) -> tuple:
    """Returns its identity so results can be matched to calls."""
    return (tag, value * value)


# (kind, defer) pairs: kind "sync" or "async"; defer = how many later ops
# to issue before getting an async result.
operations = st.lists(
    st.tuples(st.sampled_from(["sync", "async"]), st.integers(0, 4)),
    min_size=1,
    max_size=12,
)


def run_schedule(runtime, schedule):
    """Issue offloads per schedule; return {tag: result}."""
    results = {}
    pending = []  # (due_index, tag, future)
    for index, (kind, defer) in enumerate(schedule):
        # Collect due futures first.
        for due, tag, future in list(pending):
            if index >= due:
                results[tag] = future.get()
                pending.remove((due, tag, future))
        if kind == "sync":
            results[index] = runtime.sync(1, f2f(tag_and_square, index, float(index)))
        else:
            future = runtime.async_(1, f2f(tag_and_square, index, float(index)))
            pending.append((index + 1 + defer, index, future))
    for _due, tag, future in pending:
        results[tag] = future.get()
    return results


class TestLinearizability:
    @given(schedule=operations)
    @settings(max_examples=25, deadline=None)
    def test_local_backend(self, schedule):
        runtime = Runtime(LocalBackend())
        try:
            results = run_schedule(runtime, schedule)
        finally:
            runtime.shutdown()
        assert results == {
            i: (i, float(i) ** 2) for i in range(len(schedule))
        }

    @given(schedule=operations)
    @settings(max_examples=10, deadline=None)
    def test_veo_protocol(self, schedule):
        runtime = Runtime(VeoCommBackend())
        try:
            results = run_schedule(runtime, schedule)
        finally:
            runtime.shutdown()
        assert results == {
            i: (i, float(i) ** 2) for i in range(len(schedule))
        }

    @given(schedule=operations)
    @settings(max_examples=10, deadline=None)
    def test_dma_protocol(self, schedule):
        runtime = Runtime(DmaCommBackend())
        try:
            results = run_schedule(runtime, schedule)
        finally:
            runtime.shutdown()
        assert results == {
            i: (i, float(i) ** 2) for i in range(len(schedule))
        }


@offloadable
def checksum_buffer(buf) -> float:
    """Sum of a target buffer (for put/get consistency)."""
    return float(np.asarray(buf).sum())


class TestMemoryConsistency:
    @given(
        chunks=st.lists(
            st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=32),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_put_kernel_get_agree_on_dma_protocol(self, chunks):
        runtime = Runtime(DmaCommBackend())
        try:
            for chunk in chunks:
                data = np.array(chunk)
                ptr = runtime.allocate(1, data.size)
                runtime.put(data, ptr)
                remote_sum = runtime.sync(1, f2f(checksum_buffer, ptr))
                assert remote_sum == pytest.approx(float(data.sum()), rel=1e-12, abs=1e-9)
                back = np.zeros_like(data)
                runtime.get(ptr, back)
                np.testing.assert_array_equal(back, data)
                runtime.free(ptr)
        finally:
            runtime.shutdown()
