"""Property-based tests of the shm SPSC ring invariants.

The ring is the correctness core of the shared-memory transport: a
monotonic-cursor single-producer/single-consumer queue of framed active
messages inside one shared segment. Everything here runs both ring ends
in one process — the invariants (FIFO frame integrity across
wraparound, never-overwrite-unread, capacity-full backpressure) are
positional, not concurrency, properties.
"""

from collections import deque

import pytest
from hypothesis import given, settings, strategies as st

from repro.backends.shm import (
    FRAME_OVERHEAD,
    ShmSegment,
    _host_to_target_ring,
    _target_to_host_ring,
)
from repro.errors import BackendError, OffloadTimeoutError

CAPACITY = 4096

# Payload sizes skewed toward frame/capacity boundaries so wraparound
# and nearly-full states are exercised constantly, not occasionally.
payloads = st.binary(max_size=600) | st.binary(
    min_size=CAPACITY // 2 - 40, max_size=CAPACITY // 2
)


@pytest.fixture()
def segment():
    seg = ShmSegment.create(CAPACITY)
    yield seg
    seg.close()
    seg.unlink()


def rings(seg):
    """Producer and consumer views of the same h2t ring."""
    return _host_to_target_ring(seg), _host_to_target_ring(seg)


class TestRingProperties:
    @given(messages=st.lists(payloads, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_fifo_frame_integrity(self, messages):
        """Frames drained one-by-one come back verbatim and in order,
        whatever sizes (and wrap positions) went in."""
        seg = ShmSegment.create(CAPACITY)
        try:
            producer, consumer = rings(seg)
            for index, body in enumerate(messages):
                producer.write_frame(1, index, (body,), timeout=1.0)
                assert consumer.readable()
                op, corr, view = consumer.read_frame()
                assert (op, corr, bytes(view)) == (1, index, body)
            assert not consumer.readable()
        finally:
            seg.close()
            seg.unlink()

    @given(
        messages=st.lists(payloads, max_size=40),
        drain_after=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_interleaved_write_read_preserves_order(
        self, messages, drain_after
    ):
        """Batched producer / lagging consumer: every ``drain_after``
        writes the consumer catches up. The shadow deque must match
        exactly — the producer can never clobber an unread frame."""
        seg = ShmSegment.create(CAPACITY)
        try:
            producer, consumer = rings(seg)
            shadow: deque[tuple[int, bytes]] = deque()
            pending_bytes = 0
            for index, body in enumerate(messages):
                frame = FRAME_OVERHEAD + len(body)
                if pending_bytes + frame > CAPACITY:
                    # Would block: drain everything first.
                    while shadow:
                        _op, corr, view = consumer.read_frame()
                        want_corr, want_body = shadow.popleft()
                        assert (corr, bytes(view)) == (want_corr, want_body)
                    pending_bytes = 0
                producer.write_frame(2, index, (body,), timeout=1.0)
                shadow.append((index, body))
                pending_bytes += frame
                if index % drain_after == 0:
                    while shadow:
                        _op, corr, view = consumer.read_frame()
                        want_corr, want_body = shadow.popleft()
                        assert (corr, bytes(view)) == (want_corr, want_body)
                    pending_bytes = 0
            while shadow:
                _op, corr, view = consumer.read_frame()
                want_corr, want_body = shadow.popleft()
                assert (corr, bytes(view)) == (want_corr, want_body)
            assert not consumer.readable()
        finally:
            seg.close()
            seg.unlink()

    def test_full_ring_backpressure_times_out(self, segment):
        """A producer against a full ring (nobody draining) must raise
        OffloadTimeoutError, not overwrite unread frames."""
        producer, consumer = rings(segment)
        body = bytes(CAPACITY // 4)
        written = 0
        with pytest.raises(OffloadTimeoutError, match="stayed full"):
            for index in range(10):
                producer.write_frame(3, index, (body,), timeout=0.05)
                written += 1
        # Everything that *was* accepted is intact.
        for index in range(written):
            op, corr, view = consumer.read_frame()
            assert (op, corr, bytes(view)) == (3, index, body)
        assert not consumer.readable()

    def test_blocked_writer_proceeds_once_reader_drains(self, segment):
        producer, consumer = rings(segment)
        body = bytes(CAPACITY // 4)
        for index in range(3):
            producer.write_frame(4, index, (body,), timeout=0.5)
        # One more would exceed capacity; free a slot and retry.
        with pytest.raises(OffloadTimeoutError):
            producer.write_frame(4, 3, (body,), timeout=0.05)
        consumer.read_frame()
        producer.write_frame(4, 3, (body,), timeout=0.5)
        for index in range(1, 4):
            _op, corr, _view = consumer.read_frame()
            assert corr == index

    def test_oversized_frame_rejected_outright(self, segment):
        producer, _consumer = rings(segment)
        with pytest.raises(BackendError, match="exceeds shm ring capacity"):
            producer.write_frame(5, 0, (bytes(CAPACITY),), timeout=0.1)

    def test_wraparound_across_many_cycles(self, segment):
        """Cursors are monotonic u64s, positions are modulo: thousands
        of frames through a 4 KiB ring must wrap cleanly forever."""
        producer, consumer = rings(segment)
        body = bytes(range(256)) * 3  # 768 bytes, co-prime-ish with 4096
        for index in range(2000):
            producer.write_frame(6, index, (body,), timeout=1.0)
            op, corr, view = consumer.read_frame()
            assert (op, corr) == (6, index)
            assert bytes(view) == body
        assert producer._tail == 2000 * (FRAME_OVERHEAD + len(body))

    def test_scattered_parts_concatenate(self, segment):
        producer, consumer = rings(segment)
        parts = (b"alpha", bytearray(b"beta"), memoryview(b"gamma"))
        producer.write_frame(7, 42, parts, timeout=1.0)
        _op, _corr, view = consumer.read_frame()
        assert bytes(view) == b"alphabetagamma"

    def test_both_directions_are_independent(self, segment):
        h2t_w, h2t_r = (
            _host_to_target_ring(segment),
            _host_to_target_ring(segment),
        )
        t2h_w, t2h_r = (
            _target_to_host_ring(segment),
            _target_to_host_ring(segment),
        )
        h2t_w.write_frame(1, 1, (b"request",), timeout=1.0)
        t2h_w.write_frame(2, 1, (b"reply",), timeout=1.0)
        assert bytes(h2t_r.read_frame()[2]) == b"request"
        assert bytes(t2h_r.read_frame()[2]) == b"reply"
        assert not h2t_r.readable() and not t2h_r.readable()
