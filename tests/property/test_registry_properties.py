"""Property-based tests of the HAM registry (the paper's Fig. 6 trick).

The correctness property the paper's design rests on: *any* two process
images that registered the same set of message types — in any order, with
any local addresses — agree on every handler key, without communicating.
"""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import HandlerKeyError
from repro.ham.registry import Catalog, ProcessImage

# Type names: non-empty, unique, printable — like mangled C++ symbols.
type_names = st.lists(
    st.text(alphabet=string.ascii_letters + string.digits + "_:<>", min_size=1, max_size=40),
    min_size=1,
    max_size=60,
    unique=True,
)


def make_catalog(names):
    catalog = Catalog()
    for name in names:
        catalog.register((lambda n: (lambda: n))(name), name=name)
    return catalog


class TestKeyTranslationProperties:
    @given(names=type_names, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_keys_agree_for_any_registration_orders(self, names, data):
        order_a = data.draw(st.permutations(names))
        order_b = data.draw(st.permutations(names))
        image_a = ProcessImage("a", make_catalog(order_a))
        image_b = ProcessImage("b", make_catalog(order_b))
        for name in names:
            assert image_a.key_for(name) == image_b.key_for(name)

    @given(names=type_names)
    @settings(max_examples=60, deadline=None)
    def test_keys_are_a_bijection_onto_range(self, names):
        image = ProcessImage("img", make_catalog(names))
        keys = {image.key_for(name) for name in names}
        assert keys == set(range(len(names)))

    @given(names=type_names)
    @settings(max_examples=60, deadline=None)
    def test_key_to_handler_roundtrip(self, names):
        image = ProcessImage("img", make_catalog(names))
        for name in names:
            handler = image.handler_for_key(image.key_for(name))
            assert handler() == name

    @given(names=type_names, key=st.integers())
    @settings(max_examples=60, deadline=None)
    def test_any_integer_key_resolves_or_raises(self, names, key):
        image = ProcessImage("img", make_catalog(names))
        if 0 <= key < len(names):
            assert callable(image.handler_for_key(key))
        else:
            with pytest.raises(HandlerKeyError):
                image.handler_for_key(key)

    @given(names=type_names)
    @settings(max_examples=30, deadline=None)
    def test_local_addresses_unique_within_image(self, names):
        image = ProcessImage("img", make_catalog(names))
        addresses = [image.local_address_of(name) for name in names]
        assert len(set(addresses)) == len(addresses)

    @given(names=type_names, extra=st.text(string.ascii_lowercase, min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_growing_the_type_set_keeps_images_consistent(self, names, extra):
        """After both images learn one more type, keys still agree."""
        new_name = "zz_extra::" + extra
        if new_name in names:
            return
        cat_a, cat_b = make_catalog(names), make_catalog(list(reversed(names)))
        image_a, image_b = ProcessImage("a", cat_a), ProcessImage("b", cat_b)
        image_a.build_tables()  # force, then invalidate by late registration
        cat_a.register(lambda: new_name, name=new_name)
        cat_b.register(lambda: new_name, name=new_name)
        image_a.snapshot_catalog()
        image_b.snapshot_catalog()
        for name in [*names, new_name]:
            assert image_a.key_for(name) == image_b.key_for(name)
