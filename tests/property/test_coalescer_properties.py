"""Property-based tests of the frame coalescer.

The coalescer must be a reordering-free, loss-free buffer: whatever
frame bytes go in, exactly those bytes come out the transmit side, in
order, no matter which mix of flush triggers fires (size budget, frame
count, idle fast-path, deadline timer, explicit flush). The server
decodes batches with the ordinary ``length|op|corr`` frame grammar one
frame at a time, so byte identity of the concatenated stream *is* the
wire-compatibility property — a batched client is indistinguishable
from an unbatched one on the receive side.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.backends.base import CoalescePolicy, FrameCoalescer
from repro.errors import BackendError

_LEN = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_FRAME_META = 9  # op:u8 | corr:u64, mirrored from the tcp framing


class ManualTimer:
    def __init__(self, callback):
        self.callback = callback
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


class ManualClock:
    """Deterministic stand-in for ``Reactor.call_later``."""

    def __init__(self):
        self.timers: list[ManualTimer] = []

    def schedule(self, _delay, callback):
        timer = ManualTimer(callback)
        self.timers.append(timer)
        return timer

    def fire(self):
        due, self.timers = self.timers, []
        for timer in due:
            if not timer.cancelled:
                timer.callback()


class Wire:
    """Collects transmitted batches like a socket would see them."""

    def __init__(self):
        self.batches: list[bytes] = []

    def transmit(self, parts):
        self.batches.append(b"".join(bytes(part) for part in parts))

    @property
    def stream(self) -> bytes:
        return b"".join(self.batches)


def encode_frame(op: int, corr: int, body: bytes) -> bytes:
    return _LEN.pack(_FRAME_META + len(body)) + bytes([op]) + _U64.pack(corr) + body


def decode_stream(stream: bytes) -> list[tuple[int, int, bytes]]:
    """The server's frame-at-a-time decode loop, distilled."""
    frames = []
    offset = 0
    while offset < len(stream):
        (length,) = _LEN.unpack_from(stream, offset)
        assert length >= _FRAME_META, "frame shorter than its meta"
        start = offset + _LEN.size
        payload = stream[start : start + length]
        assert len(payload) == length, "truncated frame in stream"
        frames.append((payload[0], _U64.unpack_from(payload, 1)[0], payload[9:]))
        offset = start + length
    return frames


# Event stream: buffer a frame (with the in-flight depth observed at
# that instant), fire pending deadline timers, or flush explicitly.
events = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.binary(max_size=300), st.integers(0, 40)),
        st.just(("fire",)),
        st.just(("flush",)),
    ),
    max_size=60,
)

policies = st.builds(
    CoalescePolicy,
    max_bytes=st.integers(min_value=64, max_value=2048),
    max_frames=st.integers(min_value=1, max_value=12),
    max_delay=st.just(1.0),
    idle_depth=st.integers(min_value=0, max_value=4),
)


@settings(max_examples=200, deadline=None)
@given(events=events, policy=policies)
def test_stream_is_byte_identical_to_unbatched(events, policy):
    """Transmitted stream + residue == input frames, byte for byte."""
    wire, clock = Wire(), ManualClock()
    depth = {"value": 0}
    coalescer = FrameCoalescer(
        transmit=wire.transmit,
        schedule=clock.schedule,
        policy=policy,
        depth=lambda: depth["value"],
    )
    expected = bytearray()
    corr = 0
    for event in events:
        if event[0] == "add":
            _, body, observed_depth = event
            depth["value"] = observed_depth
            corr += 1
            frame = encode_frame(0x01, corr, body)
            expected += frame
            coalescer.add([frame], len(frame))
            frames, nbytes = coalescer.pending()
            # A tripped budget never leaves a full batch buffered.
            assert frames < policy.max_frames
            assert nbytes < policy.max_bytes
        elif event[0] == "fire":
            clock.fire()
        else:
            coalescer.flush()
    residue_frames, _ = coalescer.pending()
    flushed = coalescer.flush("explicit")
    assert flushed == residue_frames
    assert wire.stream == bytes(expected)
    # The receive side sees whole frames with ids in submission order.
    decoded = decode_stream(wire.stream)
    assert [c for _, c, _ in decoded] == list(range(1, corr + 1))


@settings(max_examples=100, deadline=None)
@given(
    bodies=st.lists(st.binary(max_size=200), min_size=1, max_size=30),
    idle_depth=st.integers(0, 2),
)
def test_deadline_flush_preserves_decode(bodies, idle_depth):
    """Frames stranded behind the deadline timer decode identically."""
    wire, clock = Wire(), ManualClock()
    policy = CoalescePolicy(
        max_bytes=1 << 20, max_frames=10_000, max_delay=1.0, idle_depth=idle_depth
    )
    coalescer = FrameCoalescer(
        transmit=wire.transmit,
        schedule=clock.schedule,
        policy=policy,
        depth=lambda: idle_depth + 1,  # always "under load": buffer
    )
    for corr, body in enumerate(bodies, start=1):
        frame = encode_frame(0x01, corr, body)
        coalescer.add([frame], len(frame))
    assert wire.stream == b""  # nothing tripped: all buffered
    clock.fire()
    decoded = decode_stream(wire.stream)
    assert [(op, corr, body) for op, corr, body in decoded] == [
        (0x01, corr, body) for corr, body in enumerate(bodies, start=1)
    ]
    assert coalescer.pending() == (0, 0)


@settings(max_examples=100, deadline=None)
@given(bodies=st.lists(st.binary(max_size=100), min_size=1, max_size=20))
def test_discard_drops_exactly_the_buffer(bodies):
    """Discard reports precisely what was buffered; nothing transmits."""
    wire, clock = Wire(), ManualClock()
    coalescer = FrameCoalescer(
        transmit=wire.transmit,
        schedule=clock.schedule,
        policy=CoalescePolicy(max_bytes=1 << 20, max_frames=10_000),
        depth=lambda: 100,
    )
    total = 0
    for corr, body in enumerate(bodies, start=1):
        frame = encode_frame(0x01, corr, body)
        coalescer.add([frame], len(frame))
        total += len(frame)
    frames, nbytes = coalescer.discard()
    assert (frames, nbytes) == (len(bodies), total)
    assert wire.stream == b""
    assert coalescer.pending() == (0, 0)
    # Timers armed for the dropped batch must be dead: firing them
    # after the discard transmits nothing.
    clock.fire()
    assert wire.stream == b""


def test_policy_rejects_nonsense():
    with pytest.raises(BackendError):
        CoalescePolicy(max_bytes=0)
    with pytest.raises(BackendError):
        CoalescePolicy(max_frames=0)
    with pytest.raises(BackendError):
        CoalescePolicy(max_delay=-1.0)
    with pytest.raises(BackendError):
        CoalescePolicy.from_option("yes")
    with pytest.raises(BackendError):
        CoalescePolicy.from_option({"bogus_knob": 3})


def test_from_option_forms():
    assert CoalescePolicy.from_option(False) is None
    assert CoalescePolicy.from_option(None).max_frames == 16
    assert CoalescePolicy.from_option(True).max_bytes == 64 * 1024
    tuned = CoalescePolicy.from_option({"max_delay_us": 500, "max_frames": 4})
    assert tuned.max_delay == pytest.approx(500e-6)
    assert tuned.max_frames == 4
    policy = CoalescePolicy(max_frames=2)
    assert CoalescePolicy.from_option(policy) is policy
