"""Property-based tests of the simulation kernel and protocol helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.backends._sim_common import decode_flag, encode_flag
from repro.errors import BackendError
from repro.offload.buffer import BufferPtr
from repro.sim import Simulator


class TestEventOrderingProperties:
    @given(delays=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_timeouts_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.timeout(delay).callbacks.append(
                lambda ev, d=delay: fired.append((sim.now, d))
            )
        sim.run()
        times = [t for t, _d in fired]
        assert times == sorted(times)
        assert sorted(d for _t, d in fired) == sorted(delays)
        assert sim.now == max(delays)

    @given(delays=st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_clock_never_goes_backwards(self, delays):
        sim = Simulator()
        observed = []

        def proc():
            for delay in delays:
                yield sim.timeout(delay)
                observed.append(sim.now)

        sim.process(proc())
        sim.run()
        assert observed == sorted(observed)
        assert observed[-1] == pytest.approx(sum(delays))

    @given(
        n_procs=st.integers(min_value=1, max_value=8),
        hold=st.floats(min_value=0.001, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_mutex_serialises_any_population(self, n_procs, hold):
        from repro.sim import Resource

        sim = Simulator()
        resource = Resource(sim, capacity=1)
        active = {"n": 0, "max": 0}

        def proc():
            yield resource.request()
            active["n"] += 1
            active["max"] = max(active["max"], active["n"])
            yield sim.timeout(hold)
            active["n"] -= 1
            resource.release()

        for _ in range(n_procs):
            sim.process(proc())
        sim.run()
        assert active["max"] == 1
        assert sim.now == pytest.approx(n_procs * hold)


class TestFlagEncodingProperties:
    @given(
        marker=st.integers(min_value=1, max_value=255),
        length=st.integers(min_value=0, max_value=2**32 - 1),
        seq=st.integers(min_value=0, max_value=2**24 - 1),
    )
    @settings(max_examples=120, deadline=None)
    def test_roundtrip(self, marker, length, seq):
        m, l, s = decode_flag(encode_flag(marker, length, seq))
        assert (m, l, s) == (marker, length, seq)

    @given(
        marker=st.integers(min_value=1, max_value=255),
        length=st.integers(min_value=0, max_value=2**32 - 1),
        seq=st.integers(min_value=0, max_value=2**24 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_fits_in_64_bits(self, marker, length, seq):
        value = encode_flag(marker, length, seq)
        assert 0 < value < 2**64

    @given(marker=st.integers(max_value=0) | st.integers(min_value=256))
    @settings(max_examples=40, deadline=None)
    def test_invalid_marker_rejected(self, marker):
        with pytest.raises(BackendError):
            encode_flag(marker, 0, 0)

    def test_empty_flag_decodes_as_empty(self):
        assert decode_flag(0)[0] == 0


class TestBufferPtrProperties:
    @given(
        count=st.integers(min_value=1, max_value=10_000),
        steps=st.lists(st.integers(min_value=0, max_value=100), max_size=8),
    )
    @settings(max_examples=80, deadline=None)
    def test_pointer_walk_stays_consistent(self, count, steps):
        from repro.errors import OffloadError

        ptr = BufferPtr(node=1, addr=0, dtype_str="<f8", count=count)
        walked = 0
        for step in steps:
            try:
                ptr = ptr + step
            except OffloadError:
                assert step > ptr.count
                break
            walked += step
            assert ptr.addr == walked * 8
            assert ptr.count == count - walked
            assert ptr.nbytes == ptr.count * 8
