"""Property-based invariants of the fair-queue scheduler.

The DRR core (:meth:`FairInflightWindow._pick_locked`) and the shedding
logic are exercised deterministically — waiters are filed and slots
granted directly on the scheduler's data structures under its lock, with
no threads — so hypothesis can drive thousands of schedules and check:

* conservation: every filed waiter is granted exactly once, none lost;
* no starvation: while a tenant has queued work it keeps receiving
  grants at least once per DRR round bound;
* weighted shares: over a long backlogged run, each tenant's share of
  grants converges to its weight share;
* shed order: an overloaded queue only ever sheds the lowest priority
  class present, and never sheds to admit lower-priority work.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LoadShedError
from repro.offload.qos import FairInflightWindow, QoSConfig, TenantContext

#: Tenant ids drawn by the strategies below.
TENANTS = ("alpha", "beta", "gamma", "delta")

weights = st.floats(min_value=0.25, max_value=4.0,
                    allow_nan=False, allow_infinity=False)


def _enqueue(window: FairInflightWindow, ctx: TenantContext):
    with window._lock:
        return window._enqueue_locked(ctx)


def _drain(window: FairInflightWindow, max_grants: int) -> list[str]:
    """Grant up to ``max_grants`` slots; returns tenants in grant order."""
    order: list[str] = []
    with window._lock:
        for _ in range(max_grants):
            waiter = window._pick_locked()
            if waiter is None:
                break
            window._queued -= 1
            order.append(waiter.ctx.tenant)
    return order


class TestFairness:
    @given(
        plan=st.lists(
            st.tuples(st.sampled_from(TENANTS), st.integers(1, 12)),
            min_size=1, max_size=4, unique_by=lambda item: item[0],
        ),
        tenant_weights=st.fixed_dictionaries(
            {tenant: weights for tenant in TENANTS}
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_conservation_no_waiter_lost_or_duplicated(
        self, plan, tenant_weights
    ):
        window = FairInflightWindow(1, QoSConfig(max_queue_depth=10_000))
        filed = 0
        for tenant, count in plan:
            ctx = TenantContext(tenant=tenant,
                                weight=tenant_weights[tenant])
            for _ in range(count):
                _enqueue(window, ctx)
                filed += 1
        order = _drain(window, filed + 10)
        assert len(order) == filed
        for tenant, count in plan:
            assert order.count(tenant) == count
        assert window.queued == 0
        # The ring forgets emptied tenants (no unbounded tenant state).
        assert window._ring == []
        assert window._queues == {}

    @given(tenant_weights=st.fixed_dictionaries(
        {tenant: weights for tenant in TENANTS}
    ))
    @settings(max_examples=100, deadline=None)
    def test_backlogged_shares_converge_to_weights(self, tenant_weights):
        window = FairInflightWindow(1, QoSConfig(max_queue_depth=100_000))
        backlog = 600
        for tenant, weight in tenant_weights.items():
            ctx = TenantContext(tenant=tenant, weight=weight)
            for _ in range(backlog):
                _enqueue(window, ctx)
        grants = 400  # every tenant stays backlogged throughout
        order = _drain(window, grants)
        assert len(order) == grants
        total_weight = sum(tenant_weights.values())
        for tenant, weight in tenant_weights.items():
            expected = grants * weight / total_weight
            # DRR's lag bound: within one quantum (= weight, and at
            # least 1 grant) per tenant per direction, plus slack for
            # the partial final round.
            slack = 2.0 * max(1.0, weight) + 2.0
            assert abs(order.count(tenant) - expected) <= slack, (
                f"{tenant} got {order.count(tenant)} of {grants}, "
                f"expected ~{expected:.1f} (weights {tenant_weights})"
            )

    @given(tenant_weights=st.fixed_dictionaries(
        {tenant: weights for tenant in TENANTS}
    ))
    @settings(max_examples=100, deadline=None)
    def test_no_starvation_every_round_serves_everyone(self, tenant_weights):
        """A backlogged tenant is granted within a bounded window."""
        window = FairInflightWindow(1, QoSConfig(max_queue_depth=100_000))
        for tenant, weight in tenant_weights.items():
            ctx = TenantContext(tenant=tenant, weight=weight)
            for _ in range(200):
                _enqueue(window, ctx)
        order = _drain(window, 150)
        # Worst case, a weight-w tenant needs ceil(1/w) ring rounds to
        # accumulate one unit of deficit, and one round hands out at most
        # sum(max(1, w_i)) + len(tenants) grants to the others.
        min_weight = min(tenant_weights.values())
        per_round = sum(max(1.0, w) for w in tenant_weights.values()) \
            + len(tenant_weights)
        bound = math.ceil(1.0 / min_weight) * per_round
        for tenant in tenant_weights:
            positions = [i for i, t in enumerate(order) if t == tenant]
            assert positions, f"{tenant} never granted in {len(order)} grants"
            assert positions[0] <= bound
            gaps = [b - a for a, b in zip(positions, positions[1:])]
            assert all(gap <= bound for gap in gaps), (
                f"{tenant} starved for {max(gaps)} grants (bound {bound})"
            )


class TestShedding:
    @given(
        queued_priorities=st.lists(st.integers(0, 3), min_size=1, max_size=8),
        arrival_priority=st.integers(0, 3),
    )
    @settings(max_examples=300, deadline=None)
    def test_shed_only_ever_hits_the_lowest_class(
        self, queued_priorities, arrival_priority
    ):
        depth = len(queued_priorities)
        window = FairInflightWindow(1, QoSConfig(max_queue_depth=depth))
        waiters = []
        for i, priority in enumerate(queued_priorities):
            ctx = TenantContext(tenant=f"t{i}", priority=priority)
            waiters.append(_enqueue(window, ctx))
        lowest = min(queued_priorities)
        arrival = TenantContext(tenant="arrival", priority=arrival_priority)
        if arrival_priority <= lowest:
            # The arrival is not strictly better than the worst queued
            # work: it is the one shed, and the queue is untouched.
            with pytest.raises(LoadShedError):
                _enqueue(window, arrival)
            assert all(w.error is None for w in waiters)
            assert window.queued == depth
        else:
            filed = _enqueue(window, arrival)
            assert filed.error is None
            shed = [w for w in waiters if w.error is not None]
            assert len(shed) == 1
            assert shed[0].ctx.priority == lowest
            assert window.queued == depth  # one in, one out
        snapshot = window.snapshot()
        total_shed = sum(entry["shed"]
                        for entry in snapshot["tenants"].values())
        assert total_shed == 1

    @given(priorities=st.lists(st.integers(0, 3), min_size=2, max_size=6))
    @settings(max_examples=200, deadline=None)
    def test_newest_of_lowest_class_is_the_victim(self, priorities):
        """Among equal lowest-priority waiters, the newest one is shed."""
        window = FairInflightWindow(
            1, QoSConfig(max_queue_depth=len(priorities))
        )
        waiters = []
        for i, priority in enumerate(priorities):
            # One tenant per class keeps "newest of the class" observable
            # through per-tenant FIFO queues.
            ctx = TenantContext(tenant=f"class{priority}", priority=priority)
            waiters.append((i, _enqueue(window, ctx)))
        lowest = min(priorities)
        arrival = TenantContext(tenant="vip", priority=lowest + 1)
        _enqueue(window, arrival)
        shed = [(i, w) for i, w in waiters if w.error is not None]
        assert len(shed) == 1
        victim_index, victim = shed[0]
        assert victim.ctx.priority == lowest
        newest_of_class = max(
            i for i, w in waiters if w.ctx.priority == lowest
        )
        assert victim_index == newest_of_class
