"""Failure-injection tests: transports dying, corrupt frames, resource
exhaustion, stale handles. The framework must fail loudly and precisely —
never hang, never corrupt unrelated state."""

import pickle
import socket
import struct
import threading

import numpy as np
import pytest

from repro.backends import (
    DmaCommBackend,
    LocalBackend,
    TcpBackend,
    VeoCommBackend,
    spawn_local_server,
)
from repro.backends.tcp import OP_INVOKE, _recv_frame
from repro.errors import (
    BackendError,
    DmaatbError,
    OutOfMemoryError,
    RemoteExecutionError,
)
from repro.ham import f2f
from repro.machine import AuroraMachine
from repro.offload import Runtime

from tests import apps


class TestTcpTransportFailures:
    def test_server_killed_mid_session(self):
        process, address = spawn_local_server()
        runtime = Runtime(TcpBackend(address))
        assert runtime.sync(1, f2f(apps.add, 1, 1)) == 2
        process.terminate()
        process.join(timeout=5)
        with pytest.raises(BackendError):
            for _ in range(3):  # first call may still be buffered
                runtime.sync(1, f2f(apps.add, 1, 1))
        # Shutdown after a dead peer must not raise.
        runtime.shutdown()

    def test_malformed_frame_gets_failure_reply(self):
        """A corrupt invoke frame must produce a remote error, not kill
        the server."""
        process, address = spawn_local_server()
        backend = TcpBackend(address, on_shutdown=lambda: process.join(timeout=5))
        runtime = Runtime(backend)
        # Push a raw garbage invoke through the backend's socket, with a
        # fake reply expectation filed under its correlation id; the
        # receiver thread matches the failure reply back to it.
        handle_box = {}
        dispatched = threading.Event()

        class FakeHandle:
            def complete_with_reply(self, reply):
                handle_box["reply"] = reply
                dispatched.set()

            def complete_with_error(self, error):
                handle_box["error"] = error
                dispatched.set()

        corr = backend._next_corr()
        with backend._pending_lock:
            backend._pending[corr] = ("invoke", FakeHandle())
        backend._send(OP_INVOKE, corr, b"not a ham message")
        assert dispatched.wait(timeout=10.0)
        assert isinstance(handle_box.get("error"), RemoteExecutionError)
        # Server is still alive and serving.
        assert runtime.sync(1, f2f(apps.add, 2, 2)) == 4
        runtime.shutdown()

    def test_remote_read_of_bad_address_fails_cleanly(self):
        process, address = spawn_local_server()
        backend = TcpBackend(address, on_shutdown=lambda: process.join(timeout=5))
        runtime = Runtime(backend)
        with pytest.raises(RemoteExecutionError, match="not inside a live buffer"):
            backend.read_buffer(1, 0xDEAD, 16)
        assert runtime.sync(1, f2f(apps.add, 1, 2)) == 3
        runtime.shutdown()

    def test_raw_client_with_garbage_bytes(self):
        """A client that speaks garbage gets an error frame (or a closed
        connection), and the server does not crash the test harness."""
        process, address = spawn_local_server()
        sock = socket.create_connection(address, timeout=5)
        # Valid length prefix and correlation id, bogus op.
        sock.sendall(struct.pack("<I", 9) + b"\xee" + struct.pack("<Q", 7))
        op, corr, body = _recv_frame(sock)
        assert op == 0xFF
        assert corr == 7  # failure replies echo the request's id
        info = pickle.loads(bytes(body))
        assert "unknown op" in info["message"]
        sock.close()
        process.terminate()
        process.join(timeout=5)


class TestSimBackendFailures:
    @pytest.mark.parametrize("backend_cls", [VeoCommBackend, DmaCommBackend])
    def test_remote_exception_marks_only_that_future(self, backend_cls):
        runtime = Runtime(backend_cls())
        ok_before = runtime.async_(1, f2f(apps.add, 1, 1))
        bad = runtime.async_(1, f2f(apps.raise_value_error, "pop"))
        ok_after = runtime.async_(1, f2f(apps.add, 2, 2))
        assert ok_before.get() == 2
        with pytest.raises(RemoteExecutionError, match="pop"):
            bad.get()
        assert ok_after.get() == 4
        runtime.shutdown()

    @pytest.mark.parametrize("backend_cls", [VeoCommBackend, DmaCommBackend])
    def test_ve_out_of_memory_propagates(self, backend_cls):
        backend = backend_cls(AuroraMachine(num_ves=1, ve_memory_bytes=8 * 2**20))
        runtime = Runtime(backend)
        with pytest.raises(OutOfMemoryError):
            runtime.allocate(1, 16 * 2**20, np.uint8)
        # Allocation failure leaves the runtime fully usable.
        ptr = runtime.allocate(1, 1024, np.uint8)
        runtime.free(ptr)
        runtime.shutdown()

    def test_dmaatb_exhaustion(self):
        machine = AuroraMachine(num_ves=1)
        ve = machine.ve(0)
        segment = machine.vh.shmget(1 << 20)
        for _ in range(ve.dmaatb.capacity):
            ve.dmaatb.register(segment, 0, 4096)
        with pytest.raises(DmaatbError, match="full"):
            ve.dmaatb.register(segment, 0, 4096)

    def test_double_shutdown_is_idempotent(self):
        runtime = Runtime(DmaCommBackend())
        runtime.sync(1, f2f(apps.empty_kernel))
        runtime.shutdown()
        runtime.shutdown()

    def test_stale_buffer_after_free_faults_on_ve(self):
        runtime = Runtime(DmaCommBackend())
        ptr = runtime.allocate(1, 64)
        runtime.put(np.zeros(64), ptr)
        runtime.free(ptr)
        # The VE-side resolver views raw HBM; freeing returns the pages
        # to the allocator, so a *new* allocation may alias. The runtime
        # itself refuses the stale pointer at the API boundary.
        from repro.errors import OffloadError

        with pytest.raises(OffloadError):
            runtime.free(ptr)
        runtime.shutdown()

    def test_message_larger_than_slot_rejected_before_transport(self):
        backend = DmaCommBackend(msg_size=512)
        runtime = Runtime(backend)
        with pytest.raises(BackendError, match="exceeds slot capacity"):
            runtime.sync(1, f2f(apps.echo, np.zeros(4096)))
        assert runtime.sync(1, f2f(apps.add, 1, 1)) == 2
        runtime.shutdown()


class TestLocalBackendFailures:
    def test_cross_node_buffer_dereference_rejected(self):
        runtime = Runtime(LocalBackend(num_targets=2))
        ptr_on_2 = runtime.allocate(2, 8)
        with pytest.raises(RemoteExecutionError, match="node"):
            runtime.sync(1, f2f(apps.sum_buffer, ptr_on_2))
        runtime.shutdown()

    def test_shutdown_rejects_further_traffic(self):
        backend = LocalBackend()
        runtime = Runtime(backend)
        runtime.shutdown()
        with pytest.raises(Exception):
            backend.alloc_buffer(1, 64)


class TestProtocolRobustness:
    def test_many_failures_do_not_leak_slots(self):
        """After many failing offloads, slots recycle and the protocol
        still works (no slot leak / seq desync)."""
        backend = DmaCommBackend(num_slots=4)
        runtime = Runtime(backend)
        for i in range(20):
            with pytest.raises(RemoteExecutionError):
                runtime.sync(1, f2f(apps.raise_value_error, f"e{i}"))
        assert runtime.sync(1, f2f(apps.add, 3, 4)) == 7
        runtime.shutdown()

    def test_interleaved_errors_and_buffers(self):
        runtime = Runtime(VeoCommBackend())
        ptr = runtime.allocate(1, 32)
        runtime.put(np.ones(32), ptr)
        with pytest.raises(RemoteExecutionError):
            runtime.sync(1, f2f(apps.raise_value_error, "mid"))
        assert runtime.sync(1, f2f(apps.sum_buffer, ptr)) == pytest.approx(32.0)
        runtime.shutdown()
