"""Peer death must leave a readable flight-recorder bundle behind.

The acceptance scenario for the black-box recorder: SIGKILL the target
mid-burst and a post-mortem bundle — readable by
``repro.telemetry.report`` — appears in the crash directory, while a
clean shutdown leaves nothing.
"""

import os
import signal

import pytest

from repro.backends import (
    ShmBackend,
    TcpBackend,
    spawn_local_server,
    spawn_shm_server,
)
from repro.errors import ReproError
from repro.ham import f2f
from repro.offload import Runtime
from repro.telemetry import flightrecorder
from repro.telemetry.report import render_bundle

from tests import apps


@pytest.fixture(autouse=True)
def _armed_recorder(tmp_path):
    """Arm the global recorder at tmp_path; disarm afterwards."""
    flight = flightrecorder.get()
    saved_dir, saved_debounce = flight.crash_dir, flight.debounce
    flightrecorder.configure(tmp_path, install_signal=False)
    yield tmp_path
    flight.crash_dir, flight.debounce = saved_dir, saved_debounce


def _drive_burst_and_kill(runtime, process):
    futures = [
        runtime.async_(1, f2f(apps.sleep_then, 30.0, i)) for i in range(3)
    ]
    os.kill(process.pid, signal.SIGKILL)
    process.join(timeout=5)
    for future in futures:
        with pytest.raises(ReproError):
            future.get(timeout=10.0)


def _assert_peer_death_bundle(crash_dir, transport):
    bundles = flightrecorder.find_bundles(crash_dir)
    deaths = [b for b in bundles if "peer_death" in b.name]
    assert deaths, f"no peer_death bundle in {list(bundles)}"
    loaded = flightrecorder.load_bundle(deaths[-1])
    manifest = loaded["manifest"]
    assert manifest["reason"] == "peer_death"
    assert manifest["attrs"]["transport"] == transport
    names = [event["name"] for event in loaded["events"]]
    assert "flight.trigger" in names
    # And the offline report renders it without choking.
    text = render_bundle(loaded)
    assert "reason=peer_death" in text


class TestSigkillMidBurst:
    def test_shm_target_death_dumps_bundle(self, _armed_recorder):
        process, segment = spawn_shm_server()
        backend = ShmBackend(
            segment,
            alive_fn=process.is_alive,
            on_shutdown=lambda: process.join(timeout=5),
        )
        runtime = Runtime(backend)
        try:
            _drive_burst_and_kill(runtime, process)
        finally:
            runtime.shutdown()
        _assert_peer_death_bundle(_armed_recorder, "shm")

    def test_tcp_target_death_dumps_bundle(self, _armed_recorder):
        process, address = spawn_local_server()
        backend = TcpBackend(
            address, on_shutdown=lambda: process.join(timeout=5)
        )
        runtime = Runtime(backend)
        try:
            _drive_burst_and_kill(runtime, process)
        finally:
            runtime.shutdown()
        _assert_peer_death_bundle(_armed_recorder, "tcp")


class TestCleanShutdownIsNotACrash:
    @pytest.mark.parametrize("transport", ["tcp", "shm"])
    def test_clean_shutdown_leaves_no_bundle(self, _armed_recorder, transport):
        if transport == "shm":
            process, segment = spawn_shm_server()
            backend = ShmBackend(
                segment,
                alive_fn=process.is_alive,
                on_shutdown=lambda: process.join(timeout=5),
            )
        else:
            process, address = spawn_local_server()
            backend = TcpBackend(
                address, on_shutdown=lambda: process.join(timeout=5)
            )
        runtime = Runtime(backend)
        runtime.sync(1, f2f(apps.add, 1, 2))
        runtime.shutdown()
        deaths = [
            b for b in flightrecorder.find_bundles(_armed_recorder)
            if "peer_death" in b.name
        ]
        assert deaths == []
