"""Resilience-layer tests: deadlines, retries, circuit breaking, failover
and deterministic fault injection. The invariant under test: with a
``ResiliencePolicy`` installed, no offload path blocks forever, and every
fault surfaces as a typed ``ReproError`` subclass."""

from __future__ import annotations

import socket
import struct
import threading
import time
import warnings

import pytest

from repro.backends import (
    ClusterBackend,
    DmaCommBackend,
    FaultInjectingBackend,
    LocalBackend,
    TcpBackend,
    spawn_local_server,
)
from repro.backends.tcp import OP_PING, OP_REPLY_BIT, _recv_frame, _send_frame
from repro.cluster import AuroraCluster
from repro.errors import (
    BackendError,
    CircuitOpenError,
    CorruptFrameError,
    InjectedFaultError,
    OffloadError,
    OffloadTimeoutError,
    RemoteExecutionError,
    ReproError,
)
from repro.ham import f2f
from repro.offload import HealthMonitor, NodeHealth, ResiliencePolicy, Runtime

from tests import apps


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _start_misbehaving_server(behavior: str) -> tuple[str, int]:
    """A TCP target that completes the handshake, then misbehaves.

    ``behavior``:
      * ``"wedge"``  — accept requests but never reply (silent target);
      * ``"truncate"`` — consume two requests, then reply with a partial
        frame (length prefix promising more bytes than sent) and close,
        so both operations are pending when the stream dies.

    Returns the listening address; the server thread is a daemon.
    """
    listener = socket.create_server(("127.0.0.1", 0))
    address = listener.getsockname()[:2]

    def run() -> None:
        try:
            conn, _peer = listener.accept()
            with conn:
                op, corr, _body = _recv_frame(conn)
                assert op == OP_PING
                # Empty digest: the client skips the catalog comparison.
                _send_frame(conn, OP_PING | OP_REPLY_BIT, corr, b"")
                if behavior == "wedge":
                    while _recv_frame(conn):
                        pass  # consume and stay silent forever
                else:  # truncate
                    _recv_frame(conn)
                    _recv_frame(conn)
                    conn.sendall(struct.pack("<I", 64) + b"\x81")
        except (OSError, BackendError):
            pass
        finally:
            listener.close()

    threading.Thread(target=run, daemon=True).start()
    return address


class _FlakyNodeBackend(LocalBackend):
    """LocalBackend whose listed nodes fail every invoke at transport level."""

    def __init__(self, dead_nodes, **kwargs) -> None:
        super().__init__(**kwargs)
        self.dead_nodes = set(dead_nodes)
        self.attempted_nodes: list[int] = []

    def post_invoke(self, node, functor):
        self.attempted_nodes.append(node)
        if node in self.dead_nodes:
            raise BackendError(f"node {node} unplugged (test)")
        return super().post_invoke(node, functor)


FAST_RETRY = dict(backoff_base=1e-4, backoff_max=1e-3, jitter=0.0)


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------


class TestDeadlines:
    @pytest.mark.slow_failure
    def test_silent_server_raises_within_deadline(self):
        """The acceptance-criterion scenario: the server accepts, then goes
        silent; ``sync`` must raise the timeout error within the deadline
        instead of blocking forever."""
        address = _start_misbehaving_server("wedge")
        runtime = Runtime(
            TcpBackend(address), policy=ResiliencePolicy(deadline=0.4)
        )
        start = time.monotonic()
        with pytest.raises(OffloadTimeoutError):
            runtime.sync(1, f2f(apps.add, 1, 1))
        assert time.monotonic() - start < 2.0  # deadline + generous slack

    @pytest.mark.slow_failure
    def test_future_get_timeout_leaves_future_pending(self):
        address = _start_misbehaving_server("wedge")
        backend = TcpBackend(address)
        runtime = Runtime(backend)
        future = runtime.async_(1, f2f(apps.add, 2, 2))
        with pytest.raises(OffloadTimeoutError):
            future.get(timeout=0.2)
        # Soft timeout: nothing was consumed, the future may be retried.
        with pytest.raises(OffloadTimeoutError):
            future.get(timeout=0.2)

    @pytest.mark.slow_failure
    def test_memory_ops_honor_default_deadline(self):
        address = _start_misbehaving_server("wedge")
        backend = TcpBackend(address, op_timeout=0.3)
        start = time.monotonic()
        with pytest.raises(OffloadTimeoutError):
            backend.alloc_buffer(1, 1024)
        assert time.monotonic() - start < 2.0

    def test_sim_backend_deadline_in_simulated_seconds(self):
        backend = DmaCommBackend()
        backend.kernel_cost_fn = lambda functor: 10.0  # 10 simulated seconds
        runtime = Runtime(backend)
        future = runtime.async_(1, f2f(apps.empty_kernel))
        with pytest.raises(OffloadTimeoutError):
            future.get(timeout=0.5)
        runtime.shutdown()

    def test_policy_validation(self):
        with pytest.raises(OffloadError):
            ResiliencePolicy(deadline=0.0)
        with pytest.raises(OffloadError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(OffloadError):
            ResiliencePolicy(degraded_after=5, down_after=2)


# ---------------------------------------------------------------------------
# retries and backoff
# ---------------------------------------------------------------------------


class TestRetries:
    def test_success_after_n_failures(self):
        """Two scheduled drops, then clean: an idempotent sync retries
        through them with the policy's backoff schedule."""
        backend = FaultInjectingBackend(
            LocalBackend(), seed=7, schedule={0: "drop", 1: "drop"}
        )
        policy = ResiliencePolicy(max_retries=3, **FAST_RETRY)
        runtime = Runtime(backend, policy=policy)
        slept: list[float] = []
        runtime._sleep = slept.append
        assert runtime.sync(1, f2f(apps.add, 20, 22), idempotent=True) == 42
        assert [event.kind for event in backend.fault_log] == ["drop", "drop"]
        assert slept == list(policy.delays())[:2]
        assert runtime.stats()["retries"] == 2
        # Transport recovered: the node is healthy again.
        assert runtime.monitor.health(1) is NodeHealth.HEALTHY

    def test_non_idempotent_sync_never_retries(self):
        backend = FaultInjectingBackend(LocalBackend(), schedule={0: "drop"})
        runtime = Runtime(
            backend, policy=ResiliencePolicy(max_retries=5, **FAST_RETRY)
        )
        with pytest.raises(InjectedFaultError):
            runtime.sync(1, f2f(apps.add, 1, 1))
        assert backend.ops_forwarded == 1  # exactly one attempt

    def test_remote_application_error_is_not_retried(self):
        backend = FaultInjectingBackend(LocalBackend())
        runtime = Runtime(
            backend, policy=ResiliencePolicy(max_retries=5, **FAST_RETRY)
        )
        with pytest.raises(RemoteExecutionError, match="boom"):
            runtime.sync(1, f2f(apps.raise_value_error, "boom"), idempotent=True)
        assert backend.ops_forwarded == 1
        # An application error means the transport worked.
        assert runtime.monitor.health(1) is NodeHealth.HEALTHY

    def test_retries_exhausted_raises_last_error(self):
        backend = FaultInjectingBackend(LocalBackend(), drop_rate=1.0)
        policy = ResiliencePolicy(max_retries=2, down_after=10, **FAST_RETRY)
        runtime = Runtime(backend, policy=policy)
        runtime._sleep = lambda _s: None
        with pytest.raises(InjectedFaultError):
            runtime.sync(1, f2f(apps.add, 1, 1), idempotent=True)
        assert backend.ops_forwarded == 3  # 1 + max_retries

    def test_backoff_schedule_is_seeded(self):
        a = ResiliencePolicy(max_retries=4, jitter=0.5, seed=123)
        b = ResiliencePolicy(max_retries=4, jitter=0.5, seed=123)
        c = ResiliencePolicy(max_retries=4, jitter=0.5, seed=124)
        assert list(a.delays()) == list(b.delays())
        assert list(a.delays()) != list(c.delays())
        # Exponential shape survives the jitter bounds.
        for k, delay in enumerate(a.delays()):
            base = min(a.backoff_max, a.backoff_base * a.backoff_factor**k)
            assert 0.5 * base <= delay <= 1.5 * base


# ---------------------------------------------------------------------------
# health monitor and circuit breaker
# ---------------------------------------------------------------------------


class TestHealthMonitor:
    def test_state_machine_transitions(self):
        monitor = HealthMonitor(ResiliencePolicy(degraded_after=2, down_after=4))
        assert monitor.health(1) is NodeHealth.HEALTHY
        monitor.record_failure(1)
        assert monitor.health(1) is NodeHealth.HEALTHY
        monitor.record_failure(1)
        assert monitor.health(1) is NodeHealth.DEGRADED
        monitor.record_failure(1)
        monitor.record_failure(1)
        assert monitor.health(1) is NodeHealth.DOWN
        monitor.record_success(1)
        assert monitor.health(1) is NodeHealth.HEALTHY

    def test_circuit_opens_and_half_open_probe(self):
        clock = [0.0]
        policy = ResiliencePolicy(down_after=2, probe_interval=5.0)
        monitor = HealthMonitor(policy, clock=lambda: clock[0])
        monitor.record_failure(1)
        monitor.record_failure(1)
        assert monitor.health(1) is NodeHealth.DOWN
        assert not monitor.allow(1)
        clock[0] = 4.9
        assert not monitor.allow(1)
        clock[0] = 5.1
        assert monitor.allow(1)  # the half-open probe
        assert not monitor.allow(1)  # only one probe per interval
        clock[0] = 10.2
        assert monitor.allow(1)

    def test_circuit_breaker_fails_fast(self):
        """Once a node is down, operations raise CircuitOpenError without
        touching the backend."""
        backend = FaultInjectingBackend(LocalBackend(), drop_rate=1.0)
        policy = ResiliencePolicy(down_after=2, probe_interval=60.0, **FAST_RETRY)
        runtime = Runtime(backend, policy=policy)
        for _ in range(2):
            with pytest.raises(InjectedFaultError):
                runtime.sync(1, f2f(apps.add, 1, 1))
        ops_before = backend.ops_forwarded
        with pytest.raises(CircuitOpenError):
            runtime.sync(1, f2f(apps.add, 1, 1))
        assert backend.ops_forwarded == ops_before  # failed fast, no traffic

    def test_preferred_ranks_by_health(self):
        monitor = HealthMonitor(ResiliencePolicy(degraded_after=1, down_after=2))
        monitor.record_failure(2)  # degraded
        monitor.record_failure(3)
        monitor.record_failure(3)  # down (circuit open, no probe due yet)
        assert monitor.preferred([1, 2, 3]) == [1, 2]
        assert monitor.preferred([1, 2, 3], exclude=[1]) == [2]

    def test_heartbeat_feeds_monitor(self):
        backend = LocalBackend(num_targets=2)
        runtime = Runtime(backend, policy=ResiliencePolicy())
        latencies = runtime.heartbeat()
        assert set(latencies) == {1, 2}
        assert all(lat is not None for lat in latencies.values())
        assert runtime.monitor.health(1) is NodeHealth.HEALTHY

    def test_heartbeat_failure_marks_node(self):
        backend = FaultInjectingBackend(LocalBackend(), drop_rate=1.0)
        policy = ResiliencePolicy(down_after=1)
        runtime = Runtime(backend, policy=policy)
        latencies = runtime.heartbeat()
        assert latencies[1] is None
        assert runtime.monitor.health(1) is NodeHealth.DOWN

    def test_heartbeat_requires_policy(self):
        runtime = Runtime(LocalBackend())
        with pytest.raises(OffloadError, match="ResiliencePolicy"):
            runtime.heartbeat()

    def test_tcp_ping_roundtrip(self):
        process, address = spawn_local_server(startup_timeout=15.0)
        backend = TcpBackend(address, on_shutdown=lambda: process.join(timeout=5))
        latency = backend.ping(1)
        assert latency >= 0.0
        backend.shutdown()


# ---------------------------------------------------------------------------
# failover
# ---------------------------------------------------------------------------


class TestFailover:
    def test_idempotent_invoke_fails_over_to_healthy_peer(self):
        backend = _FlakyNodeBackend([1], num_targets=2)
        policy = ResiliencePolicy(max_retries=2, **FAST_RETRY)
        runtime = Runtime(backend, policy=policy)
        runtime._sleep = lambda _s: None
        assert runtime.sync(1, f2f(apps.add, 5, 6), idempotent=True) == 11
        assert backend.attempted_nodes == [1, 2]
        assert runtime.stats()["failovers"] == 1
        assert runtime.monitor.health(1) is NodeHealth.DEGRADED
        assert runtime.monitor.health(2) is NodeHealth.HEALTHY

    def test_failover_disabled_retries_same_node(self):
        backend = _FlakyNodeBackend([1], num_targets=2)
        policy = ResiliencePolicy(max_retries=2, failover=False, down_after=10, **FAST_RETRY)
        runtime = Runtime(backend, policy=policy)
        runtime._sleep = lambda _s: None
        with pytest.raises(BackendError, match="unplugged"):
            runtime.sync(1, f2f(apps.add, 5, 6), idempotent=True)
        assert backend.attempted_nodes == [1, 1, 1]

    def test_cluster_failover_of_idempotent_invoke(self):
        """Multi-VE cluster: with VE 1 fenced as down, an idempotent
        offload addressed to it lands on a healthy peer VE."""
        cluster = AuroraCluster(num_nodes=2, ves_per_node=1)
        backend = ClusterBackend(cluster)
        policy = ResiliencePolicy(max_retries=1, down_after=1, **FAST_RETRY)
        runtime = Runtime(backend, policy=policy)
        runtime._sleep = lambda _s: None
        runtime.monitor.record_failure(1)  # observed crash: VE 1 is down
        assert runtime.monitor.health(1) is NodeHealth.DOWN
        assert runtime.sync(1, f2f(apps.add, 3, 4), idempotent=True) == 7
        assert runtime.stats()["failovers"] == 1
        runtime.shutdown()

    def test_cluster_ping_probes_ves(self):
        cluster = AuroraCluster(num_nodes=2, ves_per_node=1)
        runtime = Runtime(ClusterBackend(cluster), policy=ResiliencePolicy())
        latencies = runtime.heartbeat()
        assert latencies[1] == 0.0  # node-local VE
        assert latencies[2] > 0.0  # remote VE pays IB latency
        runtime.shutdown()


# ---------------------------------------------------------------------------
# fault injection determinism
# ---------------------------------------------------------------------------


def _exercise(backend: FaultInjectingBackend) -> list[str]:
    """A fixed op sequence; returns the names of surfaced fault errors."""
    surfaced = []
    runtime = Runtime(backend)
    ptr = None
    for step in range(30):
        try:
            if step % 5 == 4:
                if ptr is None:
                    ptr = runtime.allocate(1, 16)
                else:
                    runtime.free(ptr)
                    ptr = None
            else:
                runtime.sync(1, f2f(apps.add, step, 1))
        except ReproError as exc:
            surfaced.append(type(exc).__name__)
            backend.reconnect()
    return surfaced


class TestFaultInjectionDeterminism:
    def test_same_seed_same_schedule(self):
        kwargs = dict(
            drop_rate=0.2, delay_rate=0.1, disconnect_rate=0.05, corrupt_rate=0.1,
            delay_range=(0.0, 0.0),
        )
        a = FaultInjectingBackend(LocalBackend(), seed=42, **kwargs)
        b = FaultInjectingBackend(LocalBackend(), seed=42, **kwargs)
        c = FaultInjectingBackend(LocalBackend(), seed=43, **kwargs)
        surfaced_a, surfaced_b, surfaced_c = map(_exercise, (a, b, c))
        assert a.fault_log == b.fault_log
        assert len(a.fault_log) > 0
        assert surfaced_a == surfaced_b
        assert a.fault_log != c.fault_log

    def test_explicit_schedule_overrides(self):
        backend = FaultInjectingBackend(
            LocalBackend(), schedule={0: "corrupt", 2: "drop"}
        )
        runtime = Runtime(backend)
        with pytest.raises(CorruptFrameError):
            runtime.sync(1, f2f(apps.add, 1, 1))
        assert runtime.sync(1, f2f(apps.add, 1, 1)) == 2
        with pytest.raises(InjectedFaultError):
            runtime.sync(1, f2f(apps.add, 1, 1))
        assert [e.index for e in backend.fault_log] == [0, 2]

    def test_schedule_override_does_not_shift_random_faults(self):
        """Pinning one op's fault must not change which later ops fault."""
        kwargs = dict(drop_rate=0.3, delay_range=(0.0, 0.0))
        plain = FaultInjectingBackend(LocalBackend(), seed=5, **kwargs)
        pinned = FaultInjectingBackend(
            LocalBackend(), seed=5, schedule={0: "none"}, **kwargs
        )
        _exercise(plain)
        _exercise(pinned)
        plain_tail = [e for e in plain.fault_log if e.index > 0]
        pinned_tail = [e for e in pinned.fault_log if e.index > 0]
        assert plain_tail == pinned_tail

    def test_disconnect_requires_reconnect(self):
        backend = FaultInjectingBackend(LocalBackend(), schedule={1: "disconnect"})
        runtime = Runtime(backend)
        assert runtime.sync(1, f2f(apps.add, 1, 1)) == 2
        with pytest.raises(InjectedFaultError, match="disconnect"):
            runtime.sync(1, f2f(apps.add, 1, 1))
        with pytest.raises(BackendError, match="down"):
            runtime.sync(1, f2f(apps.add, 1, 1))
        backend.reconnect()
        assert runtime.sync(1, f2f(apps.add, 1, 1)) == 2

    def test_rates_validation(self):
        with pytest.raises(BackendError):
            FaultInjectingBackend(LocalBackend(), drop_rate=0.7, corrupt_rate=0.7)
        with pytest.raises(BackendError):
            FaultInjectingBackend(LocalBackend(), schedule={0: "explode"})

    def test_fault_stats(self):
        backend = FaultInjectingBackend(
            LocalBackend(), schedule={0: "drop", 1: "drop", 2: "corrupt"}
        )
        runtime = Runtime(backend)
        for _ in range(3):
            with pytest.raises(BackendError):
                runtime.sync(1, f2f(apps.add, 1, 1))
        stats = backend.stats()
        assert stats["faults_injected"] == 3
        assert stats["faults_by_kind"] == {"drop": 2, "corrupt": 1}


# ---------------------------------------------------------------------------
# satellite fixes
# ---------------------------------------------------------------------------


class TestSatelliteFixes:
    def test_truncated_frame_kills_backend_and_fails_pending(self):
        """A connection closed mid-frame must mark the backend dead and
        fail every pending operation — not leave stale expectations."""
        address = _start_misbehaving_server("truncate")
        backend = TcpBackend(address)
        runtime = Runtime(backend)
        f1 = runtime.async_(1, f2f(apps.add, 1, 1))
        f2 = runtime.async_(1, f2f(apps.add, 2, 2))
        with pytest.raises(BackendError):
            f1.get()
        assert backend._alive is False
        assert not backend._pending
        # The second in-flight future fails immediately, it does not hang.
        start = time.monotonic()
        with pytest.raises(BackendError):
            f2.get()
        assert time.monotonic() - start < 1.0
        with pytest.raises(BackendError, match="shut down"):
            runtime.sync(1, f2f(apps.add, 3, 3))

    def test_free_keeps_tracking_on_backend_failure(self):
        """A transport failure during free must not silently drop the
        buffer from the live table."""
        backend = FaultInjectingBackend(LocalBackend())
        runtime = Runtime(backend)
        ptr = runtime.allocate(1, 8)
        assert runtime.live_buffer_count == 1
        backend._schedule[backend.ops_forwarded] = "drop"  # fault the free
        with pytest.raises(InjectedFaultError):
            runtime.free(ptr)
        assert runtime.live_buffer_count == 1  # still tracked
        runtime.free(ptr)  # the retry succeeds and untracks
        assert runtime.live_buffer_count == 0
        runtime.shutdown()

    def test_shutdown_warns_on_leaked_buffers(self):
        runtime = Runtime(LocalBackend())
        ptr = runtime.allocate(1, 4)
        with pytest.warns(ResourceWarning, match="leaked") as records:
            runtime.shutdown()
        assert f"{ptr.addr:#x}" in str(records[0].message)

    def test_shutdown_without_leaks_does_not_warn(self):
        runtime = Runtime(LocalBackend())
        ptr = runtime.allocate(1, 4)
        runtime.free(ptr)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            runtime.shutdown()

    def test_spawn_local_server_startup_timeout_param(self):
        process, address = spawn_local_server(startup_timeout=20.0)
        backend = TcpBackend(address, on_shutdown=lambda: process.join(timeout=5))
        runtime = Runtime(backend)
        assert runtime.sync(1, f2f(apps.add, 1, 2)) == 3
        runtime.shutdown()
