"""Abnormal-exit behaviour of the shared-memory transport.

The segment is a kernel object with no connection semantics: nobody
gets an ECONNRESET when a peer dies. These tests pin down the
replacement guarantees — pending futures fail via ``_fail_pending``
when the target dies mid-offload, new work fails fast, and no
``/dev/shm`` entry or resource-tracker warning survives any exit path.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.backends import ShmBackend, spawn_shm_server
from repro.errors import BackendError
from repro.ham import f2f
from repro.offload import Runtime

from tests import apps


def _spawned_runtime(workers=2):
    process, segment = spawn_shm_server(workers=workers)
    backend = ShmBackend(
        segment,
        alive_fn=process.is_alive,
        on_shutdown=lambda: process.join(timeout=5),
    )
    return process, segment, backend, Runtime(backend)


class TestTargetDeath:
    def test_kill_mid_offload_fails_pending_futures(self):
        process, segment, backend, runtime = _spawned_runtime()
        name = segment.name
        try:
            futures = [
                runtime.async_(1, f2f(apps.sleep_then, 30.0, i))
                for i in range(3)
            ]
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=5)
            with pytest.raises(BackendError):
                futures[0].get(timeout=10.0)
            # _fail_pending settled *every* in-flight future, not just
            # the one being driven.
            for future in futures[1:]:
                with pytest.raises(BackendError):
                    future.get(timeout=1.0)
        finally:
            runtime.shutdown()
        assert not os.path.exists(f"/dev/shm/{name}")

    def test_new_work_fails_fast_after_target_death(self):
        process, _segment, backend, runtime = _spawned_runtime()
        try:
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=5)
            start = time.monotonic()
            with pytest.raises(BackendError):
                runtime.sync(1, f2f(apps.add, 1, 1))
            # Detection is a pid probe, not a multi-second timeout.
            assert time.monotonic() - start < 5.0
            with pytest.raises(BackendError):
                backend.ping(1)
        finally:
            runtime.shutdown()

    def test_shutdown_after_death_still_unlinks(self):
        process, segment, _backend, runtime = _spawned_runtime()
        name = segment.name
        os.kill(process.pid, signal.SIGKILL)
        process.join(timeout=5)
        runtime.shutdown()  # must tolerate the dead peer
        assert not os.path.exists(f"/dev/shm/{name}")


class TestCleanExit:
    def test_no_resource_tracker_warnings(self):
        """A full spawn/offload/shutdown cycle in a fresh interpreter
        must exit silently: no leaked-segment warnings from either
        process's resource tracker."""
        script = textwrap.dedent(
            """
            from repro.backends import ShmBackend, spawn_shm_server
            from repro.offload import Runtime
            from repro.ham import f2f
            from tests import apps

            process, segment = spawn_shm_server(workers=2)
            backend = ShmBackend(
                segment,
                alive_fn=process.is_alive,
                on_shutdown=lambda: process.join(timeout=5),
            )
            runtime = Runtime(backend)
            assert runtime.sync(1, f2f(apps.add, 2, 3)) == 5
            runtime.shutdown()
            """
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            env={
                **os.environ,
                "PYTHONPATH": os.pathsep.join(
                    filter(None, ["src", os.environ.get("PYTHONPATH")])
                ),
            },
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        assert result.returncode == 0, result.stderr
        assert "resource_tracker" not in result.stderr
        assert "leaked" not in result.stderr

    @pytest.mark.slow_failure
    def test_host_sigkill_leaves_no_orphans(self):
        """SIGKILL the *host* mid-offload: the target notices the dead
        client and exits, and the host's resource tracker unlinks the
        segment — no /dev/shm entry and no stray server process."""
        script = textwrap.dedent(
            """
            import os, signal
            from repro.backends import ShmBackend, spawn_shm_server
            from repro.offload import Runtime
            from repro.ham import f2f
            from tests import apps

            process, segment = spawn_shm_server(workers=2)
            backend = ShmBackend(
                segment,
                alive_fn=process.is_alive,
                on_shutdown=lambda: process.join(timeout=5),
            )
            runtime = Runtime(backend)
            runtime.async_(1, f2f(apps.sleep_then, 3.0, "doomed"))
            print(segment.name, process.pid, flush=True)
            os.kill(os.getpid(), signal.SIGKILL)
            """
        )
        # Popen, not run(): the forked target inherits the stdout pipe,
        # so waiting for EOF would block until *it* exits too. Read the
        # one line we need, then watch pids and /dev/shm directly.
        host = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env={
                **os.environ,
                "PYTHONPATH": os.pathsep.join(
                    filter(None, ["src", os.environ.get("PYTHONPATH")])
                ),
            },
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        try:
            name, server_pid = host.stdout.readline().split()
            server_pid = int(server_pid)
            assert host.wait(timeout=30) == -signal.SIGKILL
        finally:
            host.stdout.close()
            if host.poll() is None:  # pragma: no cover - cleanup safety
                host.kill()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            try:
                os.kill(server_pid, 0)
                server_alive = True
            except OSError:
                server_alive = False
            if not server_alive and not os.path.exists(f"/dev/shm/{name}"):
                break
            time.sleep(0.2)
        try:
            os.kill(server_pid, 0)
            pytest.fail("target server survived its client's death")
        except OSError:
            pass
        assert not os.path.exists(f"/dev/shm/{name}")
