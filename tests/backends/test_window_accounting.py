"""Regression tests: the in-flight window never leaks slots.

A handle that is registered in the window and then orphaned by an
exception on the send/execute path would hold its slot forever; enough
of them and the window drains to zero capacity and every later offload
deadlocks. These tests flood the failure path with a window small enough
that even a few leaked slots would wedge the backend, then prove the
transport still works.
"""

from __future__ import annotations

import pytest

from repro.backends import LocalBackend, TcpBackend
from repro.backends.tcp import spawn_local_server
from repro.errors import BackendError
from repro.ham import f2f

from tests import apps

FLOOD = 50
WINDOW = 4


class TestLocalBackendAccounting:
    def test_execute_failure_frees_the_slot(self, monkeypatch):
        backend = LocalBackend()
        backend.set_inflight_limit(WINDOW)

        def boom(*args, **kwargs):
            raise BackendError("injected execute failure")

        monkeypatch.setattr("repro.backends.local.execute_message", boom)
        for _ in range(FLOOD):
            with pytest.raises(BackendError):
                backend.post_invoke(1, f2f(apps.add, 1, 2))
            assert backend.window.in_flight == 0
        monkeypatch.undo()
        # The window survived the flood with full capacity: a real invoke
        # (which needs a slot) still completes.
        handle = backend.post_invoke(1, f2f(apps.add, 2, 3))
        assert handle.wait(timeout=5.0) == 5
        assert backend.window.in_flight == 0
        backend.shutdown()

    def test_non_backend_error_also_frees_the_slot(self, monkeypatch):
        backend = LocalBackend()
        backend.set_inflight_limit(WINDOW)

        def boom(*args, **kwargs):
            raise RuntimeError("unexpected crash inside the transport")

        monkeypatch.setattr("repro.backends.local.execute_message", boom)
        for _ in range(FLOOD):
            with pytest.raises(RuntimeError):
                backend.post_invoke(1, f2f(apps.add, 1, 2))
            assert backend.window.in_flight == 0
        backend.shutdown()


class TestTcpBackendAccounting:
    def test_send_failure_frees_slot_and_pending_entry(self):
        process, address = spawn_local_server()
        backend = TcpBackend(address, on_shutdown=lambda: process.join(5.0))
        backend.set_inflight_limit(WINDOW)
        try:
            real_post = backend._post_frame

            def refuse(op, corr, *parts):
                raise BackendError("injected send failure")

            # _post_frame is the seam every invoke frame crosses on its
            # way to the wire (coalesced or direct).
            backend._post_frame = refuse
            for _ in range(FLOOD):
                with pytest.raises(BackendError):
                    backend.post_invoke(1, f2f(apps.add, 1, 2))
                assert backend.window.in_flight == 0
                assert backend._pending_count() == 0
            backend._post_frame = real_post
            # Capacity intact: more invokes than the window can hold at
            # once all round-trip (a leaked slot would deadlock here).
            handles = [
                backend.post_invoke(1, f2f(apps.add, i, i))
                for i in range(WINDOW * 2)
            ]
            assert [h.wait(timeout=10.0) for h in handles] == [
                2 * i for i in range(WINDOW * 2)
            ]
            assert backend.window.in_flight == 0
        finally:
            backend.shutdown()
