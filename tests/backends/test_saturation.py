"""Tier-2 saturation: thousands of offloads in flight on one thread.

The acceptance bar for the event-loop refactor: one process sustains
>= 5k concurrent in-flight offloads with **zero** receiver threads per
connection — every socket multiplexed on the shared reactor, every
reply matched by correlation id, every future settled.

Heavyweight (several seconds, ~10k live futures), so gated behind
``REPRO_TIER2=1`` and the ``tier2`` marker; tier-1 CI never runs it.
"""

import asyncio
import os
import threading
import time

import pytest

from repro.backends import TcpBackend, spawn_local_server
from repro.ham import f2f
from repro.offload import Runtime

from tests import apps

pytestmark = pytest.mark.tier2

if not os.environ.get("REPRO_TIER2"):
    pytest.skip(
        "tier-2 saturation tests need REPRO_TIER2=1", allow_module_level=True
    )

DEPTH = 10_000
WORKERS = 8
FLOOR = 5_000


@pytest.fixture()
def rt():
    process, address = spawn_local_server(workers=WORKERS)
    backend = TcpBackend(
        address, batch=True, on_shutdown=lambda: process.join(timeout=10)
    )
    runtime = Runtime(backend, window=DEPTH)
    yield runtime
    runtime.shutdown()
    if process.is_alive():  # pragma: no cover - cleanup safety
        process.terminate()


def test_10k_in_flight_single_thread(rt):
    backend = rt.backend
    # Pin every server worker on a long sleep so the remaining posts
    # pile up: in-flight depth is then deterministic, not a race
    # between client posting rate and server drain rate.
    pinned = [rt.async_(1, f2f(apps.sleep_then, 3.0, n)) for n in range(WORKERS)]
    quick = [
        rt.async_(1, f2f(apps.add, i, 1)) for i in range(DEPTH - WORKERS)
    ]
    backend._coalescer.flush()  # everything on the wire now

    in_flight = backend.window.in_flight
    assert in_flight >= FLOOR, f"only {in_flight} offloads in flight"

    # Zero receiver threads: the reactor owns the socket.
    stats = backend.stats()
    assert stats["receiver_threads"] == 0
    assert stats["reactor"]["alive"]
    names = [t.name for t in threading.enumerate()]
    assert not any("tcp-receiver" in name for name in names)

    # Introspection works *through the saturated connection*: the
    # control plane shares the wire with 10k queued invokes.
    snapshot = backend.introspect_target(timeout=30.0)
    assert snapshot["pending_invokes"] + snapshot["workers"]["active"] >= FLOOR

    deadline = time.monotonic() + 120.0
    values = []
    for future in quick:
        values.append(future.get(timeout=max(0.0, deadline - time.monotonic())))
    assert values == [i + 1 for i in range(DEPTH - WORKERS)]
    assert [f.get(timeout=30.0) for f in pinned] == list(range(WORKERS))

    batch = stats["batch"]
    assert batch["frames_coalesced"] >= DEPTH
    assert batch["avg_batch_frames"] > 1.0, "saturation never coalesced"


def test_10k_awaited_futures_one_loop(rt):
    """The asyncio bridge at depth: every future awaited, one loop."""

    async def main():
        futures = [
            rt.async_(1, f2f(apps.add, i, 2)) for i in range(DEPTH)
        ]
        return await asyncio.gather(*futures)

    values = asyncio.run(main())
    assert values == [i + 2 for i in range(DEPTH)]
    assert rt.backend.stats()["receiver_threads"] == 0
