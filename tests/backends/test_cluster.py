"""Tests for remote offloading across the InfiniBand cluster (M4)."""

import numpy as np
import pytest

from repro.backends import ClusterBackend
from repro.cluster import AuroraCluster
from repro.errors import RemoteExecutionError
from repro.ham import f2f
from repro.offload import Runtime

from tests import apps


@pytest.fixture()
def rt():
    cluster = AuroraCluster(num_nodes=3, ves_per_node=1)
    runtime = Runtime(ClusterBackend(cluster))
    yield runtime
    runtime.shutdown()


class TestClusterTopology:
    def test_node_enumeration(self, rt):
        assert rt.num_nodes() == 4  # host + 3 VEs (1 local, 2 remote)
        names = [rt.get_node_descriptor(n).name for n in rt.targets()]
        assert names == ["node0.ve0", "node1.ve0", "node2.ve0"]

    def test_remote_flag_in_description(self, rt):
        assert "local" in rt.get_node_descriptor(1).description
        assert "InfiniBand" in rt.get_node_descriptor(2).description

    def test_cluster_validation(self):
        with pytest.raises(ValueError):
            AuroraCluster(num_nodes=0)

    def test_shared_simulator(self):
        cluster = AuroraCluster(num_nodes=2)
        assert cluster.machine(0).sim is cluster.machine(1).sim


class TestClusterExecution:
    def test_offload_to_every_node(self, rt):
        for node in rt.targets():
            assert rt.sync(node, f2f(apps.add, node, 10)) == node + 10

    def test_remote_exception_propagates(self, rt):
        with pytest.raises(RemoteExecutionError, match="far away"):
            rt.sync(2, f2f(apps.raise_value_error, "far away"))
        assert rt.sync(2, f2f(apps.add, 1, 1)) == 2

    def test_remote_buffers(self, rt):
        data = np.linspace(0, 1, 128)
        ptr = rt.allocate(3, 128)
        rt.put(data, ptr)
        assert rt.sync(3, f2f(apps.sum_buffer, ptr)) == pytest.approx(data.sum())
        back = np.zeros(128)
        rt.get(ptr, back)
        np.testing.assert_array_equal(back, data)
        rt.free(ptr)

    def test_async_across_nodes(self, rt):
        futures = {n: rt.async_(n, f2f(apps.add, n, 0)) for n in rt.targets()}
        assert {n: f.get() for n, f in futures.items()} == {1: 1, 2: 2, 3: 3}

    def test_cross_node_copy_falls_back_to_host_staging(self, rt):
        src = rt.allocate(1, 16)
        dst = rt.allocate(2, 16)  # other machine
        rt.put(np.arange(16.0), src)
        rt.copy(src, dst)
        back = np.zeros(16)
        rt.get(dst, back)
        np.testing.assert_array_equal(back, np.arange(16.0))


class TestClusterTiming:
    def _cost(self, runtime, node, reps=10):
        sim = runtime.backend.sim
        for _ in range(3):
            runtime.sync(node, f2f(apps.empty_kernel))
        start = sim.now
        for _ in range(reps):
            runtime.sync(node, f2f(apps.empty_kernel))
        return (sim.now - start) / reps

    def test_remote_offload_costs_two_ib_hops_more(self, rt):
        local = self._cost(rt, 1)
        remote = self._cost(rt, 2)
        timing = rt.backend.timing
        extra = remote - local
        # Two IB transits plus agent overhead, well under 3x one hop.
        assert 2 * timing.ib_latency < extra < 3 * timing.ib_latency + 2e-6

    def test_remote_still_far_cheaper_than_ham_veo(self, rt):
        # Even a *remote* DMA-protocol offload beats the paper's local
        # VEO-protocol offload by an order of magnitude.
        remote = self._cost(rt, 2)
        assert remote < 432e-6 / 10

    def test_ib_traffic_accounted(self, rt):
        before = rt.backend.cluster.ib_messages
        rt.sync(2, f2f(apps.empty_kernel))
        after = rt.backend.cluster.ib_messages
        assert after - before == 2  # request + reply

    def test_stats_report_remote_targets(self, rt):
        stats = rt.stats()["backend"]
        assert stats["backend"] == "cluster"
        assert stats["remote_targets"] == 2
