"""Tests for the catalog-digest handshake of the TCP backend.

The paper's design requires host and target to be "built" from the same
application. This library verifies that at connect time instead of
silently dispatching through shifted handler keys.
"""

import pytest

from repro.backends import TcpBackend, spawn_local_server
from repro.errors import BackendError
from repro.ham.registry import Catalog, ProcessImage


def make_catalog(names):
    catalog = Catalog()
    for name in names:
        catalog.register((lambda n: (lambda: n))(name), name=name)
    return catalog


class TestDigest:
    def test_same_type_set_same_digest(self):
        a = ProcessImage("a", make_catalog(["x::f", "y::g"]))
        b = ProcessImage("b", make_catalog(["y::g", "x::f"]))  # other order
        assert a.digest() == b.digest()

    def test_different_type_sets_differ(self):
        a = ProcessImage("a", make_catalog(["x::f"]))
        b = ProcessImage("b", make_catalog(["x::f", "y::g"]))
        assert a.digest() != b.digest()

    def test_digest_stable_across_calls(self):
        image = ProcessImage("a", make_catalog(["m::f"]))
        assert image.digest() == image.digest()


class TestHandshake:
    def test_matching_catalogs_connect(self):
        process, address = spawn_local_server()
        backend = TcpBackend(address, on_shutdown=lambda: process.join(timeout=5))
        backend.shutdown()

    def test_mismatched_catalogs_rejected_at_connect(self):
        # Server forks with the (large) global catalog; client presents a
        # tiny private one.
        process, address = spawn_local_server()
        try:
            with pytest.raises(BackendError, match="catalogs differ"):
                TcpBackend(address, catalog=make_catalog(["only::one"]))
        finally:
            process.terminate()
            process.join(timeout=5)
