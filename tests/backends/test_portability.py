"""The paper's portability claim (Sec. V end): the same application code
runs unchanged on every communication backend.

One application function, four backends; only the backend construction
differs.
"""

import numpy as np
import pytest

from repro.backends import (
    DmaCommBackend,
    LocalBackend,
    TcpBackend,
    VeoCommBackend,
    spawn_local_server,
)
from repro.ham import f2f
from repro.offload import Runtime

from tests import apps


def application(runtime: Runtime) -> dict:
    """A small, backend-agnostic HAM-Offload application."""
    target = runtime.targets()[0]
    n = 128
    a = np.linspace(0.0, 1.0, n)
    b = np.linspace(1.0, 2.0, n)
    a_t = runtime.allocate(target, n)
    b_t = runtime.allocate(target, n)
    runtime.put(a, a_t)
    runtime.put(b, b_t)
    dot = runtime.async_(target, f2f(apps.inner_product, a_t, b_t, n))
    scalar = runtime.sync(target, f2f(apps.add, 20, 22))
    # The channel contract lets invocations execute concurrently on the
    # target (see docs/architecture.md), so collect the dot before
    # mutating its input buffer — scale_buffer racing inner_product
    # would read a_t mid-update.
    dot_value = dot.get()
    runtime.sync(target, f2f(apps.scale_buffer, a_t, 2.0))
    doubled = np.zeros(n)
    runtime.get(a_t, doubled)
    runtime.free(a_t)
    runtime.free(b_t)
    return {
        "dot": dot_value,
        "scalar": scalar,
        "doubled_ok": bool(np.allclose(doubled, 2 * a)),
        "expected_dot": float(np.dot(a, b)),
    }


def make_runtime(kind: str):
    if kind == "local":
        return Runtime(LocalBackend()), None
    if kind == "veo":
        return Runtime(VeoCommBackend()), None
    if kind == "dma":
        return Runtime(DmaCommBackend()), None
    if kind == "tcp":
        process, address = spawn_local_server()
        backend = TcpBackend(address, on_shutdown=lambda: process.join(timeout=5))
        return Runtime(backend), process
    raise AssertionError(kind)


@pytest.mark.parametrize("kind", ["local", "tcp", "veo", "dma"])
def test_same_application_runs_on_every_backend(kind):
    runtime, process = make_runtime(kind)
    try:
        result = application(runtime)
    finally:
        runtime.shutdown()
        if process is not None and process.is_alive():  # pragma: no cover
            process.terminate()
    assert result["scalar"] == 42
    assert result["dot"] == pytest.approx(result["expected_dot"])
    assert result["doubled_ok"]


def test_results_identical_across_backends():
    outputs = {}
    for kind in ("local", "veo", "dma"):
        runtime, _ = make_runtime(kind)
        try:
            outputs[kind] = application(runtime)
        finally:
            runtime.shutdown()
    dots = {round(v["dot"], 12) for v in outputs.values()}
    assert len(dots) == 1
