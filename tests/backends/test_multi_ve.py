"""Tests for multi-VE offloading (several targets on one machine)."""

import numpy as np
import pytest

from repro.backends import DmaCommBackend, VeoCommBackend
from repro.errors import BackendError, RemoteExecutionError
from repro.ham import f2f
from repro.machine import AuroraMachine
from repro.offload import Runtime

from tests import apps

BACKENDS = {"veo": VeoCommBackend, "dma": DmaCommBackend}


@pytest.fixture(params=sorted(BACKENDS))
def rt4(request):
    machine = AuroraMachine(num_ves=4)
    runtime = Runtime(BACKENDS[request.param](machine))
    yield runtime
    runtime.shutdown()


class TestMultiVeTopology:
    def test_node_count(self, rt4):
        assert rt4.num_nodes() == 5
        assert rt4.targets() == [1, 2, 3, 4]

    def test_descriptors_name_distinct_ves(self, rt4):
        names = [rt4.get_node_descriptor(n).name for n in rt4.targets()]
        assert names == ["ve0", "ve1", "ve2", "ve3"]

    def test_explicit_ve_indices(self):
        machine = AuroraMachine(num_ves=4)
        backend = DmaCommBackend(machine, ve_indices=[2, 0])
        runtime = Runtime(backend)
        assert runtime.get_node_descriptor(1).name == "ve2"
        assert runtime.get_node_descriptor(2).name == "ve0"
        runtime.shutdown()

    def test_conflicting_index_args_rejected(self):
        machine = AuroraMachine(num_ves=2)
        with pytest.raises(BackendError):
            DmaCommBackend(machine, ve_index=0, ve_indices=[0, 1])

    def test_bad_ve_index_rejected(self):
        with pytest.raises(BackendError):
            DmaCommBackend(AuroraMachine(num_ves=1), ve_indices=[3])


class TestMultiVeExecution:
    def test_offloads_to_every_target(self, rt4):
        for node in rt4.targets():
            assert rt4.sync(node, f2f(apps.add, node, 100)) == node + 100

    def test_concurrent_offloads_across_ves(self, rt4):
        futures = {
            node: rt4.async_(node, f2f(apps.add, node, 0)) for node in rt4.targets()
        }
        assert {n: f.get() for n, f in futures.items()} == {1: 1, 2: 2, 3: 3, 4: 4}

    def test_buffers_are_per_ve(self, rt4):
        pointers = {}
        for node in rt4.targets():
            ptr = rt4.allocate(node, 16)
            rt4.put(np.full(16, float(node)), ptr)
            pointers[node] = ptr
        for node, ptr in pointers.items():
            assert rt4.sync(node, f2f(apps.sum_buffer, ptr)) == pytest.approx(16.0 * node)

    def test_cross_ve_buffer_rejected(self, rt4):
        ptr_on_2 = rt4.allocate(2, 8)
        with pytest.raises(RemoteExecutionError, match="node"):
            rt4.sync(1, f2f(apps.sum_buffer, ptr_on_2))

    def test_copy_between_ves_via_host(self, rt4):
        src = rt4.allocate(1, 32)
        dst = rt4.allocate(3, 32)
        rt4.put(np.arange(32.0), src)
        rt4.copy(src, dst)
        back = np.zeros(32)
        rt4.get(dst, back)
        np.testing.assert_array_equal(back, np.arange(32.0))

    def test_error_on_one_ve_does_not_affect_others(self, rt4):
        with pytest.raises(RemoteExecutionError):
            rt4.sync(2, f2f(apps.raise_value_error, "ve2 boom"))
        for node in rt4.targets():
            assert rt4.sync(node, f2f(apps.add, 1, node)) == 1 + node


class TestMultiVeOverlap:
    def test_kernels_run_in_parallel_across_ves(self):
        """Four 1 ms kernels on four VEs must take ~1 ms, not ~4 ms."""
        machine = AuroraMachine(num_ves=4)
        backend = DmaCommBackend(machine)
        backend.kernel_cost_fn = lambda functor: 1e-3
        runtime = Runtime(backend)
        sim = backend.sim
        start = sim.now
        futures = [
            runtime.async_(node, f2f(apps.empty_kernel)) for node in runtime.targets()
        ]
        for future in futures:
            future.get()
        elapsed = sim.now - start
        runtime.shutdown()
        assert elapsed < 2e-3  # parallel, not serialized (4 ms)

    def test_single_ve_serialises_same_load(self):
        machine = AuroraMachine(num_ves=1)
        backend = DmaCommBackend(machine)
        backend.kernel_cost_fn = lambda functor: 1e-3
        runtime = Runtime(backend)
        sim = backend.sim
        start = sim.now
        futures = [runtime.async_(1, f2f(apps.empty_kernel)) for _ in range(4)]
        for future in futures:
            future.get()
        elapsed = sim.now - start
        runtime.shutdown()
        assert elapsed > 3.9e-3  # one VE: kernels serialize
