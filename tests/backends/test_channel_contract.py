"""The Channel contract, parametrized over every backend.

Every backend is a *channel*: invocations carry process-unique
correlation ids, live in an id-keyed in-flight table bounded by the
window, and complete in **any** order — the application may consume
futures shuffled, and on a concurrent target the replies themselves
arrive out of request order. See ``docs/architecture.md``.
"""

from __future__ import annotations

import random
import socket
import threading
import time

import pytest

from repro.backends import (
    DmaCommBackend,
    FaultInjectingBackend,
    LocalBackend,
    ShmBackend,
    TcpBackend,
    VeoCommBackend,
    spawn_local_server,
    spawn_shm_server,
)
from repro.backends.base import DEFAULT_INFLIGHT_LIMIT
from repro.backends.tcp import OP_PING, OP_REPLY_BIT, _recv_frame, _send_frame
from repro.errors import BackendError, OffloadTimeoutError
from repro.ham import f2f
from repro.offload import Runtime
from repro.offload import api as offload_api

from tests import apps

BACKENDS = ["local", "faulty", "dma", "veo", "tcp", "shm"]


@pytest.fixture(params=BACKENDS)
def channel(request):
    """``(name, runtime, backend)`` for each conforming backend."""
    name = request.param
    if name == "local":
        backend = LocalBackend()
    elif name == "faulty":
        backend = FaultInjectingBackend(LocalBackend())
    elif name == "dma":
        backend = DmaCommBackend()
    elif name == "veo":
        backend = VeoCommBackend()
    elif name == "shm":
        process, segment = spawn_shm_server(workers=4)
        backend = ShmBackend(
            segment,
            alive_fn=process.is_alive,
            on_shutdown=lambda: process.join(timeout=5),
        )
    else:
        process, address = spawn_local_server(workers=4)
        backend = TcpBackend(
            address, on_shutdown=lambda: process.join(timeout=5)
        )
    runtime = Runtime(backend)
    yield name, runtime, backend
    runtime.shutdown()


class TestChannelContract:
    def test_shuffled_consumption_of_concurrent_invokes(self, channel):
        """N in-flight ``async_`` calls, futures consumed in shuffled
        order: every reply must land on *its* future, whatever the
        completion order."""
        _name, runtime, _backend = channel
        futures = [
            (i, runtime.async_(1, f2f(apps.add, i, 1000))) for i in range(16)
        ]
        random.Random(42).shuffle(futures)
        for i, future in futures:
            assert future.get() == i + 1000

    def test_correlation_ids_are_unique_and_released(self, channel):
        _name, runtime, _backend = channel
        futures = [runtime.async_(1, f2f(apps.add, i, i)) for i in range(8)]
        ids = [future.correlation_id for future in futures]
        assert all(isinstance(corr, int) for corr in ids)
        assert len(set(ids)) == len(ids)
        for future in futures:
            future.get()
        # Settled futures detach from their handles.
        assert all(future.correlation_id is None for future in futures)

    def test_window_bounds_inflight_invokes(self, channel):
        """With the window clamped to 2, the backend never holds more
        than 2 invocations in flight — ``post_invoke`` waits (or drives)
        until a slot frees up, and all results still come out right."""
        _name, runtime, backend = channel
        backend.set_inflight_limit(2)
        futures = []
        for i in range(6):
            futures.append(runtime.async_(1, f2f(apps.add, i, 7)))
            assert backend.inflight_count <= 2
        assert [future.get() for future in futures] == [i + 7 for i in range(6)]

    def test_default_window_limit(self, channel):
        _name, _runtime, backend = channel
        assert backend.window.limit == DEFAULT_INFLIGHT_LIMIT


class TestWindowConfiguration:
    def test_runtime_window_parameter_sets_limit(self):
        backend = LocalBackend()
        runtime = Runtime(backend, window=3)
        assert backend.window.limit == 3
        runtime.shutdown()

    def test_api_init_window_parameter(self):
        backend = LocalBackend()
        offload_api.init(backend, window=5)
        try:
            assert backend.window.limit == 5
        finally:
            offload_api.finalize()


def _start_wedge_server() -> tuple[str, int]:
    """A TCP target that completes the handshake, then never replies."""
    listener = socket.create_server(("127.0.0.1", 0))
    address = listener.getsockname()[:2]

    def run() -> None:
        try:
            conn, _peer = listener.accept()
            with conn:
                op, corr, _body = _recv_frame(conn)
                assert op == OP_PING
                _send_frame(conn, OP_PING | OP_REPLY_BIT, corr, b"")
                while _recv_frame(conn):
                    pass  # consume and stay silent forever
        except (OSError, BackendError):
            pass
        finally:
            listener.close()

    threading.Thread(target=run, daemon=True).start()
    return address


class TestTcpPipelining:
    def test_replies_complete_out_of_request_order(self):
        """A slow invocation posted first must not head-of-line block a
        fast one posted second: the worker pool executes them
        concurrently and the fast reply overtakes on the wire."""
        process, address = spawn_local_server(workers=2)
        backend = TcpBackend(
            address, on_shutdown=lambda: process.join(timeout=5)
        )
        runtime = Runtime(backend)
        slow = runtime.async_(1, f2f(apps.sleep_then, 0.8, "slow"))
        fast = runtime.async_(1, f2f(apps.sleep_then, 0.05, "fast"))
        assert fast.get(timeout=10.0) == "fast"
        assert not slow.test()  # the earlier request is still executing
        assert slow.get(timeout=10.0) == "slow"
        runtime.shutdown()

    def test_window_backpressure_keeps_pipeline_correct(self):
        process, address = spawn_local_server(workers=4)
        backend = TcpBackend(
            address, on_shutdown=lambda: process.join(timeout=5)
        )
        runtime = Runtime(backend, window=2)
        futures = []
        for i in range(8):
            futures.append(runtime.async_(1, f2f(apps.sleep_then, 0.02, i)))
            assert backend.inflight_count <= 2
        assert [future.get(timeout=10.0) for future in futures] == list(range(8))
        stats = backend.stats()
        assert stats["inflight_limit"] == 2
        assert stats["inflight"] == 0
        runtime.shutdown()

    @pytest.mark.slow_failure
    def test_full_window_fails_fast_when_target_is_silent(self):
        """Backpressure must respect the resilience deadline: with the
        window full against a wedged target, the next post raises
        within the window timeout instead of blocking forever."""
        address = _start_wedge_server()
        backend = TcpBackend(address, op_timeout=0.3)
        backend.set_inflight_limit(2)
        backend.set_window_timeout(0.2)
        runtime = Runtime(backend)
        runtime.async_(1, f2f(apps.add, 1, 1))
        runtime.async_(1, f2f(apps.add, 2, 2))
        assert backend.inflight_count == 2
        start = time.monotonic()
        with pytest.raises(OffloadTimeoutError, match="window full"):
            runtime.async_(1, f2f(apps.add, 3, 3))
        assert time.monotonic() - start < 2.0
        runtime.shutdown()
