"""Protocol edge cases: non-blocking probes, determinism, slack parsing."""

import pytest

from repro.backends import DmaCommBackend, VeoCommBackend
from repro.ham import f2f
from repro.offload import Runtime

from tests import apps


class TestNonBlockingProbe:
    def test_veo_test_costs_a_privileged_read(self):
        """future.test() on the VEO protocol performs one VEO flag read —
        the honest cost of polling through the privileged DMA."""
        backend = VeoCommBackend()
        backend.kernel_cost_fn = lambda functor: 5e-3  # long kernel
        runtime = Runtime(backend)
        sim = backend.sim
        future = runtime.async_(1, f2f(apps.empty_kernel))
        before = sim.now
        assert not future.test()
        elapsed = sim.now - before
        assert elapsed >= backend.timing.veo_read_base_latency * 0.9
        future.get()
        runtime.shutdown()

    def test_dma_test_is_cheap(self):
        backend = DmaCommBackend()
        backend.kernel_cost_fn = lambda functor: 5e-3
        runtime = Runtime(backend)
        sim = backend.sim
        future = runtime.async_(1, f2f(apps.empty_kernel))
        before = sim.now
        future.test()
        elapsed = sim.now - before
        # A local poll plus a jump to the next event — microseconds, not
        # the 100 µs a VEO-protocol probe costs.
        assert elapsed < 50e-6
        future.get()
        runtime.shutdown()


class TestDeterminism:
    @pytest.mark.parametrize("backend_cls", [VeoCommBackend, DmaCommBackend])
    def test_offload_cost_is_repeatable(self, backend_cls):
        """The simulator is deterministic: identical runs, identical times."""

        def run_once():
            runtime = Runtime(backend_cls())
            sim = runtime.backend.sim
            for _ in range(3):
                runtime.sync(1, f2f(apps.empty_kernel))
            start = sim.now
            for _ in range(5):
                runtime.sync(1, f2f(apps.add, 7, 8))
            elapsed = sim.now - start
            runtime.shutdown()
            return elapsed

        assert run_once() == run_once()

    def test_cost_independent_of_payload_content(self):
        """Equal-size messages cost equal time (content never leaks into
        timing)."""
        def cost(value):
            runtime = Runtime(DmaCommBackend())
            sim = runtime.backend.sim
            runtime.sync(1, f2f(apps.echo, value))
            start = sim.now
            runtime.sync(1, f2f(apps.echo, value))
            elapsed = sim.now - start
            runtime.shutdown()
            return elapsed

        assert cost(b"\x00" * 100) == cost(b"\xff" * 100)


class TestSlotSlackParsing:
    @pytest.mark.parametrize("backend_cls", [VeoCommBackend, DmaCommBackend])
    def test_short_message_after_long_one_in_same_slot(self, backend_cls):
        """Slot buffers retain stale bytes from longer earlier messages;
        length-prefixed parsing must never read the slack."""
        runtime = Runtime(backend_cls(num_slots=1))
        long_payload = b"x" * 900
        assert runtime.sync(1, f2f(apps.echo, long_payload)) == long_payload
        # Now a much shorter message through the same (dirty) slot.
        assert runtime.sync(1, f2f(apps.add, 2, 3)) == 5
        assert runtime.sync(1, f2f(apps.echo, b"y")) == b"y"
        runtime.shutdown()

    @pytest.mark.parametrize("backend_cls", [VeoCommBackend, DmaCommBackend])
    def test_alternating_sizes_many_rounds(self, backend_cls):
        runtime = Runtime(backend_cls(num_slots=2))
        for round_index in range(10):
            big = bytes([round_index]) * (500 + 37 * round_index)
            assert runtime.sync(1, f2f(apps.echo, big)) == big
            assert runtime.sync(1, f2f(apps.add, round_index, 1)) == round_index + 1
        runtime.shutdown()
