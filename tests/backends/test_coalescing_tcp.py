"""Adaptive coalescing on the real TCP wire.

The batching layer must be invisible to callers: same values, same
errors, same shutdown guarantees — while the transport stats prove the
batches actually happened and that no receiver thread exists anymore
(the reactor owns every socket).
"""

import threading
import time

import pytest

from repro.backends import TcpBackend, spawn_local_server
from repro.errors import BackendError
from repro.ham import f2f
from repro.offload import Runtime

from tests import apps

#: A policy that never flushes on its own once the pipeline is deep:
#: effectively infinite byte/frame/delay budgets, zero idle threshold.
STUCK = {"max_bytes": 1 << 30, "max_frames": 1 << 20,
         "max_delay_us": 60_000_000, "idle_depth": 0}


def make_runtime(batch):
    process, address = spawn_local_server()
    backend = TcpBackend(
        address, batch=batch, on_shutdown=lambda: process.join(timeout=5)
    )
    return process, Runtime(backend)


class TestBatchedSemantics:
    def test_pipelined_values_identical(self):
        process, runtime = make_runtime(batch=True)
        try:
            futures = [runtime.async_(1, f2f(apps.add, i, i)) for i in range(100)]
            assert [f.get() for f in futures] == [2 * i for i in range(100)]
            batch = runtime.backend.stats()["batch"]
            assert batch["frames_coalesced"] == 100
            assert batch["batches"] <= 100  # at least some coalescing
        finally:
            runtime.shutdown()
            if process.is_alive():  # pragma: no cover - cleanup safety
                process.terminate()

    def test_get_drains_stuck_batch(self):
        """A blocking get must flush the buffer it is waiting behind."""
        process, runtime = make_runtime(batch=STUCK)
        try:
            future = runtime.async_(1, f2f(apps.add, 20, 22))
            # Nothing trips the budgets: the frame sits in the buffer
            # until the drive path flushes it on our behalf.
            assert future.get(timeout=10.0) == 42
            reasons = runtime.backend.stats()["batch"]["flush_reasons"]
            assert reasons.get("drive") or reasons.get("deadline")
        finally:
            runtime.shutdown()
            if process.is_alive():  # pragma: no cover - cleanup safety
                process.terminate()

    def test_no_receiver_threads(self):
        process, runtime = make_runtime(batch=True)
        try:
            assert runtime.sync(1, f2f(apps.add, 1, 1)) == 2
            stats = runtime.backend.stats()
            assert stats["receiver_threads"] == 0
            assert stats["reactor"]["alive"]
            assert stats["reactor"]["registered_fds"] >= 1
            names = [t.name for t in threading.enumerate()]
            assert not any("tcp-receiver" in name for name in names)
            assert any("reactor" in name for name in names)
        finally:
            runtime.shutdown()
            if process.is_alive():  # pragma: no cover - cleanup safety
                process.terminate()

    def test_batch_disabled_still_works(self):
        process, runtime = make_runtime(batch=False)
        try:
            assert runtime.sync(1, f2f(apps.add, 2, 2)) == 4
            assert runtime.backend.stats()["batch"] is None
        finally:
            runtime.shutdown()
            if process.is_alive():  # pragma: no cover - cleanup safety
                process.terminate()


class TestShutdownDrain:
    def test_dead_peer_reports_stranded_batch(self):
        """Pending futures must learn how many frames never hit the wire."""
        process, runtime = make_runtime(batch=STUCK)
        backend = runtime.backend
        futures = [runtime.async_(1, f2f(apps.add, i, 1)) for i in range(3)]
        assert backend._coalescer.pending()[0] == 3  # all stuck in the buffer
        process.terminate()
        process.join(timeout=5)
        with pytest.raises(BackendError, match=r"dropped 3 coalesced frames"):
            futures[0].get(timeout=10.0)
        for future in futures[1:]:
            with pytest.raises(BackendError, match=r"\d+ bytes.*queued for send"):
                future.get(timeout=10.0)
        # Shutdown after the failure must stay clean.
        runtime.shutdown()

    def test_clean_shutdown_flushes_buffer(self):
        """Runtime.shutdown never strands a half-flushed batch."""
        process, runtime = make_runtime(batch=STUCK)
        backend = runtime.backend
        future = runtime.async_(1, f2f(apps.add, 1, 1))
        assert backend._coalescer.pending()[0] == 1
        assert future.get(timeout=10.0) == 2
        runtime.shutdown()
        assert backend._coalescer.pending() == (0, 0)
        if process.is_alive():  # pragma: no cover - cleanup safety
            process.terminate()


class TestIdleLatencyPath:
    def test_single_offload_flushes_immediately(self):
        """Depth <= idle_depth: no 200 µs tax on a lone request."""
        process, runtime = make_runtime(batch=True)
        try:
            start = time.monotonic()
            assert runtime.sync(1, f2f(apps.add, 1, 2)) == 3
            # Generous bound: the point is that nothing waited for a
            # coalescing deadline timer chain across 1 RTT.
            assert time.monotonic() - start < 2.0
            reasons = runtime.backend.stats()["batch"]["flush_reasons"]
            assert reasons.get("idle", 0) >= 1
        finally:
            runtime.shutdown()
            if process.is_alive():  # pragma: no cover - cleanup safety
                process.terminate()
