"""Tests for the standalone TCP target CLI."""

import re
import subprocess
import sys
import time

import pytest

from repro.backends import TcpBackend
from repro.ham import f2f
from repro.offload import Runtime


@pytest.fixture()
def server_process():
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.backends.target_main",
            "--port",
            "0",
            "--import",
            "tests.apps",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=".",
    )
    line = process.stdout.readline()
    match = re.search(r"listening on ([\d.]+):(\d+)", line)
    assert match, f"unexpected banner: {line!r}"
    yield process, (match.group(1), int(match.group(2)))
    if process.poll() is None:
        process.terminate()
    process.wait(timeout=10)


class TestTargetMain:
    def test_offload_against_cli_server(self, server_process):
        process, address = server_process
        # The CLI server only imported tests.apps, so its handler-key
        # table covers exactly those types. The host must use a matching
        # catalog — the paper's "same application on both sides" rule
        # (the test suite's global catalog has many more offloadables).
        from repro.ham.registry import Catalog, type_name_of
        from tests import apps

        catalog = Catalog()
        for fn in (
            apps.empty_kernel,
            apps.add,
            apps.echo,
            apps.inner_product,
            apps.scale_buffer,
            apps.sleep_then,
            apps.raise_value_error,
            apps.sum_buffer,
        ):
            catalog.register(fn, name=type_name_of(fn))
        runtime = Runtime(TcpBackend(address, catalog=catalog))
        assert runtime.sync(1, f2f(apps.add, 20, 22, catalog=catalog)) == 42
        runtime.shutdown()
        assert process.wait(timeout=10) == 0

    def test_bad_import_exits_nonzero(self):
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.backends.target_main",
                "--import",
                "no.such.module.exists",
            ],
            capture_output=True,
            text=True,
            timeout=30,
        )
        assert result.returncode == 2
        assert "cannot import" in result.stderr
