"""Tests for the shared-memory backend (SPSC rings, forked target)."""

import os

import numpy as np
import pytest

from repro.backends import ShmBackend, create_backend, spawn_shm_server
from repro.backends.shm import DEFAULT_RING_CAPACITY, ShmSegment
from repro.errors import (
    BackendError,
    OffloadTimeoutError,
    RemoteExecutionError,
)
from repro.ham import f2f
from repro.offload import Runtime
from repro.telemetry import recorder as telemetry

from tests import apps


@pytest.fixture()
def rt():
    process, segment = spawn_shm_server(workers=4)
    backend = ShmBackend(
        segment,
        alive_fn=process.is_alive,
        on_shutdown=lambda: process.join(timeout=5),
    )
    runtime = Runtime(backend)
    yield runtime
    runtime.shutdown()
    if process.is_alive():  # pragma: no cover - cleanup safety
        process.terminate()


class TestShmOffload:
    def test_sync_roundtrip(self, rt):
        assert rt.sync(1, f2f(apps.add, 40, 2)) == 42

    def test_many_sequential_offloads(self, rt):
        for i in range(50):
            assert rt.sync(1, f2f(apps.add, i, 1)) == i + 1

    def test_async_pipeline(self, rt):
        futures = [rt.async_(1, f2f(apps.add, i, i)) for i in range(10)]
        assert [f.get() for f in futures] == [2 * i for i in range(10)]

    def test_async_out_of_order_get(self, rt):
        f1 = rt.async_(1, f2f(apps.add, 1, 0))
        f2 = rt.async_(1, f2f(apps.add, 2, 0))
        assert f2.get() == 2  # consuming the later future first
        assert f1.get() == 1

    def test_out_of_request_order_completion(self, rt):
        """The worker pool overlaps kernels, so a fast invoke posted
        second overtakes a slow one posted first."""
        slow = rt.async_(1, f2f(apps.sleep_then, 0.6, "slow"))
        fast = rt.async_(1, f2f(apps.sleep_then, 0.02, "fast"))
        assert fast.get(timeout=10.0) == "fast"
        assert not slow.test()
        assert slow.get(timeout=10.0) == "slow"

    def test_remote_exception(self, rt):
        with pytest.raises(RemoteExecutionError, match="shm boom"):
            rt.sync(1, f2f(apps.raise_value_error, "shm boom"))
        # The rings survive the error.
        assert rt.sync(1, f2f(apps.add, 1, 1)) == 2

    def test_numpy_payload(self, rt):
        arr = np.arange(1000.0)
        back = rt.sync(1, f2f(apps.echo, arr))
        np.testing.assert_array_equal(back, arr)

    def test_ping(self, rt):
        rtt = rt.backend.ping(1)
        assert 0.0 < rtt < 5.0

    def test_stats(self, rt):
        rt.sync(1, f2f(apps.add, 1, 2))
        stats = rt.backend.stats()
        assert stats["backend"] == "shm"
        assert stats["invokes_posted"] >= 1
        assert stats["bytes_sent"] > 0
        assert stats["bytes_received"] > 0
        assert stats["ring_capacity"] == DEFAULT_RING_CAPACITY


class TestShmMemory:
    def test_put_get_roundtrip(self, rt):
        data = np.random.default_rng(3).random(256)
        ptr = rt.allocate(1, 256)
        rt.put(data, ptr)
        back = np.zeros(256)
        rt.get(ptr, back)
        np.testing.assert_array_equal(back, data)

    def test_buffer_argument_lives_on_server(self, rt):
        ptr = rt.allocate(1, 32)
        rt.put(np.full(32, 2.0), ptr)
        rt.sync(1, f2f(apps.scale_buffer, ptr, 10.0))
        assert rt.sync(1, f2f(apps.sum_buffer, ptr)) == pytest.approx(32 * 20.0)

    def test_transfer_larger_than_ring_is_chunked(self, rt):
        """A bulk transfer bigger than a ring must flow through in
        chunks rather than fail or wedge the ring."""
        n = (2 * DEFAULT_RING_CAPACITY) // 8 + 1111
        data = np.random.default_rng(7).random(n)
        ptr = rt.allocate(1, n)
        rt.put(data, ptr)
        back = np.zeros(n)
        rt.get(ptr, back)
        np.testing.assert_array_equal(back, data)


class TestShmLifecycle:
    def test_attach_by_segment_name(self):
        """A host can attach with just the segment name (the printed
        handle of a standalone ``target_main --transport shm``)."""
        process, segment = spawn_shm_server(workers=2)
        backend = ShmBackend(
            segment.name, on_shutdown=lambda: process.join(timeout=5)
        )
        runtime = Runtime(backend)
        try:
            assert runtime.sync(1, f2f(apps.add, 2, 3)) == 5
        finally:
            runtime.shutdown()
        # The spawning side still owns the segment object; release it.
        segment.close()
        segment.unlink()

    def test_shutdown_unlinks_segment(self):
        process, segment = spawn_shm_server(workers=2)
        name = segment.name
        backend = ShmBackend(
            segment,
            alive_fn=process.is_alive,
            on_shutdown=lambda: process.join(timeout=5),
        )
        Runtime(backend).shutdown()
        assert not os.path.exists(f"/dev/shm/{name}")
        assert not process.is_alive()

    def test_shutdown_is_idempotent(self):
        process, segment = spawn_shm_server(workers=2)
        backend = ShmBackend(
            segment,
            alive_fn=process.is_alive,
            on_shutdown=lambda: process.join(timeout=5),
        )
        backend.shutdown()
        backend.shutdown()
        assert not process.is_alive()

    def test_descriptor_names_segment(self):
        process, segment = spawn_shm_server(workers=2)
        backend = ShmBackend(
            segment,
            alive_fn=process.is_alive,
            on_shutdown=lambda: process.join(timeout=5),
        )
        try:
            assert backend.num_nodes() == 2
            descriptor = backend.descriptor(1)
            assert segment.name in descriptor.name
        finally:
            backend.shutdown()

    def test_create_backend_factory(self):
        backend = create_backend("shm", workers=2)
        runtime = Runtime(backend)
        try:
            assert runtime.sync(1, f2f(apps.add, 20, 22)) == 42
        finally:
            runtime.shutdown()

    def test_foreign_segment_rejected(self):
        from multiprocessing import resource_tracker, shared_memory

        raw = shared_memory.SharedMemory(create=True, size=8192)
        try:
            with pytest.raises(BackendError, match="not a HAM shm"):
                ShmSegment.attach(raw.name)
        finally:
            # The failed attach deliberately unregistered the name from
            # this process's resource tracker; restore the creator's
            # registration so unlink() accounting stays balanced.
            resource_tracker.register(raw._name, "shared_memory")
            raw.close()
            raw.unlink()


class TestShmBackpressure:
    @pytest.mark.slow_failure
    def test_full_window_fails_fast_when_target_is_busy(self):
        """With the window full of still-executing invokes, the next
        post must raise within the window timeout, not block forever."""
        process, segment = spawn_shm_server(workers=1)
        backend = ShmBackend(
            segment,
            alive_fn=process.is_alive,
            on_shutdown=lambda: process.join(timeout=10),
        )
        backend.set_inflight_limit(2)
        backend.set_window_timeout(0.2)
        runtime = Runtime(backend)
        try:
            runtime.async_(1, f2f(apps.sleep_then, 1.0, "a"))
            runtime.async_(1, f2f(apps.sleep_then, 1.0, "b"))
            with pytest.raises(OffloadTimeoutError, match="window full"):
                runtime.async_(1, f2f(apps.add, 3, 3))
        finally:
            runtime.shutdown()


class TestShmTelemetry:
    def test_fetch_target_telemetry(self):
        telemetry.enable()
        try:
            process, segment = spawn_shm_server(workers=2)
            backend = ShmBackend(
                segment,
                alive_fn=process.is_alive,
                on_shutdown=lambda: process.join(timeout=5),
            )
            runtime = Runtime(backend)
            try:
                runtime.sync(1, f2f(apps.add, 1, 2))
                records = backend.fetch_target_telemetry()
                assert isinstance(records, list)
                names = {record.name for record in records}
                assert "offload.execute" in names
                assert "shm.server.reply" in names
            finally:
                runtime.shutdown()
        finally:
            telemetry.disable()

    def test_host_spans_cover_offload_phases(self):
        telemetry.enable()
        try:
            process, segment = spawn_shm_server(workers=2)
            backend = ShmBackend(
                segment,
                alive_fn=process.is_alive,
                on_shutdown=lambda: process.join(timeout=5),
            )
            runtime = Runtime(backend)
            try:
                runtime.sync(1, f2f(apps.add, 1, 2))
            finally:
                runtime.shutdown()
            names = {record.name for record in telemetry.get().drain()}
            assert "offload.enqueue" in names
            assert "offload.reply" in names
        finally:
            telemetry.disable()
