"""Cluster with multiple VEs per node: addressing, balancing, overlap."""

import numpy as np
import pytest

from repro.backends import ClusterBackend
from repro.cluster import AuroraCluster
from repro.ham import f2f
from repro.offload import Runtime
from repro.workloads import run_balanced

from tests import apps


@pytest.fixture()
def rt():
    cluster = AuroraCluster(num_nodes=2, ves_per_node=2)
    runtime = Runtime(ClusterBackend(cluster))
    yield runtime
    runtime.shutdown()


class TestMultiVePerNode:
    def test_enumeration(self, rt):
        names = [rt.get_node_descriptor(n).name for n in rt.targets()]
        assert names == ["node0.ve0", "node0.ve1", "node1.ve0", "node1.ve1"]

    def test_all_targets_execute(self, rt):
        for node in rt.targets():
            assert rt.sync(node, f2f(apps.add, node, 0)) == node

    def test_remote_kernels_overlap_with_local(self, rt):
        backend = rt.backend
        backend.kernel_cost_fn = lambda functor: 500e-6
        sim = backend.sim
        start = sim.now
        futures = [rt.async_(n, f2f(apps.empty_kernel)) for n in rt.targets()]
        for future in futures:
            future.get()
        elapsed = sim.now - start
        # Four 500 µs kernels across four VEs on two nodes: parallel.
        assert elapsed < 1.2e-3

    def test_load_balancing_across_the_cluster(self, rt):
        backend = rt.backend
        backend.kernel_cost_fn = lambda functor: 100e-6
        result = run_balanced(
            rt,
            list(range(24)),
            make_functor=lambda t: f2f(apps.add, t, 0),
            host_execute=lambda t: backend._advance(150e-6) or t,
            now=lambda: backend.sim.now,
        )
        assert result.total_tasks == 24
        # Every VE (local and remote) took part.
        assert all(count > 0 for count in result.target_tasks.values())

    def test_buffers_stay_node_local(self, rt):
        pointers = {}
        for node in rt.targets():
            ptr = rt.allocate(node, 8)
            rt.put(np.full(8, float(node)), ptr)
            pointers[node] = ptr
        for node, ptr in pointers.items():
            assert rt.sync(node, f2f(apps.sum_buffer, ptr)) == pytest.approx(8.0 * node)
