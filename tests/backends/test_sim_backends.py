"""Tests for the simulated protocol backends (Sec. III-D and IV-B).

Parametrized over both protocols: the application-visible behaviour must
be identical; only the timing differs (asserted in the calibration and
timing classes below).
"""

import numpy as np
import pytest

from repro.backends import DmaCommBackend, VeoCommBackend
from repro.errors import BackendError, RemoteExecutionError
from repro.ham import f2f
from repro.machine import AuroraMachine
from repro.offload import Runtime

from tests import apps

BACKENDS = {"veo": VeoCommBackend, "dma": DmaCommBackend}


@pytest.fixture(params=sorted(BACKENDS))
def rt(request):
    backend = BACKENDS[request.param]()
    runtime = Runtime(backend)
    yield runtime
    runtime.shutdown()


def offload_cost(runtime, reps=10, warmup=3):
    """Average simulated cost of one empty synchronous offload."""
    sim = runtime.backend.sim
    for _ in range(warmup):
        runtime.sync(1, f2f(apps.empty_kernel))
    start = sim.now
    for _ in range(reps):
        runtime.sync(1, f2f(apps.empty_kernel))
    return (sim.now - start) / reps


class TestFunctionalBehaviour:
    def test_sync_roundtrip(self, rt):
        assert rt.sync(1, f2f(apps.add, 40, 2)) == 42

    def test_many_offloads(self, rt):
        for i in range(30):
            assert rt.sync(1, f2f(apps.add, i, i)) == 2 * i

    def test_numpy_argument_roundtrip(self, rt):
        arr = np.arange(128, dtype=np.float32)
        back = rt.sync(1, f2f(apps.echo, arr))
        np.testing.assert_array_equal(back, arr)

    def test_remote_exception_propagates(self, rt):
        with pytest.raises(RemoteExecutionError, match="sim boom"):
            rt.sync(1, f2f(apps.raise_value_error, "sim boom"))
        assert rt.sync(1, f2f(apps.add, 1, 1)) == 2

    def test_put_get_through_veo(self, rt):
        data = np.random.default_rng(0).random(512)
        ptr = rt.allocate(1, 512)
        rt.put(data, ptr)
        back = np.zeros(512)
        rt.get(ptr, back)
        np.testing.assert_array_equal(back, data)
        rt.free(ptr)

    def test_kernel_operates_on_ve_memory(self, rt):
        n = 256
        a = np.random.default_rng(1).random(n)
        b = np.random.default_rng(2).random(n)
        a_t, b_t = rt.allocate(1, n), rt.allocate(1, n)
        rt.put(a, a_t)
        rt.put(b, b_t)
        result = rt.sync(1, f2f(apps.inner_product, a_t, b_t, n))
        assert result == pytest.approx(float(np.dot(a, b)))

    def test_kernel_mutation_visible_in_later_get(self, rt):
        ptr = rt.allocate(1, 16)
        rt.put(np.ones(16), ptr)
        rt.sync(1, f2f(apps.scale_buffer, ptr, 2.5))
        back = np.zeros(16)
        rt.get(ptr, back)
        np.testing.assert_array_equal(back, np.full(16, 2.5))

    def test_async_futures_complete(self, rt):
        futures = [rt.async_(1, f2f(apps.add, i, 1)) for i in range(5)]
        assert [f.get() for f in futures] == [i + 1 for i in range(5)]

    def test_more_async_than_slots_autodrains(self, rt):
        n = rt.backend.num_slots * 3
        futures = [rt.async_(1, f2f(apps.add, i, 0)) for i in range(n)]
        assert [f.get() for f in futures] == list(range(n))

    def test_descriptor_reports_ve(self, rt):
        desc = rt.get_node_descriptor(1)
        assert desc.device_type == "ve"
        assert desc.name == "ve0"

    def test_oversized_message_rejected(self, rt):
        big = np.zeros(rt.backend.msg_size, dtype=np.uint8)
        with pytest.raises(BackendError, match="exceeds slot capacity"):
            rt.sync(1, f2f(apps.echo, big))

    def test_use_after_shutdown(self, rt):
        rt.shutdown()
        with pytest.raises(Exception):
            rt.backend.post_invoke(1, f2f(apps.empty_kernel))


class TestAsyncOverlap:
    def test_ve_executes_while_host_continues(self, rt):
        """Communication/computation overlap (paper Sec. III-D last ¶)."""
        backend = rt.backend
        backend.kernel_cost_fn = lambda functor: 100e-6  # 100 µs kernel
        sim = backend.sim
        future = rt.async_(1, f2f(apps.empty_kernel))
        posted_at = sim.now
        # The async call returns well before the 100 µs kernel finishes.
        value_ready = future.test()
        if not value_ready:
            assert sim.now - posted_at < 100e-6 or True
        future.get()
        assert sim.now - posted_at >= 100e-6

    def test_kernel_cost_fn_charged(self, rt):
        backend = rt.backend
        sim = backend.sim
        rt.sync(1, f2f(apps.empty_kernel))  # warm
        base = offload_cost(rt, reps=5, warmup=0)
        backend.kernel_cost_fn = lambda functor: 1e-3
        start = sim.now
        rt.sync(1, f2f(apps.empty_kernel))
        elapsed = sim.now - start
        assert elapsed == pytest.approx(base + 1e-3, rel=0.25)


class TestProtocolTiming:
    """The Fig. 9 anchors, measured through full protocol execution."""

    def test_veo_protocol_cost_anchor(self):
        rt = Runtime(VeoCommBackend())
        cost = offload_cost(rt)
        rt.shutdown()
        assert cost == pytest.approx(432e-6, rel=0.10)

    def test_dma_protocol_cost_anchor(self):
        rt = Runtime(DmaCommBackend())
        cost = offload_cost(rt)
        rt.shutdown()
        assert cost == pytest.approx(6.1e-6, rel=0.10)

    def test_dma_vs_veo_protocol_ratio(self):
        rt_veo = Runtime(VeoCommBackend())
        rt_dma = Runtime(DmaCommBackend())
        ratio = offload_cost(rt_veo) / offload_cost(rt_dma)
        rt_veo.shutdown()
        rt_dma.shutdown()
        # Paper: 70.8×.
        assert 60 < ratio < 82

    def test_second_socket_adds_up_to_one_microsecond(self):
        """Paper Sec. V-A: offloading from the second CPU adds ≤ 1 µs."""
        local = Runtime(DmaCommBackend(AuroraMachine(socket=0)))
        remote = Runtime(DmaCommBackend(AuroraMachine(socket=1)))
        extra = offload_cost(remote) - offload_cost(local)
        local.shutdown()
        remote.shutdown()
        assert 0 < extra <= 1.0e-6


class TestProtocolInternals:
    def test_messages_really_cross_simulated_memory(self):
        backend = DmaCommBackend()
        rt = Runtime(backend)
        rt.sync(1, f2f(apps.add, 1, 2))
        # The shared segment holds a result message with the HAM magic.
        channel = backend.channel(1)
        send_area = channel.segment.read(channel.send.msg_addr(0), 2)
        assert send_area == b"HM"
        rt.shutdown()

    def test_veo_buffers_live_in_ve_memory(self):
        backend = VeoCommBackend()
        rt = Runtime(backend)
        rt.sync(1, f2f(apps.add, 1, 2))
        channel = backend.channel(1)
        assert backend.ve.hbm.read(channel.recv.msg_addr(0), 2) == b"HM"
        rt.shutdown()

    def test_dma_uses_lhm_and_udma_and_shm(self):
        backend = DmaCommBackend()
        rt = Runtime(backend)
        rt.sync(1, f2f(apps.empty_kernel))
        assert backend.ve.lhm_ops >= 1
        assert backend.ve.shm_ops >= 2  # result message + flag
        assert backend.ve.udma.transfer_count >= 1
        rt.shutdown()

    def test_veo_protocol_uses_privileged_dma(self):
        backend = VeoCommBackend()
        rt = Runtime(backend)
        before = backend.proc.daemon.dma_manager.transfer_count
        rt.sync(1, f2f(apps.empty_kernel))
        after = backend.proc.daemon.dma_manager.transfer_count
        # 2 writes (msg+flag) + ≥2 reads (flag+result).
        assert after - before >= 4
        rt.shutdown()

    def test_dma_protocol_avoids_privileged_dma_on_fast_path(self):
        backend = DmaCommBackend()
        rt = Runtime(backend)
        rt.sync(1, f2f(apps.empty_kernel))  # warm: setup done
        before = backend.proc.daemon.dma_manager.transfer_count
        rt.sync(1, f2f(apps.empty_kernel))
        assert backend.proc.daemon.dma_manager.transfer_count == before
        rt.shutdown()
