"""Tests for the TCP/IP backend (real sockets, forked target process)."""

import time

import numpy as np
import pytest

from repro.backends import TcpBackend, spawn_local_server
from repro.errors import RemoteExecutionError
from repro.ham import f2f
from repro.offload import Runtime

from tests import apps


@pytest.fixture()
def rt():
    process, address = spawn_local_server()
    backend = TcpBackend(address, on_shutdown=lambda: process.join(timeout=5))
    runtime = Runtime(backend)
    yield runtime
    runtime.shutdown()
    if process.is_alive():  # pragma: no cover - cleanup safety
        process.terminate()


class TestTcpOffload:
    def test_sync_roundtrip(self, rt):
        assert rt.sync(1, f2f(apps.add, 40, 2)) == 42

    def test_many_sequential_offloads(self, rt):
        for i in range(50):
            assert rt.sync(1, f2f(apps.add, i, 1)) == i + 1

    def test_async_pipeline(self, rt):
        futures = [rt.async_(1, f2f(apps.add, i, i)) for i in range(10)]
        assert [f.get() for f in futures] == [2 * i for i in range(10)]

    def test_async_out_of_order_get(self, rt):
        f1 = rt.async_(1, f2f(apps.add, 1, 0))
        f2 = rt.async_(1, f2f(apps.add, 2, 0))
        assert f2.get() == 2  # consuming the later future first
        assert f1.get() == 1

    def test_future_test_nonblocking(self, rt):
        future = rt.async_(1, f2f(apps.empty_kernel))
        # Must eventually turn true without calling get() — the receiver
        # thread completes the handle on its own.
        deadline = time.monotonic() + 10.0
        while not future.test() and time.monotonic() < deadline:
            time.sleep(0.001)
        assert future.test()

    def test_remote_exception(self, rt):
        with pytest.raises(RemoteExecutionError, match="tcp boom"):
            rt.sync(1, f2f(apps.raise_value_error, "tcp boom"))
        # Connection survives the error.
        assert rt.sync(1, f2f(apps.add, 1, 1)) == 2

    def test_numpy_payload(self, rt):
        arr = np.arange(1000.0)
        back = rt.sync(1, f2f(apps.echo, arr))
        np.testing.assert_array_equal(back, arr)


class TestTcpMemory:
    def test_put_get_roundtrip(self, rt):
        data = np.random.default_rng(3).random(256)
        ptr = rt.allocate(1, 256)
        rt.put(data, ptr)
        back = np.zeros(256)
        rt.get(ptr, back)
        np.testing.assert_array_equal(back, data)

    def test_buffer_argument_lives_on_server(self, rt):
        ptr = rt.allocate(1, 32)
        rt.put(np.full(32, 2.0), ptr)
        rt.sync(1, f2f(apps.scale_buffer, ptr, 10.0))
        assert rt.sync(1, f2f(apps.sum_buffer, ptr)) == pytest.approx(32 * 20.0)

    def test_free_then_use_fails_remotely(self, rt):
        ptr = rt.allocate(1, 8)
        rt.free(ptr)
        with pytest.raises(RemoteExecutionError):
            rt.sync(1, f2f(apps.sum_buffer, ptr))

    def test_interleaved_async_and_memory_ops(self, rt):
        # Memory ops while invokes are in flight must not desync replies.
        ptr = rt.allocate(1, 16)
        future = rt.async_(1, f2f(apps.add, 5, 5))
        rt.put(np.ones(16), ptr)
        assert rt.sync(1, f2f(apps.sum_buffer, ptr)) == pytest.approx(16.0)
        assert future.get() == 10


class TestTcpLifecycle:
    def test_descriptor(self, rt):
        desc = rt.get_node_descriptor(1)
        assert desc.device_type == "cpu"
        assert desc.name.startswith("tcp:")

    def test_shutdown_joins_server(self):
        process, address = spawn_local_server()
        backend = TcpBackend(address, on_shutdown=lambda: process.join(timeout=5))
        runtime = Runtime(backend)
        runtime.sync(1, f2f(apps.empty_kernel))
        runtime.shutdown()
        assert not process.is_alive()
