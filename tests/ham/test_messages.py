"""Tests for the wire format, functors and the generic handler."""

import numpy as np
import pytest

from repro.errors import HamError, RemoteExecutionError, SerializationError
from repro.ham import (
    MSG_INVOKE,
    MSG_RESULT,
    build_message,
    f2f,
    parse_message,
)
from repro.ham.execution import build_invoke, execute_message, unpack_result
from repro.ham.functor import Functor
from repro.ham.registry import Catalog, ProcessImage


@pytest.fixture()
def catalog():
    cat = Catalog()

    def add(a, b):
        return a + b

    def dot(x, y):
        return float(np.dot(x, y))

    def boom():
        raise ValueError("target exploded")

    cat.register(add, name="app::add")
    cat.register(dot, name="app::dot")
    cat.register(boom, name="app::boom")
    return cat


@pytest.fixture()
def images(catalog):
    return ProcessImage("vh", catalog), ProcessImage("ve", catalog)


class TestWireFormat:
    def test_roundtrip(self):
        data = build_message(MSG_INVOKE, 7, 123, b"payload")
        header, payload = parse_message(data)
        assert header.kind == MSG_INVOKE
        assert header.handler_key == 7
        assert header.msg_id == 123
        assert payload == b"payload"

    def test_bad_magic(self):
        data = bytearray(build_message(MSG_RESULT, 0, 0, b""))
        data[0] = 0
        with pytest.raises(SerializationError, match="magic"):
            parse_message(bytes(data))

    def test_truncated_header(self):
        with pytest.raises(SerializationError, match="truncated"):
            parse_message(b"HM\x01")

    def test_truncated_payload(self):
        data = build_message(MSG_INVOKE, 0, 0, b"full payload")
        with pytest.raises(SerializationError, match="truncated"):
            parse_message(data[:-3])

    def test_invalid_kind(self):
        with pytest.raises(SerializationError):
            build_message(99, 0, 0, b"")

    def test_negative_ids(self):
        with pytest.raises(SerializationError):
            build_message(MSG_INVOKE, -1, 0, b"")


class TestHeaderVersions:
    """Version-1 / version-2 interop: trace context on the wire."""

    def test_untraced_message_stays_version_1(self):
        from repro.ham.message import HEADER_SIZE

        data = build_message(MSG_INVOKE, 7, 1, b"x")
        assert len(data) == HEADER_SIZE + 1
        assert data[2] == 1  # version byte

    def test_traced_message_uses_version_2(self):
        from repro.ham.message import HEADER_SIZE_V2

        data = build_message(MSG_INVOKE, 7, 1, b"x", trace_id=0xFEED,
                             parent_span_id=42, trace_flags=1)
        assert len(data) == HEADER_SIZE_V2 + 1
        assert data[2] == 2

    def test_v2_round_trip_preserves_trace_fields(self):
        trace_id = (1 << 127) | 0xCAFE
        data = build_message(MSG_RESULT, 0, 5, b"p", trace_id=trace_id,
                             parent_span_id=1 << 63, trace_flags=1)
        header, payload = parse_message(data)
        assert payload == b"p"
        assert header.trace_id == trace_id
        assert header.parent_span_id == 1 << 63
        assert header.trace_flags == 1

    def test_v1_message_parses_with_zeroed_trace_fields(self):
        header, _ = parse_message(build_message(MSG_INVOKE, 7, 1, b""))
        assert header.trace_id == 0
        assert header.parent_span_id == 0
        assert header.trace_flags == 0

    def test_v2_truncated_after_v1_header_rejected(self):
        data = build_message(MSG_INVOKE, 7, 1, b"", trace_id=1)
        from repro.ham.message import HEADER_SIZE

        with pytest.raises(SerializationError, match="truncated"):
            parse_message(data[:HEADER_SIZE])

    def test_unsupported_version_rejected(self):
        data = bytearray(build_message(MSG_INVOKE, 7, 1, b""))
        data[2] = 9
        with pytest.raises(SerializationError, match="version"):
            parse_message(bytes(data))

    def test_out_of_range_trace_fields_rejected(self):
        with pytest.raises(SerializationError, match="128-bit"):
            build_message(MSG_INVOKE, 0, 0, b"", trace_id=1 << 128)
        with pytest.raises(SerializationError, match="64 bits"):
            build_message(MSG_INVOKE, 0, 0, b"", trace_id=1,
                          parent_span_id=1 << 64)


class TestFunctor:
    def test_f2f_requires_registration(self, catalog):
        def unregistered():
            pass

        with pytest.raises(HamError, match="not offloadable"):
            f2f(unregistered, catalog=catalog)

    def test_args_roundtrip_mixed_types(self):
        functor = Functor("t", (1, "two", np.arange(3.0), {"k": None}))
        args, kwargs = Functor.deserialize_args(functor.serialize_args())
        assert args[0] == 1 and args[1] == "two" and args[3] == {"k": None}
        np.testing.assert_array_equal(args[2], np.arange(3.0))
        assert kwargs == {}

    def test_kwargs_roundtrip(self):
        functor = Functor("t", (1,), (("beta", 2.0), ("alpha", np.arange(2.0))))
        args, kwargs = Functor.deserialize_args(functor.serialize_args())
        assert args == (1,)
        assert kwargs["beta"] == 2.0
        np.testing.assert_array_equal(kwargs["alpha"], np.arange(2.0))

    def test_local_execute(self, catalog):
        functor = Functor("app::add", (2, 3))
        assert functor.execute(catalog) == 5

    def test_local_execute_with_kwargs(self, catalog):
        functor = Functor("app::add", (2,), (("b", 40),))
        assert functor.execute(catalog) == 42

    def test_empty_args(self):
        functor = Functor("t", ())
        assert Functor.deserialize_args(functor.serialize_args()) == ((), {})


class TestExecuteMessage:
    def test_invoke_result_roundtrip(self, catalog, images):
        host, target = images
        functor = Functor("app::add", (20, 22))
        invoke = build_invoke(host, functor, msg_id=9)
        reply, keep_running = execute_message(target, invoke)
        assert keep_running
        msg_id, value = unpack_result(reply)
        assert (msg_id, value) == (9, 42)

    def test_v1_invoke_executes(self, catalog, images):
        # Outside any trace, build_invoke emits the compact v1 header —
        # and a v1 message (e.g. from a pre-tracing peer) must execute.
        host, target = images
        invoke = build_invoke(host, Functor("app::add", (1, 2)), msg_id=3)
        assert invoke[2] == 1  # version byte
        reply, _keep = execute_message(target, invoke)
        assert unpack_result(reply) == (3, 3)
        assert reply[2] == 1  # untraced reply stays v1 too

    def test_traced_invoke_propagates_context_to_reply(self, catalog, images):
        from repro.telemetry import context as trace_context

        host, target = images
        ctx = trace_context.new_trace()
        with trace_context.activate(ctx):
            invoke = build_invoke(host, Functor("app::add", (1, 2)), msg_id=3)
        assert invoke[2] == 2
        header, _ = parse_message(invoke)
        assert header.trace_id == ctx.trace_id
        reply, _keep = execute_message(target, invoke)
        reply_header, _ = parse_message(reply)
        assert reply_header.trace_id == ctx.trace_id
        assert unpack_result(reply) == (3, 3)

    def test_numpy_args(self, catalog, images):
        host, target = images
        x = np.arange(10.0)
        functor = Functor("app::dot", (x, x))
        reply, _ = execute_message(target, build_invoke(host, functor, 1))
        _, value = unpack_result(reply)
        assert value == pytest.approx(float(np.dot(x, x)))

    def test_remote_exception_shipped_back(self, catalog, images):
        host, target = images
        invoke = build_invoke(host, Functor("app::boom", ()), 5)
        reply, keep_running = execute_message(target, invoke)
        assert keep_running  # errors must not kill the message loop
        with pytest.raises(RemoteExecutionError, match="target exploded") as excinfo:
            unpack_result(reply)
        assert "ValueError" in excinfo.value.remote_traceback

    def test_shutdown_message(self, catalog, images):
        host, target = images
        shutdown = build_message(
            kind=4, handler_key=0, msg_id=77, payload=b""
        )
        # Build a proper shutdown with serialized empty payload.
        from repro.ham.message import MSG_SHUTDOWN

        shutdown = build_message(MSG_SHUTDOWN, 0, 77, b"")
        reply, keep_running = execute_message(target, shutdown)
        assert not keep_running
        msg_id, value = unpack_result(reply)
        assert msg_id == 77 and value is None

    def test_resolver_applied(self, catalog, images):
        host, target = images
        invoke = build_invoke(host, Functor("app::add", ("a", "b")), 2)
        reply, _ = execute_message(
            target, invoke, resolver=lambda arg: arg.upper()
        )
        _, value = unpack_result(reply)
        assert value == "AB"

    def test_result_message_rejected_by_target(self, catalog, images):
        _host, target = images
        bogus = build_message(MSG_RESULT, 0, 0, b"")
        with pytest.raises(SerializationError, match="non-invoke"):
            execute_message(target, bogus)

    def test_unknown_handler_key_becomes_error_reply(self, catalog, images):
        host, target = images
        functor = Functor("app::add", (1, 2))
        invoke = bytearray(build_invoke(host, functor, 3))
        # Corrupt the key field (offset 4, 8 bytes little-endian).
        invoke[4:12] = (10_000).to_bytes(8, "little")
        reply, keep_running = execute_message(target, bytes(invoke))
        assert keep_running
        with pytest.raises(RemoteExecutionError, match="handler key"):
            unpack_result(reply)
