"""Tests for the HAM registry and cross-image key translation (Fig. 6)."""

import random

import pytest

from repro.errors import HamError, HandlerKeyError
from repro.ham.registry import Catalog, ProcessImage, offloadable, type_name_of


def make_catalog(names):
    """Build a catalog with one distinct function per name."""
    catalog = Catalog()
    for name in names:
        catalog.register((lambda n: (lambda: n))(name), name=name)
    return catalog


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog()

        def fn():
            return 1

        name = catalog.register(fn)
        assert catalog.function(name) is fn
        assert name in catalog
        assert len(catalog) == 1

    def test_idempotent_reregistration(self):
        catalog = Catalog()

        def fn():
            return 1

        assert catalog.register(fn) == catalog.register(fn)
        assert len(catalog) == 1

    def test_name_collision_rejected(self):
        catalog = Catalog()
        catalog.register(lambda: 1, name="same::name")
        with pytest.raises(HamError, match="already registered"):
            catalog.register(lambda: 2, name="same::name")

    def test_unknown_function(self):
        with pytest.raises(HamError):
            Catalog().function("ghost")

    def test_type_name_module_qualified(self):
        def inner():
            pass

        name = type_name_of(inner)
        assert name.endswith("::TestCatalog.test_type_name_module_qualified.<locals>.inner")
        assert "::" in name


class TestCrossImageTranslation:
    """The paper's core correctness property: keys agree across images
    that registered the same types, regardless of registration order and
    local addresses."""

    NAMES = [f"app::kernel_{i}" for i in range(20)]

    def test_keys_agree_between_images(self):
        cat_host = make_catalog(self.NAMES)
        shuffled = list(self.NAMES)
        random.Random(42).shuffle(shuffled)
        cat_target = make_catalog(shuffled)

        host = ProcessImage("vh", cat_host)
        target = ProcessImage("ve", cat_target)
        for name in self.NAMES:
            assert host.key_for(name) == target.key_for(name)

    def test_local_addresses_differ(self):
        catalog = make_catalog(self.NAMES)
        host = ProcessImage("vh", catalog)
        target = ProcessImage("ve", catalog)
        differing = [
            n
            for n in self.NAMES
            if host.local_address_of(n) != target.local_address_of(n)
        ]
        assert differing == self.NAMES  # all of them

    def test_key_to_handler_roundtrip(self):
        catalog = make_catalog(self.NAMES)
        image = ProcessImage("ve", catalog)
        for name in self.NAMES:
            key = image.key_for(name)
            handler = image.handler_for_key(key)
            assert handler() == name  # each stub returns its own name

    def test_keys_are_sorted_indices(self):
        catalog = make_catalog(["b::f", "a::f", "c::f"])
        image = ProcessImage("img", catalog)
        assert image.key_for("a::f") == 0
        assert image.key_for("b::f") == 1
        assert image.key_for("c::f") == 2
        assert image.type_names() == ["a::f", "b::f", "c::f"]

    def test_unknown_type_name(self):
        image = ProcessImage("img", make_catalog(["a::f"]))
        with pytest.raises(HandlerKeyError):
            image.key_for("z::ghost")
        with pytest.raises(HandlerKeyError):
            image.local_address_of("z::ghost")

    def test_out_of_range_key(self):
        image = ProcessImage("img", make_catalog(["a::f"]))
        with pytest.raises(HandlerKeyError):
            image.handler_for_key(1)
        with pytest.raises(HandlerKeyError):
            image.handler_for_key(-1)

    def test_num_types(self):
        image = ProcessImage("img", make_catalog(self.NAMES))
        image.build_tables()
        assert image.num_types == len(self.NAMES)

    def test_late_registration_rebuilds_tables(self):
        catalog = make_catalog(["m::f"])
        image = ProcessImage("img", catalog)
        assert image.key_for("m::f") == 0
        catalog.register(lambda: None, name="a::early")
        image.snapshot_catalog()
        # "a::early" sorts first, shifting the key of "m::f".
        assert image.key_for("a::early") == 0
        assert image.key_for("m::f") == 1


class TestOffloadableDecorator:
    def test_registers_in_global_catalog(self):
        from repro.ham.registry import global_catalog

        @offloadable
        def my_unique_kernel_xyz(x):
            return x + 1

        assert type_name_of(my_unique_kernel_xyz) in global_catalog()
        assert my_unique_kernel_xyz(1) == 2  # still locally callable
