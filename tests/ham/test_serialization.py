"""Tests for payload serialization (pickle, numpy fast path, hooks)."""

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.ham.serialization import (
    Migratable,
    deserialize,
    register_serializer,
    serialize,
)


class TestBasicRoundtrips:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            42,
            -1,
            3.14159,
            "text",
            b"bytes",
            [1, 2, 3],
            (4, 5),
            {"k": [1, {"nested": None}]},
            {1, 2, 3},
        ],
    )
    def test_python_values(self, value):
        assert deserialize(serialize(value)) == value

    def test_large_payload(self):
        value = list(range(100_000))
        assert deserialize(serialize(value)) == value


class TestNumpyFastPath:
    def test_roundtrip_preserves_dtype_and_shape(self):
        arr = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        back = deserialize(serialize(arr))
        assert back.dtype == arr.dtype
        assert back.shape == arr.shape
        np.testing.assert_array_equal(back, arr)

    def test_uses_raw_tag(self):
        assert serialize(np.zeros(4))[:1] == b"N"

    def test_non_contiguous_array(self):
        arr = np.arange(100, dtype=np.int64)[::3]
        np.testing.assert_array_equal(deserialize(serialize(arr)), arr)

    def test_fortran_order(self):
        arr = np.asfortranarray(np.arange(12, dtype=np.float64).reshape(3, 4))
        np.testing.assert_array_equal(deserialize(serialize(arr)), arr)

    def test_empty_array(self):
        arr = np.zeros((0, 5), dtype=np.int32)
        back = deserialize(serialize(arr))
        assert back.shape == (0, 5)

    def test_object_dtype_rejected(self):
        arr = np.array([object()], dtype=object)
        with pytest.raises(SerializationError):
            serialize(arr)

    def test_result_is_writable_copy(self):
        back = deserialize(serialize(np.zeros(4)))
        back[0] = 1  # must not raise (frombuffer gives read-only views)


class TestCustomSerializers:
    def test_custom_hook_roundtrip(self):
        class Complex3:
            def __init__(self, x, y, z):
                self.coords = (x, y, z)

            def __eq__(self, other):
                return self.coords == other.coords

        register_serializer(
            Complex3,
            "test.complex3",
            encode=lambda c: ",".join(map(str, c.coords)).encode(),
            decode=lambda b: Complex3(*map(float, b.decode().split(","))),
        )
        value = Complex3(1.0, 2.0, 3.0)
        assert deserialize(serialize(value)) == value
        assert serialize(value)[:1] == b"C"

    def test_unknown_custom_name(self):
        frame = b"C" + (9).to_bytes(2, "little") + b"ghostname" + b"body"
        with pytest.raises(SerializationError, match="no custom serializer"):
            deserialize(frame)

    def test_failing_encoder_wrapped(self):
        class Doomed:
            pass

        register_serializer(
            Doomed,
            "test.doomed",
            encode=lambda _d: (_ for _ in ()).throw(RuntimeError("enc fail")),
            decode=lambda b: None,
        )
        with pytest.raises(SerializationError, match="enc fail"):
            serialize(Doomed())


class SampleMigratable(Migratable):
    """Module-level so the decoder can re-import it."""

    def __init__(self, payload: str) -> None:
        self.payload = payload

    def __serialize__(self) -> bytes:
        return self.payload.encode()

    @classmethod
    def __deserialize__(cls, data: bytes) -> "SampleMigratable":
        return cls(data.decode())


class TestMigratable:
    def test_roundtrip(self):
        back = deserialize(serialize(SampleMigratable("hi")))
        assert isinstance(back, SampleMigratable)
        assert back.payload == "hi"

    def test_bad_class_path(self):
        frame = b"M" + (12).to_bytes(2, "little") + b"nope:Missing" + b""
        with pytest.raises(SerializationError, match="cannot import"):
            deserialize(frame)


class TestErrorHandling:
    def test_empty_payload(self):
        with pytest.raises(SerializationError):
            deserialize(b"")

    def test_unknown_tag(self):
        with pytest.raises(SerializationError, match="unknown payload tag"):
            deserialize(b"Zjunk")

    def test_corrupt_pickle(self):
        with pytest.raises(SerializationError):
            deserialize(b"P" + b"\x00\x01garbage")

    def test_unpicklable_value(self):
        with pytest.raises(SerializationError):
            serialize(lambda: None)  # local lambdas don't pickle
