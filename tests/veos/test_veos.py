"""Tests for the VEOS substrate: daemon, DMA manager, pseudo process, loader."""

import pytest

from repro.errors import VeoProcError, VeoSymbolError, VeosError
from repro.hw.memory import PAGE_4K, PAGE_HUGE_2M
from repro.machine import AuroraMachine
from repro.veos.loader import VeLibrary


@pytest.fixture()
def machine():
    return AuroraMachine(num_ves=1)


@pytest.fixture()
def daemon(machine):
    return machine.daemon(0)


class TestVeLibrary:
    def test_symbol_resolution(self):
        lib = VeLibrary("libapp")
        lib.add_function("kernel", lambda x: x * 2)
        assert lib.get_symbol("kernel").fn(21) == 42
        assert "kernel" in lib
        assert lib.symbols() == ["kernel"]

    def test_missing_symbol(self):
        lib = VeLibrary("libapp")
        with pytest.raises(VeoSymbolError, match="no symbol"):
            lib.get_symbol("nope")

    def test_duration_constant_and_callable(self):
        lib = VeLibrary("libapp")
        fixed = lib.add_function("a", lambda: None, duration=1e-3)
        scaled = lib.add_function("b", lambda n: None, duration=lambda n: n * 1e-6)
        assert fixed.compute_time(()) == 1e-3
        assert scaled.compute_time((7,)) == pytest.approx(7e-6)

    def test_server_flag(self):
        lib = VeLibrary("libapp")

        def server_main():
            yield  # pragma: no cover - never run here

        sym = lib.add_server("ham_main", server_main)
        assert sym.is_server


class TestVeProcess:
    def test_create_and_destroy(self, daemon):
        proc = daemon.create_process()
        assert daemon.num_processes == 1
        assert daemon.process_by_pid(proc.pid) is proc
        proc.destroy()
        assert daemon.num_processes == 0
        with pytest.raises(VeoProcError):
            daemon.process_by_pid(proc.pid)

    def test_dead_process_rejects_operations(self, daemon):
        proc = daemon.create_process()
        proc.destroy()
        with pytest.raises(VeoProcError):
            proc.malloc(64)

    def test_heap_lifecycle(self, daemon):
        proc = daemon.create_process()
        addr = proc.malloc(1024)
        assert proc.heap_allocations == 1
        proc.free(addr)
        assert proc.heap_allocations == 0
        with pytest.raises(VeoProcError):
            proc.free(addr)

    def test_destroy_frees_heap(self, daemon):
        proc = daemon.create_process()
        proc.malloc(1024)
        proc.malloc(2048)
        hbm = daemon.ve.hbm
        assert hbm.live_allocations == 2
        proc.destroy()
        assert hbm.live_allocations == 0

    def test_run_function_charges_duration(self, machine, daemon):
        proc = daemon.create_process()
        lib = VeLibrary("libapp")
        lib.load = None
        sym = lib.add_function("slow", lambda: "ok", duration=5e-3)
        proc.load_library(lib)

        def run():
            value = yield from proc.run_function(sym, ())
            return value

        start = machine.sim.now
        assert machine.sim.run(until=machine.sim.process(run())) == "ok"
        assert machine.sim.now - start == pytest.approx(5e-3)

    def test_run_function_rejects_server_symbol(self, machine, daemon):
        proc = daemon.create_process()
        lib = VeLibrary("libapp")

        def srv():
            yield  # pragma: no cover

        sym = lib.add_server("ham_main", srv)
        proc.load_library(lib)

        def run():
            yield from proc.run_function(sym, ())

        with pytest.raises(VeosError):
            machine.sim.run(until=machine.sim.process(run()))

    def test_server_interrupted_on_destroy(self, machine, daemon):
        proc = daemon.create_process()
        lib = VeLibrary("libapp")
        stopped = []

        def srv():
            from repro.sim import Interrupt

            try:
                while True:
                    yield machine.sim.timeout(1.0)
            except Interrupt:
                stopped.append(True)

        sym = lib.add_server("ham_main", srv)
        proc.load_library(lib)
        server = proc.start_server(sym, ())
        machine.sim.run(until=2.5)
        assert server.is_alive
        proc.destroy()
        machine.sim.run(until=machine.sim.now + 1.0)
        assert stopped == [True]

    def test_find_symbol_requires_loaded_library(self, daemon):
        proc = daemon.create_process()
        with pytest.raises(VeoProcError, match="not loaded"):
            proc.find_symbol("libapp", "kernel")


class TestPrivilegedDmaManager:
    def test_transfer_moves_bytes_and_charges_time(self, machine, daemon):
        manager = daemon.dma_manager
        vh = machine.vh.ddr
        ve = daemon.ve.hbm
        payload = bytes(range(100))
        vh.write(0, payload)

        def run():
            yield from manager.transfer(
                vh, 0, ve, 512, 100, direction="vh_to_ve", page_size=PAGE_HUGE_2M
            )

        machine.sim.run(until=machine.sim.process(run()))
        assert ve.read(512, 100) == payload
        expected = machine.timing.veo_transfer_time(
            100, direction="vh_to_ve", page_size=PAGE_HUGE_2M
        )
        assert machine.sim.now == pytest.approx(expected)

    def test_classic_manager_slower(self):
        fast = AuroraMachine(num_ves=1, four_dma=True)
        slow = AuroraMachine(num_ves=1, four_dma=False)
        size = 8 * 2**20

        def run(machine):
            daemon = machine.daemon(0)

            def gen():
                yield from daemon.dma_manager.transfer(
                    machine.vh.ddr, 0, daemon.ve.hbm, 0, size,
                    direction="vh_to_ve", page_size=PAGE_HUGE_2M,
                )

            machine.sim.run(until=machine.sim.process(gen()))
            return machine.sim.now

        assert run(slow) > run(fast)

    def test_transfers_serialise_on_shared_engine(self, machine, daemon):
        manager = daemon.dma_manager
        one = machine.timing.veo_transfer_time(
            8, direction="vh_to_ve", page_size=PAGE_HUGE_2M
        )

        def gen():
            yield from manager.transfer(
                machine.vh.ddr, 0, daemon.ve.hbm, 0, 8,
                direction="vh_to_ve", page_size=PAGE_HUGE_2M,
            )

        done = [machine.sim.process(gen()) for _ in range(3)]
        machine.sim.run(until=machine.sim.all_of(done))
        assert machine.sim.now == pytest.approx(3 * one)

    def test_page_accounting(self, machine, daemon):
        manager = daemon.dma_manager

        def gen():
            yield from manager.transfer(
                machine.vh.ddr, 0, daemon.ve.hbm, 0, 3 * PAGE_4K,
                direction="vh_to_ve", page_size=PAGE_4K,
            )

        machine.sim.run(until=machine.sim.process(gen()))
        assert manager.pages_translated == 3
        assert manager.transfer_count == 1


class TestPseudoProcess:
    def test_default_syscalls(self, machine, daemon):
        proc = daemon.create_process()

        def run():
            pid = yield from proc.pseudo.syscall("getpid")
            n = yield from proc.pseudo.syscall("write", 1, b"hello")
            return pid, n

        pid, n = machine.sim.run(until=machine.sim.process(run()))
        assert pid == proc.pid
        assert n == 5
        assert proc.pseudo.captured_output == [(1, b"hello")]

    def test_syscall_charges_latency(self, machine, daemon):
        proc = daemon.create_process()

        def run():
            yield from proc.pseudo.syscall("getpid")

        start = machine.sim.now
        machine.sim.run(until=machine.sim.process(run()))
        assert machine.sim.now - start == pytest.approx(
            machine.timing.veos_syscall_latency
        )

    def test_unknown_syscall(self, machine, daemon):
        proc = daemon.create_process()

        def run():
            yield from proc.pseudo.syscall("reboot")

        with pytest.raises(VeosError, match="unknown syscall"):
            machine.sim.run(until=machine.sim.process(run()))

    def test_custom_handler_vhcall(self, machine, daemon):
        proc = daemon.create_process()
        proc.pseudo.register("host_sum", lambda xs: sum(xs))

        def run():
            value = yield from proc.pseudo.syscall("host_sum", [1, 2, 3])
            return value

        assert machine.sim.run(until=machine.sim.process(run())) == 6
        assert "host_sum" in proc.pseudo.known_syscalls()
