"""Contention tests: shared VEOS resources across VE processes/contexts."""

import pytest

from repro.hw.memory import PAGE_HUGE_2M
from repro.machine import AuroraMachine
from repro.veo import VeoProc
from repro.veos.loader import VeLibrary


class TestPrivilegedDmaSharing:
    def test_two_procs_share_one_privileged_engine(self):
        """The system DMA engine is per VE and shared by everything on
        it (Sec. I-B); two VE processes' transfers must serialize."""
        machine = AuroraMachine(num_ves=1)
        proc_a = VeoProc(machine, 0)
        proc_b = VeoProc(machine, 0)
        assert proc_a.daemon is proc_b.daemon
        size = 64 * 1024
        addr_a = proc_a.alloc_mem(size)
        addr_b = proc_b.alloc_mem(size)
        ctx_a = proc_a.open_context()
        ctx_b = proc_b.open_context()
        one = machine.timing.veo_transfer_time(
            size, direction="vh_to_ve", page_size=PAGE_HUGE_2M
        )
        req_a = ctx_a.async_write_mem(addr_a, b"a" * size)
        req_b = ctx_b.async_write_mem(addr_b, b"b" * size)
        start = machine.sim.now
        req_a.wait_result()
        req_b.wait_result()
        elapsed = machine.sim.now - start
        # Serialized on the single engine: ~2x one transfer.
        assert elapsed >= 2 * one * 0.95

    def test_two_ves_have_independent_engines(self):
        machine = AuroraMachine(num_ves=2)
        assert machine.daemon(0).dma_manager is not machine.daemon(1).dma_manager

    def test_proc_isolation_on_shared_ve(self):
        machine = AuroraMachine(num_ves=1)
        proc_a = VeoProc(machine, 0)
        proc_b = VeoProc(machine, 0)
        addr_a = proc_a.alloc_mem(256)
        proc_a.write_mem(addr_a, bytes(range(256)))
        # B's allocations never alias A's.
        addr_b = proc_b.alloc_mem(256)
        assert addr_a != addr_b
        proc_b.write_mem(addr_b, b"\xff" * 256)
        assert proc_a.read_mem(addr_a, 256) == bytes(range(256))

    def test_contexts_on_one_proc_share_fifo_ve(self):
        machine = AuroraMachine(num_ves=1)
        proc = VeoProc(machine, 0)
        lib = VeLibrary("l")
        seen = []
        lib.add_function("mark", lambda v: seen.append(v), duration=1e-4)
        handle = proc.load_library(lib)
        ctx_a = proc.open_context()
        ctx_b = proc.open_context()
        req_a = ctx_a.call_async(handle.get_symbol("mark"), "a")
        req_b = ctx_b.call_async(handle.get_symbol("mark"), "b")
        req_a.wait_result()
        req_b.wait_result()
        assert sorted(seen) == ["a", "b"]
