"""QoS layer tests: tenants, admission control, fair window, shedding.

The serving-side invariants under test: admission rejections fail fast
and *before* serialization, the fair window grants capacity by weight
without starving anyone, overload sheds lowest-priority work first, and
the tenant context flows from ``sync(tenant=...)`` down to the SLO
stream without any backend signature changes.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.backends import LocalBackend
from repro.errors import (
    AdmissionRejectedError,
    DeadlineInfeasibleError,
    LoadShedError,
    OffloadError,
    OffloadTimeoutError,
    RateLimitedError,
)
from repro.ham import f2f
from repro.offload import (
    BEST_EFFORT,
    PREMIUM,
    STANDARD,
    AdmissionController,
    FairInflightWindow,
    QoSConfig,
    Runtime,
    TenantContext,
    TenantPolicy,
    TokenBucket,
    current_tenant,
    tenant_scope,
)
from repro.telemetry import recorder as telemetry

from tests import apps
from tests.offload.stubs import ThreadedStubBackend


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.disable()
    yield
    telemetry.disable()


# ---------------------------------------------------------------------------
# TenantContext / QoSConfig
# ---------------------------------------------------------------------------


class TestTenantContext:
    def test_defaults(self):
        ctx = TenantContext()
        assert ctx.tenant == "default"
        assert ctx.priority == STANDARD
        assert ctx.weight == 1.0
        assert ctx.deadline is None

    @pytest.mark.parametrize(
        "kwargs",
        [dict(tenant=""), dict(weight=0.0), dict(weight=-1.0),
         dict(deadline=0.0)],
    )
    def test_validation(self, kwargs):
        with pytest.raises(OffloadError):
            TenantContext(**kwargs)

    def test_scope_is_ambient_and_restored(self):
        assert current_tenant() is None
        ctx = TenantContext(tenant="a")
        with tenant_scope(ctx):
            assert current_tenant() is ctx
            with tenant_scope(None):
                assert current_tenant() is None
            assert current_tenant() is ctx
        assert current_tenant() is None


class TestQoSConfig:
    def test_context_for_resolves_policy(self):
        config = QoSConfig(tenants={
            "gold": TenantPolicy(weight=4.0, priority=PREMIUM, deadline=0.5),
        })
        gold = config.context_for("gold")
        assert gold.weight == 4.0
        assert gold.priority == PREMIUM
        assert gold.deadline == 0.5
        anon = config.context_for("unknown")
        assert anon.weight == 1.0 and anon.priority == STANDARD
        assert config.context_for(None).tenant == "default"
        explicit = TenantContext(tenant="x", weight=9.0)
        assert config.context_for(explicit) is explicit

    def test_validation(self):
        with pytest.raises(OffloadError):
            QoSConfig(max_queue_depth=0)
        with pytest.raises(OffloadError):
            QoSConfig(admission_percentile=0.0)
        with pytest.raises(OffloadError):
            QoSConfig(window=0)
        with pytest.raises(OffloadError):
            QoSConfig(headroom=0.0)


# ---------------------------------------------------------------------------
# TokenBucket
# ---------------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = [0.0]
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=lambda: clock[0])
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock[0] += 0.1  # 1 token refilled
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = [0.0]
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=lambda: clock[0])
        clock[0] += 1000.0
        assert bucket.available == 3.0

    def test_validation(self):
        with pytest.raises(OffloadError):
            TokenBucket(rate=0.0, burst=1.0)


# ---------------------------------------------------------------------------
# AdmissionController
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_rate_limit(self):
        clock = [0.0]
        config = QoSConfig(tenants={
            "limited": TenantPolicy(rate=1.0, burst=2.0),
        })
        admission = AdmissionController(
            config, clock=lambda: clock[0], estimator=lambda kernel: None
        )
        ctx = config.context_for("limited")
        admission.admit(ctx, "k")
        admission.admit(ctx, "k")
        with pytest.raises(RateLimitedError):
            admission.admit(ctx, "k")
        clock[0] += 1.0
        admission.admit(ctx, "k")
        snap = admission.snapshot()
        assert snap["limited"]["admitted"] == 3
        assert snap["limited"]["rejected"] == 1

    def test_unlimited_tenant_never_rate_limited(self):
        admission = AdmissionController(
            QoSConfig(), estimator=lambda kernel: None
        )
        ctx = TenantContext(tenant="free")
        for _ in range(100):
            admission.admit(ctx, "k")

    def test_deadline_infeasible(self):
        admission = AdmissionController(
            QoSConfig(), estimator=lambda kernel: 0.5
        )
        tight = TenantContext(tenant="t", deadline=0.1)
        with pytest.raises(DeadlineInfeasibleError):
            admission.admit(tight, "slow_kernel")
        roomy = TenantContext(tenant="t", deadline=1.0)
        admission.admit(roomy, "slow_kernel")
        # No deadline -> nothing to be infeasible against.
        admission.admit(TenantContext(tenant="t"), "slow_kernel")

    def test_headroom_scales_estimate(self):
        admission = AdmissionController(
            QoSConfig(headroom=3.0), estimator=lambda kernel: 0.1
        )
        ctx = TenantContext(tenant="t", deadline=0.2)
        with pytest.raises(DeadlineInfeasibleError):
            admission.admit(ctx, "k")

    def test_no_estimate_admits(self):
        admission = AdmissionController(
            QoSConfig(), estimator=lambda kernel: None
        )
        admission.admit(TenantContext(tenant="t", deadline=1e-9), "cold")

    def test_profiled_estimator_reads_live_profile(self):
        recorder = telemetry.enable()
        for _ in range(20):
            recorder.profiles.record("hot", 100_000_000)  # 0.1 s each
        admission = AdmissionController(
            QoSConfig(admission_min_samples=10)
        )
        with pytest.raises(DeadlineInfeasibleError):
            admission.admit(TenantContext(tenant="t", deadline=0.01), "hot")
        admission.admit(TenantContext(tenant="t", deadline=10.0), "hot")
        # Unknown kernel: no profile, admit.
        admission.admit(TenantContext(tenant="t", deadline=0.01), "cold")


# ---------------------------------------------------------------------------
# FairInflightWindow
# ---------------------------------------------------------------------------


def _fill_window(window: FairInflightWindow, n: int) -> list:
    """Occupy ``n`` slots with fake handles (registered, not completed)."""

    class _FakeHandle:
        _ids = iter(range(10_000, 20_000))

        def __init__(self):
            self.correlation_id = next(self._ids)

    handles = []
    for _ in range(n):
        window.acquire()
        handle = _FakeHandle()
        window.register(handle)
        handles.append(handle)
    return handles


class TestFairWindow:
    def test_fast_path_grants_under_capacity(self):
        window = FairInflightWindow(4)
        handles = _fill_window(window, 4)
        assert window.in_flight == 4
        for handle in handles:
            window.release(handle)
        assert window.in_flight == 0

    def test_weighted_grant_order(self):
        """With the window saturated, queued tenants are served ~by weight."""
        config = QoSConfig(tenants={
            "heavy": TenantPolicy(weight=3.0),
            "light": TenantPolicy(weight=1.0),
        })
        window = FairInflightWindow(1, config)
        blocker = _fill_window(window, 1)[0]

        grants: list[str] = []
        grant_lock = threading.Lock()
        started = threading.Barrier(25)

        def worker(tenant: str) -> None:
            ctx = config.context_for(tenant)
            with tenant_scope(ctx):
                started.wait()
                window.acquire(timeout=10.0)
            with grant_lock:
                grants.append(tenant)
            # Grant consumed; hand the reserved slot straight back.
            window.cancel()

        threads = [
            threading.Thread(
                target=worker, args=("heavy" if i % 2 else "light",),
                daemon=True,
            )
            for i in range(24)
        ]
        for t in threads:
            t.start()
        started.wait()  # all 24 queued (well, racing to queue)
        time.sleep(0.2)  # let every worker actually park in its queue
        window.release(blocker)
        for t in threads:
            t.join(timeout=10.0)
        assert len(grants) == 24
        # First 8 grants: heavy should take ~3/4 of them.
        head = grants[:8]
        assert head.count("heavy") >= 5, grants

    def test_no_starvation_single_waiter(self):
        config = QoSConfig(tenants={"big": TenantPolicy(weight=100.0)})
        window = FairInflightWindow(1, config)
        blocker = _fill_window(window, 1)[0]
        got = threading.Event()

        def small_tenant() -> None:
            with tenant_scope(TenantContext(tenant="tiny", weight=0.1)):
                window.acquire(timeout=5.0)
            got.set()

        thread = threading.Thread(target=small_tenant, daemon=True)
        thread.start()
        time.sleep(0.05)
        window.release(blocker)
        assert got.wait(5.0), "low-weight tenant starved"
        thread.join(timeout=5.0)

    def test_queue_timeout(self):
        window = FairInflightWindow(1)
        _fill_window(window, 1)
        start = time.monotonic()
        with pytest.raises(OffloadTimeoutError):
            window.acquire(timeout=0.1)
        assert time.monotonic() - start < 2.0
        assert window.queued == 0  # timed-out waiter removed

    def test_shed_rejects_lowest_class_arrival(self):
        config = QoSConfig(max_queue_depth=1)
        window = FairInflightWindow(1, config)
        _fill_window(window, 1)
        parked = threading.Event()

        def premium_waiter() -> None:
            ctx = TenantContext(tenant="vip", priority=PREMIUM)
            with tenant_scope(ctx):
                parked.set()
                try:
                    window.acquire(timeout=5.0)
                except OffloadError:
                    pass
                else:
                    window.cancel()

        thread = threading.Thread(target=premium_waiter, daemon=True)
        thread.start()
        parked.wait(5.0)
        time.sleep(0.1)  # premium waiter parks; queue is now at depth
        with tenant_scope(TenantContext(tenant="junk", priority=BEST_EFFORT)):
            with pytest.raises(LoadShedError):
                window.acquire(timeout=1.0)
        snap = window.snapshot()
        assert snap["tenants"]["junk"]["shed"] == 1

    def test_shed_evicts_queued_lower_class_for_premium_arrival(self):
        config = QoSConfig(max_queue_depth=1)
        window = FairInflightWindow(1, config)
        blocker = _fill_window(window, 1)[0]
        shed_error: list[BaseException] = []
        parked = threading.Event()

        def best_effort_waiter() -> None:
            ctx = TenantContext(tenant="junk", priority=BEST_EFFORT)
            with tenant_scope(ctx):
                parked.set()
                try:
                    window.acquire(timeout=5.0)
                except LoadShedError as exc:
                    shed_error.append(exc)

        thread = threading.Thread(target=best_effort_waiter, daemon=True)
        thread.start()
        parked.wait(5.0)
        time.sleep(0.1)

        granted = threading.Event()

        def premium_arrival() -> None:
            ctx = TenantContext(tenant="vip", priority=PREMIUM)
            with tenant_scope(ctx):
                window.acquire(timeout=5.0)
            granted.set()
            window.cancel()

        vip = threading.Thread(target=premium_arrival, daemon=True)
        vip.start()
        time.sleep(0.1)
        window.release(blocker)
        assert granted.wait(5.0), "premium arrival not granted"
        thread.join(timeout=5.0)
        vip.join(timeout=5.0)
        assert shed_error, "queued best-effort waiter was not shed"

    def test_progress_path_falls_back_to_fifo(self):
        """Single-threaded backends (progress callback) bypass the DRR."""
        window = FairInflightWindow(1)
        handles = _fill_window(window, 1)
        released = []

        def progress() -> None:
            if not released:
                window.release(handles[0])
                released.append(True)

        window.acquire(progress=progress)
        assert released


# ---------------------------------------------------------------------------
# Runtime integration
# ---------------------------------------------------------------------------


class TestRuntimeIntegration:
    def test_qos_installs_fair_window(self):
        backend = LocalBackend()
        runtime = Runtime(backend, qos=QoSConfig(window=8))
        assert isinstance(backend.window, FairInflightWindow)
        assert backend.window.limit == 8
        assert runtime.sync(1, f2f(apps.add, 2, 3)) == 5
        stats = runtime.stats()
        assert stats["qos"]["admission"]["default"]["admitted"] == 1
        runtime.shutdown()

    def test_tenant_scope_accepts_bare_id(self):
        # Regression: a bare string in tenant_scope must resolve to the
        # runtime's policy for that tenant (deadline included), exactly
        # like an explicit tenant= argument — not leak into the deadline
        # check as a str.
        config = QoSConfig(tenants={
            "gold": TenantPolicy(weight=4.0, deadline=5.0),
        })
        runtime = Runtime(LocalBackend(), qos=config)
        with tenant_scope("gold"):
            assert runtime.sync(1, f2f(apps.add, 2, 3)) == 5
        snap = runtime.stats()["qos"]
        assert snap["admission"]["gold"]["admitted"] == 1
        assert snap["window"]["tenants"]["gold"]["granted"] == 1
        runtime.shutdown()

    def test_sync_rejects_rate_limited_tenant_fast(self):
        config = QoSConfig(tenants={
            "noisy": TenantPolicy(rate=0.001, burst=1.0),
        })
        backend = LocalBackend()
        runtime = Runtime(backend, qos=config)
        assert runtime.sync(1, f2f(apps.add, 1, 1), tenant="noisy") == 2
        start = time.monotonic()
        with pytest.raises(RateLimitedError):
            runtime.sync(1, f2f(apps.add, 1, 1), tenant="noisy")
        assert time.monotonic() - start < 0.5  # fast-fail, not a deadline
        runtime.shutdown()

    def test_rejection_counts_against_tenant_slo(self):
        recorder = telemetry.enable()
        from repro.telemetry.slo import SLOMonitor

        recorder.slo = SLOMonitor(min_samples=1)
        config = QoSConfig(tenants={
            "noisy": TenantPolicy(rate=0.001, burst=1.0),
        })
        runtime = Runtime(LocalBackend(), qos=config)
        runtime.sync(1, f2f(apps.add, 1, 1), tenant="noisy")
        with pytest.raises(AdmissionRejectedError):
            runtime.sync(1, f2f(apps.add, 1, 1), tenant="noisy")
        snap = recorder.slo.snapshot()
        key = "offload-availability[noisy]"
        assert key in snap and snap[key]["bad"] == 1
        runtime.shutdown()

    def test_tenant_flows_through_threaded_backend(self):
        backend = ThreadedStubBackend(num_targets=1, delay=0.0)
        runtime = Runtime(backend, qos=QoSConfig())
        assert runtime.sync(1, f2f(apps.add, 4, 5), tenant="gold") == 9
        snap = backend.window.snapshot()
        assert snap["tenants"]["gold"]["granted"] == 1
        runtime.shutdown()

    def test_without_qos_behavior_unchanged(self):
        backend = LocalBackend()
        runtime = Runtime(backend)
        assert not isinstance(backend.window, FairInflightWindow)
        assert runtime.sync(1, f2f(apps.add, 1, 2), tenant="whoever") == 3
        assert "qos" not in runtime.stats()
        runtime.shutdown()

    def test_tenant_deadline_becomes_sync_timeout(self):
        config = QoSConfig(tenants={
            "t": TenantPolicy(deadline=0.2),
        })
        backend = ThreadedStubBackend(num_targets=1, delay=2.0)
        runtime = Runtime(backend, qos=config)
        start = time.monotonic()
        with pytest.raises(OffloadTimeoutError):
            runtime.sync(1, f2f(apps.sleep_then, 0.0, "x"), tenant="t")
        assert time.monotonic() - start < 1.5
        runtime.shutdown()
