"""Tests for the free-function API (paper Table II shape)."""

import numpy as np
import pytest

from repro.backends import LocalBackend
from repro.errors import OffloadError
from repro.ham import f2f
from repro.offload import api as offload

from tests import apps


@pytest.fixture()
def api():
    offload.init(LocalBackend(num_targets=2))
    yield offload
    offload.finalize()


class TestGlobalRuntimeLifecycle:
    def test_uninitialized_use_rejected(self):
        assert not offload.is_initialized()
        with pytest.raises(OffloadError, match="not initialized"):
            offload.sync(1, f2f(apps.empty_kernel))

    def test_double_init_rejected(self, api):
        with pytest.raises(OffloadError, match="already initialized"):
            offload.init(LocalBackend())

    def test_finalize_idempotent(self):
        offload.init(LocalBackend())
        offload.finalize()
        offload.finalize()
        assert not offload.is_initialized()

    def test_reinit_after_finalize(self):
        offload.init(LocalBackend())
        offload.finalize()
        offload.init(LocalBackend())
        assert offload.is_initialized()
        offload.finalize()


class TestTableIIOperations:
    def test_sync(self, api):
        assert api.sync(1, f2f(apps.add, 40, 2)) == 42

    def test_async(self, api):
        future = api.async_(2, f2f(apps.add, 1, 2))
        assert future.get() == 3

    def test_allocate_put_get_free(self, api):
        data = np.arange(32.0)
        ptr = api.allocate(1, 32)
        api.put(data, ptr).get()
        back = np.zeros(32)
        api.get(ptr, back).get()
        np.testing.assert_array_equal(back, data)
        api.free(ptr)

    def test_copy(self, api):
        src = api.allocate(1, 8)
        dst = api.allocate(2, 8)
        api.put(np.ones(8), src)
        api.copy(src, dst).get()
        back = np.zeros(8)
        api.get(dst, back)
        np.testing.assert_array_equal(back, np.ones(8))

    def test_topology_queries(self, api):
        assert api.num_nodes() == 3
        assert api.this_node() == 0
        assert api.get_node_descriptor(1).device_type == "cpu"

    def test_runtime_accessor(self, api):
        assert api.runtime().num_nodes() == 3

    def test_paper_fig2_program_shape(self, api):
        """The Fig. 2 program, line for line, via the free functions."""
        n = 1024
        a = np.random.default_rng(0).random(n)
        b = np.random.default_rng(1).random(n)
        target = 1
        a_target = api.allocate(target, n)
        b_target = api.allocate(target, n)
        api.put(a, a_target, n)
        api.put(b, b_target, n)
        result = api.async_(target, f2f(apps.inner_product, a_target, b_target, n))
        c = result.get()
        assert c == pytest.approx(float(np.dot(a, b)))
