"""Tests for the runtime/backend statistics API."""

import numpy as np
import pytest

from repro.backends import (
    DmaCommBackend,
    LocalBackend,
    TcpBackend,
    VeoCommBackend,
    spawn_local_server,
)
from repro.ham import f2f
from repro.offload import Runtime

from tests import apps


class TestRuntimeStats:
    def test_counters_track_operations(self):
        runtime = Runtime(LocalBackend())
        ptr = runtime.allocate(1, 16)
        runtime.put(np.zeros(16), ptr)
        runtime.sync(1, f2f(apps.empty_kernel))
        runtime.async_(1, f2f(apps.empty_kernel)).get()
        back = np.zeros(16)
        runtime.get(ptr, back)
        stats = runtime.stats()
        assert stats["offloads_posted"] == 2
        assert stats["puts"] == 1
        assert stats["gets"] == 1
        assert stats["copies"] == 0
        assert stats["live_buffers"] == 1
        runtime.shutdown()

    def test_local_backend_stats(self):
        runtime = Runtime(LocalBackend(num_targets=2))
        runtime.sync(1, f2f(apps.empty_kernel))
        runtime.sync(2, f2f(apps.empty_kernel))
        runtime.sync(2, f2f(apps.empty_kernel))
        backend_stats = runtime.stats()["backend"]
        assert backend_stats["messages_executed"] == 3
        assert backend_stats["targets"][1]["messages_executed"] == 1
        assert backend_stats["targets"][2]["messages_executed"] == 2
        runtime.shutdown()

    @pytest.mark.parametrize("backend_cls", [VeoCommBackend, DmaCommBackend])
    def test_sim_backend_stats(self, backend_cls):
        runtime = Runtime(backend_cls())
        runtime.sync(1, f2f(apps.empty_kernel))
        stats = runtime.stats()["backend"]
        assert stats["backend"] in ("veo", "dma")
        assert stats["messages_executed"] == 1
        assert stats["simulated_time"] > 0
        channel = stats["channels"]["ve0"]
        if stats["backend"] == "dma":
            assert channel["lhm_word_loads"] >= 1
            assert channel["user_dma_transfers"] >= 1
        else:
            assert channel["privileged_dma_transfers"] >= 4
        runtime.shutdown()

    def test_tcp_backend_stats(self):
        process, address = spawn_local_server()
        runtime = Runtime(
            TcpBackend(address, on_shutdown=lambda: process.join(timeout=5))
        )
        runtime.sync(1, f2f(apps.add, 1, 2))
        stats = runtime.stats()["backend"]
        assert stats["invokes_posted"] == 1
        assert stats["bytes_sent"] > 0
        assert stats["bytes_received"] > 0
        runtime.shutdown()

    def test_pcie_byte_accounting_plausible(self):
        runtime = Runtime(DmaCommBackend())
        ptr = runtime.allocate(1, 1024, np.uint8)
        runtime.put(np.zeros(1024, dtype=np.uint8), ptr)
        stats = runtime.stats()["backend"]["channels"]["ve0"]
        assert stats["pcie_bytes_vh_to_ve"] >= 1024
        runtime.shutdown()
