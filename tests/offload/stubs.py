"""Test backends with controllable timing for QoS and hedging tests.

The functional backends are either synchronous (local: completes at post
time, so the window never fills) or need forked server processes (tcp).
:class:`ThreadedStubBackend` sits in between: every invoke is executed
on a worker thread after a configurable per-node delay, so tests can
fill the in-flight window deterministically, observe fair-queue grants,
and race a slow primary against a fast hedge target — all in-process.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.backends.base import Backend, InvokeHandle
from repro.errors import BackendError, OffloadTimeoutError
from repro.ham.functor import Functor
from repro.ham.message import MSG_RESULT, build_message
from repro.ham.serialization import serialize
from repro.offload.node import HOST_NODE, NodeDescriptor, NodeId

__all__ = ["ThreadedStubBackend"]

#: delay spec: scalar seconds, {node: seconds}, or fn(node, functor).
DelaySpec = "float | dict[int, float] | Callable[[int, Functor], float]"


class ThreadedStubBackend(Backend):
    """Executes invokes on daemon threads after a per-node delay."""

    name = "threaded-stub"

    def __init__(self, num_targets: int = 1, delay: Any = 0.0) -> None:
        super().__init__()
        if num_targets < 1:
            raise BackendError(f"need at least one target, got {num_targets}")
        self._num_targets = num_targets
        self.delay = delay
        self._alive = True
        self._record_lock = threading.Lock()
        #: (node, type_name) in post order / completion order.
        self.posted: list[tuple[int, str]] = []
        self.executed: list[tuple[int, str]] = []

    def _delay_for(self, node: NodeId, functor: Functor) -> float:
        if callable(self.delay):
            return float(self.delay(node, functor))
        if isinstance(self.delay, dict):
            return float(self.delay.get(node, 0.0))
        return float(self.delay)

    # -- topology ----------------------------------------------------------
    def num_nodes(self) -> int:
        return 1 + self._num_targets

    def descriptor(self, node: NodeId) -> NodeDescriptor:
        if node == HOST_NODE:
            return NodeDescriptor(node, "host", "host", "stub host")
        self.check_target(node)
        return NodeDescriptor(node, f"stub{node}", "cpu", "threaded stub")

    # -- invocation --------------------------------------------------------
    def post_invoke(self, node: NodeId, functor: Functor) -> InvokeHandle:
        if not self._alive:
            raise BackendError("stub backend is shut down")
        self.check_target(node)
        self._admit_invoke(label=functor.type_name)
        try:
            handle = InvokeHandle(self, label=functor.type_name)
            delay = self._delay_for(node, functor)
        except BaseException:
            self.window.cancel()
            raise
        self._register_invoke(handle)
        with self._record_lock:
            self.posted.append((node, functor.type_name))

        def run() -> None:
            if delay > 0:
                time.sleep(delay)
            try:
                value = functor.execute()
                reply = build_message(MSG_RESULT, 0, 0, serialize(value))
            except Exception as exc:  # noqa: BLE001 - surfaced via handle
                handle.complete_with_error(BackendError(str(exc)))
                return
            with self._record_lock:
                self.executed.append((node, functor.type_name))
            handle.complete_with_reply(reply)

        threading.Thread(target=run, daemon=True).start()
        return handle

    def drive(
        self, handle: InvokeHandle, *, blocking: bool,
        timeout: float | None = None,
    ) -> None:
        if not blocking:
            return
        if not handle.wait_event(timeout):
            raise OffloadTimeoutError("stub invoke outlived its deadline")

    # -- memory (unused by these tests) ------------------------------------
    def alloc_buffer(self, node: NodeId, nbytes: int) -> int:
        raise BackendError("stub backend has no target memory")

    def free_buffer(self, node: NodeId, addr: int) -> None:
        raise BackendError("stub backend has no target memory")

    def write_buffer(self, node: NodeId, addr: int, data: bytes) -> None:
        raise BackendError("stub backend has no target memory")

    def read_buffer(self, node: NodeId, addr: int, nbytes: int) -> bytes:
        raise BackendError("stub backend has no target memory")

    # -- lifecycle ---------------------------------------------------------
    def shutdown(self) -> None:
        self._alive = False
