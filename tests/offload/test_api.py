"""Tests of the HAM-Offload public API semantics (Table II).

Run against the local backend; protocol-specific behaviour is covered in
``tests/backends``.
"""

import numpy as np
import pytest

from repro.backends import LocalBackend
from repro.errors import (
    NoSuchNodeError,
    OffloadError,
    RemoteExecutionError,
)
from repro.ham import f2f
from repro.offload import BufferPtr, Runtime

from tests import apps


@pytest.fixture()
def rt():
    runtime = Runtime(LocalBackend(num_targets=2))
    yield runtime
    runtime.shutdown()


class TestTopology:
    def test_num_nodes(self, rt):
        assert rt.num_nodes() == 3  # host + 2 targets

    def test_this_node_is_host(self, rt):
        assert rt.this_node() == 0
        assert rt.get_node_descriptor(0).is_host

    def test_targets(self, rt):
        assert rt.targets() == [1, 2]

    def test_descriptor_fields(self, rt):
        desc = rt.get_node_descriptor(1)
        assert desc.node == 1
        assert desc.device_type == "cpu"
        assert not desc.is_host

    def test_offload_to_host_rejected(self, rt):
        with pytest.raises(NoSuchNodeError):
            rt.sync(0, f2f(apps.empty_kernel))

    def test_offload_to_unknown_node_rejected(self, rt):
        with pytest.raises(NoSuchNodeError):
            rt.sync(9, f2f(apps.empty_kernel))


class TestSyncAsync:
    def test_sync_returns_value(self, rt):
        assert rt.sync(1, f2f(apps.add, 20, 22)) == 42

    def test_async_future(self, rt):
        future = rt.async_(1, f2f(apps.add, 1, 2))
        assert future.test()
        assert future.get() == 3
        assert future.get() == 3  # idempotent

    def test_non_functor_rejected(self, rt):
        with pytest.raises(OffloadError, match="f2f"):
            rt.sync(1, apps.add)  # type: ignore[arg-type]

    def test_remote_exception(self, rt):
        with pytest.raises(RemoteExecutionError, match="kaboom"):
            rt.sync(1, f2f(apps.raise_value_error, "kaboom"))

    def test_remote_exception_keeps_runtime_alive(self, rt):
        with pytest.raises(RemoteExecutionError):
            rt.sync(1, f2f(apps.raise_value_error, "x"))
        assert rt.sync(1, f2f(apps.add, 1, 1)) == 2

    def test_both_targets_reachable(self, rt):
        assert rt.sync(1, f2f(apps.add, 1, 0)) == 1
        assert rt.sync(2, f2f(apps.add, 2, 0)) == 2


class TestMemory:
    def test_allocate_returns_typed_pointer(self, rt):
        ptr = rt.allocate(1, 100, np.float32)
        assert isinstance(ptr, BufferPtr)
        assert ptr.node == 1
        assert ptr.count == 100
        assert ptr.dtype == np.float32
        assert ptr.nbytes == 400
        rt.free(ptr)

    def test_put_get_roundtrip(self, rt):
        data = np.linspace(0, 1, 64)
        ptr = rt.allocate(1, 64)
        rt.put(data, ptr).get()
        back = np.zeros(64)
        rt.get(ptr, back).get()
        np.testing.assert_array_equal(back, data)

    def test_put_dtype_mismatch(self, rt):
        ptr = rt.allocate(1, 8, np.float64)
        with pytest.raises(OffloadError, match="dtype"):
            rt.put(np.zeros(8, dtype=np.int32), ptr)

    def test_put_oversize(self, rt):
        ptr = rt.allocate(1, 8)
        with pytest.raises(OffloadError, match="exceeds"):
            rt.put(np.zeros(4), ptr, count=6)

    def test_double_free(self, rt):
        ptr = rt.allocate(1, 8)
        rt.free(ptr)
        with pytest.raises(OffloadError, match="unknown or already-freed"):
            rt.free(ptr)

    def test_free_of_offset_pointer_rejected(self, rt):
        ptr = rt.allocate(1, 8)
        with pytest.raises(OffloadError):
            rt.free(ptr + 2)
        rt.free(ptr)

    def test_live_buffer_count(self, rt):
        a = rt.allocate(1, 8)
        b = rt.allocate(2, 8)
        assert rt.live_buffer_count == 2
        rt.free(a)
        rt.free(b)
        assert rt.live_buffer_count == 0

    def test_invalid_count(self, rt):
        with pytest.raises(OffloadError):
            rt.allocate(1, 0)


class TestBufferArguments:
    def test_kernel_sees_target_memory(self, rt):
        data = np.arange(16.0)
        ptr = rt.allocate(1, 16)
        rt.put(data, ptr)
        assert rt.sync(1, f2f(apps.sum_buffer, ptr)) == pytest.approx(data.sum())

    def test_kernel_mutation_persists(self, rt):
        ptr = rt.allocate(1, 8)
        rt.put(np.ones(8), ptr)
        rt.sync(1, f2f(apps.scale_buffer, ptr, 3.0))
        back = np.zeros(8)
        rt.get(ptr, back)
        np.testing.assert_array_equal(back, 3.0 * np.ones(8))

    def test_offset_pointer(self, rt):
        ptr = rt.allocate(1, 10)
        rt.put(np.arange(10.0), ptr)
        tail = ptr + 6
        assert rt.sync(1, f2f(apps.sum_buffer, tail)) == pytest.approx(6 + 7 + 8 + 9)

    def test_first_restriction(self, rt):
        ptr = rt.allocate(1, 10)
        rt.put(np.arange(10.0), ptr)
        head = ptr.first(3)
        assert rt.sync(1, f2f(apps.sum_buffer, head)) == pytest.approx(0 + 1 + 2)

    def test_inner_product_example(self, rt):
        # The paper's Fig. 2 program, in API form.
        n = 1024
        a = np.random.default_rng(1).random(n)
        b = np.random.default_rng(2).random(n)
        a_t = rt.allocate(1, n)
        b_t = rt.allocate(1, n)
        rt.put(a, a_t)
        rt.put(b, b_t)
        result = rt.async_(1, f2f(apps.inner_product, a_t, b_t, n))
        assert result.get() == pytest.approx(float(np.dot(a, b)))


class TestCopy:
    def test_copy_between_targets(self, rt):
        src = rt.allocate(1, 8)
        dst = rt.allocate(2, 8)
        rt.put(np.arange(8.0), src)
        rt.copy(src, dst).get()
        back = np.zeros(8)
        rt.get(dst, back)
        np.testing.assert_array_equal(back, np.arange(8.0))

    def test_copy_dtype_mismatch(self, rt):
        src = rt.allocate(1, 8, np.float64)
        dst = rt.allocate(2, 8, np.int64)
        with pytest.raises(OffloadError, match="dtype"):
            rt.copy(src, dst)

    def test_copy_bounds(self, rt):
        src = rt.allocate(1, 8)
        dst = rt.allocate(2, 4)
        with pytest.raises(OffloadError, match="exceeds"):
            rt.copy(src, dst, count=8)


class TestLifecycle:
    def test_shutdown_idempotent(self, rt):
        rt.shutdown()
        rt.shutdown()

    def test_use_after_shutdown(self, rt):
        rt.shutdown()
        with pytest.raises(OffloadError, match="shut down"):
            rt.sync(1, f2f(apps.empty_kernel))

    def test_context_manager(self):
        with Runtime(LocalBackend()) as runtime:
            assert runtime.sync(1, f2f(apps.add, 1, 1)) == 2


class TestBufferPtrValue:
    def test_pointer_arithmetic_bounds(self):
        ptr = BufferPtr(node=1, addr=0, dtype_str="<f8", count=4)
        with pytest.raises(OffloadError):
            _ = ptr + 5
        with pytest.raises(OffloadError):
            ptr.first(5)

    def test_add_preserves_node_and_type(self):
        ptr = BufferPtr(node=2, addr=16, dtype_str="<f4", count=8)
        moved = ptr + 3
        assert moved.node == 2
        assert moved.addr == 16 + 3 * 4
        assert moved.count == 5
        assert moved.dtype == np.float32
