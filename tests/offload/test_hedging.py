"""Hedged-request tests: trigger timing, race outcomes, safety gates.

Staged entirely in-process: :class:`ThreadedStubBackend` gives each
target its own delay, so a slow primary and a fast secondary race
deterministically. The hedge trigger is seeded by feeding the kernel's
profile directly (``recorder.profiles.record``) — the same histogram the
live trigger reads.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import (
    BackendError,
    OffloadError,
    RemoteExecutionError,
)
from repro.ham import f2f
from repro.offload import (
    HedgePolicy,
    Hedger,
    ResiliencePolicy,
    Runtime,
)
from repro.offload.buffer import BufferPtr
from repro.offload.hedging import is_location_free
from repro.telemetry import recorder as telemetry

from tests import apps
from tests.offload.stubs import ThreadedStubBackend

#: Fast backoff so retry paths never dominate test wall-clock.
FAST_RETRY = dict(backoff_base=1e-4, backoff_max=1e-3, jitter=0.0)

#: A hedge policy that triggers as soon as the profile allows.
EAGER_HEDGE = HedgePolicy(percentile=99.0, multiplier=1.0,
                          min_wait=0.0, min_samples=5)


def _seed_profile(kernel: str, seconds: float, samples: int = 10) -> None:
    """Make ``kernel``'s rolling p99 ≈ ``seconds``."""
    recorder = telemetry.enable()
    for _ in range(samples):
        recorder.profiles.record(kernel, int(seconds * 1e9))


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.disable()
    yield
    telemetry.disable()


# ---------------------------------------------------------------------------
# HedgePolicy / gates
# ---------------------------------------------------------------------------


class TestPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [dict(percentile=0.0), dict(percentile=101.0), dict(multiplier=0.0),
         dict(min_wait=-1.0), dict(min_samples=0)],
    )
    def test_validation(self, kwargs):
        with pytest.raises(OffloadError):
            HedgePolicy(**kwargs)

    def test_location_free(self):
        assert is_location_free(f2f(apps.add, 1, 2))
        ptr = BufferPtr(node=1, addr=0x1000, dtype_str="<f8", count=8)
        assert not is_location_free(f2f(apps.sum_buffer, ptr, 8))


class TestTrigger:
    def test_no_telemetry_means_no_hedge(self):
        assert Hedger(EAGER_HEDGE).delay_for("anything") is None

    def test_insufficient_samples_means_no_hedge(self):
        _seed_profile("thin", 0.01, samples=3)
        assert Hedger(EAGER_HEDGE).delay_for("thin") is None

    def test_trigger_tracks_percentile_and_floor(self):
        _seed_profile("steady", 0.05, samples=50)
        delay = Hedger(EAGER_HEDGE).delay_for("steady")
        assert delay is not None
        assert delay == pytest.approx(0.05, rel=0.30)
        floored = Hedger(
            HedgePolicy(min_wait=1.0, min_samples=5)
        ).delay_for("steady")
        assert floored == 1.0


# ---------------------------------------------------------------------------
# The race (unit, fake futures)
# ---------------------------------------------------------------------------


class _FakeFuture:
    """Duck-typed future: ready after ``ready_at``, then value or error."""

    def __init__(self, value=None, error=None, ready_after=0.0):
        self._value = value
        self._error = error
        self._ready_at = time.monotonic() + ready_after

    def test(self):
        return time.monotonic() >= self._ready_at

    def get(self, timeout=None):
        while not self.test():
            time.sleep(1e-4)
        if self._error is not None:
            raise self._error
        return self._value


class TestRace:
    def test_faster_arm_wins(self):
        hedger = Hedger(EAGER_HEDGE)
        primary = _FakeFuture(value="slow", ready_after=0.3)
        hedge = _FakeFuture(value="fast", ready_after=0.0)
        assert hedger._race(primary, hedge, None) == "fast"
        assert hedger.hedge_wins == 1

    def test_primary_win_does_not_count_as_hedge_win(self):
        hedger = Hedger(EAGER_HEDGE)
        primary = _FakeFuture(value="primary", ready_after=0.0)
        hedge = _FakeFuture(value="late", ready_after=0.3)
        assert hedger._race(primary, hedge, None) == "primary"
        assert hedger.hedge_wins == 0

    def test_remote_error_propagates_immediately(self):
        hedger = Hedger(EAGER_HEDGE)
        primary = _FakeFuture(
            error=RemoteExecutionError("app bug"), ready_after=0.0
        )
        hedge = _FakeFuture(value="never", ready_after=10.0)
        start = time.monotonic()
        with pytest.raises(RemoteExecutionError):
            hedger._race(primary, hedge, None)
        assert time.monotonic() - start < 1.0

    def test_transport_death_of_one_arm_keeps_race_alive(self):
        hedger = Hedger(EAGER_HEDGE)
        primary = _FakeFuture(error=BackendError("died"), ready_after=0.0)
        hedge = _FakeFuture(value="survivor", ready_after=0.05)
        assert hedger._race(primary, hedge, None) == "survivor"

    def test_both_arms_dead_raises_last_transport_error(self):
        hedger = Hedger(EAGER_HEDGE)
        primary = _FakeFuture(error=BackendError("p died"), ready_after=0.0)
        hedge = _FakeFuture(error=BackendError("h died"), ready_after=0.0)
        with pytest.raises(BackendError):
            hedger._race(primary, hedge, None)


# ---------------------------------------------------------------------------
# End-to-end through the runtime
# ---------------------------------------------------------------------------


def _hedging_runtime(delay, **policy_kwargs):
    backend = ThreadedStubBackend(num_targets=2, delay=delay)
    policy = ResiliencePolicy(hedge=EAGER_HEDGE, **FAST_RETRY, **policy_kwargs)
    return Runtime(backend, policy=policy), backend


class TestEndToEnd:
    def test_hedge_cuts_straggler_latency(self):
        functor = f2f(apps.add, 20, 22)
        _seed_profile(functor.type_name, 0.02)
        # Node 1 straggles; node 2 answers promptly.
        runtime, backend = _hedging_runtime({1: 1.5, 2: 0.0})
        start = time.monotonic()
        assert runtime.sync(1, functor, idempotent=True) == 42
        elapsed = time.monotonic() - start
        assert elapsed < 1.0, f"hedge did not cut the tail ({elapsed:.2f}s)"
        stats = runtime.stats()
        assert stats["hedging"] == {"hedges": 1, "hedge_wins": 1}
        # Both targets really executed the duplicate (idempotent by
        # contract), but the caller saw exactly one result.
        assert [node for node, _ in backend.posted] == [1, 2]
        runtime.shutdown()

    def test_fast_primary_never_hedges(self):
        functor = f2f(apps.add, 1, 1)
        _seed_profile(functor.type_name, 0.2)
        runtime, backend = _hedging_runtime(0.0)
        assert runtime.sync(1, functor, idempotent=True) == 2
        assert runtime.stats()["hedging"]["hedges"] == 0
        assert len(backend.posted) == 1
        runtime.shutdown()

    def test_non_idempotent_never_hedges(self):
        functor = f2f(apps.add, 1, 2)
        _seed_profile(functor.type_name, 0.01)
        runtime, backend = _hedging_runtime({1: 0.3, 2: 0.0})
        assert runtime.sync(1, functor) == 3
        assert runtime.stats()["hedging"]["hedges"] == 0
        assert len(backend.posted) == 1
        runtime.shutdown()

    def test_cold_profile_never_hedges(self):
        # No profile seeding: the trigger has no data and stays out.
        runtime, backend = _hedging_runtime({1: 0.2, 2: 0.0})
        assert runtime.sync(1, f2f(apps.add, 3, 4), idempotent=True) == 7
        assert runtime.stats()["hedging"]["hedges"] == 0
        assert len(backend.posted) == 1
        runtime.shutdown()

    def test_two_node_topology_never_hedges(self):
        functor = f2f(apps.add, 5, 6)
        _seed_profile(functor.type_name, 0.01)
        backend = ThreadedStubBackend(num_targets=1, delay=0.3)
        policy = ResiliencePolicy(hedge=EAGER_HEDGE, **FAST_RETRY)
        runtime = Runtime(backend, policy=policy)
        assert runtime.sync(1, functor, idempotent=True) == 11
        assert runtime.stats()["hedging"]["hedges"] == 0
        runtime.shutdown()

    def test_hedge_transport_failure_does_not_fail_operation(self):
        functor = f2f(apps.echo, "ok")
        _seed_profile(functor.type_name, 0.01)

        class _HedgeRefusingBackend(ThreadedStubBackend):
            def post_invoke(self, node, functor):
                if node == 2:
                    raise BackendError("secondary refused the connection")
                return super().post_invoke(node, functor)

        backend = _HedgeRefusingBackend(num_targets=2, delay={1: 0.3})
        policy = ResiliencePolicy(hedge=EAGER_HEDGE, **FAST_RETRY)
        runtime = Runtime(backend, policy=policy)
        assert runtime.sync(1, functor, idempotent=True) == "ok"
        assert runtime.stats()["hedging"]["hedges"] == 0
        runtime.shutdown()

    def test_buffer_bound_functor_never_hedges(self):
        ptr = BufferPtr(node=1, addr=0x10, dtype_str="<f8", count=4)
        functor = f2f(apps.sum_buffer, ptr, 4)
        _seed_profile(functor.type_name, 0.01)
        runtime, backend = _hedging_runtime({1: 0.2, 2: 0.0})
        # The stub has no target memory, so execution fails remotely —
        # what matters here is that no duplicate was ever posted.
        with pytest.raises(OffloadError):
            runtime.sync(1, functor, idempotent=True)
        assert runtime.stats()["hedging"]["hedges"] == 0
        assert all(node == 1 for node, _ in backend.posted)
        runtime.shutdown()
