"""One deadline, one budget: the resilient sync path must not re-arm
the full policy deadline on every retry or window wait.

Regression tests for the budget fix: ``Runtime.sync`` computes the
absolute expiry once, threads the *remaining* time into each attempt's
reply wait, and scopes window-slot waits to the same instant via
:func:`repro.backends.base.window_budget`.
"""

import time

import pytest

from repro.backends import LocalBackend
from repro.backends.base import window_budget
from repro.errors import OffloadTimeoutError
from repro.ham import f2f
from repro.offload import Runtime
from repro.offload.resilience import ResiliencePolicy

from tests import apps


class _NeverDone:
    """A handle whose reply never arrives; records the waits it got."""

    correlation_id = 0

    def __init__(self, waits):
        self._waits = waits

    def test(self):
        return False

    def wait(self, timeout=None):
        self._waits.append(timeout)
        time.sleep(0.05)
        raise OffloadTimeoutError("reply never arrives")


class _StallingBackend(LocalBackend):
    """Posts succeed; every reply wait times out."""

    def __init__(self):
        super().__init__()
        self.waits: list[float | None] = []

    def post_invoke(self, node, functor):
        return _NeverDone(self.waits)


class TestRetryBudget:
    def test_retries_share_one_deadline(self):
        deadline = 0.4
        policy = ResiliencePolicy(
            deadline=deadline, max_retries=10, failover=False,
            backoff_base=1e-4, backoff_max=1e-3, jitter=0.0,
            degraded_after=1, down_after=1000,
        )
        backend = _StallingBackend()
        runtime = Runtime(backend, policy=policy)
        try:
            start = time.monotonic()
            with pytest.raises(OffloadTimeoutError):
                runtime.sync(1, f2f(apps.empty_kernel), idempotent=True)
            elapsed = time.monotonic() - start
        finally:
            runtime.shutdown()
        # The whole resilient operation fits in roughly one deadline —
        # with per-attempt re-arming, 10 retries would take ~4 s.
        assert elapsed < 2 * deadline
        # Each attempt saw strictly less budget than the one before.
        assert backend.waits, "no attempt ever waited"
        assert backend.waits[0] <= deadline + 0.01
        for earlier, later in zip(backend.waits, backend.waits[1:]):
            assert later < earlier

    def test_without_deadline_waits_stay_unbounded(self):
        policy = ResiliencePolicy(
            max_retries=2, failover=False,
            backoff_base=1e-4, backoff_max=1e-3, jitter=0.0,
            degraded_after=1, down_after=1000,
        )
        backend = _StallingBackend()
        runtime = Runtime(backend, policy=policy)
        try:
            with pytest.raises(OffloadTimeoutError):
                runtime.sync(1, f2f(apps.empty_kernel), idempotent=True)
        finally:
            runtime.shutdown()
        # No policy deadline: every attempt waits without a timeout,
        # exactly the pre-budget behavior.
        assert backend.waits == [None, None, None]


class TestWindowBudget:
    def test_budget_bounds_window_wait(self):
        backend = LocalBackend()
        try:
            backend.set_inflight_limit(1)
            backend.window.acquire()  # occupy the only slot
            start = time.monotonic()
            with window_budget(time.monotonic() + 0.1):
                with pytest.raises(OffloadTimeoutError):
                    backend._admit_invoke(label="probe")
            elapsed = time.monotonic() - start
            # The static window timeout is None (wait forever): only
            # the scoped budget can have bounded this.
            assert 0.05 < elapsed < 1.0
        finally:
            backend.window.cancel()
            backend.shutdown()

    def test_exhausted_budget_fails_fast(self):
        backend = LocalBackend()
        try:
            backend.set_inflight_limit(1)
            backend.window.acquire()
            start = time.monotonic()
            with window_budget(time.monotonic() - 0.01):
                with pytest.raises(OffloadTimeoutError, match="budget exhausted"):
                    backend._admit_invoke(label="probe")
            assert time.monotonic() - start < 0.05
        finally:
            backend.window.cancel()
            backend.shutdown()

    def test_budget_tighter_than_static_timeout_wins(self):
        backend = LocalBackend()
        try:
            backend.set_inflight_limit(1)
            backend.set_window_timeout(30.0)
            backend.window.acquire()
            start = time.monotonic()
            with window_budget(time.monotonic() + 0.1):
                with pytest.raises(OffloadTimeoutError):
                    backend._admit_invoke(label="probe")
            assert time.monotonic() - start < 1.0
        finally:
            backend.window.cancel()
            backend.shutdown()

    def test_no_scope_is_a_no_op(self):
        backend = LocalBackend()
        try:
            with window_budget(None):
                assert backend.window.in_flight == 0
                backend._admit_invoke(label="probe")
            backend.window.cancel()
        finally:
            backend.shutdown()
