"""End-to-end keyword-argument offloading across backends."""

import numpy as np
import pytest

from repro.backends import DmaCommBackend, LocalBackend
from repro.ham import f2f, offloadable
from repro.offload import Runtime


@offloadable
def windowed_sum(buf, *, start: int = 0, stop: int | None = None, scale=1.0):
    """Kernel exercising keyword arguments, including a BufferPtr kwarg-free mix."""
    view = np.asarray(buf)[start:stop]
    return float(view.sum() * scale)


@offloadable
def axpy_into(y, *, x, alpha: float):
    """BufferPtr passed as a keyword argument (resolver must handle it)."""
    yv = np.asarray(y)
    yv += alpha * np.asarray(x)
    return float(yv[0])


@pytest.mark.parametrize("backend_cls", [LocalBackend, DmaCommBackend])
class TestKwargsOffload:
    def test_scalar_kwargs(self, backend_cls):
        runtime = Runtime(backend_cls())
        ptr = runtime.allocate(1, 10)
        runtime.put(np.arange(10.0), ptr)
        result = runtime.sync(1, f2f(windowed_sum, ptr, start=2, stop=5, scale=10.0))
        assert result == pytest.approx((2 + 3 + 4) * 10.0)
        runtime.shutdown()

    def test_default_kwargs(self, backend_cls):
        runtime = Runtime(backend_cls())
        ptr = runtime.allocate(1, 4)
        runtime.put(np.ones(4), ptr)
        assert runtime.sync(1, f2f(windowed_sum, ptr)) == pytest.approx(4.0)
        runtime.shutdown()

    def test_buffer_ptr_as_kwarg(self, backend_cls):
        runtime = Runtime(backend_cls())
        x = runtime.allocate(1, 8)
        y = runtime.allocate(1, 8)
        runtime.put(np.full(8, 3.0), x)
        runtime.put(np.ones(8), y)
        first = runtime.sync(1, f2f(axpy_into, y, x=x, alpha=2.0))
        assert first == pytest.approx(7.0)
        back = np.zeros(8)
        runtime.get(y, back)
        np.testing.assert_allclose(back, 7.0)
        runtime.shutdown()
