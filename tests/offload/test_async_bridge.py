"""The asyncio bridge: ``await future`` end to end.

Futures are awaitable (paper Table II ``future<T>`` + an event-loop
face): the reactor thread completes the handle, a done-callback pokes
the asyncio loop, the task resumes. Semantics must be identical to the
blocking ``get`` — same values, same remote-exception re-raise, same
stays-pending behavior on abandonment.
"""

import asyncio

import pytest

from repro.backends import LocalBackend, TcpBackend, spawn_local_server
from repro.errors import RemoteExecutionError
from repro.ham import f2f
from repro.offload import Runtime
from repro.offload.future import CompletedHandle, Future

from tests import apps


@pytest.fixture()
def tcp_rt():
    process, address = spawn_local_server()
    backend = TcpBackend(address, on_shutdown=lambda: process.join(timeout=5))
    runtime = Runtime(backend)
    yield runtime
    runtime.shutdown()
    if process.is_alive():  # pragma: no cover - cleanup safety
        process.terminate()


class TestAwaitOverTcp:
    def test_await_single(self, tcp_rt):
        async def main():
            return await tcp_rt.async_(1, f2f(apps.add, 40, 2))

        assert asyncio.run(main()) == 42

    def test_gather_many(self, tcp_rt):
        async def main():
            futures = [tcp_rt.async_(1, f2f(apps.add, i, 1)) for i in range(64)]
            return await asyncio.gather(*futures)

        assert asyncio.run(main()) == [i + 1 for i in range(64)]

    def test_await_reraises_remote_error(self, tcp_rt):
        async def main():
            await tcp_rt.async_(1, f2f(apps.raise_value_error, "awaited boom"))

        with pytest.raises(RemoteExecutionError, match="awaited boom"):
            asyncio.run(main())

    def test_await_done_future_is_immediate(self, tcp_rt):
        future = tcp_rt.async_(1, f2f(apps.add, 1, 1))
        assert future.get() == 2

        async def main():
            # Already settled: the awaitable short-circuits, no loop
            # round-trip, value from the cache.
            return await future

        assert asyncio.run(main()) == 2

    def test_cancelled_await_leaves_future_pending(self, tcp_rt):
        async def main():
            future = tcp_rt.async_(1, f2f(apps.sleep_then, 0.2, "late"))

            async def waiter():
                return await future

            task = asyncio.ensure_future(waiter())
            await asyncio.sleep(0.01)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            # Abandoning the await is like a timed-out get: the reply
            # can still be collected afterwards.
            return future.get(timeout=10.0)

        assert asyncio.run(main()) == "late"

    def test_await_mixes_with_blocking_get(self, tcp_rt):
        async def main():
            first = tcp_rt.async_(1, f2f(apps.add, 1, 2))
            second = tcp_rt.async_(1, f2f(apps.add, 3, 4))
            return await first, second

        got, second = asyncio.run(main())
        assert got == 3
        assert second.get() == 7


class TestAwaitDegenerateHandles:
    def test_await_local_backend_future(self):
        runtime = Runtime(LocalBackend())
        try:

            async def main():
                # Local offloads complete at post time: the await path
                # must resolve without ever suspending.
                return await runtime.async_(1, f2f(apps.add, 2, 3))

            assert asyncio.run(main()) == 5
        finally:
            runtime.shutdown()

    def test_await_completed_handle_polls(self):
        # CompletedHandle has no add_done_callback: exercises the
        # poll fallback's fast exit.
        future = Future(CompletedHandle("ready"))

        async def main():
            return await future

        assert asyncio.run(main()) == "ready"

    def test_await_pollable_handle_without_callbacks(self):
        # A handle that completes externally and only supports
        # test()/wait(): the poll fallback must pick the value up.
        class PollOnly:
            def __init__(self):
                self.done = False

            def test(self):
                return self.done

            def wait(self, timeout=None):
                assert self.done
                return "polled"

        handle = PollOnly()
        future = Future(handle)

        async def main():
            async def complete_later():
                await asyncio.sleep(0.02)
                handle.done = True

            task = asyncio.ensure_future(complete_later())
            value = await future
            await task
            return value

        assert asyncio.run(main()) == "polled"
