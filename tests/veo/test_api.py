"""Tests for the VEO API layer (proc, context, requests)."""

import pytest

from repro.errors import VeoCommandError, VeoProcError
from repro.machine import AuroraMachine
from repro.veo import RequestState, VeoProc
from repro.veos.loader import VeLibrary


@pytest.fixture()
def machine():
    return AuroraMachine(num_ves=1)


@pytest.fixture()
def proc(machine):
    return VeoProc(machine, 0)


@pytest.fixture()
def lib():
    library = VeLibrary("libapp")
    library.add_function("empty", lambda: None)
    library.add_function("double", lambda x: 2 * x, duration=1e-6)
    library.add_function("fail", lambda: (_ for _ in ()).throw(ValueError("ve boom")))
    return library


class TestProcLifecycle:
    def test_create_charges_time(self, machine):
        VeoProc(machine, 0)
        assert machine.sim.now >= machine.timing.veos_proc_create_time

    def test_destroy_then_use_rejected(self, machine, proc):
        proc.destroy()
        with pytest.raises(VeoProcError):
            proc.alloc_mem(64)

    def test_memory_alloc_free(self, proc):
        addr = proc.alloc_mem(4096)
        proc.free_mem(addr)
        with pytest.raises(VeoProcError):
            proc.free_mem(addr)


class TestMemoryTransfers:
    def test_write_read_roundtrip(self, proc):
        addr = proc.alloc_mem(1024)
        payload = bytes(range(256)) * 4
        proc.write_mem(addr, payload)
        assert proc.read_mem(addr, len(payload)) == payload

    def test_write_charges_veo_latency(self, machine, proc):
        addr = proc.alloc_mem(64)
        before = machine.sim.now
        proc.write_mem(addr, b"x" * 64)
        elapsed = machine.sim.now - before
        assert elapsed >= machine.timing.veo_write_base_latency

    def test_write_slower_than_read_small(self, machine, proc):
        addr = proc.alloc_mem(64)
        t0 = machine.sim.now
        proc.write_mem(addr, b"x" * 8)
        t_write = machine.sim.now - t0
        t0 = machine.sim.now
        proc.read_mem(addr, 8)
        t_read = machine.sim.now - t0
        assert t_write > t_read

    def test_small_pages_slower_for_large_transfers(self, machine, proc):
        size = 8 * 2**20
        machine_b = AuroraMachine(num_ves=1)
        proc_b = VeoProc(machine_b, 0)
        addr = proc.alloc_mem(size)
        addr_b = proc_b.alloc_mem(size)

        t0 = machine.sim.now
        proc.write_mem(addr, bytes(size), huge_pages=True)
        t_huge = machine.sim.now - t0

        t0 = machine_b.sim.now
        proc_b.write_mem(addr_b, bytes(size), huge_pages=False)
        t_small = machine_b.sim.now - t0
        assert t_small > t_huge

    def test_staging_is_freed(self, machine, proc):
        addr = proc.alloc_mem(64)
        live_before = machine.vh.ddr.live_allocations
        proc.write_mem(addr, b"y" * 64)
        proc.read_mem(addr, 64)
        assert machine.vh.ddr.live_allocations == live_before

    def test_transfer_region(self, machine, proc):
        region = machine.vh.ddr
        staging = region.allocate(128)
        region.write(staging.addr, b"z" * 128)
        ve_addr = proc.alloc_mem(128)
        proc.transfer_region(region, staging.addr, ve_addr, 128, direction="vh_to_ve")
        assert proc.read_mem(ve_addr, 128) == b"z" * 128
        with pytest.raises(ValueError):
            proc.transfer_region(region, 0, ve_addr, 8, direction="bad")


class TestCalls:
    def test_sync_call_roundtrip(self, machine, proc, lib):
        handle = proc.load_library(lib)
        ctx = proc.open_context()
        assert ctx.call_sync(handle.get_symbol("double"), 21) == 42

    def test_empty_call_cost_is_fig9_veo_anchor(self, machine, proc, lib):
        handle = proc.load_library(lib)
        ctx = proc.open_context()
        sym = handle.get_symbol("empty")
        ctx.call_sync(sym)  # warm-up
        before = machine.sim.now
        ctx.call_sync(sym)
        elapsed = machine.sim.now - before
        assert elapsed == pytest.approx(machine.timing.veo_call_time(), rel=0.05)

    def test_async_requests_fifo(self, machine, proc, lib):
        handle = proc.load_library(lib)
        ctx = proc.open_context()
        sym = handle.get_symbol("double")
        requests = [ctx.call_async(sym, i) for i in range(5)]
        assert all(r.state is RequestState.PENDING for r in requests)
        results = [r.wait_result() for r in requests]
        assert results == [0, 2, 4, 6, 8]

    def test_peek_result(self, machine, proc, lib):
        handle = proc.load_library(lib)
        ctx = proc.open_context()
        request = ctx.call_async(handle.get_symbol("empty"))
        state, _ = request.peek_result()
        assert state is RequestState.PENDING
        request.wait_result()
        state, _ = request.peek_result()
        assert state is RequestState.DONE

    def test_ve_side_exception_propagates(self, machine, proc, lib):
        handle = proc.load_library(lib)
        ctx = proc.open_context()
        with pytest.raises(VeoCommandError) as excinfo:
            ctx.call_sync(handle.get_symbol("fail"))
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_closed_context_rejects_calls(self, machine, proc, lib):
        handle = proc.load_library(lib)
        ctx = proc.open_context()
        ctx.close()
        with pytest.raises(VeoProcError):
            ctx.call_async(handle.get_symbol("empty"))

    def test_server_start(self, machine, proc):
        lib = VeLibrary("libham")
        ticks = []

        def ham_main():
            while True:
                yield machine.sim.timeout(1e-3)
                ticks.append(machine.sim.now)

        lib.add_server("ham_main", ham_main)
        handle = proc.load_library(lib)
        server = proc.start_server(handle.get_symbol("ham_main"))
        machine.sim.run(until=machine.sim.now + 5e-3)
        assert server.is_alive
        assert len(ticks) >= 4

    def test_destroy_closes_contexts(self, machine, proc, lib):
        handle = proc.load_library(lib)
        ctx = proc.open_context()
        proc.destroy()
        assert not ctx.is_open
