"""Tests for asynchronous VEO memory transfers (veo_async_read/write_mem)."""

import pytest

from repro.machine import AuroraMachine
from repro.veo import RequestState, VeoProc
from repro.veos.loader import VeLibrary


@pytest.fixture()
def machine():
    return AuroraMachine(num_ves=1)


@pytest.fixture()
def proc(machine):
    return VeoProc(machine, 0)


@pytest.fixture()
def ctx(proc):
    return proc.open_context()


class TestAsyncTransfers:
    def test_async_write_then_read_roundtrip(self, proc, ctx):
        addr = proc.alloc_mem(256)
        payload = bytes(range(256))
        write_req = ctx.async_write_mem(addr, payload)
        read_req = ctx.async_read_mem(addr, 256)
        assert write_req.wait_result() is None
        assert read_req.wait_result() == payload

    def test_async_returns_before_completion(self, machine, proc, ctx):
        addr = proc.alloc_mem(64)
        before = machine.sim.now
        request = ctx.async_write_mem(addr, b"x" * 64)
        # Posting is immediate in simulated time.
        assert machine.sim.now == before
        assert request.state is RequestState.PENDING
        request.wait_result()
        assert machine.sim.now > before

    def test_transfers_and_calls_share_fifo_queue(self, proc, ctx):
        lib = VeLibrary("l")
        seen = []
        lib.add_function("mark", lambda v: seen.append(v))
        handle = proc.load_library(lib)
        addr = proc.alloc_mem(8)
        first = ctx.async_write_mem(addr, b"A" * 8)
        call = ctx.call_async(handle.get_symbol("mark"), 1)
        second = ctx.async_read_mem(addr, 8)
        assert second.wait_result() == b"A" * 8  # implies all earlier done
        assert first.state is RequestState.DONE
        assert call.state is RequestState.DONE
        assert seen == [1]

    def test_async_transfer_charges_veo_latency(self, machine, proc, ctx):
        addr = proc.alloc_mem(8)
        request = ctx.async_write_mem(addr, b"y" * 8)
        start = machine.sim.now
        request.wait_result()
        assert machine.sim.now - start >= machine.timing.veo_write_base_latency * 0.9

    def test_failed_transfer_reports_error(self, proc, ctx):
        from repro.errors import VeoCommandError

        # Address far outside the (simulated) VE memory.
        request = ctx.async_write_mem(2**40, b"z" * 8)
        with pytest.raises(VeoCommandError):
            request.wait_result()

    def test_staging_freed_after_async_ops(self, machine, proc, ctx):
        live_before = machine.vh.ddr.live_allocations
        addr = proc.alloc_mem(64)
        ctx.async_write_mem(addr, b"q" * 64).wait_result()
        ctx.async_read_mem(addr, 64).wait_result()
        assert machine.vh.ddr.live_allocations == live_before

    def test_closed_context_rejects_transfers(self, proc, ctx):
        from repro.errors import VeoProcError

        ctx.close()
        with pytest.raises(VeoProcError):
            ctx.async_write_mem(0, b"a")
