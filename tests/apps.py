"""Shared offloadable functions used by backend and integration tests.

They live in an importable module (not inside test functions) because the
TCP backend executes them in a forked server process, and because every
process image must derive identical type names from them — the same rule
the paper imposes on C++ sources ("build the whole application for both
sides").
"""

from __future__ import annotations

import time

import numpy as np

from repro.ham import offloadable


@offloadable
def empty_kernel() -> None:
    """The empty kernel of the paper's Fig. 9."""
    return None


@offloadable
def add(a, b):
    """Tiny scalar kernel."""
    return a + b


@offloadable
def echo(value):
    """Returns its argument (serialization round trip through the wire)."""
    return value


@offloadable
def inner_product(a, b, n: int) -> float:
    """The paper's Fig. 2 example kernel: dot product of two buffers."""
    return float(np.dot(np.asarray(a)[:n], np.asarray(b)[:n]))


@offloadable
def scale_buffer(buf, factor: float) -> int:
    """Mutates target memory in place; returns the element count."""
    array = np.asarray(buf)
    array *= factor
    return int(array.size)


@offloadable
def sleep_then(seconds: float, value):
    """Sleep (releasing the GIL), then return ``value``.

    The latency kernel for pipelining tests: inverted sleep durations
    across a batch force replies to complete out of request order on a
    concurrent target.
    """
    time.sleep(seconds)
    return value


@offloadable
def raise_value_error(message: str):
    """Always fails — exercises remote error propagation."""
    raise ValueError(message)


@offloadable
def sum_buffer(buf) -> float:
    """Reduces a target buffer."""
    return float(np.asarray(buf).sum())
