"""Cross-module integration tests: complete applications end to end."""

import numpy as np
import pytest

from repro.backends import DmaCommBackend, LocalBackend, VeoCommBackend
from repro.ham import f2f
from repro.hw.roofline import VE_DEVICE
from repro.machine import AuroraMachine
from repro.offload import Runtime
from repro.workloads import KERNELS, jacobi_sweep

from tests import apps


class TestJacobiSolverEndToEnd:
    """A full iterative solver offloaded through the DMA protocol:
    real numerics on simulated VE memory, roofline-timed kernels,
    double-buffered pointer swapping."""

    N = 24
    SWEEPS = 60

    def _solve(self, runtime, backend=None):
        n = self.N
        grid = np.zeros((n, n))
        grid[0, :] = 1.0
        if backend is not None:
            kernel = KERNELS["jacobi"]
            backend.kernel_cost_fn = lambda functor: kernel.time_on(VE_DEVICE, n)
        g = runtime.allocate(1, n * n)
        s = runtime.allocate(1, n * n)
        runtime.put(grid.ravel(), g)
        runtime.put(grid.ravel(), s)
        src, dst = g, s
        residuals = []
        for _ in range(self.SWEEPS):
            residuals.append(runtime.sync(1, f2f(jacobi_sweep, src, dst, n)))
            src, dst = dst, src
        out = np.zeros(n * n)
        runtime.get(src, out)
        runtime.free(g)
        runtime.free(s)
        return out.reshape(n, n), residuals

    def _reference(self):
        n = self.N
        u = np.zeros((n, n))
        u[0, :] = 1.0
        for _ in range(self.SWEEPS):
            v = u.copy()
            v[1:-1, 1:-1] = 0.25 * (
                u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
            )
            u = v
        return u

    def test_solution_matches_host_reference(self):
        backend = DmaCommBackend()
        runtime = Runtime(backend)
        solution, residuals = self._solve(runtime, backend)
        runtime.shutdown()
        np.testing.assert_allclose(solution, self._reference(), atol=1e-12)
        assert residuals[-1] < residuals[0]

    def test_same_solution_on_every_backend(self):
        solutions = []
        for backend_factory in (
            lambda: (LocalBackend(), None),
            lambda: (DmaCommBackend(), "sim"),
            lambda: (VeoCommBackend(), "sim"),
        ):
            backend, kind = backend_factory()
            runtime = Runtime(backend)
            solution, _ = self._solve(runtime, backend if kind else None)
            runtime.shutdown()
            solutions.append(solution)
        np.testing.assert_array_equal(solutions[0], solutions[1])
        np.testing.assert_array_equal(solutions[0], solutions[2])

    def test_simulated_runtime_dominated_by_protocol_for_tiny_grids(self):
        """For a 24×24 grid the Jacobi kernel is ~0.4 µs on the VE —
        the offload protocol dominates, which is exactly the regime the
        paper's DMA protocol targets."""
        backend = DmaCommBackend()
        runtime = Runtime(backend)
        sim = backend.sim
        start = sim.now
        self._solve(runtime, backend)
        elapsed = sim.now - start
        runtime.shutdown()
        per_sweep = elapsed / self.SWEEPS
        # Within a few x of the bare offload cost (plus puts/gets amortized).
        assert 5e-6 < per_sweep < 60e-6


class TestHeterogeneousMachineScenario:
    def test_offload_while_bulk_transfer_in_flight(self):
        """An async VEO bulk write and protocol offloads interleave on
        one machine without corrupting either."""
        machine = AuroraMachine(num_ves=1, ve_memory_bytes=32 * 2**20)
        backend = DmaCommBackend(machine)
        runtime = Runtime(backend)
        proc = backend.proc
        ctx = proc.open_context()
        bulk_addr = proc.alloc_mem(4 * 2**20)
        payload = np.random.default_rng(0).integers(
            0, 256, 4 * 2**20, dtype=np.uint8
        ).tobytes()
        bulk = ctx.async_write_mem(bulk_addr, payload)
        results = [runtime.sync(1, f2f(apps.add, i, 1)) for i in range(5)]
        assert results == [1, 2, 3, 4, 5]
        assert bulk.wait_result() is None
        assert proc.read_mem(bulk_addr, 64) == payload[:64]
        runtime.shutdown()

    def test_two_independent_backends_on_two_machines(self):
        rt_a = Runtime(DmaCommBackend(AuroraMachine()))
        rt_b = Runtime(VeoCommBackend(AuroraMachine()))
        assert rt_a.sync(1, f2f(apps.add, 1, 2)) == 3
        assert rt_b.sync(1, f2f(apps.add, 3, 4)) == 7
        # Clocks advanced independently.
        assert rt_a.backend.sim is not rt_b.backend.sim
        rt_a.shutdown()
        rt_b.shutdown()
