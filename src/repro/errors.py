"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class. Sub-hierarchies mirror the
package layout: simulation-kernel errors, hardware-model errors, VEO API
errors (mirroring the C API's negative return codes), HAM messaging errors
and offload-runtime errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


# --------------------------------------------------------------------------
# simulation kernel
# --------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event-simulation kernel errors."""


class SimTimeError(SimulationError):
    """An event was scheduled in the past or with a negative delay."""


class DeadlockError(SimulationError):
    """``run_until`` could not make progress: no runnable events remain."""


class ProcessError(SimulationError):
    """A simulation process misbehaved (e.g. yielded a non-event)."""


# --------------------------------------------------------------------------
# hardware models
# --------------------------------------------------------------------------


class HardwareError(ReproError):
    """Base class for hardware-model errors."""


class MemoryError_(HardwareError):
    """Base class for simulated-memory errors.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class OutOfMemoryError(MemoryError_):
    """An allocation request could not be satisfied."""


class BadAddressError(MemoryError_):
    """An access touched memory outside any live allocation."""


class DoubleFreeError(MemoryError_):
    """``free`` was called twice for the same allocation."""


class TranslationError(HardwareError):
    """A virtual address could not be translated (page not mapped)."""


class DmaError(HardwareError):
    """A DMA descriptor was invalid or referenced unregistered memory."""


class DmaatbError(DmaError):
    """DMAATB registration failed (exhausted entries, bad segment, ...)."""


# --------------------------------------------------------------------------
# VEOS / VEO substrate
# --------------------------------------------------------------------------


class VeosError(ReproError):
    """Base class for VEOS substrate errors."""


class VeoError(ReproError):
    """Base class for VEO API errors (mirrors ``VEO_COMMAND_ERROR`` &c.)."""


class VeoProcError(VeoError):
    """VE process creation/teardown failed or handle is stale."""


class VeoSymbolError(VeoError):
    """``veo_get_sym`` could not resolve a symbol in the loaded library."""


class VeoCommandError(VeoError):
    """An asynchronous VEO command failed on the VE side."""


# --------------------------------------------------------------------------
# HAM / offload
# --------------------------------------------------------------------------


class HamError(ReproError):
    """Base class for Heterogeneous-Active-Message errors."""


class HandlerKeyError(HamError):
    """A handler key received over the wire has no local registration."""


class SerializationError(HamError):
    """A functor or argument could not be (de)serialized."""


class OffloadError(ReproError):
    """Base class for HAM-Offload runtime errors."""


class NoSuchNodeError(OffloadError):
    """A ``node_t`` does not name a process of the running application."""


class BackendError(OffloadError):
    """A communication backend failed (disconnect, truncated frame, ...)."""


class OffloadTimeoutError(OffloadError, TimeoutError):
    """An offload operation exceeded its deadline.

    Derives from the builtin :class:`TimeoutError` so generic timeout
    handling (``except TimeoutError``) works alongside ``except
    ReproError``. Raised instead of blocking forever whenever a
    :class:`~repro.offload.resilience.ResiliencePolicy` deadline (or an
    explicit ``timeout=``) is in force and the target goes silent.
    """


class CircuitOpenError(OffloadError):
    """An offload was refused fast because the target node is down.

    The per-node circuit breaker of
    :class:`~repro.offload.resilience.HealthMonitor` opens after repeated
    transport failures; operations fail immediately instead of burning a
    full deadline against a dead node. After ``probe_interval`` seconds a
    single half-open probe is let through to test recovery.
    """


class AdmissionRejectedError(OffloadError):
    """An offload was refused *before* serialization by admission control.

    Raised by the QoS layer (:mod:`repro.offload.qos`) when accepting the
    operation would violate a policy: the tenant is over its rate limit,
    the remaining deadline cannot cover the kernel's observed service
    time, or the scheduler is shedding load. Fast-fail by design — the
    functor is never serialized and no window slot is consumed, so a
    rejected request costs microseconds, not a deadline.
    """


class RateLimitedError(AdmissionRejectedError):
    """The tenant's token bucket is empty (per-tenant rate limit)."""


class DeadlineInfeasibleError(AdmissionRejectedError):
    """The remaining deadline cannot cover the kernel's rolling service
    time estimate, so the work would be dead on arrival."""


class LoadShedError(AdmissionRejectedError):
    """The scheduler shed this operation to protect higher classes.

    Under overload the fair scheduler drops work lowest-priority-first;
    the shed request never entered the in-flight window.
    """


class InjectedFaultError(BackendError):
    """A fault deliberately injected by a chaos/fault-injection layer.

    Raised by :class:`~repro.backends.faulty.FaultInjectingBackend` for
    scheduled drops and disconnects, so tests can tell injected faults
    from organic transport failures.
    """


class CorruptFrameError(BackendError):
    """A received frame failed integrity checks (or was injected corrupt)."""


class RemoteExecutionError(OffloadError):
    """The offloaded function raised on the target.

    The remote traceback string is carried in :attr:`remote_traceback`.
    """

    def __init__(self, message: str, remote_traceback: str = "") -> None:
        super().__init__(message)
        self.remote_traceback = remote_traceback


class FutureError(OffloadError):
    """Misuse of a future (e.g. ``get()`` after the runtime shut down)."""
