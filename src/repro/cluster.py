"""A cluster of SX-Aurora nodes connected by InfiniBand.

The paper's Fig. 3 shows optional IB HCA cards, and its outlook (Sec. VI)
anticipates *remote offloading*: "As soon as NEC's MPI will support
heterogeneous jobs ... HAM-Offload applications will also benefit from
remote offloading capabilities, again without changes in the application
code." This module provides the multi-node substrate for that extension:
several :class:`~repro.machine.AuroraMachine` instances sharing one
simulator, joined by point-to-point IB links
(:class:`~repro.backends.cluster_backend.ClusterBackend` builds on it).
"""

from __future__ import annotations

from repro.hw.params import DEFAULT_TIMING, TimingModel
from repro.hw.specs import MIB
from repro.machine import AuroraMachine
from repro.sim import Simulator

__all__ = ["AuroraCluster"]


class AuroraCluster:
    """``num_nodes`` Aurora machines on one simulated IB fabric.

    Node 0 is the *origin* node (where the host application runs); the
    others are remote. All machines share one simulator, so cross-node
    protocols interleave on a single virtual clock.

    Parameters
    ----------
    num_nodes:
        Machines in the cluster (≥ 1).
    ves_per_node:
        Vector Engines instantiated per machine.
    timing:
        Timing model (shared; includes the IB constants).
    ve_memory_bytes / vh_memory_bytes:
        Per-machine simulated memory capacities.
    """

    def __init__(
        self,
        num_nodes: int = 2,
        *,
        ves_per_node: int = 1,
        timing: TimingModel = DEFAULT_TIMING,
        ve_memory_bytes: int = 64 * MIB,
        vh_memory_bytes: int = 64 * MIB,
    ) -> None:
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self.timing = timing
        self.sim = Simulator()
        self.machines = [
            AuroraMachine(
                num_ves=ves_per_node,
                timing=timing,
                sim=self.sim,
                name=f"node{index}",
                ve_memory_bytes=ve_memory_bytes,
                vh_memory_bytes=vh_memory_bytes,
            )
            for index in range(num_nodes)
        ]
        self.ib_bytes_sent = 0
        self.ib_messages = 0

    @property
    def num_nodes(self) -> int:
        """Number of machines in the cluster."""
        return len(self.machines)

    @property
    def origin(self) -> AuroraMachine:
        """The machine the host application runs on."""
        return self.machines[0]

    def machine(self, index: int) -> AuroraMachine:
        """The ``index``-th machine."""
        return self.machines[index]

    def ib_send(self, payload_len: int, deliver) -> None:
        """Model one IB message: call ``deliver()`` after the transit time.

        ``deliver`` runs as a simulator callback at arrival time; senders
        do not block (one-sided semantics, like the RDMA transports the
        paper's MPI backend would ride on).
        """
        self.ib_bytes_sent += payload_len
        self.ib_messages += 1
        delay = self.timing.ib_transfer_time(payload_len)
        self.sim.timeout(delay).callbacks.append(lambda _ev: deliver())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AuroraCluster {self.num_nodes} nodes, t={self.sim.now * 1e6:.1f}us>"
