"""Shared-memory communication backend — the paper's DMA protocol on real processes.

The paper's headline result (Sec. IV-B: 6.1 µs vs 432 µs per offload)
comes from replacing daemon-mediated VEO calls with direct loads/stores
on a SysV shared-memory segment registered in the VE's DMAATB: the VH
writes a message into the segment, the VE polls a flag word with LHM
loads, executes, and stores the result back with SHM stores. This module
is the same move for the *real* (non-simulated) path: host and target
are ordinary processes sharing one ``multiprocessing.shared_memory``
segment, laid out as a pair of lock-free single-producer/single-consumer
ring buffers — ``h2t`` (host→target requests) and ``t2h`` (target→host
replies). No sockets, no syscalls per message: a post is a few stores
into the segment, a receive is a polling load, exactly like the paper's
LHM/SHM loop.

Segment layout (all integers little-endian)::

    0    magic   u64   "HAMSHM01"
    8    ring capacity u64 (bytes per ring)
    16   state   u32   0 = starting, 1 = ready, 2 = stopped
    20   server pid u32
    24   client pid u32
    64   h2t tail u64      (producer cursor, own cache line)
    128  h2t head u64      (consumer cursor, own cache line)
    192  t2h tail u64
    256  t2h head u64
    512  h2t ring data [capacity]
    512 + capacity  t2h ring data [capacity]

Ring cursors are *monotonic* byte counters (position = counter mod
capacity), so empty is ``head == tail``, full is ``tail - head ==
capacity``, and no slot is ever ambiguous. Only the producer writes the
tail, only the consumer writes the head; aligned 8-byte stores are
atomic on the architectures CPython runs multiprocessing on, which makes
the rings lock-free without any further synchronization. Frames reuse
the TCP wire format (``length:u32 | op:u8 | corr:u64 | body``) including
the correlation-id reply matching, so the whole channel contract —
out-of-order completion, the in-flight window, QoS, hedging, telemetry —
composes unchanged.

Both ends poll with the paper's adaptive *spin-then-sleep* loop: a
bounded busy-spin phase (interleaved with ``sched_yield`` so a same-core
peer gets the CPU immediately — the single-core analogue of the VE's LHM
polling) followed by exponential sleep backoff for idle periods. Tune
with ``spin_yields`` / ``sleep_min`` / ``sleep_max`` on both
:class:`ShmBackend` and :class:`ShmTargetServer`.

Unlike the TCP backend there is **no receiver thread**: the client is
*driven* — whichever caller waits on a reply takes the drive lock and
pumps the reply ring for everybody (leader/follower). On a small host
that removes two context switches per roundtrip, which is exactly where
the latency lives for small messages.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import struct
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable

from repro.backends import eventloop
from repro.backends._target_memory import HostedBuffers
from repro.backends.base import Backend, InvokeHandle
from repro.backends.tcp import (
    DEFAULT_SERVER_WORKERS,
    FRAME_OVERHEAD,
    OP_ALLOC,
    OP_CLOCK,
    OP_FAILURE,
    OP_FREE,
    OP_INTROSPECT,
    OP_INVOKE,
    OP_PING,
    OP_READ,
    OP_REPLY_BIT,
    OP_SHUTDOWN,
    OP_TELEMETRY,
    OP_WRITE,
    _unsampled_reply_context,
)
from repro.errors import BackendError, OffloadTimeoutError, RemoteExecutionError
from repro.ham.execution import build_invoke_parts, execute_message
from repro.ham.functor import Functor
from repro.ham.message import peek_trace_flags
from repro.ham.registry import Catalog, ProcessImage
from repro.offload.buffer import BufferPtr
from repro.offload.node import HOST_NODE, NodeDescriptor, NodeId
from repro.telemetry import context as trace_context
from repro.telemetry import flightrecorder
from repro.telemetry import recorder as telemetry
from repro.telemetry.distributed import ClockSync, align_records
from repro.telemetry.export import dicts_to_records, records_to_dicts

__all__ = [
    "DEFAULT_RING_CAPACITY",
    "ShmBackend",
    "ShmRing",
    "ShmSegment",
    "ShmTargetServer",
    "spawn_shm_server",
]

_LEN = struct.Struct("<I")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
#: ``length | op | corr`` — the in-ring frame prefix (13 bytes).
_PREFIX = struct.Struct("<IBQ")
#: op byte + correlation id, counted inside the frame length.
_FRAME_META = 1 + _U64.size

#: Bytes per ring direction. Frames larger than this cannot be posted;
#: the backend chunks bulk WRITE/READ traffic to stay under it.
DEFAULT_RING_CAPACITY = 1 << 20

#: Busy-spin iterations (each one a ``sched_yield``) before the polling
#: loop starts sleeping. Yields hand the CPU straight to a same-core
#: peer, so the spin phase is cheap even on one core; ~4000 yields span
#: a few milliseconds — more than any healthy peer needs to respond.
DEFAULT_SPIN_YIELDS = 4000
#: First sleep of the backoff phase (seconds).
DEFAULT_SLEEP_MIN = 50e-6
#: Sleep cap of the backoff phase (seconds) — bounds wakeup latency
#: after a long idle period.
DEFAULT_SLEEP_MAX = 2e-3

#: Reactor-backstop pump cadence while replies are flowing (seconds) —
#: the completion latency an asyncio awaiter observes on shm.
_BACKSTOP_MIN = 1e-3
#: Backstop cadence cap while outstanding work is quiet.
_BACKSTOP_MAX = 50e-3

#: Segment header field offsets (see the module docstring's layout).
_OFF_MAGIC = 0
_OFF_CAPACITY = 8
_OFF_STATE = 16
_OFF_SERVER_PID = 20
_OFF_CLIENT_PID = 24
_OFF_H2T_TAIL = 64
_OFF_H2T_HEAD = 128
_OFF_T2H_TAIL = 192
_OFF_T2H_HEAD = 256
_DATA_OFFSET = 512

_MAGIC = int.from_bytes(b"HAMSHM01", "little")

STATE_STARTING = 0
STATE_READY = 1
STATE_STOPPED = 2

#: How many polling iterations pass between liveness/deadline checks.
#: Checking every iteration would double the cost of a spin step for a
#: condition that changes at process-death timescales.
_CHECK_MASK = 63


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - alive, different user
        return True
    return True


def _byte_view(part: Any) -> Any:
    """A flat byte-level view of one frame part (zero-copy)."""
    if isinstance(part, (bytes, bytearray)):
        return part
    view = memoryview(part)
    if view.format != "B" or view.ndim != 1:
        view = view.cast("B")
    return view


class ShmSegment:
    """One shared-memory segment: header plus the two rings.

    Create it on the side that owns the segment's lifetime (the side
    that will eventually :meth:`unlink` it), attach from the other.
    Attaching unregisters the mapping from this process's
    ``resource_tracker`` so a non-owner exiting neither unlinks the
    segment under the owner's feet nor warns about a "leak" it does not
    own. A fork-inherited :class:`ShmSegment` (the
    :func:`spawn_shm_server` path) needs no such fixup — the mapping was
    registered exactly once, in the owner.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, capacity: int, owner: bool
    ) -> None:
        self._shm = shm
        self.capacity = capacity
        self._owner = owner
        self._closed = False
        self._unlinked = False

    @classmethod
    def create(
        cls, capacity: int = DEFAULT_RING_CAPACITY, name: str | None = None
    ) -> "ShmSegment":
        """Create (and own) a fresh segment sized for two rings."""
        if capacity < 4096:
            raise BackendError(
                f"ring capacity must be at least 4096 bytes, got {capacity}"
            )
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=_DATA_OFFSET + 2 * capacity
        )
        buf = shm.buf
        # The kernel zero-fills fresh segments, so cursors/state start 0.
        _U64.pack_into(buf, _OFF_CAPACITY, capacity)
        _U32.pack_into(buf, _OFF_STATE, STATE_STARTING)
        # Magic last: an attacher that sees it sees a complete header.
        _U64.pack_into(buf, _OFF_MAGIC, _MAGIC)
        return cls(shm, capacity, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShmSegment":
        """Attach to an existing segment by name (non-owning)."""
        try:
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError as exc:
            raise BackendError(f"no shared-memory segment named {name!r}") from exc
        # Attaching registered the segment with *this* process's
        # resource tracker, which would unlink it (with a leak warning)
        # when this process exits — but the creator owns the unlink.
        resource_tracker.unregister(shm._name, "shared_memory")
        buf = shm.buf
        if _U64.unpack_from(buf, _OFF_MAGIC)[0] != _MAGIC:
            shm.close()
            raise BackendError(
                f"segment {name!r} is not a HAM shm transport segment"
            )
        capacity = _U64.unpack_from(buf, _OFF_CAPACITY)[0]
        return cls(shm, capacity, owner=False)

    # -- header fields -----------------------------------------------------
    @property
    def name(self) -> str:
        """The segment's system-wide name (attachable by other processes)."""
        return self._shm.name

    @property
    def buf(self) -> memoryview:
        """The raw mapping (rings index into it with absolute offsets)."""
        return self._shm.buf

    @property
    def state(self) -> int:
        return _U32.unpack_from(self._shm.buf, _OFF_STATE)[0]

    @state.setter
    def state(self, value: int) -> None:
        _U32.pack_into(self._shm.buf, _OFF_STATE, value)

    @property
    def server_pid(self) -> int:
        return _U32.unpack_from(self._shm.buf, _OFF_SERVER_PID)[0]

    @server_pid.setter
    def server_pid(self, pid: int) -> None:
        _U32.pack_into(self._shm.buf, _OFF_SERVER_PID, pid)

    @property
    def client_pid(self) -> int:
        return _U32.unpack_from(self._shm.buf, _OFF_CLIENT_PID)[0]

    @client_pid.setter
    def client_pid(self, pid: int) -> None:
        _U32.pack_into(self._shm.buf, _OFF_CLIENT_PID, pid)

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Release this process's mapping (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a live view escaped
            pass

    def unlink(self) -> None:
        """Remove the segment system-wide (owner only, idempotent)."""
        if not self._owner or self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class ShmRing:
    """One lock-free SPSC ring of framed messages inside a segment.

    The producer owns the tail cursor, the consumer the head cursor;
    both are monotonic byte counters living in the segment header (each
    on its own cache line). A frame becomes visible atomically: its
    bytes are copied in first, the tail published last. Waiting — for
    data on the consumer side, for space on the producer side — is the
    adaptive spin-then-sleep loop described in the module docstring.
    """

    def __init__(
        self,
        segment: ShmSegment,
        tail_off: int,
        head_off: int,
        data_off: int,
        *,
        name: str,
        spin_yields: int = DEFAULT_SPIN_YIELDS,
        sleep_min: float = DEFAULT_SLEEP_MIN,
        sleep_max: float = DEFAULT_SLEEP_MAX,
    ) -> None:
        self._buf = segment.buf
        self._tail_off = tail_off
        self._head_off = head_off
        self._data_off = data_off
        self._capacity = segment.capacity
        self._name = name
        self._spin = spin_yields
        self._sleep_min = sleep_min
        self._sleep_max = sleep_max
        # Each side *owns* one cursor — nobody else ever writes it — so
        # its current value can live in a plain attribute and skip a
        # shared-memory load per operation. The peer's cursor must of
        # course always be re-read from the segment.
        self._tail = _U64.unpack_from(self._buf, tail_off)[0]
        self._head = _U64.unpack_from(self._buf, head_off)[0]
        # Spin-vs-sleep accounting: how many waits were satisfied inside
        # the busy-spin phase versus spilling into the sleep backoff (a
        # "stall"), and how long the stalls slept in total. Only touched
        # when a wait actually happened — the no-wait fast path (data or
        # space already there) costs nothing extra.
        self.spin_waits = 0
        self.sleep_stalls = 0
        self.stalled_s = 0.0

    def _account_wait(self, spins: int, slept: float) -> None:
        """Book one completed wait into the spin/stall counters."""
        if spins > self._spin:
            self.sleep_stalls += 1
            self.stalled_s += slept
            telemetry.observe(f"shm.wait.stall_us.{self._name}", slept * 1e6)
        else:
            self.spin_waits += 1
            telemetry.observe(f"shm.wait.spin_yields.{self._name}", spins)

    # -- cursors -----------------------------------------------------------
    def readable(self) -> bool:
        """Whether at least one frame awaits the consumer."""
        return _U64.unpack_from(self._buf, self._tail_off)[0] != self._head

    def used(self) -> int:
        """Bytes currently queued (tail - head)."""
        buf = self._buf
        return (
            _U64.unpack_from(buf, self._tail_off)[0]
            - _U64.unpack_from(buf, self._head_off)[0]
        )

    # -- byte copies (wrap-aware) ------------------------------------------
    def _copy_in(self, counter: int, data: Any) -> int:
        """Copy ``data`` into the ring at ``counter``; returns the new
        counter. The caller guarantees the space exists."""
        buf = self._buf
        cap = self._capacity
        base = self._data_off
        pos = counter % cap
        n = len(data)
        end = pos + n
        if end <= cap:
            buf[base + pos : base + end] = data
        else:
            first = cap - pos
            buf[base + pos : base + cap] = data[:first]
            buf[base : base + end - cap] = data[first:]
        return counter + n

    def _copy_out(self, counter: int, dest: bytearray) -> None:
        """Fill ``dest`` from the ring at ``counter`` (caller checked
        availability)."""
        buf = self._buf
        cap = self._capacity
        base = self._data_off
        pos = counter % cap
        n = len(dest)
        end = pos + n
        if end <= cap:
            dest[:] = buf[base + pos : base + end]
        else:
            first = cap - pos
            dest[:first] = buf[base + pos : base + cap]
            dest[first:] = buf[base : base + end - cap]

    # -- consumer side -----------------------------------------------------
    def wait_readable(
        self,
        timeout: float | None = None,
        stop: Callable[[], BaseException | None] | None = None,
    ) -> bool:
        """Poll until a frame is available; ``False`` on timeout.

        ``stop`` is consulted every :data:`_CHECK_MASK`+1 iterations;
        when it returns an exception the ring is checked one final time
        (the peer may have replied *and then* died or stopped — those
        last frames must still be consumed) before the exception is
        raised.
        """
        buf = self._buf
        tail_off = self._tail_off
        unpack = _U64.unpack_from
        head = self._head
        if unpack(buf, tail_off)[0] != head:
            return True
        if timeout is not None and timeout <= 0:
            return False
        spin = self._spin
        yield_cpu = os.sched_yield
        sleep_s = self._sleep_min
        # The deadline clock is read lazily, at the first bookkeeping
        # interval — the overwhelmingly common wait is a handful of
        # yields, which shouldn't pay for timeout arithmetic.
        deadline: float | None = None
        spins = 0
        slept = 0.0
        while True:
            if unpack(buf, tail_off)[0] != head:
                self._account_wait(spins, slept)
                return True
            spins += 1
            if spins <= spin:
                yield_cpu()
                if spins & _CHECK_MASK:
                    continue
            else:
                time.sleep(sleep_s)
                slept += sleep_s
                sleep_s = min(sleep_s + sleep_s, self._sleep_max)
            if stop is not None:
                error = stop()
                if error is not None:
                    if unpack(buf, tail_off)[0] != head:
                        self._account_wait(spins, slept)
                        return True
                    raise error
            if timeout is not None:
                now = time.monotonic()
                if deadline is None:
                    deadline = now + timeout
                elif now >= deadline:
                    if unpack(buf, tail_off)[0] != head:
                        self._account_wait(spins, slept)
                        return True
                    return False

    def read_frame(self) -> tuple[int, int, memoryview]:
        """Consume one frame; returns ``(op, correlation_id, body_view)``.

        The body is a :class:`memoryview` over a freshly copied buffer —
        the ring slot is released (head advanced) before returning, so
        the view is safe to hand to another thread.
        """
        buf = self._buf
        head = self._head
        cap = self._capacity
        base = self._data_off
        pos = head % cap
        if pos + 4 <= cap:
            length = _LEN.unpack_from(buf, base + pos)[0]
        else:
            scratch = bytearray(4)
            self._copy_out(head, scratch)
            length = _LEN.unpack(scratch)[0]
        if length < _FRAME_META or length > cap - 4:
            raise BackendError(
                f"corrupt frame in shm ring {self._name!r}: "
                f"length {length} outside [{_FRAME_META}, {cap - 4}]"
            )
        start = pos + 4
        if start + length <= cap:
            # Hot path — the frame is contiguous: one C-level copy.
            payload = bytes(buf[base + start : base + start + length])
        else:
            scratch = bytearray(length)
            self._copy_out(head + 4, scratch)
            payload = bytes(scratch)
        head += 4 + length
        self._head = head
        _U64.pack_into(buf, self._head_off, head)
        return payload[0], _U64.unpack_from(payload, 1)[0], memoryview(payload)[
            _FRAME_META:
        ]

    # -- producer side -----------------------------------------------------
    def _await_space(
        self,
        total: int,
        timeout: float | None,
        stop: Callable[[], BaseException | None] | None,
    ) -> None:
        buf = self._buf
        head_off = self._head_off
        tail = self._tail
        unpack = _U64.unpack_from
        spin = self._spin
        yield_cpu = os.sched_yield
        sleep_s = self._sleep_min
        deadline = None if timeout is None else time.monotonic() + timeout
        spins = 0
        slept = 0.0
        while self._capacity - (tail - unpack(buf, head_off)[0]) < total:
            spins += 1
            if spins <= spin:
                yield_cpu()
                if spins & _CHECK_MASK:
                    continue
            else:
                time.sleep(sleep_s)
                slept += sleep_s
                sleep_s = min(sleep_s + sleep_s, self._sleep_max)
            if stop is not None:
                error = stop()
                if error is not None:
                    raise error
            if deadline is not None and time.monotonic() >= deadline:
                raise OffloadTimeoutError(
                    f"shm ring {self._name!r} stayed full for "
                    f"{timeout:g} s ({total} bytes needed)"
                )
        self._account_wait(spins, slept)

    def write_frame(
        self,
        op: int,
        corr: int,
        parts: tuple,
        *,
        timeout: float | None = None,
        stop: Callable[[], BaseException | None] | None = None,
    ) -> int:
        """Post one frame; returns its size in ring bytes.

        Blocks (spin-then-sleep) while the ring lacks space — that wait
        is the transport-level backpressure under the in-flight window,
        recorded as a ``shm.ring_wait`` span when telemetry is on.
        Frames larger than the ring cannot ever fit and raise
        :class:`BackendError` — bulk data travels chunked (see
        :meth:`ShmBackend.write_buffer`).
        """
        if not parts:
            views: Any = ()
            body_len = 0
        elif len(parts) == 1 and type(parts[0]) is bytes:
            views = parts
            body_len = len(parts[0])
        else:
            views = [_byte_view(part) for part in parts if len(part)]
            body_len = sum(len(view) for view in views)
        total = 4 + _FRAME_META + body_len
        cap = self._capacity
        if total > cap:
            raise BackendError(
                f"frame of {total} bytes exceeds shm ring capacity "
                f"{cap} — raise capacity= or stage bulk data "
                "through put/get"
            )
        buf = self._buf
        tail = self._tail
        head = _U64.unpack_from(buf, self._head_off)[0]
        if cap - (tail - head) < total:
            if telemetry.get() is not None:
                with telemetry.span(
                    "shm.ring_wait", ring=self._name, bytes=total
                ):
                    self._await_space(total, timeout, stop)
            else:
                self._await_space(total, timeout, stop)
        prefix = _PREFIX.pack(_FRAME_META + body_len, op, corr)
        pos = tail % cap
        base = self._data_off
        if pos + total <= cap and body_len < 65536:
            # Hot path — contiguous small frame: join and copy once.
            if not views:
                frame = prefix
            elif type(views[0]) is bytes and len(views) == 1:
                frame = prefix + views[0]
            else:
                frame = b"".join((prefix, *views))
            buf[base + pos : base + pos + total] = frame
        else:
            cursor = self._copy_in(tail, prefix)
            for view in views:
                cursor = self._copy_in(cursor, view)
        tail += total
        self._tail = tail
        # Publish last: the consumer never sees a partial frame.
        _U64.pack_into(buf, self._tail_off, tail)
        return total


def _ring_state(ring: ShmRing) -> dict[str, Any]:
    """One ring's cursors, occupancy and wait counters (introspection).

    Both ends report the same shape, so a wedged ring can be diagnosed
    from either side: matching cursors with a stuck peer means the peer
    stopped producing; ``used == capacity`` with growing ``sleep_stalls``
    means the consumer stopped draining.
    """
    try:
        tail = _U64.unpack_from(ring._buf, ring._tail_off)[0]
        head = _U64.unpack_from(ring._buf, ring._head_off)[0]
    except ValueError:  # mapping already released
        tail = head = 0
    return {
        "name": ring._name,
        "tail": tail,
        "head": head,
        "used": tail - head,
        "capacity": ring._capacity,
        "spin_waits": ring.spin_waits,
        "sleep_stalls": ring.sleep_stalls,
        "stalled_s": ring.stalled_s,
    }


def _host_to_target_ring(segment: ShmSegment, **knobs: Any) -> ShmRing:
    return ShmRing(
        segment, _OFF_H2T_TAIL, _OFF_H2T_HEAD, _DATA_OFFSET,
        name="h2t", **knobs,
    )


def _target_to_host_ring(segment: ShmSegment, **knobs: Any) -> ShmRing:
    return ShmRing(
        segment, _OFF_T2H_TAIL, _OFF_T2H_HEAD, _DATA_OFFSET + segment.capacity,
        name="t2h", **knobs,
    )


class ShmTargetServer:
    """The target-side polling loop: one client, concurrent execution.

    The mirror image of :class:`~repro.backends.tcp.TcpTargetServer`
    over rings instead of a socket: invocations are dispatched to a pool
    of ``workers`` threads (replies return in completion order, tagged
    with their correlation ids), memory and control operations run
    inline on the polling thread. The loop exits on SHUTDOWN or when the
    client process disappears (pid liveness probe), setting the
    segment's state word to ``STATE_STOPPED`` either way so the client's
    own polling loop can tell "stopped" from "wedged".
    """

    def __init__(
        self,
        segment: ShmSegment,
        catalog: Catalog | None = None,
        workers: int = DEFAULT_SERVER_WORKERS,
        *,
        spin_yields: int = DEFAULT_SPIN_YIELDS,
        sleep_min: float = DEFAULT_SLEEP_MIN,
        sleep_max: float = DEFAULT_SLEEP_MAX,
    ) -> None:
        if workers < 1:
            raise BackendError(f"worker pool needs at least 1 thread, got {workers}")
        self.segment = segment
        self.image = ProcessImage("shm-target", catalog)
        self.buffers = HostedBuffers()
        self.workers = workers
        knobs = dict(
            spin_yields=spin_yields, sleep_min=sleep_min, sleep_max=sleep_max
        )
        self._recv = _host_to_target_ring(segment, **knobs)
        self._send = _target_to_host_ring(segment, **knobs)
        self.messages_executed = 0
        #: Invocations currently inside the worker pool (executing or
        #: queued behind it) — the server-side backpressure depth.
        self._active_invokes = 0
        self._count_lock = threading.Lock()
        #: Workers and the polling loop share the reply ring.
        self._send_lock = threading.Lock()
        #: Bound once — creating a bound method per frame costs real
        #: time at shared-memory latencies.
        self._client_gone_cb = self._client_gone
        #: The catalog is frozen once serving starts; hashing it per
        #: PING would dominate the heartbeat RTT.
        self._digest: bytes | None = None
        segment.server_pid = os.getpid()

    def serve_forever(self) -> None:
        """Serve requests until SHUTDOWN or client death."""
        pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="ham-shm-worker"
        )
        recv = self._recv
        stop = self._client_gone_cb
        self.segment.state = STATE_READY
        try:
            while True:
                try:
                    recv.wait_readable(stop=stop)
                    op, corr, body = recv.read_frame()
                except BackendError:
                    return  # client went away (or the ring is corrupt)
                if op == OP_INVOKE:
                    with self._count_lock:
                        self._active_invokes += 1
                    pool.submit(self._execute_invoke, corr, body)
                    continue
                if op == OP_PING and not len(body):
                    # Heartbeat fast path — pings are the latency probe,
                    # so skip the generic inline-op dispatch chain.
                    digest = self._digest
                    if digest is None:
                        digest = self._digest = self.image.digest()
                    try:
                        with self._send_lock:
                            self._send.write_frame(
                                OP_PING | OP_REPLY_BIT, corr, (digest,),
                                stop=stop,
                            )
                    except (BackendError, OffloadTimeoutError):
                        return
                    continue
                if op == OP_SHUTDOWN:
                    # Drain in-flight invocations before acknowledging,
                    # so the shutdown reply is the last frame posted.
                    pool.shutdown(wait=True)
                    self._reply(OP_SHUTDOWN | OP_REPLY_BIT, corr, b"")
                    return
                self._handle_inline(op, corr, body)
        finally:
            pool.shutdown(wait=True)
            # After the state flips the client stops waiting on the
            # reply ring — everything it should see is already there.
            self.segment.state = STATE_STOPPED

    def _client_gone(self) -> BackendError | None:
        pid = self.segment.client_pid
        if pid and not _pid_alive(pid):
            return BackendError(f"shm client process {pid} is gone")
        return None

    def _reply(self, op: int, corr: int, *parts: Any) -> None:
        with self._send_lock:
            self._send.write_frame(op, corr, parts, stop=self._client_gone_cb)

    def _send_failure(self, corr: int, exc: BaseException) -> None:
        info = {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
        }
        try:
            self._reply(OP_FAILURE, corr, pickle.dumps(info))
        except (BackendError, OffloadTimeoutError):  # pragma: no cover
            pass  # client is already gone

    def _execute_invoke(self, corr: int, body: memoryview) -> None:
        """Worker-pool entry: execute one invocation, reply with its id."""
        worker = threading.current_thread().name
        try:
            # The sampling verdict travels in the v2 header's flag byte,
            # exactly as on the TCP path: unsampled messages skip the
            # server-side reply span.
            flags = peek_trace_flags(body)
            sampled = flags is None or bool(flags & trace_context.FLAG_SAMPLED)
            reply, _keep = execute_message(self.image, body, resolver=self._resolve)
            with self._count_lock:
                self.messages_executed += 1
                active = self._active_invokes
            if not sampled:
                self._reply(OP_INVOKE | OP_REPLY_BIT, corr, reply)
                return
            # ``ring_used`` is the reply ring's occupancy *before* this
            # reply is posted and ``pending`` the pool's concurrent-invoke
            # depth: a slow reply with a near-full ring is host-side
            # backpressure (the client is not draining), one with a deep
            # pool is target-side congestion, neither is slow execution.
            with telemetry.span(
                "shm.server.reply", worker=worker, corr=corr, bytes=len(reply),
                pending=active, ring_used=self._send.used(),
            ):
                self._reply(OP_INVOKE | OP_REPLY_BIT, corr, reply)
        except (BackendError, OffloadTimeoutError):  # pragma: no cover
            pass  # client is already gone
        except Exception as exc:  # noqa: BLE001 - shipped to the client
            self._send_failure(corr, exc)
        finally:
            with self._count_lock:
                self._active_invokes -= 1

    def _handle_inline(self, op: int, corr: int, body: memoryview) -> None:
        try:
            if op == OP_ALLOC:
                (nbytes,) = _U64.unpack(body)
                addr = self.buffers.alloc(nbytes)
                self._reply(OP_ALLOC | OP_REPLY_BIT, corr, _U64.pack(addr))
            elif op == OP_FREE:
                (addr,) = _U64.unpack(body)
                self.buffers.free(addr)
                self._reply(OP_FREE | OP_REPLY_BIT, corr, b"")
            elif op == OP_WRITE:
                (addr,) = _U64.unpack(body[:8])
                self.buffers.write(addr, body[8:])
                self._reply(OP_WRITE | OP_REPLY_BIT, corr, b"")
            elif op == OP_READ:
                (addr,) = _U64.unpack(body[:8])
                (nbytes,) = _U64.unpack(body[8:16])
                self._reply(
                    OP_READ | OP_REPLY_BIT, corr, self.buffers.read(addr, nbytes)
                )
            elif op == OP_PING:
                digest = self._digest
                if digest is None:
                    digest = self._digest = self.image.digest()
                if len(body) and bytes(body) != digest:
                    raise BackendError(
                        "offloadable catalogs differ between host and target "
                        "(both sides must import the same application modules)"
                    )
                self._reply(OP_PING | OP_REPLY_BIT, corr, digest)
            elif op == OP_TELEMETRY:
                recorder = telemetry.get()
                rows = records_to_dicts(recorder.drain()) if recorder else []
                self._reply(
                    OP_TELEMETRY | OP_REPLY_BIT, corr,
                    pickle.dumps(rows, protocol=4),
                )
            elif op == OP_CLOCK:
                self._reply(
                    OP_CLOCK | OP_REPLY_BIT, corr,
                    _U64.pack(time.perf_counter_ns()),
                )
            elif op == OP_INTROSPECT:
                self._reply(
                    OP_INTROSPECT | OP_REPLY_BIT, corr,
                    pickle.dumps(self.introspect(), protocol=4),
                )
            else:
                raise BackendError(f"unknown op {op:#x}")
        except (OffloadTimeoutError,):  # pragma: no cover - client gone
            pass
        except Exception as exc:  # noqa: BLE001 - shipped to the client
            self._send_failure(corr, exc)

    def introspect(self) -> dict[str, Any]:
        """Live target state, in the transport-agnostic introspection shape.

        Same dict layout as :meth:`TcpTargetServer.introspect`, with the
        ring block filled in: per-direction cursors and occupancy as this
        process sees them (the request ring is this side's consumer view,
        the reply ring its producer view).
        """
        with self._count_lock:
            executed = self.messages_executed
            active = self._active_invokes
        return {
            "role": "target",
            "transport": "shm",
            "pid": os.getpid(),
            "workers": {"pool_size": self.workers, "active": active},
            "pending_invokes": active,
            "messages_executed": executed,
            "live_buffers": self.buffers.live_count,
            "rings": {
                "capacity": self.segment.capacity,
                "request": _ring_state(self._recv),
                "reply": _ring_state(self._send),
            },
        }

    def _resolve(self, arg: Any) -> Any:
        if isinstance(arg, BufferPtr):
            return self.buffers.view(arg)
        return arg


def _server_entry(
    segment: ShmSegment, catalog: Catalog | None, workers: int
) -> None:
    recorder = telemetry.get()
    if recorder is not None:
        # Same rationale as the TCP fork: the sampling/SLO machinery is
        # host-side; the target only records (or skips) spans.
        recorder.sampler = None
        recorder.pipeline = None
        recorder.slo = None
    server = ShmTargetServer(segment, catalog=catalog, workers=workers)
    try:
        server.serve_forever()
    finally:
        segment.close()


def spawn_shm_server(
    catalog: Catalog | None = None,
    *,
    startup_timeout: float = 10.0,
    workers: int = DEFAULT_SERVER_WORKERS,
    capacity: int = DEFAULT_RING_CAPACITY,
) -> tuple[multiprocessing.Process, ShmSegment]:
    """Fork a target-server child; returns ``(process, segment)``.

    The segment is created here — owned by the calling (host) process,
    which unlinks it at :meth:`ShmBackend.shutdown` — and inherited
    through the fork, so the child needs no attach and no resource-
    tracker fixups. Forking also inherits the offloadable catalog, the
    moral equivalent of building host and target from the same source.
    """
    ctx = multiprocessing.get_context("fork")
    segment = ShmSegment.create(capacity=capacity)
    segment.client_pid = os.getpid()
    process = ctx.Process(
        target=_server_entry, args=(segment, catalog, workers), daemon=True
    )
    process.start()
    deadline = time.monotonic() + startup_timeout
    while segment.state != STATE_READY:
        if not process.is_alive():
            segment.close()
            segment.unlink()
            raise BackendError("shm target server died during startup")
        if time.monotonic() >= deadline:
            process.terminate()
            process.join(timeout=5)
            segment.close()
            segment.unlink()
            raise BackendError(
                f"shm target server did not start within {startup_timeout:g} s"
            )
        time.sleep(0.001)
    return process, segment


class ShmBackend(Backend):
    """Client side of the shared-memory backend (one target).

    There is no receiver thread: whichever caller needs a reply takes
    the drive lock and pumps the reply ring, completing *every* arriving
    reply through the correlation-id table (leader/follower). Threads
    that lose the race wait on their own completion events in short
    slices and re-contend. On the posting side a full request ring is
    transport backpressure *under* the in-flight window — the window is
    what callers normally hit first.

    Parameters
    ----------
    segment:
        A :class:`ShmSegment` (from :func:`spawn_shm_server`) or the
        name of one to attach to (a standalone
        ``python -m repro.backends.target_main --transport shm`` target).
    catalog:
        The offloadable catalog (defaults to the global one).
    on_shutdown:
        Called after the transport closes (used to join a spawned server
        process).
    op_timeout:
        Default deadline for blocking operations, like the TCP backend.
    alive_fn:
        Liveness probe for the server process. ``Process.is_alive`` of a
        spawned child both detects death *and* reaps the zombie — pid
        probes alone cannot see a zombie's death. Defaults to a pid
        probe of the segment's ``server_pid`` field.
    startup_timeout:
        Deadline for the segment to become ready + the handshake.
    spin_yields / sleep_min / sleep_max:
        The spin-then-sleep polling knobs (see the module docstring).
    """

    name = "shm"

    def __init__(
        self,
        segment: ShmSegment | str,
        catalog: Catalog | None = None,
        on_shutdown: Callable[[], None] | None = None,
        *,
        op_timeout: float | None = None,
        alive_fn: Callable[[], bool] | None = None,
        startup_timeout: float = 10.0,
        spin_yields: int = DEFAULT_SPIN_YIELDS,
        sleep_min: float = DEFAULT_SLEEP_MIN,
        sleep_max: float = DEFAULT_SLEEP_MAX,
    ) -> None:
        super().__init__()
        if isinstance(segment, str):
            segment = ShmSegment.attach(segment)
        self.segment = segment
        self.host_image = ProcessImage("shm-host", catalog)
        self._on_shutdown = on_shutdown
        self.op_timeout = op_timeout
        self._alive_fn = alive_fn
        knobs = dict(
            spin_yields=spin_yields, sleep_min=sleep_min, sleep_max=sleep_max
        )
        self._h2t = _host_to_target_ring(segment, **knobs)
        self._t2h = _target_to_host_ring(segment, **knobs)
        #: Correlation id -> reply sink: ("invoke", handle) or ("sync", box).
        self._pending: dict[int, tuple[str, Any]] = {}
        self._pending_lock = threading.Lock()
        self._send_lock = threading.Lock()
        #: Serializes reply-ring consumption (the leader/follower gate).
        #: Reentrant so the send-stall drain can run while the sending
        #: thread itself is the leader (see :meth:`_send_stall`).
        self._drive_lock = threading.RLock()
        self._sync_local = threading.local()
        self._msg_id = 0
        self._alive = True
        self._closed = False
        self._closing = False
        #: Bound once — creating a bound method per frame costs real
        #: time at shared-memory latencies.
        self._peer_error_cb = self._peer_error
        self._send_stall_cb = self._send_stall
        self.invokes_posted = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Reactor backstop (see :meth:`_backstop_pump`): attached
        #: lazily, and only pumping while done-callbacks are armed, so
        #: the driven hot path never shares the CPU with a poller.
        self._reactor: eventloop.Reactor | None = None
        self._reactor_lock = threading.Lock()
        self._backstop_timer: Any = None
        self._backstop_interval = _BACKSTOP_MIN
        self.backstop_pumps = 0
        self._wait_ready(startup_timeout)
        self.segment.client_pid = os.getpid()
        try:
            server_digest = self._roundtrip(OP_PING, timeout=startup_timeout)
            if server_digest and bytes(server_digest) != self.host_image.digest():
                raise BackendError(
                    "offloadable catalogs differ between host and target "
                    "(both sides must import the same application modules)"
                )
        except BaseException:
            self._closing = True
            self._alive = False
            self.segment.close()
            self.segment.unlink()
            raise
        if telemetry.get() is not None:
            self.clock_sync = self._estimate_clock()
        else:
            self.clock_sync = ClockSync.identity()

    def _wait_ready(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while True:
            state = self.segment.state
            if state == STATE_READY:
                return
            if state == STATE_STOPPED:
                raise BackendError("shm target already stopped")
            if self._alive_fn is not None and not self._alive_fn():
                raise BackendError("shm target process died during startup")
            if time.monotonic() >= deadline:
                raise BackendError(
                    f"shm target not ready within {timeout:g} s "
                    f"(segment {self.segment.name!r})"
                )
            time.sleep(0.001)

    def _clock_probe(self, timeout: float) -> tuple[int, int, int]:
        t0 = time.perf_counter_ns()
        body = self._roundtrip(OP_CLOCK, timeout=timeout)
        t1 = time.perf_counter_ns()
        return t0, _U64.unpack(body)[0], t1

    def _estimate_clock(
        self, rounds: int = 8, timeout: float | None = None
    ) -> ClockSync:
        per_probe = timeout if timeout is not None else (self.op_timeout or 5.0)
        try:
            return ClockSync.estimate(
                lambda: self._clock_probe(per_probe), rounds=rounds
            )
        except (RemoteExecutionError, OffloadTimeoutError, BackendError):
            return ClockSync.identity()

    # -- topology ----------------------------------------------------------
    def num_nodes(self) -> int:
        return 2

    def descriptor(self, node: NodeId) -> NodeDescriptor:
        if node == HOST_NODE:
            return NodeDescriptor(node, "host", "host", "shm backend host")
        self.check_target(node)
        return NodeDescriptor(
            node, f"shm:{self.segment.name}", "cpu", "shm target"
        )

    # -- liveness ----------------------------------------------------------
    def _peer_error(self) -> BackendError | None:
        """Why waiting is futile — or ``None`` while the peer is fine."""
        if self._closing:
            return None
        if not self._alive:
            # Another thread already declared the transport lost (e.g. a
            # failed send) — waiting further is pointless.
            return BackendError("shm transport lost")
        if self._alive_fn is not None:
            if not self._alive_fn():
                return BackendError("shm target process died")
        else:
            pid = self.segment.server_pid
            if pid and not _pid_alive(pid):
                return BackendError(f"shm target process {pid} died")
        if self.segment.state == STATE_STOPPED:
            return BackendError("shm target stopped serving")
        return None

    def _check_alive(self) -> None:
        if not self._alive:
            raise BackendError("shm backend is shut down")

    # -- reply plumbing ----------------------------------------------------
    def _pending_count(self) -> int:
        with self._pending_lock:
            return len(self._pending)

    def _next_corr(self) -> int:
        return next(InvokeHandle._ids)

    def _fail_pending(self, error: BaseException) -> None:
        """Declare the transport lost: mark dead, fail every expectation."""
        self._alive = False
        with self._pending_lock:
            sinks = list(self._pending.values())
            self._pending.clear()
        if not (self._closing or self._closed):
            # Unplanned loss (peer death, ring corruption): snapshot the
            # last few seconds of events before retries/failover churn
            # overwrite the evidence. Clean shutdown passes through the
            # _closing/_closed path and records nothing.
            flightrecorder.trigger(
                "peer_death",
                force=True,  # rare + catastrophic: never debounced away
                transport=self.name,
                segment=self.segment.name,
                orphaned=len(sinks),
                error=str(error),
            )
        for kind, sink in sinks:
            if kind == "invoke":
                sink.complete_with_error(error)
            else:
                sink["error"] = error
                sink["event"].set()
        self._release_backstop()

    def _send_stall(self) -> BackendError | None:
        """Stop-callback while blocked on a full request ring.

        Besides the peer-death verdict, it opportunistically drains the
        reply ring: the request ring can only stay full while the server
        is itself blocked on a full reply ring, so *someone* must
        consume replies for either side to progress. The drive lock is
        reentrant, so this works even when the stalled sender is the
        current reply-pumping leader.
        """
        error = self._peer_error()
        if error is not None:
            return error
        if self._drive_lock.acquire(blocking=False):
            try:
                ring = self._t2h
                while ring.readable():
                    op, corr, body = ring.read_frame()
                    self.bytes_received += len(body) + FRAME_OVERHEAD
                    self._dispatch_reply(op, corr, body)
            except BackendError as exc:
                if not self._closing:
                    self._fail_pending(exc)
                return exc
            finally:
                self._drive_lock.release()
        return None

    def _send(self, op: int, corr: int, *parts: Any) -> None:
        try:
            with self._send_lock:
                sent = self._h2t.write_frame(
                    op, corr, parts,
                    timeout=self.op_timeout, stop=self._send_stall_cb,
                )
        except (BackendError, OffloadTimeoutError) as exc:
            if isinstance(exc, OffloadTimeoutError):
                raise
            self._fail_pending(exc)
            raise
        self.bytes_sent += sent

    def _pump(self, wait: float) -> None:
        """Drive lock held: wait up to ``wait`` for replies, drain them.

        A peer-death verdict fails everything outstanding (which sets
        the waiters' events) instead of raising — each waiter then finds
        its own sink failed.
        """
        ring = self._t2h
        recorder = telemetry.get()
        try:
            if not ring.wait_readable(timeout=wait, stop=self._peer_error_cb):
                return
            while ring.readable():
                if recorder is None:
                    op, corr, body = ring.read_frame()
                else:
                    reply_span = telemetry.span("offload.reply", transport="shm")
                    reply_span.__enter__()
                    try:
                        op, corr, body = ring.read_frame()
                    except BaseException as exc:
                        reply_span.__exit__(type(exc), exc, exc.__traceback__)
                        raise
                    reply_span.set("bytes", len(body) + FRAME_OVERHEAD)
                    with trace_context.activate(_unsampled_reply_context(body)):
                        reply_span.__exit__(None, None, None)
                self.bytes_received += len(body) + FRAME_OVERHEAD
                self._dispatch_reply(op, corr, body)
        except BackendError as exc:
            if not self._closing:
                self._fail_pending(exc)

    def _dispatch_reply(self, op: int, corr: int, body: memoryview) -> None:
        """Complete the expectation filed under ``corr`` (any order)."""
        with self._pending_lock:
            entry = self._pending.pop(corr, None)
        if entry is None:
            telemetry.count("shm.unmatched_replies")
            return
        kind, sink = entry
        if op == OP_FAILURE:
            info = pickle.loads(body)
            failure: BaseException = RemoteExecutionError(
                f"remote {info['type']}: {info['message']}",
                remote_traceback=info.get("traceback", ""),
            )
            if kind == "invoke":
                sink.complete_with_error(failure)
            else:
                sink["error"] = failure
                sink["event"].set()
            return
        if kind == "invoke":
            if op != (OP_INVOKE | OP_REPLY_BIT):
                sink.complete_with_error(
                    BackendError(f"expected invoke reply, got op {op:#x}")
                )
                return
            sink.complete_with_reply(body)
            if telemetry.get() is not None:
                telemetry.gauge("shm.pending_replies", self._pending_count())
        else:
            if op != (sink["op"] | OP_REPLY_BIT):
                sink["error"] = BackendError(
                    f"expected reply to op {sink['op']:#x}, got {op:#x}"
                )
            else:
                sink["body"] = body
            sink["event"].set()

    def _drive_until(
        self, event: threading.Event, timeout: float | None, what: str
    ) -> None:
        """Pump (or wait on the pumping leader) until ``event`` is set.

        Raises :class:`OffloadTimeoutError` after ``timeout`` seconds —
        softly, the caller's expectation stays filed.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        lock = self._drive_lock
        while not event.is_set():
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise OffloadTimeoutError(
                        f"no reply through shm segment "
                        f"{self.segment.name!r} within the deadline ({what})"
                    )
            if lock.acquire(timeout=0.005):
                try:
                    if event.is_set():
                        return
                    wait = 0.05
                    if remaining is not None:
                        wait = min(wait, max(remaining, 0.0))
                    self._pump(wait)
                finally:
                    lock.release()
            else:
                # A leader is pumping; it will set our event on arrival.
                event.wait(0.002)
            if not self._alive and not event.is_set():
                # Filed after the drain — nothing will ever match it.
                raise BackendError("shm transport lost while waiting for a reply")

    def _sync_box(self, op: int) -> dict[str, Any]:
        """A reusable per-thread expectation box for sync roundtrips.

        Reuse keeps Event construction off the hot path. A roundtrip
        that times out *abandons* its event (the stale expectation stays
        filed and may be completed later) and the thread gets a fresh
        one next time.
        """
        local = self._sync_local
        event = getattr(local, "event", None)
        if event is None:
            event = local.event = threading.Event()
        event.clear()
        return {"op": op, "event": event}

    def _roundtrip(
        self, op: int, *parts: Any, timeout: float | None = None
    ) -> memoryview:
        """Synchronous request: post, then drive until the reply matches."""
        self._check_alive()
        effective = timeout if timeout is not None else self.op_timeout
        # Leader fast path: become the reply leader *before* sending.
        # While this thread holds the drive lock nobody else can consume
        # its reply, so the expectation table can be skipped entirely —
        # the common case is that the very next frame is ours, and the
        # saved bookkeeping is a measurable slice of a shared-memory
        # RTT. Requires no recorder (the generic pump also emits the
        # per-reply ``offload.reply`` spans).
        if telemetry.get() is None and self._drive_lock.acquire(blocking=False):
            try:
                corr = next(InvokeHandle._ids)
                try:
                    with self._send_lock:
                        self.bytes_sent += self._h2t.write_frame(
                            op, corr, parts,
                            timeout=self.op_timeout, stop=self._send_stall_cb,
                        )
                except BackendError as exc:
                    self._fail_pending(exc)
                    raise
                return self._consume_inline(op, corr, effective)
            finally:
                self._drive_lock.release()
        corr = self._next_corr()
        box = self._sync_box(op)
        with self._pending_lock:
            self._pending[corr] = ("sync", box)
        try:
            self._send(op, corr, *parts)
        except BaseException:
            with self._pending_lock:
                self._pending.pop(corr, None)
            raise
        if not self._alive:
            with self._pending_lock:
                entry = self._pending.pop(corr, None)
            if entry is not None and "error" not in box:
                raise BackendError("shm transport lost during roundtrip")
        try:
            self._drive_until(box["event"], effective, f"op {op:#x}")
        except OffloadTimeoutError:
            self._sync_local.event = None  # the filed box keeps it
            raise
        if "error" in box:
            raise box["error"]
        if "body" not in box:
            raise BackendError("shm transport lost during roundtrip")
        return box["body"]

    def _consume_inline(
        self, op: int, corr: int, timeout: float | None
    ) -> memoryview:
        """Drive-lock held: pump until ``corr``'s reply, returned directly.

        Replies for other callers are dispatched through the expectation
        table on the way. A timeout is soft, like :meth:`_drive_until`:
        the expectation is filed *now* (no reply can have slipped past —
        this thread held the drive lock throughout) so a later pump can
        still complete it instead of counting it unmatched.
        """
        ring = self._t2h
        deadline = None if timeout is None else time.monotonic() + timeout
        stop = self._peer_error_cb
        while True:
            wait = None
            if deadline is not None:
                wait = deadline - time.monotonic()
                if wait <= 0:
                    with self._pending_lock:
                        self._pending[corr] = (
                            "sync", {"op": op, "event": threading.Event()},
                        )
                    raise OffloadTimeoutError(
                        f"no reply through shm segment "
                        f"{self.segment.name!r} within the deadline "
                        f"(op {op:#x})"
                    )
            try:
                if not ring.wait_readable(timeout=wait, stop=stop):
                    continue
                reply_op, reply_corr, body = ring.read_frame()
            except BackendError as exc:
                if not self._closing:
                    self._fail_pending(exc)
                raise
            self.bytes_received += len(body) + FRAME_OVERHEAD
            if reply_corr != corr:
                self._dispatch_reply(reply_op, reply_corr, body)
                continue
            if reply_op == op | OP_REPLY_BIT:
                return body
            if reply_op == OP_FAILURE:
                info = pickle.loads(body)
                raise RemoteExecutionError(
                    f"remote {info['type']}: {info['message']}",
                    remote_traceback=info.get("traceback", ""),
                )
            raise BackendError(
                f"expected reply to op {op:#x}, got {reply_op:#x}"
            )

    # -- invocation --------------------------------------------------------
    def _window_progress(self) -> Callable[[], None]:
        """Progress callback for window admission on a driven backend.

        The base window's ``acquire`` loops this instead of sleeping;
        pumping replies is what frees slots here. It also enforces the
        window timeout, since the progress path bypasses the window's
        own deadline handling.
        """
        timeout = self._window_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        limit = self.window.limit

        def progress() -> None:
            if not self._alive:
                raise BackendError(
                    "shm transport lost while waiting for a window slot"
                )
            if deadline is not None and time.monotonic() >= deadline:
                raise OffloadTimeoutError(
                    f"in-flight window full ({limit} operations outstanding) "
                    "and no completion within the deadline"
                )
            if self._drive_lock.acquire(timeout=0.005):
                try:
                    self._pump(0.005)
                finally:
                    self._drive_lock.release()

        return progress

    def post_invoke(self, node: NodeId, functor: Functor) -> InvokeHandle:
        self._check_alive()
        self.check_target(node)
        # Backpressure point: pumping replies is what frees window slots.
        self._admit_invoke(
            label=functor.type_name, progress=self._window_progress()
        )
        try:
            self._check_alive()
            self._msg_id += 1
            parts = build_invoke_parts(self.host_image, functor, self._msg_id)
            total = sum(len(part) for part in parts)
            handle = InvokeHandle(self, label=functor.type_name)
        except BaseException:
            self.window.cancel()
            raise
        # Telemetry phase ``offload.enqueue``: filing the expectation and
        # copying the frame into the request ring.
        with telemetry.span(
            "offload.enqueue", bytes=total, functor=functor.type_name,
            corr=handle.correlation_id,
        ):
            with self._pending_lock:
                self._pending[handle.correlation_id] = ("invoke", handle)
            self._register_invoke(handle)
            try:
                self._send(OP_INVOKE, handle.correlation_id, *parts)
            except BaseException as exc:
                with self._pending_lock:
                    self._pending.pop(handle.correlation_id, None)
                handle.complete_with_error(
                    exc if isinstance(exc, (BackendError, OffloadTimeoutError))
                    else BackendError(f"send failed while posting invoke: {exc}")
                )
                raise
        # A pump may have declared the transport lost between the
        # aliveness check and our registration; fail the straggler here.
        if not self._alive:
            with self._pending_lock:
                entry = self._pending.pop(handle.correlation_id, None)
            if entry is not None:
                handle.complete_with_error(
                    BackendError("shm transport lost while posting invoke")
                )
        self.invokes_posted += 1
        if telemetry.get() is not None:
            telemetry.gauge("shm.pending_replies", self._pending_count())
        return handle

    def drive(
        self, handle: InvokeHandle, *, blocking: bool, timeout: float | None = None
    ) -> None:
        if handle.completed:
            return
        self._check_alive()
        if not blocking:
            # Opportunistic pump: drain whatever already arrived, never
            # wait. If a leader holds the lock it completes handles for
            # everyone anyway.
            if self._drive_lock.acquire(blocking=False):
                try:
                    self._pump(0.0)
                finally:
                    self._drive_lock.release()
            return
        effective = timeout if timeout is not None else self.op_timeout
        self._drive_until(handle._done, effective, f"invoke {handle.label}")

    # -- reactor backstop --------------------------------------------------
    def _callback_armed(self, handle: InvokeHandle) -> None:
        """A done-callback was attached: make the driven client pollable.

        The shm client is *driven* — replies are consumed by whoever
        waits on them. A callback-only consumer (an asyncio awaiter
        bridged through ``Future.__await__``) never enters ``drive``,
        so nothing would pump the reply ring on its behalf. This arms a
        self-rescheduling timer on the shared reactor that
        opportunistically drains the ring until nothing is pending,
        converting the pump into a reactor-registered pollable without
        dedicating a thread to it.
        """
        with self._reactor_lock:
            if self._closed or not self._alive:
                return
            if self._reactor is None:
                self._reactor = eventloop.get_reactor()
            if self._backstop_timer is None:
                self._backstop_interval = _BACKSTOP_MIN
                self._backstop_timer = self._reactor.call_later(
                    self._backstop_interval, self._backstop_pump
                )

    def _backstop_pump(self) -> None:
        """Reactor timer: drain whatever arrived, reschedule adaptively.

        Never blocks the loop: the drive lock is taken opportunistically
        (a pumping leader already completes handles for everyone) and
        the pump itself only drains frames that are already readable.
        Cadence tightens to ``_BACKSTOP_MIN`` while replies flow and
        backs off toward ``_BACKSTOP_MAX`` while the outstanding work
        is quiet; the timer disarms once nothing is pending (re-armed
        by the next callback attachment).
        """
        with self._reactor_lock:
            self._backstop_timer = None
            if self._closed or not self._alive or self._reactor is None:
                return
        progressed = False
        if self._pending_count() and self._drive_lock.acquire(blocking=False):
            try:
                before = self.bytes_received
                self.backstop_pumps += 1
                self._pump(0.0)
                progressed = self.bytes_received != before
            finally:
                self._drive_lock.release()
        with self._reactor_lock:
            if (
                self._closed
                or not self._alive
                or self._reactor is None
                or self._backstop_timer is not None
                or not self._pending_count()
            ):
                return
            self._backstop_interval = (
                _BACKSTOP_MIN if progressed
                else min(self._backstop_interval * 2, _BACKSTOP_MAX)
            )
            self._backstop_timer = self._reactor.call_later(
                self._backstop_interval, self._backstop_pump
            )

    def _release_backstop(self) -> None:
        """Cancel the backstop and detach from the shared reactor."""
        with self._reactor_lock:
            timer, self._backstop_timer = self._backstop_timer, None
            reactor, self._reactor = self._reactor, None
        if timer is not None:
            timer.cancel()
        if reactor is not None:
            eventloop.release_reactor(reactor)

    # -- memory ------------------------------------------------------------
    def _chunk_size(self) -> int:
        # Half the ring per frame: a bulk transfer never deadlocks
        # against its own backpressure, and two chunks can overlap.
        return max(4096, self.segment.capacity // 2 - 64)

    def alloc_buffer(self, node: NodeId, nbytes: int) -> int:
        self.check_target(node)
        return _U64.unpack(self._roundtrip(OP_ALLOC, _U64.pack(nbytes)))[0]

    def free_buffer(self, node: NodeId, addr: int) -> None:
        self.check_target(node)
        self._roundtrip(OP_FREE, _U64.pack(addr))

    def write_buffer(self, node: NodeId, addr: int, data: Any) -> None:
        self.check_target(node)
        view = _byte_view(data)
        chunk = self._chunk_size()
        if len(view) <= chunk:
            self._roundtrip(OP_WRITE, _U64.pack(addr), view)
            return
        # Chunked: HostedBuffers accepts offset addresses inside a live
        # allocation, so each chunk lands at addr + offset.
        for offset in range(0, len(view), chunk):
            self._roundtrip(
                OP_WRITE, _U64.pack(addr + offset), view[offset : offset + chunk]
            )

    def read_buffer(self, node: NodeId, addr: int, nbytes: int) -> bytes:
        self.check_target(node)
        chunk = self._chunk_size()
        if nbytes <= chunk:
            return bytes(
                self._roundtrip(OP_READ, _U64.pack(addr) + _U64.pack(nbytes))
            )
        out = bytearray(nbytes)
        for offset in range(0, nbytes, chunk):
            n = min(chunk, nbytes - offset)
            out[offset : offset + n] = self._roundtrip(
                OP_READ, _U64.pack(addr + offset) + _U64.pack(n)
            )
        return bytes(out)

    # -- telemetry ---------------------------------------------------------
    def fetch_target_telemetry(
        self, timeout: float | None = None, align: bool = True
    ) -> list:
        """Pull (and clear) the target server's telemetry records."""
        if align:
            self.clock_sync = self._estimate_clock(rounds=4, timeout=timeout)
        rows = pickle.loads(self._roundtrip(OP_TELEMETRY, timeout=timeout))
        records = dicts_to_records(rows)
        if align and self.clock_sync.offset_ns:
            records = align_records(records, self.clock_sync.offset_ns)
        return records

    # -- health ------------------------------------------------------------
    def ping(self, node: NodeId) -> float:
        """Round-trip an ``OP_PING`` heartbeat; returns wall seconds."""
        self.check_target(node)
        start = time.monotonic()
        self._roundtrip(OP_PING)
        return time.monotonic() - start

    def set_default_timeout(self, seconds: float | None) -> None:
        self.op_timeout = seconds

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Transport counters of this segment."""
        try:
            request_used = self._h2t.used()
            reply_used = self._t2h.used()
        except ValueError:  # mapping released by shutdown()
            request_used = reply_used = 0
        if telemetry.get() is not None:
            capacity = self.segment.capacity
            telemetry.gauge("shm.ring_fill.request", request_used / capacity)
            telemetry.gauge("shm.ring_fill.reply", reply_used / capacity)
            telemetry.gauge(
                "shm.wait.sleep_stalls",
                self._h2t.sleep_stalls + self._t2h.sleep_stalls,
            )
        return {
            "backend": self.name,
            "segment": self.segment.name,
            "ring_capacity": self.segment.capacity,
            "invokes_posted": self.invokes_posted,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "request_ring_used": request_used,
            "reply_ring_used": reply_used,
            "request_ring": _ring_state(self._h2t),
            "reply_ring": _ring_state(self._t2h),
            "pending_replies": self._pending_count(),
            "inflight": self.inflight_count,
            "inflight_limit": self.window.limit,
            # Driven client: no receiver thread here either; the async
            # bridge rides the shared reactor's backstop pump.
            "receiver_threads": 0,
            "backstop_pumps": self.backstop_pumps,
            "backstop_armed": self._backstop_timer is not None,
        }

    def introspect_target(
        self, timeout: float | None = None
    ) -> dict[str, Any]:
        """Ask the target for its live state (``OP_INTROSPECT``).

        Same transport-agnostic dict as the TCP backend's, with the
        ``rings`` block populated from the target's side of the segment.
        """
        payload = pickle.loads(self._roundtrip(OP_INTROSPECT, timeout=timeout))
        if not isinstance(payload, dict):
            raise BackendError(
                f"malformed introspection reply: {type(payload).__name__}"
            )
        return payload

    # -- lifecycle ---------------------------------------------------------
    def shutdown(self) -> None:
        """Stop the target, fail stragglers, close and unlink the segment.

        Robust against an already-dead target: the SHUTDOWN roundtrip is
        skipped (or tolerated failing) and the segment is still closed
        and — when this process owns it — unlinked, so no ``/dev/shm``
        entry outlives the backend either way.
        """
        if self._closed:
            return
        self._closed = True
        if self._alive:
            try:
                # The server drains its pool before acknowledging, so
                # outstanding invoke replies land ahead of this one.
                self._roundtrip(OP_SHUTDOWN, timeout=self.op_timeout or 10.0)
            except (BackendError, OffloadTimeoutError, RemoteExecutionError):
                pass  # server already gone or wedged
        self._closing = True
        if self._alive:
            self._fail_pending(BackendError("shm backend is shut down"))
        self._release_backstop()
        if self._on_shutdown is not None:
            self._on_shutdown()
        self.segment.close()
        self.segment.unlink()
