"""Single-threaded I/O reactor — the client-side event-loop core.

One daemon thread multiplexes *every* client transport in the process:
TCP sockets register read callbacks, the shm backend registers a
backstop poll timer, and the coalescing layer arms sub-millisecond
flush deadlines — all through the same :class:`Reactor`. This replaces
the per-connection receiver thread the TCP backend used to spawn
(PR 4): one process with fifty connections used to run fifty blocking
receivers; it now runs exactly one reactor thread, which is what lets a
single host sustain thousands of concurrent in-flight offloads.

Design notes:

* **selectors-based.** ``selectors.DefaultSelector`` (epoll on Linux)
  in level-triggered mode: a readable callback is invoked once per
  wakeup and re-invoked while data remains, so callbacks may read a
  bounded chunk and return — no draining loops required.
* **Self-pipe wakeup.** Cross-thread submissions (:meth:`call_soon`,
  :meth:`call_later`, fd registration) append to a queue and poke a
  pipe, so a blocked ``select`` wakes immediately; everything that
  touches the selector or the timer heap executes *on* the loop
  thread, which keeps both structures lock-free from the loop's point
  of view.
* **Timer heap.** :meth:`call_later` returns a cancellable handle.
  Timer lag (scheduled-vs-actual fire time) is the loop's health
  signal, exported as the ``reactor.loop_lag_us`` gauge: a lagging
  loop means some callback is hogging the thread.
* **Refcounted process singleton.** Backends share one loop via
  :func:`get_reactor` / :func:`release_reactor`; the thread stops when
  the last backend detaches, so test suites that churn through
  hundreds of backends do not leak threads. A fork (spawning a target
  server) resets the child's singleton — the loop thread does not
  survive ``fork`` and the child must never inherit a dead one.
"""

from __future__ import annotations

import heapq
import itertools
import os
import selectors
import threading
from time import monotonic
from typing import Any, Callable

from repro.telemetry import recorder as telemetry

__all__ = ["Reactor", "TimerHandle", "get_reactor", "release_reactor"]


class TimerHandle:
    """Cancellable deadline callback returned by :meth:`Reactor.call_later`."""

    __slots__ = ("when", "_seq", "_callback", "_cancelled")

    def __init__(self, when: float, seq: int, callback: Callable[[], None]) -> None:
        self.when = when
        self._seq = seq
        self._callback = callback
        self._cancelled = False

    def cancel(self) -> None:
        """Best-effort cancellation (a firing in progress still runs)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __lt__(self, other: "TimerHandle") -> bool:
        return (self.when, self._seq) < (other.when, other._seq)


class Reactor:
    """One thread, one selector, all client-side I/O.

    File-descriptor callbacks take no arguments and are invoked on the
    loop thread whenever the fd is readable; they must not block. Timer
    and ``call_soon`` callbacks run on the loop thread too. Exceptions
    escaping any callback are counted (``reactor.callback_errors``) and
    swallowed — a broken connection must not take down the loop that
    serves every other connection.
    """

    def __init__(self, name: str = "repro-reactor") -> None:
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_r, False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, None)
        self._lock = threading.Lock()
        self._ops: list[Callable[[], None]] = []
        self._timers: list[TimerHandle] = []
        self._seq = itertools.count()
        self._running = True
        self._registered = 0
        #: Loop-health counters (see :meth:`stats`).
        self.wakeups = 0
        self.timer_fires = 0
        self.callback_errors = 0
        self.max_lag_us = 0.0
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    # -- cross-thread submission ------------------------------------------------
    def on_thread(self) -> bool:
        """Whether the caller *is* the loop thread."""
        return threading.current_thread() is self._thread

    def _wakeup(self) -> None:
        try:
            os.write(self._wake_w, b"\0")
        except OSError:  # pragma: no cover - loop already closed
            pass

    def call_soon(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` on the loop thread as soon as possible."""
        with self._lock:
            self._ops.append(callback)
        self._wakeup()

    def call_later(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` on the loop thread after ``delay`` seconds."""
        handle = TimerHandle(monotonic() + max(0.0, delay), next(self._seq), callback)
        if self.on_thread():
            heapq.heappush(self._timers, handle)
        else:
            def _arm() -> None:
                heapq.heappush(self._timers, handle)
            with self._lock:
                self._ops.append(_arm)
            self._wakeup()
        return handle

    def register(self, fileobj: Any, callback: Callable[[], None]) -> None:
        """Register a read callback for ``fileobj`` (any thread)."""
        def _do() -> None:
            self._selector.register(fileobj, selectors.EVENT_READ, callback)
            self._registered += 1
        self._submit_sync(_do)

    def unregister(self, fileobj: Any) -> None:
        """Drop ``fileobj`` from the loop; safe to close it afterwards.

        Blocks (briefly) until the loop has actually forgotten the fd,
        so the caller can close it without racing a concurrent
        ``select`` on the same descriptor.
        """
        def _do() -> None:
            try:
                self._selector.unregister(fileobj)
                self._registered -= 1
            except (KeyError, ValueError):
                pass  # never registered, or already gone
        self._submit_sync(_do)

    def _submit_sync(self, op: Callable[[], None]) -> None:
        """Run ``op`` on the loop thread and wait for it to finish."""
        if self.on_thread() or not self._thread.is_alive():
            op()
            return
        done = threading.Event()

        def _wrapped() -> None:
            try:
                op()
            finally:
                done.set()
        with self._lock:
            self._ops.append(_wrapped)
        self._wakeup()
        done.wait(timeout=5.0)

    # -- the loop ---------------------------------------------------------------
    def _run(self) -> None:
        while self._running:
            timeout = None
            if self._timers:
                timeout = max(0.0, self._timers[0].when - monotonic())
            try:
                events = self._selector.select(timeout)
            except OSError:  # pragma: no cover - fd closed under us
                events = []
            self.wakeups += 1
            # Pending cross-thread ops first: they may register the very
            # fds/timers this iteration should service.
            if self._ops:
                with self._lock:
                    ops, self._ops = self._ops, []
                for op in ops:
                    self._invoke(op)
            now = monotonic()
            while self._timers and self._timers[0].when <= now:
                timer = heapq.heappop(self._timers)
                if timer.cancelled:
                    continue
                lag_us = (now - timer.when) * 1e6
                if lag_us > self.max_lag_us:
                    self.max_lag_us = lag_us
                telemetry.gauge("reactor.loop_lag_us", lag_us)
                self.timer_fires += 1
                self._invoke(timer._callback)
            for key, _mask in events:
                if key.data is None:  # the wakeup pipe
                    try:
                        os.read(self._wake_r, 4096)
                    except OSError:
                        pass
                    continue
                self._invoke(key.data)

    def _invoke(self, callback: Callable[[], None]) -> None:
        try:
            callback()
        except Exception:  # noqa: BLE001 - the loop must survive any callback
            self.callback_errors += 1
            telemetry.count("reactor.callback_errors")

    # -- lifecycle ---------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._running and self._thread.is_alive()

    def close(self) -> None:
        """Stop the loop thread and release the selector and pipes."""
        if not self._running:
            return
        self._running = False
        self._wakeup()
        if not self.on_thread():
            self._thread.join(timeout=5.0)
        try:
            self._selector.close()
        except OSError:  # pragma: no cover
            pass
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass

    def stats(self) -> dict[str, Any]:
        """Loop-health counters for introspection."""
        return {
            "thread": self._thread.name,
            "alive": self.alive,
            "registered_fds": self._registered,
            "pending_timers": len(self._timers),
            "wakeups": self.wakeups,
            "timer_fires": self.timer_fires,
            "callback_errors": self.callback_errors,
            "max_lag_us": round(self.max_lag_us, 1),
        }


# -- the refcounted process-wide loop -------------------------------------------

_global_lock = threading.Lock()
_global_reactor: Reactor | None = None
_global_refs = 0


def get_reactor() -> Reactor:
    """Attach to the process-wide reactor, starting it if needed.

    Every ``get_reactor`` must be paired with one
    :func:`release_reactor`; the loop thread stops when the last user
    detaches.
    """
    global _global_reactor, _global_refs
    with _global_lock:
        if _global_reactor is None or not _global_reactor.alive:
            _global_reactor = Reactor()
            _global_refs = 0
        _global_refs += 1
        return _global_reactor


def release_reactor(reactor: Reactor) -> None:
    """Detach from the shared reactor; stops it on the last release."""
    global _global_reactor, _global_refs
    with _global_lock:
        if reactor is not _global_reactor:
            reactor.close()  # a stale (pre-fork or replaced) instance
            return
        _global_refs -= 1
        if _global_refs <= 0:
            _global_refs = 0
            _global_reactor = None
            reactor.close()


def _reset_after_fork() -> None:  # pragma: no cover - exercised via spawn
    """Forget the parent's loop in a forked child.

    The loop thread does not survive ``fork``; a child (e.g. a spawned
    target server) that ever touched the reactor would otherwise
    inherit a dead thread and a selector full of the parent's fds.
    """
    global _global_reactor, _global_refs
    _global_reactor = None
    _global_refs = 0


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_after_fork)
