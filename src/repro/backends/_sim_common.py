"""Shared machinery of the simulated (timed) protocol backends.

Both paper protocols (Sec. III-D over VEO, Sec. IV-B over user DMA) share
structure:

* a set of **message slots**, each a 64-bit notification flag plus a
  message area;
* flags that piggyback metadata ("the information which buffer to receive
  from next, and where to send the result is piggybacked through the
  flags", Sec. III-D) — here encoded as *marker | length | sequence
  number*, the sequence number removing any need for expensive flag
  resets;
* a host-driven setup phase through the VEO API, and a VE-side message
  loop started as the ``ham_main`` server.

The :class:`Doorbell` is a simulation shortcut for polling loops: instead
of firing millions of sub-microsecond poll events while idle, a waiting
process sleeps on an event that the writer rings right after the flag
write lands; the woken process still *pays the full cost of the observing
poll operation*, so protocol timing is preserved to well under the cost
of one poll iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BackendError
from repro.sim import Event, Simulator

__all__ = ["Doorbell", "SlotLayout", "encode_flag", "decode_flag", "FLAG_EMPTY"]

FLAG_EMPTY = 0

_MARKER_BITS = 8
_LENGTH_BITS = 32
_MARKER_MASK = (1 << _MARKER_BITS) - 1
_LENGTH_MASK = (1 << _LENGTH_BITS) - 1
_SEQ_MASK = (1 << (64 - _MARKER_BITS - _LENGTH_BITS)) - 1


def encode_flag(marker: int, length: int, seq: int) -> int:
    """Pack a notification flag: marker (≠0), message length, sequence."""
    if not 0 < marker <= _MARKER_MASK:
        raise BackendError(f"flag marker {marker} out of range 1..{_MARKER_MASK}")
    if not 0 <= length <= _LENGTH_MASK:
        raise BackendError(f"flag length {length} out of range")
    return (
        (seq & _SEQ_MASK) << (_MARKER_BITS + _LENGTH_BITS)
        | (length & _LENGTH_MASK) << _MARKER_BITS
        | marker
    )


def decode_flag(value: int) -> tuple[int, int, int]:
    """Unpack a flag into ``(marker, length, seq)``; marker 0 = empty."""
    marker = value & _MARKER_MASK
    length = (value >> _MARKER_BITS) & _LENGTH_MASK
    seq = (value >> (_MARKER_BITS + _LENGTH_BITS)) & _SEQ_MASK
    return marker, length, seq


@dataclass(frozen=True)
class SlotLayout:
    """Layout of a communication area: ``num_slots`` × (flag + message).

    Two such areas exist per connection: one for offload messages
    (host→target) and one for result messages (target→host). ``base`` is
    the area's start address in whatever memory holds it (VE HBM for the
    VEO protocol, the VH shared segment for the DMA protocol).
    """

    base: int
    num_slots: int
    msg_size: int

    @property
    def slot_stride(self) -> int:
        """Bytes per slot (flag word + message area)."""
        return 8 + self.msg_size

    @property
    def total_size(self) -> int:
        """Bytes of the whole area."""
        return self.num_slots * self.slot_stride

    def flag_addr(self, slot: int) -> int:
        """Address of a slot's notification flag."""
        self._check(slot)
        return self.base + slot * self.slot_stride

    def msg_addr(self, slot: int) -> int:
        """Address of a slot's message area."""
        self._check(slot)
        return self.base + slot * self.slot_stride + 8

    def _check(self, slot: int) -> None:
        if not 0 <= slot < self.num_slots:
            raise BackendError(f"slot {slot} outside 0..{self.num_slots - 1}")


class Doorbell:
    """Wakes simulated pollers when a flag may have changed."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._waiters: list[Event] = []

    def wait(self):
        """Generator: suspend until the next :meth:`ring`.

        Callers must re-check their condition after waking (rings can be
        spurious from the waiter's perspective).
        """
        event = self.sim.event()
        self._waiters.append(event)
        yield event

    def ring(self) -> None:
        """Wake all current waiters."""
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()
