"""Deterministic fault injection: a chaos proxy around any backend.

The paper's DMA protocol has no protection against a crashing peer
(Sec. IV-B hands that problem to the framework above); the resilience
layer (:mod:`repro.offload.resilience`) is that framework, and this
module is its test harness. :class:`FaultInjectingBackend` wraps any
:class:`~repro.backends.base.Backend` and injects *drops*, *delays*,
*disconnects* and *corrupt frames* at operation boundaries, by a
schedule that is a pure function of the seed — the same seed and the
same operation sequence replay the exact same faults, so chaos tests
are debuggable instead of flaky.

Faults surface as typed :class:`~repro.errors.ReproError` subclasses:

========== =====================================================
drop       :class:`~repro.errors.InjectedFaultError` (one op lost)
delay      the op stalls, then proceeds normally
disconnect :class:`~repro.errors.InjectedFaultError`; the proxy is
           dead until :meth:`FaultInjectingBackend.reconnect`
corrupt    :class:`~repro.errors.CorruptFrameError`
========== =====================================================
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.backends.base import Backend, InflightWindow, InvokeHandle
from repro.errors import BackendError, CorruptFrameError, InjectedFaultError
from repro.offload.buffer import BufferPtr
from repro.offload.node import NodeDescriptor, NodeId
from repro.telemetry import recorder as telemetry

__all__ = ["FaultInjectingBackend", "FaultEvent", "FAULT_KINDS"]

#: Injectable fault kinds, in cumulative-probability order.
FAULT_KINDS = ("drop", "delay", "disconnect", "corrupt")


@dataclass(frozen=True)
class FaultEvent:
    """One entry of the fault log: which op drew which fault."""

    index: int
    op: str
    kind: str
    delay: float = 0.0


class FaultInjectingBackend(Backend):
    """Proxy backend that injects scheduled faults into every operation.

    Parameters
    ----------
    inner:
        The real backend to forward to.
    seed:
        Seed of the fault schedule. Determinism contract: two proxies
        with equal seeds, rates and operation sequences produce
        identical :attr:`fault_log` entries.
    drop_rate / delay_rate / disconnect_rate / corrupt_rate:
        Per-operation probabilities (cumulative sum must be <= 1).
    delay_range:
        ``(lo, hi)`` seconds for injected delays, drawn from the same
        seeded RNG.
    schedule:
        Optional explicit overrides: ``{op_index: kind}`` with kind in
        :data:`FAULT_KINDS` or ``"none"``. Indices count every forwarded
        operation from 0. Scheduled entries bypass the RNG draw (the RNG
        is still advanced identically, preserving determinism of the
        remaining schedule).
    sleep:
        Injectable sleep for delay faults (tests pass a stub).
    """

    name = "faulty"

    def __init__(
        self,
        inner: Backend,
        *,
        seed: int = 0,
        drop_rate: float = 0.0,
        delay_rate: float = 0.0,
        disconnect_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        delay_range: tuple[float, float] = (0.001, 0.01),
        schedule: dict[int, str] | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        total = drop_rate + delay_rate + disconnect_rate + corrupt_rate
        if total > 1.0:
            raise BackendError(f"fault rates sum to {total:g} > 1")
        self.inner = inner
        self.seed = seed
        self._rates = (drop_rate, delay_rate, disconnect_rate, corrupt_rate)
        self._delay_range = delay_range
        self._schedule = dict(schedule or {})
        bad = {k for k in self._schedule.values()} - set(FAULT_KINDS) - {"none"}
        if bad:
            raise BackendError(f"unknown scheduled fault kinds: {sorted(bad)}")
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._op_index = 0
        self._disconnected = False
        #: Every fault drawn so far (clean ops are not logged).
        self.fault_log: list[FaultEvent] = []

    # -- the schedule ---------------------------------------------------------
    def _draw(self, op: str) -> FaultEvent | None:
        """Advance the schedule one op; return the fault to inject, if any."""
        index = self._op_index
        self._op_index += 1
        # Always burn the same number of RNG draws per op, so explicit
        # schedule overrides do not shift the faults of later ops.
        roll = self._rng.random()
        duration = self._rng.uniform(*self._delay_range)
        if index in self._schedule:
            kind = self._schedule[index]
            if kind == "none":
                return None
        else:
            kind = "none"
            cumulative = 0.0
            for candidate, rate in zip(FAULT_KINDS, self._rates):
                cumulative += rate
                if roll < cumulative:
                    kind = candidate
                    break
            if kind == "none":
                return None
        event = FaultEvent(
            index, op, kind, duration if kind == "delay" else 0.0
        )
        self.fault_log.append(event)
        # Injected faults show up in traces as instant events, so a
        # timeline view places each chaos injection against the spans of
        # the operation it hit.
        telemetry.event(
            "fault.injected", category="fault",
            kind=kind, op=op, index=index, delay=event.delay,
        )
        telemetry.count("faults.injected")
        return event

    def _apply(self, op: str) -> None:
        """Consult the schedule for ``op``; raise or stall accordingly."""
        if self._disconnected:
            raise BackendError(
                "fault-injected connection is down (call reconnect())"
            )
        event = self._draw(op)
        if event is None:
            return
        if event.kind == "delay":
            self._sleep(event.delay)
        elif event.kind == "drop":
            raise InjectedFaultError(f"injected drop of {op} (op #{event.index})")
        elif event.kind == "disconnect":
            self._disconnected = True
            raise InjectedFaultError(
                f"injected disconnect at {op} (op #{event.index})"
            )
        elif event.kind == "corrupt":
            raise CorruptFrameError(
                f"injected corrupt frame in {op} (op #{event.index})"
            )

    def reconnect(self) -> None:
        """Clear an injected disconnect (the schedule keeps advancing)."""
        self._disconnected = False

    @property
    def ops_forwarded(self) -> int:
        """Operations that reached the schedule so far."""
        return self._op_index

    # -- the channel contract: one window, owned by the real transport --------
    @property
    def window(self) -> InflightWindow:
        """The wrapped backend's in-flight window (admission happens once,
        in the inner ``post_invoke``; the proxy must not double-count)."""
        return self.inner.window

    def set_window_timeout(self, seconds: float | None) -> None:
        self.inner.set_window_timeout(seconds)

    # -- topology (never faulted: metadata, not transport) -------------------
    def num_nodes(self) -> int:
        return self.inner.num_nodes()

    def descriptor(self, node: NodeId) -> NodeDescriptor:
        return self.inner.descriptor(node)

    # -- faulted transport operations ----------------------------------------
    def post_invoke(self, node: NodeId, functor: Any) -> InvokeHandle:
        self._apply("invoke")
        return self.inner.post_invoke(node, functor)

    def drive(
        self, handle: InvokeHandle, *, blocking: bool, timeout: float | None = None
    ) -> None:
        self.inner.drive(handle, blocking=blocking, timeout=timeout)

    def alloc_buffer(self, node: NodeId, nbytes: int) -> int:
        self._apply("alloc")
        return self.inner.alloc_buffer(node, nbytes)

    def free_buffer(self, node: NodeId, addr: int) -> None:
        self._apply("free")
        self.inner.free_buffer(node, addr)

    def write_buffer(self, node: NodeId, addr: int, data: bytes) -> None:
        self._apply("write")
        self.inner.write_buffer(node, addr, data)

    def read_buffer(self, node: NodeId, addr: int, nbytes: int) -> bytes:
        self._apply("read")
        return self.inner.read_buffer(node, addr, nbytes)

    def ping(self, node: NodeId) -> float:
        self._apply("ping")
        return self.inner.ping(node)

    # -- pass-throughs --------------------------------------------------------
    def resolve_buffer(self, node: NodeId, ptr: BufferPtr) -> np.ndarray:
        return self.inner.resolve_buffer(node, ptr)

    def fetch_target_telemetry(self, timeout: float | None = None,
                               align: bool = True) -> list:
        """Forward a telemetry pull to the wrapped backend (never faulted).

        Observability must not be chaos-tested away: the pull bypasses
        the fault schedule. Returns ``[]`` when the inner backend has no
        target-side telemetry (e.g. the local backend).
        """
        fetch = getattr(self.inner, "fetch_target_telemetry", None)
        if fetch is None:
            return []
        return fetch(timeout=timeout, align=align)

    def set_default_timeout(self, seconds: float | None) -> None:
        self.inner.set_default_timeout(seconds)

    def per_target_stats(self) -> dict[NodeId, dict[str, Any]]:
        """Scoreboard feed comes from the real transport (never faulted)."""
        return self.inner.per_target_stats()

    def stats(self) -> dict[str, Any]:
        counts: dict[str, int] = {}
        for event in self.fault_log:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return {
            "backend": self.name,
            "seed": self.seed,
            "ops_forwarded": self.ops_forwarded,
            "faults_injected": len(self.fault_log),
            "faults_by_kind": counts,
            "inner": self.inner.stats(),
        }

    def shutdown(self) -> None:
        # Teardown always reaches the inner backend, even "disconnected":
        # chaos must never leak server processes.
        self.inner.shutdown()
