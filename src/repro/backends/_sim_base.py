"""Base class of the timed, simulated protocol backends.

Owns everything the VEO-protocol and DMA-protocol backends share: the
simulated machine, the two process images (the "heterogeneous binaries"),
VE process bootstrap through VEO, slot bookkeeping with sequence-numbered
flags, host-side drive loops, and the memory API (both protocols perform
bulk data exchange through VEO, paper Sec. IV-B: "Starting the
application, initialisation and data exchange are still performed through
the VEO API").

The backend supports **multiple Vector Engines**: one offload target per
VE (node ``i`` ↔ VE ``i-1``), each with its own VE process,
communication areas, message-loop server and slot state, bundled in a
:class:`TargetChannel`. This models the paper's A300-8 (eight VEs behind
two PCIe switches) and enables the multi-VE scaling experiments.

Subclasses implement the actual message transport per channel:

* :meth:`_setup_channel` — allocate/publish one channel's communication
  areas;
* :meth:`_host_send` — place one message + flag into the target-visible
  communication area (drives the simulator);
* :meth:`_host_poll` — one host-side poll step for a result flag
  (completes the handle when the result arrived);
* :meth:`_ve_main` — the VE-side message loop (a simulation process).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

import numpy as np

from repro.backends._sim_common import Doorbell
from repro.backends.base import Backend, InvokeHandle
from repro.errors import BackendError, OffloadTimeoutError
from repro.ham.execution import build_invoke, execute_message
from repro.ham.functor import Functor
from repro.ham.message import MSG_SHUTDOWN, build_message
from repro.ham.registry import Catalog, ProcessImage
from repro.machine import AuroraMachine
from repro.offload.buffer import BufferPtr
from repro.offload.node import HOST_NODE, NodeDescriptor, NodeId
from repro.veo.api import VeoProc
from repro.veos.loader import VeLibrary

__all__ = ["SimBackendBase", "SimInvokeHandle", "TargetChannel"]


class SimInvokeHandle(InvokeHandle):
    """Invoke handle carrying its channel, slot and expected sequence."""

    def __init__(
        self,
        backend: "SimBackendBase",
        channel: "TargetChannel",
        slot: int,
        seq: int,
        label: str,
    ) -> None:
        super().__init__(backend, label=label)
        self.channel = channel
        self.slot = slot
        self.seq = seq


class TargetChannel:
    """Per-VE protocol state: process, slots, sequences, doorbells.

    ``machine`` defaults to the backend's machine; the cluster backend
    places channels on *remote* machines (same simulator, other node).
    """

    def __init__(
        self,
        backend: "SimBackendBase",
        node: NodeId,
        ve_index: int,
        machine: AuroraMachine | None = None,
    ) -> None:
        self.backend = backend
        self.node = node
        self.ve_index = ve_index
        self.machine = machine if machine is not None else backend.machine
        self.ve = self.machine.ve(ve_index)
        self.proc = VeoProc(self.machine, ve_index)
        self.doorbell = Doorbell(backend.sim)
        #: Rung when a result flag has become visible host-side; used by
        #: in-simulation waiters (the cluster backend's remote agents).
        self.result_doorbell = Doorbell(backend.sim)
        self.slot_handles: list[SimInvokeHandle | None] = [None] * backend.num_slots
        self.slot_seq = [0] * backend.num_slots
        self.next_slot = 0
        self.ve_expected_seq = [0] * backend.num_slots
        self.kernel_time: dict[tuple[int, int], float] = {}
        self.messages_executed = 0
        library = VeLibrary(f"libham_app_ve{ve_index}")
        library.add_server("ham_main", lambda: backend._ve_main(self))
        backend._configure_library(library)
        self.lib_handle = self.proc.load_library(library)
        self.ctx = self.proc.open_context()
        backend._setup_channel(self)
        self.server = self.proc.start_server(self.lib_handle.get_symbol("ham_main"))

    def check_server(self) -> None:
        """Raise if the VE message loop died."""
        if self.server.processed and not self.server.ok:
            raise BackendError(
                f"VE {self.ve_index} message loop crashed"
            ) from self.server.value


class SimBackendBase(Backend):
    """Common core of the ``veo`` and ``dma`` communication backends.

    Parameters
    ----------
    machine:
        The simulated Aurora node (a fresh single-VE machine by default).
    ve_indices:
        VEs to use as offload targets, in node order (node ``i`` is
        ``ve_indices[i-1]``). Defaults to every VE of the machine.
    num_slots:
        Message slots per direction and target.
    msg_size:
        Capacity of one message area in bytes.
    catalog:
        Offloadable catalog for both process images.
    """

    name = "sim-base"
    device_description = "simulated NEC VE"

    def __init__(
        self,
        machine: AuroraMachine | None = None,
        *,
        ve_index: int | None = None,
        ve_indices: list[int] | None = None,
        num_slots: int = 8,
        msg_size: int = 4096,
        catalog: Catalog | None = None,
    ) -> None:
        if num_slots < 1:
            raise BackendError(f"need at least one slot, got {num_slots}")
        self.machine = machine if machine is not None else AuroraMachine(num_ves=1)
        if ve_index is not None and ve_indices is not None:
            raise BackendError("pass either ve_index or ve_indices, not both")
        if ve_indices is None:
            ve_indices = [ve_index] if ve_index is not None else list(
                range(self.machine.num_ves)
            )
        if not ve_indices:
            raise BackendError("need at least one target VE")
        for index in ve_indices:
            if not 0 <= index < self.machine.num_ves:
                raise BackendError(f"no VE {index} on this machine")
        super().__init__()
        self.sim = self.machine.sim
        self.timing = self.machine.timing
        self.num_slots = num_slots
        self.msg_size = msg_size
        self.host_image = ProcessImage("vh", catalog)
        self.target_image = ProcessImage("ve", catalog)
        #: Kernel-duration model: seconds of VE compute per functor.
        self.kernel_cost_fn: Callable[[Functor], float] = lambda functor: 0.0
        self._msg_id = itertools.count(1)
        self._alive = True
        # One channel per target VE (bootstraps processes through VEO).
        self.channels: list[TargetChannel] = [
            TargetChannel(self, node, index)
            for node, index in enumerate(ve_indices, start=1)
        ]

    # -- convenience accessors for the common single-VE case ------------------
    @property
    def ve(self):
        """The first target's Vector Engine (single-VE convenience)."""
        return self.channels[0].ve

    @property
    def proc(self) -> VeoProc:
        """The first target's VEO process handle (single-VE convenience)."""
        return self.channels[0].proc

    @property
    def messages_executed(self) -> int:
        """Messages executed across all targets."""
        return sum(channel.messages_executed for channel in self.channels)

    def channel(self, node: NodeId) -> TargetChannel:
        """The channel serving offload target ``node``."""
        self.check_target(node)
        return self.channels[node - 1]

    # -- subclass hooks ---------------------------------------------------------
    def _configure_library(self, library: VeLibrary) -> None:
        """Add protocol-specific C-API symbols (optional override)."""

    def _setup_channel(self, channel: TargetChannel) -> None:
        """Allocate and publish one channel's communication areas."""
        raise NotImplementedError

    def _host_send(self, channel: TargetChannel, slot: int, seq: int, message: bytes) -> None:
        """Deliver one message + flag to the target (must override)."""
        raise NotImplementedError

    def _host_poll(self, handle: SimInvokeHandle) -> None:
        """One host-side result-poll step (must override)."""
        raise NotImplementedError

    def _ve_main(self, channel: TargetChannel):
        """The VE message loop (must override; a generator)."""
        raise NotImplementedError

    # -- timing helpers ------------------------------------------------------------
    def _advance(self, duration: float) -> None:
        """Charge host-side CPU time (drives the simulator)."""
        if duration > 0:
            self.sim.run(until=self.sim.now + duration)

    def _span(self, label: str, start: float) -> None:
        """Record a protocol-phase span if a tracer is attached."""
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.span(f"{self.name}.{label}", start)

    # -- topology ----------------------------------------------------------------------
    def num_nodes(self) -> int:
        return 1 + len(self.channels)

    def descriptor(self, node: NodeId) -> NodeDescriptor:
        if node == HOST_NODE:
            return NodeDescriptor(node, "vh", "host", f"{self.name} backend host")
        channel = self.channel(node)
        return NodeDescriptor(
            node, f"ve{channel.ve_index}", "ve", self.device_description
        )

    # -- invocation -----------------------------------------------------------------------
    def post_invoke(self, node: NodeId, functor: Functor) -> InvokeHandle:
        self._check_alive()
        channel = self.channel(node)
        start = self.sim.now
        self._advance(self.timing.cpu_serialize)
        invoke = build_invoke(self.host_image, functor, next(self._msg_id))
        self._span("host.serialize", start)
        kernel_seconds = float(self.kernel_cost_fn(functor))
        return self._post_raw(channel, invoke, functor.type_name, kernel_seconds)

    def _window_progress(self) -> None:
        """Window-acquire progress hook for this single-threaded backend.

        There is no receiver thread to free slots, so a full window makes
        progress by driving the oldest in-flight invocation to completion
        (which releases its slot).
        """
        for handle in self.window.handles().values():
            if not handle.completed:
                self.drive(handle, blocking=True)
                return
        raise BackendError(
            "in-flight window full with no driveable invocation"
        )

    def _post_raw(
        self,
        channel: TargetChannel,
        message: bytes,
        label: str,
        kernel_seconds: float = 0.0,
    ) -> SimInvokeHandle:
        if len(message) > self.msg_size:
            raise BackendError(
                f"message of {len(message)} bytes exceeds slot capacity "
                f"{self.msg_size}"
            )
        self._admit_invoke(label=label, progress=self._window_progress)
        try:
            slot = self._acquire_slot(channel)
            channel.slot_seq[slot] += 1
            seq = channel.slot_seq[slot]
            handle = SimInvokeHandle(self, channel, slot, seq, label)
        except BaseException:
            self.window.cancel()
            raise
        channel.slot_handles[slot] = handle
        if kernel_seconds > 0:
            channel.kernel_time[(slot, seq)] = kernel_seconds
        # Register before sending: `_host_send` advances the simulator,
        # which may complete the handle (and release the slot) before
        # this method returns.
        self._register_invoke(handle)
        start = self.sim.now
        self._host_send(channel, slot, seq, message)
        self._span("host.post", start)
        return handle

    def _acquire_slot(self, channel: TargetChannel) -> int:
        """Round-robin slot; auto-drains the oldest outstanding result."""
        slot = channel.next_slot
        channel.next_slot = (channel.next_slot + 1) % self.num_slots
        previous = channel.slot_handles[slot]
        if previous is not None and not previous.completed:
            # Flow control: the application left more offloads in flight
            # than there are slots; finish the oldest one first.
            self.drive(previous, blocking=True)
        channel.slot_handles[slot] = None
        return slot

    def drive(
        self, handle: InvokeHandle, *, blocking: bool, timeout: float | None = None
    ) -> None:
        """Poll the target; ``timeout`` counts *simulated* seconds."""
        self._check_alive()
        assert isinstance(handle, SimInvokeHandle)
        if handle.completed:
            return
        deadline = None if timeout is None else self.sim.now + timeout
        self._host_poll(handle)
        while blocking and not handle.completed:
            if deadline is not None and self.sim.now >= deadline:
                raise OffloadTimeoutError(
                    f"offload {handle.label!r} exceeded its deadline of "
                    f"{timeout:g} simulated seconds"
                )
            self._host_poll(handle)

    def _finish_handle(self, handle: SimInvokeHandle, reply: bytes) -> None:
        """Deliver the reply and release the slot."""
        start = self.sim.now
        self._advance(self.timing.cpu_deserialize + self.timing.cpu_future_resolve)
        self._span("host.resolve", start)
        handle.complete_with_reply(reply)
        if handle.channel.slot_handles[handle.slot] is handle:
            handle.channel.slot_handles[handle.slot] = None

    # -- VE-side execution helper --------------------------------------------------------
    def _execute_on_ve(self, channel: TargetChannel, slot: int, seq: int, message: bytes):
        """Generator: deserialize, dispatch and run one message on a VE.

        Returns ``(reply_bytes, keep_running)``; charges the framework CPU
        costs and the modeled kernel duration.
        """
        timing = self.timing
        start = self.sim.now
        yield self.sim.timeout(timing.cpu_deserialize + timing.cpu_dispatch)
        kernel_seconds = channel.kernel_time.pop((slot, seq), 0.0)
        if kernel_seconds > 0:
            yield self.sim.timeout(kernel_seconds)
        reply, keep_running = execute_message(
            self.target_image,
            message,
            resolver=lambda arg: self._resolve_on_ve(channel, arg),
        )
        channel.messages_executed += 1
        yield self.sim.timeout(timing.cpu_result_serialize)
        self._span("ve.execute", start)
        return reply, keep_running

    def _resolve_on_ve(self, channel: TargetChannel, arg: Any) -> Any:
        if isinstance(arg, BufferPtr):
            if arg.node != channel.node:
                raise BackendError(
                    f"buffer of node {arg.node} dereferenced on node {channel.node}"
                )
            return channel.ve.hbm.view(arg.addr, arg.nbytes).view(arg.dtype)
        return arg

    def resolve_buffer(self, node: NodeId, ptr: BufferPtr) -> np.ndarray:
        channel = self.channel(node)
        return channel.ve.hbm.view(ptr.addr, ptr.nbytes).view(ptr.dtype)

    # -- memory (via VEO in both protocols) --------------------------------------------------
    def alloc_buffer(self, node: NodeId, nbytes: int) -> int:
        self._check_alive()
        return self.channel(node).proc.alloc_mem(nbytes)

    def free_buffer(self, node: NodeId, addr: int) -> None:
        self._check_alive()
        self.channel(node).proc.free_mem(addr)

    def write_buffer(self, node: NodeId, addr: int, data: bytes) -> None:
        self._check_alive()
        self.channel(node).proc.write_mem(addr, data)

    def read_buffer(self, node: NodeId, addr: int, nbytes: int) -> bytes:
        self._check_alive()
        return self.channel(node).proc.read_mem(addr, nbytes)

    # -- introspection ---------------------------------------------------------------------------
    def stats(self) -> dict:
        """Protocol and hardware counters, per channel and aggregated."""
        channels = {}
        for channel in self.channels:
            ve = channel.ve
            channels[f"ve{channel.ve_index}"] = {
                "messages_executed": channel.messages_executed,
                "lhm_word_loads": ve.lhm_ops,
                "shm_word_stores": ve.shm_ops,
                "user_dma_transfers": ve.udma.transfer_count,
                "privileged_dma_transfers": channel.proc.daemon.dma_manager.transfer_count,
                "pcie_bytes_vh_to_ve": ve.link.bytes_vh_to_ve,
                "pcie_bytes_ve_to_vh": ve.link.bytes_ve_to_vh,
            }
        return {
            "backend": self.name,
            "simulated_time": self.sim.now,
            "messages_executed": self.messages_executed,
            "channels": channels,
        }

    # -- lifecycle -----------------------------------------------------------------------------
    def shutdown(self) -> None:
        if not self._alive:
            return
        for channel in self.channels:
            shutdown_msg = build_message(MSG_SHUTDOWN, 0, next(self._msg_id), b"")
            handle = self._post_raw(channel, shutdown_msg, "shutdown")
            handle.wait()
        self._alive = False
        for channel in self.channels:
            channel.proc.destroy()

    def _check_alive(self) -> None:
        if not self._alive:
            raise BackendError(f"{self.name} backend is shut down")
