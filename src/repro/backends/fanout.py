"""Fan-out backend: N single-target backends behind one node space.

The TCP backend connects the host to exactly one server process; the
resilience layer, hedging and multi-target failover all want *several*
live targets. :class:`FanoutBackend` composes N single-target backends
(typically one :class:`~repro.backends.tcp.TcpBackend` per forked
server) into one backend whose node space is ``0`` (host) plus nodes
``1..N`` — outer node ``i`` maps to inner backend ``i-1``'s node ``1``.

One window, N transports: the fan-out installs **its own** in-flight
window into every inner backend (via
:meth:`~repro.backends.base.Backend.install_window`), so admission,
backpressure and — with a :class:`~repro.offload.qos.FairInflightWindow`
— tenant fairness are enforced over the *union* of traffic, exactly as
a single pipelined channel would. Completions on any inner transport
free capacity for posts to any other.

One loop, N connections: every inner TCP backend registers its socket
with the process-wide reactor (:mod:`repro.backends.eventloop`), so a
fan-out over N targets multiplexes N connections — receive parsing,
coalescing deadlines, backstop pumps — on **one** thread instead of
running N receiver threads. :meth:`stats` surfaces the shared loop's
health alongside the per-inner counters.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.backends.base import (
    Backend,
    InflightWindow,
    InvokeHandle,
    normalize_target_stats,
)
from repro.errors import BackendError
from repro.offload.buffer import BufferPtr
from repro.offload.node import HOST_NODE, NodeDescriptor, NodeId

__all__ = ["FanoutBackend"]


class FanoutBackend(Backend):
    """Compose single-target backends into one multi-target node space."""

    name = "fanout"

    def __init__(self, inners: Sequence[Backend]) -> None:
        super().__init__()
        if not inners:
            raise BackendError("FanoutBackend needs at least one inner backend")
        self._inners: list[Backend] = list(inners)
        for inner in self._inners:
            inner.install_window(self.window)

    # -- the shared window -------------------------------------------------
    def install_window(self, window: InflightWindow) -> None:
        super().install_window(window)
        for inner in self._inners:
            inner.install_window(window)

    def set_window_timeout(self, seconds: float | None) -> None:
        super().set_window_timeout(seconds)
        for inner in self._inners:
            inner.set_window_timeout(seconds)

    def set_default_timeout(self, seconds: float | None) -> None:
        for inner in self._inners:
            inner.set_default_timeout(seconds)

    # -- routing -----------------------------------------------------------
    def _route(self, node: NodeId) -> Backend:
        self.check_target(node)
        return self._inners[node - 1]

    # -- topology ----------------------------------------------------------
    def num_nodes(self) -> int:
        return 1 + len(self._inners)

    def descriptor(self, node: NodeId) -> NodeDescriptor:
        if node == HOST_NODE:
            return NodeDescriptor(node, "host", "host", "fanout backend host")
        inner = self._route(node)
        base = inner.descriptor(1)
        return NodeDescriptor(node, base.name, base.device_type, base.description)

    # -- invocation --------------------------------------------------------
    def post_invoke(self, node: NodeId, functor: Any) -> InvokeHandle:
        # The inner backend admits against the *shared* window and binds
        # the handle to itself, so drive/completion route naturally.
        return self._route(node).post_invoke(1, functor)

    def drive(
        self, handle: InvokeHandle, *, blocking: bool,
        timeout: float | None = None,
    ) -> None:
        if handle.backend is self:  # pragma: no cover - defensive
            raise BackendError("fanout handles are bound to inner backends")
        handle.backend.drive(handle, blocking=blocking, timeout=timeout)

    # -- memory ------------------------------------------------------------
    def alloc_buffer(self, node: NodeId, nbytes: int) -> int:
        return self._route(node).alloc_buffer(1, nbytes)

    def free_buffer(self, node: NodeId, addr: int) -> None:
        self._route(node).free_buffer(1, addr)

    def write_buffer(self, node: NodeId, addr: int, data: bytes) -> None:
        self._route(node).write_buffer(1, addr, data)

    def read_buffer(self, node: NodeId, addr: int, nbytes: int) -> bytes:
        return self._route(node).read_buffer(1, addr, nbytes)

    def resolve_buffer(self, node: NodeId, ptr: BufferPtr) -> np.ndarray:
        return self._route(node).resolve_buffer(1, ptr)

    # -- health ------------------------------------------------------------
    def ping(self, node: NodeId) -> float:
        return self._route(node).ping(1)

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict[str, Any]:
        inner_stats = [inner.stats() for inner in self._inners]
        # All reactor-driven inners share one loop; surface it once at
        # the top level (each inner's copy is identical by construction).
        reactor = next(
            (s["reactor"] for s in inner_stats if s.get("reactor")), None
        )
        return {
            "targets": len(self._inners),
            "receiver_threads": 0,
            "reactor": reactor,
            "inner": inner_stats,
        }

    def per_target_stats(self) -> dict[NodeId, dict[str, Any]]:
        """One scoreboard vector per member, keyed by outer node id.

        This is the TSDB scoreboard's per-target feed: each inner's
        ``stats()`` normalized onto ``in_flight`` / ``queue_bytes`` /
        ``ring_fill``, so ``target.*.<node>`` series exist for every
        member even while only some are taking traffic.
        """
        table: dict[NodeId, dict[str, Any]] = {}
        for index, inner in enumerate(self._inners):
            try:
                vector = normalize_target_stats(inner.stats())
            except Exception:  # noqa: BLE001 - observer must not throw
                continue
            if vector:
                table[index + 1] = vector
        return table

    def introspect_target(
        self, timeout: float | None = None
    ) -> dict[str, Any]:
        """Aggregate introspection over every inner that supports it.

        Returns the transport-agnostic shape with summed worker/pending
        counts plus a ``targets`` list holding each inner's full payload
        (keyed by outer node id), so per-target drill-down survives the
        aggregation.
        """
        payloads: list[dict[str, Any]] = []
        for index, inner in enumerate(self._inners):
            probe = getattr(inner, "introspect_target", None)
            if probe is None:
                continue
            try:
                payload = dict(probe(timeout=timeout))
            except BackendError:
                payload = {"role": "target", "transport": inner.name,
                           "error": "unreachable"}
            payload["node"] = index + 1
            payloads.append(payload)
        return {
            "role": "target",
            "transport": self.name,
            "pid": 0,
            "workers": {
                "pool_size": sum(
                    p.get("workers", {}).get("pool_size", 0) for p in payloads
                ),
                "active": sum(
                    p.get("workers", {}).get("active", 0) for p in payloads
                ),
            },
            "pending_invokes": sum(
                p.get("pending_invokes", 0) for p in payloads
            ),
            "messages_executed": sum(
                p.get("messages_executed", 0) for p in payloads
            ),
            "live_buffers": sum(p.get("live_buffers", 0) for p in payloads),
            "rings": None,
            "targets": payloads,
        }

    def fetch_target_telemetry(self, timeout: float = 1.0) -> list[Any]:
        """Drain target-side telemetry from every inner that supports it."""
        records: list[Any] = []
        for inner in self._inners:
            fetch = getattr(inner, "fetch_target_telemetry", None)
            if fetch is None:
                continue
            records.extend(fetch(timeout=timeout))
        return records

    # -- lifecycle ---------------------------------------------------------
    def shutdown(self) -> None:
        errors: list[BaseException] = []
        for inner in self._inners:
            try:
                inner.shutdown()
            except BaseException as exc:  # noqa: BLE001 - best effort
                errors.append(exc)
        if errors:
            raise errors[0]
