"""Remote offloading across an InfiniBand cluster (extension M4).

The paper's outlook (Sec. VI): once heterogeneous MPI exists,
"HAM-Offload applications will also benefit from remote offloading
capabilities, again without changes in the application code". This
backend realizes that promise on the simulated substrate:

* the host application runs on the cluster's **origin node**;
* every VE of every node is an offload target (node numbering:
  origin VEs first, then the remote machines' VEs in cluster order);
* offloads to **local** VEs use the Sec. IV-B DMA protocol unchanged;
* offloads to **remote** VEs hop the IB fabric: the origin sends the
  active message to a host *agent* on the remote node (the stand-in for
  the MPI rank the paper anticipates), the agent plays the DMA
  protocol's host role against its local VE and ships the result back.

Application code stays byte-for-byte identical — the ``node_t`` just
points further away, exactly the paper's portability story.
"""

from __future__ import annotations

from repro.backends._sim_base import SimInvokeHandle, TargetChannel
from repro.backends._sim_common import decode_flag, encode_flag
from repro.backends.dma_backend import DmaCommBackend
from repro.cluster import AuroraCluster
from repro.errors import BackendError
from repro.ham.registry import Catalog
from repro.offload.node import HOST_NODE, NodeDescriptor, NodeId
from repro.sim import Store

__all__ = ["ClusterBackend"]


class ClusterBackend(DmaCommBackend):
    """HAM-Offload backend spanning an :class:`AuroraCluster`."""

    name = "cluster"
    device_description = "simulated NEC VE (DMA protocol over IB)"

    def __init__(
        self,
        cluster: AuroraCluster,
        *,
        num_slots: int = 8,
        msg_size: int = 4096,
        catalog: Catalog | None = None,
    ) -> None:
        self.cluster = cluster
        self._agents: dict[int, Store] = {}
        self._mailbox: dict[tuple[int, int, int], bytes] = {}
        super().__init__(
            cluster.origin,
            # Channel placement is overridden below; start with the
            # origin's VEs for the base constructor...
            ve_indices=list(range(cluster.origin.num_ves)),
            num_slots=num_slots,
            msg_size=msg_size,
            catalog=catalog,
        )
        # ...then extend with one channel per remote VE, each with an
        # IB-fed host agent on its machine.
        node = len(self.channels) + 1
        for machine in cluster.machines[1:]:
            for ve_index in range(machine.num_ves):
                channel = TargetChannel(self, node, ve_index, machine=machine)
                channel.remote = True
                self.channels.append(channel)
                inbox = Store(self.sim)
                self._agents[node] = inbox
                self.sim.process(
                    self._agent(channel, inbox),
                    name=f"{machine.name}.agent.ve{ve_index}",
                )
                node += 1
        for channel in self.channels:
            if not hasattr(channel, "remote"):
                channel.remote = False

    # -- topology ---------------------------------------------------------------
    def descriptor(self, node: NodeId) -> NodeDescriptor:
        if node == HOST_NODE:
            return NodeDescriptor(node, "vh", "host", "cluster origin host")
        channel = self.channel(node)
        return NodeDescriptor(
            node,
            f"{channel.machine.name}.ve{channel.ve_index}",
            "ve",
            "remote VE over InfiniBand" if channel.remote else "local VE",
        )

    # -- host side ------------------------------------------------------------------
    def _host_send(self, channel: TargetChannel, slot: int, seq: int, message: bytes) -> None:
        if not channel.remote:
            super()._host_send(channel, slot, seq, message)
            return
        # Origin-side marshalling, then a one-sided IB send to the agent.
        self._advance(self.timing.cpu_local_write)
        inbox = self._agents[channel.node]
        self.cluster.ib_send(
            len(message), lambda: inbox.put((slot, seq, bytes(message)))
        )

    def _host_poll(self, handle: SimInvokeHandle) -> None:
        channel = handle.channel
        if not channel.remote:
            super()._host_poll(handle)
            return
        channel.check_server()
        self._advance(self.timing.cpu_local_poll)
        reply = self._mailbox.pop((channel.node, handle.slot, handle.seq), None)
        if reply is not None:
            self._finish_handle(handle, reply)
            return
        next_event = self.sim.peek()
        if next_event == float("inf"):
            raise BackendError("cluster: remote node went silent (simulation ran dry)")
        self.sim.run(until=next_event)

    # -- the remote host agent ----------------------------------------------------------
    def _agent(self, channel: TargetChannel, inbox: Store):
        """Plays the DMA protocol's host role on a remote node.

        A simulation process: receives active messages over IB, posts
        them into its node-local shared segment, collects results and
        ships them back to the origin.
        """
        timing = self.timing
        while True:
            slot, seq, message = yield inbox.get()
            # Local writes into the remote node's shared segment.
            yield self.sim.timeout(timing.cpu_local_write)
            channel.segment.write(channel.recv.msg_addr(slot), message)
            channel.segment.write_u64(
                channel.recv.flag_addr(slot), encode_flag(1, len(message), seq)
            )
            channel.doorbell.ring()
            # Wait for the result flag to become visible on this node.
            while True:
                yield self.sim.timeout(timing.cpu_local_poll)
                value = channel.segment.read_u64(channel.send.flag_addr(slot))
                marker, length, rseq = decode_flag(value)
                if marker and rseq == seq:
                    break
                yield from channel.result_doorbell.wait()
            reply = channel.segment.read(channel.send.msg_addr(slot), length)
            # One-sided IB send of the reply back to the origin.
            key = (channel.node, slot, seq)
            self.cluster.ib_send(
                len(reply),
                lambda key=key, reply=reply: self._mailbox.__setitem__(key, reply),
            )

    # -- bulk data over IB -----------------------------------------------------------------
    def write_buffer(self, node: NodeId, addr: int, data: bytes) -> None:
        channel = self.channel(node)
        if channel.remote:
            # Ship the payload over IB first, then the remote VEO write.
            self._advance(self.timing.ib_transfer_time(len(data)))
            self.cluster.ib_bytes_sent += len(data)
            self.cluster.ib_messages += 1
        super().write_buffer(node, addr, data)

    def read_buffer(self, node: NodeId, addr: int, nbytes: int) -> bytes:
        channel = self.channel(node)
        data = super().read_buffer(node, addr, nbytes)
        if channel.remote:
            self._advance(self.timing.ib_transfer_time(nbytes))
            self.cluster.ib_bytes_sent += nbytes
            self.cluster.ib_messages += 1
        return data

    # -- health -------------------------------------------------------------------------------
    def ping(self, node: NodeId) -> float:
        """Liveness probe of one VE: raises if its message loop crashed.

        Returns the modeled one-hop latency (IB for remote VEs, zero for
        node-local ones) so the health monitor can rank peers.
        """
        channel = self.channel(node)
        channel.check_server()
        if channel.remote:
            return self.timing.ib_transfer_time(0)
        return 0.0

    # -- introspection -------------------------------------------------------------------------
    def stats(self) -> dict:
        data = super().stats()
        data["backend"] = self.name
        data["ib_messages"] = self.cluster.ib_messages
        data["ib_bytes_sent"] = self.cluster.ib_bytes_sent
        data["remote_targets"] = sum(1 for c in self.channels if c.remote)
        return data
