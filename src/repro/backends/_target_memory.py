"""Target-side buffer table for the functional backends.

The ``local`` and ``tcp`` backends have no simulated device memory;
targets hold their buffers in a :class:`HostedBuffers` table mapping
opaque addresses onto real numpy storage. Addresses are monotonic and
never reused, so stale pointers are reliably detected (use-after-free
raises instead of aliasing a new allocation).
"""

from __future__ import annotations

import bisect
import threading

import numpy as np

from repro.errors import BadAddressError, DoubleFreeError
from repro.offload.buffer import BufferPtr

__all__ = ["HostedBuffers"]

_ALIGN = 64


class HostedBuffers:
    """Address-keyed buffer table with offset-aware access."""

    def __init__(self) -> None:
        self._next_addr = 0x1000
        #: base address -> backing storage
        self._buffers: dict[int, np.ndarray] = {}
        #: sorted base addresses for containment lookups
        self._bases: list[int] = []
        #: Table mutations and lookups may race between a server's
        #: receive thread (alloc/free/write/read) and its worker pool
        #: (BufferPtr resolution) — the lock keeps the address table
        #: consistent. Access to the returned storage itself is the
        #: application's concern, as with real device memory.
        self._lock = threading.Lock()

    def alloc(self, nbytes: int) -> int:
        """Allocate ``nbytes``; returns the (never-reused) base address."""
        if nbytes <= 0:
            raise BadAddressError(f"allocation size must be positive, got {nbytes}")
        with self._lock:
            addr = self._next_addr
            self._next_addr += -(-nbytes // _ALIGN) * _ALIGN + _ALIGN
            self._buffers[addr] = np.zeros(nbytes, dtype=np.uint8)
            bisect.insort(self._bases, addr)
        return addr

    def free(self, addr: int) -> None:
        """Free an allocation by its base address."""
        with self._lock:
            if self._buffers.pop(addr, None) is None:
                raise DoubleFreeError(f"free of unknown address {addr:#x}")
            self._bases.remove(addr)

    def _locate(self, addr: int, nbytes: int) -> tuple[np.ndarray, int]:
        """Find ``(storage, offset)`` for a range, which may start inside
        an allocation (offset pointers)."""
        with self._lock:
            index = bisect.bisect_right(self._bases, addr) - 1
            if index >= 0:
                base = self._bases[index]
                storage = self._buffers[base]
                offset = addr - base
                if offset + nbytes <= storage.size:
                    return storage, offset
        raise BadAddressError(
            f"range [{addr:#x}, {addr + nbytes:#x}) is not inside a live buffer"
        )

    def write(self, addr: int, data) -> None:
        """Copy bytes into a live buffer range (accepts any bytes-like)."""
        storage, offset = self._locate(addr, len(data))
        storage[offset : offset + len(data)] = np.frombuffer(data, dtype=np.uint8)

    def read(self, addr: int, nbytes: int) -> bytes:
        """Copy bytes out of a live buffer range."""
        storage, offset = self._locate(addr, nbytes)
        return storage[offset : offset + nbytes].tobytes()

    def view(self, ptr: BufferPtr) -> np.ndarray:
        """Zero-copy typed view for a :class:`BufferPtr` (target side)."""
        storage, offset = self._locate(ptr.addr, ptr.nbytes)
        return storage[offset : offset + ptr.nbytes].view(ptr.dtype)

    @property
    def live_count(self) -> int:
        """Number of live allocations."""
        with self._lock:
            return len(self._buffers)
