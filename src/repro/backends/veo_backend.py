"""The VEO-based communication protocol (paper Sec. III-D, Fig. 5).

One-sided communication coordinated by the **VH**: both the receive
buffers (offload messages) and the send buffers (result messages) live in
**VE memory**; the host accesses them exclusively through VEO read/write
operations, i.e. through the privileged DMA with its ~100 µs
per-operation latency. The VE-side message loop polls its *local* memory,
which is cheap — all the protocol's cost sits on the host side:

* offload:  ``veo_write`` (message) + ``veo_write`` (flag)
* result:   ``veo_read`` (flag, repeated until set) + ``veo_read`` (message)

Four privileged-DMA operations ≈ 430 µs — the paper's Fig. 9 "HAM-Offload
(VEO)" bar, 5.4× a native VEO call.
"""

from __future__ import annotations

from repro.backends._sim_common import SlotLayout, decode_flag, encode_flag
from repro.backends._sim_base import SimBackendBase, SimInvokeHandle, TargetChannel
from repro.veos.loader import VeLibrary

__all__ = ["VeoCommBackend"]


class VeoCommBackend(SimBackendBase):
    """HAM-Offload communication backend using VEO data transfers."""

    name = "veo"
    device_description = "simulated NEC VE (VEO protocol)"

    # -- setup (paper Fig. 4: C-API publishes buffer addresses) ------------
    def _configure_library(self, library: VeLibrary) -> None:
        library.add_function("ham_comm_init", lambda *args: 0)

    def _setup_channel(self, channel: TargetChannel) -> None:
        recv_base = channel.proc.alloc_mem(self.num_slots * (8 + self.msg_size))
        send_base = channel.proc.alloc_mem(self.num_slots * (8 + self.msg_size))
        channel.recv = SlotLayout(recv_base, self.num_slots, self.msg_size)
        channel.send = SlotLayout(send_base, self.num_slots, self.msg_size)
        # The VH communicates the communication-area addresses to the
        # VE-side C-API through a (paid) VEO call.
        channel.ctx.call_sync(
            channel.lib_handle.get_symbol("ham_comm_init"),
            recv_base,
            send_base,
            self.num_slots,
            self.msg_size,
        )

    # -- host side ------------------------------------------------------------
    def _host_send(
        self, channel: TargetChannel, slot: int, seq: int, message: bytes
    ) -> None:
        # Two VEO writes: message buffer, then notification flag.
        channel.proc.write_mem(channel.recv.msg_addr(slot), message)
        flag = encode_flag(1, len(message), seq)
        channel.proc.write_mem(
            channel.recv.flag_addr(slot), flag.to_bytes(8, "little")
        )
        channel.doorbell.ring()

    def _host_poll(self, handle: SimInvokeHandle) -> None:
        channel = handle.channel
        channel.check_server()
        # One VEO read of the result flag (the expensive poll).
        poll_start = self.sim.now
        raw = channel.proc.read_mem(channel.send.flag_addr(handle.slot), 8)
        self._span("host.poll_flag", poll_start)
        marker, length, seq = decode_flag(int.from_bytes(raw, "little"))
        if marker and seq == handle.seq:
            read_start = self.sim.now
            reply = channel.proc.read_mem(channel.send.msg_addr(handle.slot), length)
            self._span("host.read_result", read_start)
            self._finish_handle(handle, reply)

    # -- VE side ----------------------------------------------------------------
    def _ve_main(self, channel: TargetChannel):
        hbm = channel.ve.hbm
        timing = self.timing
        slot = 0
        running = True
        while running:
            flag_addr = channel.recv.flag_addr(slot)
            expected = channel.ve_expected_seq[slot] + 1
            while True:
                # Poll the *local* notification flag (cheap local read).
                yield self.sim.timeout(timing.cpu_local_poll)
                marker, length, seq = decode_flag(hbm.read_u64(flag_addr))
                if marker and seq == expected:
                    break
                yield from channel.doorbell.wait()
            channel.ve_expected_seq[slot] = expected
            message = hbm.read(channel.recv.msg_addr(slot), length)
            reply, running = yield from self._execute_on_ve(channel, slot, seq, message)
            # Result message into the send buffer (local write), then flag.
            yield self.sim.timeout(timing.cpu_local_write)
            hbm.write(channel.send.msg_addr(slot), reply)
            hbm.write_u64(
                channel.send.flag_addr(slot), encode_flag(1, len(reply), seq)
            )
            channel.result_doorbell.ring()
            slot = (slot + 1) % self.num_slots
