"""In-process communication backend.

Targets are separate :class:`~repro.ham.registry.ProcessImage` instances
living in the host process. Messages are *really* serialized, moved and
deserialized — the full wire path is exercised — but execution happens
synchronously at post time, so every handle completes immediately.
The async surface degenerates accordingly: a done-callback attached to
a local handle fires at once (the handle is already complete), and an
``await`` on a local future resolves without suspending — no reactor
involvement, same semantics.

This backend is the debugging/portability baseline: the same application
runs here, over TCP, and on the simulated SX-Aurora protocols without
modification (paper Sec. V end).
"""

from __future__ import annotations

import os

import numpy as np

from repro.backends._target_memory import HostedBuffers
from repro.backends.base import Backend, InvokeHandle
from repro.errors import BackendError
from repro.ham.execution import build_invoke, execute_message
from repro.ham.functor import Functor
from repro.ham.registry import Catalog, ProcessImage
from repro.offload.buffer import BufferPtr
from repro.offload.node import HOST_NODE, NodeDescriptor, NodeId
from repro.telemetry import recorder as telemetry

__all__ = ["LocalBackend"]


class _Target:
    """One in-process offload target: an image plus its buffer table."""

    def __init__(self, node: NodeId, catalog: Catalog | None) -> None:
        self.node = node
        self.image = ProcessImage(f"local-target-{node}", catalog)
        self.buffers = HostedBuffers()
        self.messages_executed = 0


class LocalBackend(Backend):
    """Synchronous in-process backend with ``num_targets`` targets."""

    name = "local"

    def __init__(self, num_targets: int = 1, catalog: Catalog | None = None) -> None:
        if num_targets < 1:
            raise BackendError(f"need at least one target, got {num_targets}")
        super().__init__()
        self.host_image = ProcessImage("local-host", catalog)
        self._targets = {
            node: _Target(node, catalog) for node in range(1, num_targets + 1)
        }
        self._msg_id = 0
        self._alive = True

    # -- topology ------------------------------------------------------------
    def num_nodes(self) -> int:
        return 1 + len(self._targets)

    def descriptor(self, node: NodeId) -> NodeDescriptor:
        if node == HOST_NODE:
            return NodeDescriptor(node, "host", "host", "local backend host")
        self.check_target(node)
        return NodeDescriptor(node, f"local{node}", "cpu", "in-process target")

    # -- invocation -----------------------------------------------------------
    def post_invoke(self, node: NodeId, functor: Functor) -> InvokeHandle:
        self._check_alive()
        self.check_target(node)
        # Execution is synchronous, so the slot frees again before this
        # method returns — the admission still goes through the window so
        # limits, gauges and the channel contract behave uniformly.
        self._admit_invoke(label=functor.type_name)
        try:
            target = self._targets[node]
            self._msg_id += 1
            invoke = build_invoke(self.host_image, functor, self._msg_id)
            handle = InvokeHandle(self, label=functor.type_name)
        except BaseException:
            self.window.cancel()
            raise
        self._register_invoke(handle)
        # Telemetry phase ``offload.transport``: for the in-process
        # backend the "wire" is a synchronous call, so transport time is
        # the handoff around the nested ``offload.execute`` span.
        try:
            with telemetry.span("offload.transport", node=node, bytes=len(invoke)):
                reply, _keep_running = execute_message(
                    target.image,
                    invoke,
                    resolver=lambda arg: self._resolve(target, arg),
                )
        except BaseException as exc:
            # Registered but never completed would leak the window slot;
            # settle the handle with the error before re-raising.
            handle.complete_with_error(exc)
            raise
        handle._transport_spanned = True
        target.messages_executed += 1
        handle.complete_with_reply(reply)
        return handle

    def drive(
        self, handle: InvokeHandle, *, blocking: bool, timeout: float | None = None
    ) -> None:
        # Everything completes at post time, so deadlines are moot.
        if blocking and not handle.completed:  # pragma: no cover - defensive
            raise BackendError("local backend handle left incomplete")

    # -- memory ------------------------------------------------------------------
    def alloc_buffer(self, node: NodeId, nbytes: int) -> int:
        self._check_alive()
        self.check_target(node)
        return self._targets[node].buffers.alloc(nbytes)

    def free_buffer(self, node: NodeId, addr: int) -> None:
        self._check_alive()
        self.check_target(node)
        self._targets[node].buffers.free(addr)

    def write_buffer(self, node: NodeId, addr: int, data: bytes) -> None:
        self._check_alive()
        self.check_target(node)
        self._targets[node].buffers.write(addr, data)

    def read_buffer(self, node: NodeId, addr: int, nbytes: int) -> bytes:
        self._check_alive()
        self.check_target(node)
        return self._targets[node].buffers.read(addr, nbytes)

    # -- target-side resolution ------------------------------------------------------
    def _resolve(self, target: _Target, arg: object) -> object:
        if isinstance(arg, BufferPtr):
            if arg.node != target.node:
                raise BackendError(
                    f"buffer of node {arg.node} dereferenced on node {target.node}"
                )
            return target.buffers.view(arg)
        return arg

    def resolve_buffer(self, node: NodeId, ptr: BufferPtr) -> np.ndarray:
        self.check_target(node)
        return self._targets[node].buffers.view(ptr)

    # -- lifecycle ----------------------------------------------------------------------
    def messages_executed(self, node: NodeId) -> int:
        """Number of messages a target has executed (for tests)."""
        self.check_target(node)
        return self._targets[node].messages_executed

    def stats(self) -> dict:
        """Execution counters per in-process target."""
        return {
            "backend": self.name,
            "messages_executed": sum(
                t.messages_executed for t in self._targets.values()
            ),
            "targets": {
                node: {
                    "messages_executed": target.messages_executed,
                    "live_buffers": target.buffers.live_count,
                }
                for node, target in self._targets.items()
            },
        }

    def introspect_target(self, timeout: float | None = None) -> dict:
        """Live target state, in the transport-agnostic introspection shape.

        The in-process analogue of the remote backends' ``OP_INTROSPECT``
        roundtrip: execution is synchronous, so the worker pool reads as
        one always-idle worker and nothing is ever pending. ``timeout``
        is accepted for signature parity and ignored.
        """
        return {
            "role": "target",
            "transport": self.name,
            "pid": os.getpid(),
            "workers": {"pool_size": 1, "active": 0},
            "pending_invokes": 0,
            "messages_executed": sum(
                t.messages_executed for t in self._targets.values()
            ),
            "live_buffers": sum(
                t.buffers.live_count for t in self._targets.values()
            ),
            "rings": None,
        }

    def shutdown(self) -> None:
        self._alive = False

    def _check_alive(self) -> None:
        if not self._alive:
            raise BackendError("local backend is shut down")
