"""Standalone offload target — ``python -m repro.backends.target_main``.

Runs a :class:`~repro.backends.tcp.TcpTargetServer` (default) or — with
``--transport shm`` — a :class:`~repro.backends.shm.ShmTargetServer` in
this process so a host in another terminal can offload to it. The
application modules named with ``--import`` are imported first so their
``@offloadable`` functions register — the runtime analogue of the
paper's "build the whole application for both sides".

Example::

    # terminal 1 (target)
    python -m repro.backends.target_main --port 7001 --import myapp.kernels

    # terminal 2 (host)
    from repro.backends import TcpBackend
    from repro.offload import Runtime
    runtime = Runtime(TcpBackend(("127.0.0.1", 7001)))

Shared-memory transport (same machine only — the segment name printed
at startup is what the host attaches to)::

    # terminal 1 (target)
    python -m repro.backends.target_main --transport shm --import myapp.kernels

    # terminal 2 (host)
    from repro.backends import ShmBackend
    runtime = Runtime(ShmBackend("psm_xxxxxxxx"))  # name printed above

The shm target owns the segment: it creates it at startup and unlinks
it on shutdown, so an aborted host never leaves ``/dev/shm`` entries
behind.
"""

from __future__ import annotations

import argparse
import importlib
import sys

from repro.backends.tcp import DEFAULT_SERVER_WORKERS, TcpTargetServer

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-target",
        description="Run a HAM-Offload TCP target server.",
    )
    parser.add_argument(
        "--transport",
        choices=("tcp", "shm"),
        default="tcp",
        help="tcp listens on --host/--port; shm creates a shared-memory "
        "segment (same machine only) and prints its name for the host "
        "to attach to (default tcp)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (tcp)")
    parser.add_argument(
        "--port", type=int, default=0, help="port (tcp; 0 = ephemeral)"
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=None,
        metavar="BYTES",
        help="per-direction ring capacity for --transport shm "
        "(default 1 MiB)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=DEFAULT_SERVER_WORKERS,
        help="size of the concurrent-execution worker pool "
        f"(default {DEFAULT_SERVER_WORKERS})",
    )
    parser.add_argument(
        "--import",
        dest="imports",
        action="append",
        default=[],
        metavar="MODULE",
        help="application module to import (repeatable); its @offloadable "
        "functions become callable by the host",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="record target-side spans (the host drains them via "
        "OP_TELEMETRY); messages flagged unsampled by the host's head "
        "sampler skip span recording here either way",
    )
    parser.add_argument(
        "--telemetry-capacity",
        type=int,
        default=65536,
        metavar="N",
        help="span ring capacity when --telemetry is set (default 65536)",
    )
    args = parser.parse_args(argv)

    if args.telemetry:
        from repro.telemetry import recorder as telemetry

        telemetry.enable(args.telemetry_capacity)

    for module_name in args.imports:
        try:
            importlib.import_module(module_name)
        except ImportError as exc:
            print(f"error: cannot import {module_name!r}: {exc}", file=sys.stderr)
            return 2

    if args.transport == "shm":
        from repro.backends.shm import (
            DEFAULT_RING_CAPACITY,
            ShmSegment,
            ShmTargetServer,
        )

        segment = ShmSegment.create(args.capacity or DEFAULT_RING_CAPACITY)
        try:
            shm_server = ShmTargetServer(segment, workers=args.workers)
            print(
                f"HAM-Offload target on shared-memory segment {segment.name}",
                flush=True,
            )
            print(
                "offloadable types registered: "
                f"{shm_server.image.catalog and len(shm_server.image.catalog)}",
                flush=True,
            )
            shm_server.serve_forever()
            print("client disconnected; target shutting down", flush=True)
        finally:
            segment.close()
            segment.unlink()
        return 0

    server = TcpTargetServer(host=args.host, port=args.port, workers=args.workers)
    host, port = server.address
    print(f"HAM-Offload target listening on {host}:{port}", flush=True)
    print(
        f"offloadable types registered: {server.image.catalog and len(server.image.catalog)}",
        flush=True,
    )
    server.serve_forever()
    print("client disconnected; target shutting down", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess test
    raise SystemExit(main())
