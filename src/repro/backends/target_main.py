"""Standalone TCP offload target — ``python -m repro.backends.target_main``.

Runs a :class:`~repro.backends.tcp.TcpTargetServer` in this process so a
host on another machine (or another terminal) can offload to it with
:class:`~repro.backends.tcp.TcpBackend`. The application modules named
with ``--import`` are imported first so their ``@offloadable`` functions
register — the runtime analogue of the paper's "build the whole
application for both sides".

Example::

    # terminal 1 (target)
    python -m repro.backends.target_main --port 7001 --import myapp.kernels

    # terminal 2 (host)
    from repro.backends import TcpBackend
    from repro.offload import Runtime
    runtime = Runtime(TcpBackend(("127.0.0.1", 7001)))
"""

from __future__ import annotations

import argparse
import importlib
import sys

from repro.backends.tcp import DEFAULT_SERVER_WORKERS, TcpTargetServer

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-target",
        description="Run a HAM-Offload TCP target server.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=0, help="port (0 = ephemeral)")
    parser.add_argument(
        "--workers",
        type=int,
        default=DEFAULT_SERVER_WORKERS,
        help="size of the concurrent-execution worker pool "
        f"(default {DEFAULT_SERVER_WORKERS})",
    )
    parser.add_argument(
        "--import",
        dest="imports",
        action="append",
        default=[],
        metavar="MODULE",
        help="application module to import (repeatable); its @offloadable "
        "functions become callable by the host",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="record target-side spans (the host drains them via "
        "OP_TELEMETRY); messages flagged unsampled by the host's head "
        "sampler skip span recording here either way",
    )
    parser.add_argument(
        "--telemetry-capacity",
        type=int,
        default=65536,
        metavar="N",
        help="span ring capacity when --telemetry is set (default 65536)",
    )
    args = parser.parse_args(argv)

    if args.telemetry:
        from repro.telemetry import recorder as telemetry

        telemetry.enable(args.telemetry_capacity)

    for module_name in args.imports:
        try:
            importlib.import_module(module_name)
        except ImportError as exc:
            print(f"error: cannot import {module_name!r}: {exc}", file=sys.stderr)
            return 2

    server = TcpTargetServer(host=args.host, port=args.port, workers=args.workers)
    host, port = server.address
    print(f"HAM-Offload target listening on {host}:{port}", flush=True)
    print(
        f"offloadable types registered: {server.image.catalog and len(server.image.catalog)}",
        flush=True,
    )
    server.serve_forever()
    print("client disconnected; target shutting down", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess test
    raise SystemExit(main())
