"""Communication backends (paper Fig. 1, bottom row).

HAM combines its active-message infrastructure with an *abstract
communication backend*; this package provides four:

``local``
    Functional in-process backend (wall clock). The target is a separate
    :class:`~repro.ham.registry.ProcessImage` executed synchronously —
    useful for testing, debugging and as the portability baseline.
``tcp``
    Functional TCP/IP backend (wall clock): real sockets, real processes.
    Plays the role of the paper's generic TCP backend ("interoperability
    rather than performance").
``veo``
    The paper's Sec. III-D protocol on the simulated SX-Aurora: VH-managed
    message buffers in VE memory, accessed through VEO read/write over the
    privileged DMA. Timed in simulated seconds.
``dma``
    The paper's Sec. IV-B protocol: all communication memory in a SysV
    shared-memory segment on the VH, registered in the VE's DMAATB; the VE
    polls flags with LHM, fetches messages with user DMA and returns
    results with SHM stores. Timed in simulated seconds.

Plus :class:`~repro.backends.faulty.FaultInjectingBackend`, a
deterministic chaos proxy that wraps any of the above and injects
drops, delays, disconnects and corrupt frames by seeded schedule — the
test harness for the resilience layer.
"""

from repro.backends.base import Backend, InvokeHandle
from repro.backends.local import LocalBackend
from repro.backends.tcp import TcpBackend, TcpTargetServer, spawn_local_server
from repro.backends.veo_backend import VeoCommBackend
from repro.backends.dma_backend import DmaCommBackend
from repro.backends.cluster_backend import ClusterBackend
from repro.backends.fanout import FanoutBackend
from repro.backends.faulty import FaultInjectingBackend

__all__ = [
    "Backend",
    "ClusterBackend",
    "DmaCommBackend",
    "FanoutBackend",
    "FaultInjectingBackend",
    "InvokeHandle",
    "LocalBackend",
    "TcpBackend",
    "TcpTargetServer",
    "VeoCommBackend",
    "spawn_local_server",
]
