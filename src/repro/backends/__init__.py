"""Communication backends (paper Fig. 1, bottom row).

HAM combines its active-message infrastructure with an *abstract
communication backend*; this package provides four:

``local``
    Functional in-process backend (wall clock). The target is a separate
    :class:`~repro.ham.registry.ProcessImage` executed synchronously —
    useful for testing, debugging and as the portability baseline.
``tcp``
    Functional TCP/IP backend (wall clock): real sockets, real processes.
    Plays the role of the paper's generic TCP backend ("interoperability
    rather than performance").
``shm``
    Functional shared-memory backend (wall clock): a
    :mod:`multiprocessing.shared_memory` segment laid out as a pair of
    lock-free SPSC rings, polled with adaptive spin-then-sleep loops on
    both sides. The real-hardware analogue of the paper's Sec. IV-B
    DMAATB protocol — small-message RTT several times below TCP on
    localhost because no byte ever crosses the kernel.
``veo``
    The paper's Sec. III-D protocol on the simulated SX-Aurora: VH-managed
    message buffers in VE memory, accessed through VEO read/write over the
    privileged DMA. Timed in simulated seconds.
``dma``
    The paper's Sec. IV-B protocol: all communication memory in a SysV
    shared-memory segment on the VH, registered in the VE's DMAATB; the VE
    polls flags with LHM, fetches messages with user DMA and returns
    results with SHM stores. Timed in simulated seconds.

Plus :class:`~repro.backends.faulty.FaultInjectingBackend`, a
deterministic chaos proxy that wraps any of the above and injects
drops, delays, disconnects and corrupt frames by seeded schedule — the
test harness for the resilience layer.
"""

from repro.backends.base import Backend, InvokeHandle
from repro.backends.local import LocalBackend
from repro.backends.tcp import TcpBackend, TcpTargetServer, spawn_local_server
from repro.backends.shm import ShmBackend, ShmTargetServer, spawn_shm_server
from repro.backends.veo_backend import VeoCommBackend
from repro.backends.dma_backend import DmaCommBackend
from repro.backends.cluster_backend import ClusterBackend
from repro.backends.fanout import FanoutBackend
from repro.backends.faulty import FaultInjectingBackend

__all__ = [
    "Backend",
    "ClusterBackend",
    "DmaCommBackend",
    "FanoutBackend",
    "FaultInjectingBackend",
    "InvokeHandle",
    "LocalBackend",
    "ShmBackend",
    "ShmTargetServer",
    "TcpBackend",
    "TcpTargetServer",
    "VeoCommBackend",
    "create_backend",
    "spawn_local_server",
    "spawn_shm_server",
]


def create_backend(name: str, **options) -> Backend:
    """Build a ready-to-use functional backend from a short name.

    The string form of :func:`repro.offload.init`'s ``backend``
    argument: ``"local"`` runs the target in-process, ``"tcp"`` and
    ``"shm"`` fork a target server and connect to it, wiring
    ``on_shutdown`` so the child is joined when the runtime shuts down.
    Remaining keyword ``options`` are forwarded to the backend
    constructor; for ``tcp`` an ``address=(host, port)`` option connects
    to an already-running server instead of spawning one, and for
    ``shm`` a ``segment="name"`` option attaches to an existing segment
    by name.
    """
    if name == "local":
        return LocalBackend(**options)
    if name == "tcp":
        if "address" in options:
            return TcpBackend(**options)
        workers = options.pop("workers", None)
        spawn_kwargs = {} if workers is None else {"workers": workers}
        process, address = spawn_local_server(**spawn_kwargs)
        return TcpBackend(
            address,
            on_shutdown=lambda: process.join(timeout=10),
            **options,
        )
    if name == "shm":
        if "segment" in options:
            return ShmBackend(options.pop("segment"), **options)
        workers = options.pop("workers", None)
        capacity = options.pop("capacity", None)
        spawn_kwargs = {}
        if workers is not None:
            spawn_kwargs["workers"] = workers
        if capacity is not None:
            spawn_kwargs["capacity"] = capacity
        process, segment = spawn_shm_server(**spawn_kwargs)
        return ShmBackend(
            segment,
            alive_fn=process.is_alive,
            on_shutdown=lambda: process.join(timeout=10),
            **options,
        )
    raise ValueError(
        f"unknown backend name {name!r}; expected 'local', 'tcp' or 'shm'"
    )
