"""The DMA-based communication protocol (paper Sec. IV-B, Fig. 7/8).

One-sided communication issued by the **VE**: *all* communication memory
lives in a SystemV shared-memory segment on the **VH**, registered in the
VE's DMAATB so VE code can reach it without any OS interaction:

* the VH posts an offload by **local** memory writes (message + flag);
* the VE polls the flag with an **LHM** word load (≈ one PCIe round
  trip), fetches the message with **user DMA** into its registered HBM2
  staging area, executes it, and returns the (small) result message and
  flag with posted **SHM** stores;
* the VH is a passive receiver: it finds the result in its local memory.

No privileged DMA, no VEOS interaction, no virtual→physical translation
on the critical path — total ≈ 6 µs per offload, the paper's Fig. 9
"HAM-Offload (DMA)" bar (13.1× faster than a native VEO call).

Bulk data transfers (``put``/``get``) still go through VEO, as in the
paper ("data exchange [is] still performed through the VEO API"). With
multiple target VEs, each channel gets its own shared-memory segment and
DMAATB registration.
"""

from __future__ import annotations

from repro.backends._sim_common import SlotLayout, decode_flag, encode_flag
from repro.backends._sim_base import SimBackendBase, SimInvokeHandle, TargetChannel
from repro.errors import BackendError
from repro.veos.loader import VeLibrary

__all__ = ["DmaCommBackend"]


class DmaCommBackend(SimBackendBase):
    """HAM-Offload communication backend using VE user DMA and LHM/SHM.

    Parameters
    ----------
    result_path:
        How the VE returns result messages: ``"shm"`` (default, the
        paper's choice — posted stores win for small messages) or
        ``"udma"`` (a user-DMA write; ablation A3 explores when that
        would pay off). The notification flag always uses one SHM word.
    """

    name = "dma"
    device_description = "simulated NEC VE (user-DMA protocol)"

    def __init__(self, *args, result_path: str = "shm", **kwargs) -> None:
        if result_path not in ("shm", "udma"):
            raise BackendError(f"unknown result path {result_path!r}")
        self.result_path = result_path
        super().__init__(*args, **kwargs)

    # -- setup (paper Fig. 7 memory layout) ----------------------------------
    def _configure_library(self, library: VeLibrary) -> None:
        library.add_function("ham_comm_init_dma", lambda *args: 0)

    def _setup_channel(self, channel: TargetChannel) -> None:
        slot_bytes = 8 + self.msg_size
        recv_size = self.num_slots * slot_bytes
        send_size = self.num_slots * slot_bytes
        # SysV shared-memory segment on the VH *of the channel's machine*
        # (huge pages as the paper recommends); both areas live inside it.
        channel.segment = channel.machine.vh.shmget(
            recv_size + send_size, huge_pages=True
        )
        channel.recv = SlotLayout(0, self.num_slots, self.msg_size)
        channel.send = SlotLayout(recv_size, self.num_slots, self.msg_size)
        # VE side: attach the segment by key and register it in the
        # DMAATB; register an HBM staging area for incoming messages.
        segment = channel.machine.vh.segment_by_key(channel.segment.key)
        channel.atb_entry = channel.ve.dmaatb.register(segment, 0, segment.size)
        channel.staging = channel.ve.hbm.allocate(self.msg_size)
        channel.ve.udma.validate_local(
            channel.ve.hbm, channel.staging.addr, self.msg_size
        )
        # Publish the segment key and layout through one (paid) VEO call.
        channel.ctx.call_sync(
            channel.lib_handle.get_symbol("ham_comm_init_dma"),
            channel.segment.key,
            self.num_slots,
            self.msg_size,
        )

    @staticmethod
    def _vehva(channel: TargetChannel, segment_addr: int) -> int:
        """VEHVA of an address inside the channel's shared segment."""
        return channel.atb_entry.vehva + segment_addr

    # -- direct VE-to-VE copies (extension M3) --------------------------------
    def copy_buffer(
        self,
        src_node: int,
        src_addr: int,
        dst_node: int,
        dst_addr: int,
        nbytes: int,
    ) -> None:
        """Target-to-target copy.

        The paper notes that VE user DMA can reach *other VEs'* memory
        once registered in the DMAATB (Sec. I-B). For distinct VEs on
        this machine we register the source range in the destination
        VE's DMAATB and issue one peer user-DMA read — one PCIe transit
        instead of the host-staged read+write of the base implementation
        (two privileged-DMA operations, ~200 µs of latency).
        """
        if src_node == dst_node:
            # Same-VE copy: local HBM-to-HBM move.
            channel = self.channel(src_node)
            channel.ve.hbm.write(dst_addr, channel.ve.hbm.read(src_addr, nbytes))
            self._advance(self.timing.memcpy_time(nbytes, device="ve"))
            return
        src_channel = self.channel(src_node)
        dst_channel = self.channel(dst_node)
        if src_channel.machine is not dst_channel.machine:
            # Different cluster nodes: no peer DMA across the IB fabric;
            # fall back to the host-staged path.
            super().copy_buffer(src_node, src_addr, dst_node, dst_addr, nbytes)
            return
        entry = dst_channel.ve.dmaatb.register(
            src_channel.ve.hbm, src_addr, nbytes
        )
        try:
            self.sim.run(
                until=self.sim.process(
                    dst_channel.ve.udma.read_host(
                        entry.vehva, dst_channel.ve.hbm, dst_addr, nbytes
                    ),
                    name=f"peer-copy.ve{src_channel.ve_index}->ve{dst_channel.ve_index}",
                )
            )
        finally:
            dst_channel.ve.dmaatb.unregister(entry)

    # -- host side ----------------------------------------------------------------
    def _host_send(
        self, channel: TargetChannel, slot: int, seq: int, message: bytes
    ) -> None:
        # Purely local memory writes on the VH.
        channel.segment.write(channel.recv.msg_addr(slot), message)
        channel.segment.write_u64(
            channel.recv.flag_addr(slot), encode_flag(1, len(message), seq)
        )
        self._advance(self.timing.cpu_local_write)
        channel.doorbell.ring()

    def _host_poll(self, handle: SimInvokeHandle) -> None:
        channel = handle.channel
        channel.check_server()
        # Local poll of the result flag in the shared segment.
        self._advance(self.timing.cpu_local_poll)
        value = channel.segment.read_u64(channel.send.flag_addr(handle.slot))
        marker, length, seq = decode_flag(value)
        if marker and seq == handle.seq:
            reply = channel.segment.read(channel.send.msg_addr(handle.slot), length)
            self._finish_handle(handle, reply)
            return
        # Nothing yet: skip ahead to the next simulation event (the host
        # keeps polling; we just don't simulate every idle iteration).
        next_event = self.sim.peek()
        if next_event == float("inf"):
            raise BackendError(
                "DMA protocol: target went silent (simulation ran dry)"
            )
        self.sim.run(until=next_event)

    # -- VE side --------------------------------------------------------------------
    def _ve_main(self, channel: TargetChannel):
        hbm = channel.ve.hbm
        slot = 0
        running = True
        while running:
            flag_vehva = self._vehva(channel, channel.recv.flag_addr(slot))
            expected = channel.ve_expected_seq[slot] + 1
            while True:
                # Remote poll: one LHM word load ≈ one PCIe round trip.
                poll_start = self.sim.now
                value = yield from channel.ve.lhm_read_u64(flag_vehva)
                self._span("ve.lhm_poll", poll_start)
                marker, length, seq = decode_flag(value)
                if marker and seq == expected:
                    break
                yield from channel.doorbell.wait()
            channel.ve_expected_seq[slot] = expected
            # Fetch the message with user DMA into the registered staging
            # area (no translation: the segment is in the DMAATB).
            fetch_start = self.sim.now
            yield from channel.ve.udma.read_host(
                self._vehva(channel, channel.recv.msg_addr(slot)),
                hbm,
                channel.staging.addr,
                length,
            )
            message = hbm.read(channel.staging.addr, length)
            self._span("ve.dma_fetch", fetch_start)
            reply, running = yield from self._execute_on_ve(channel, slot, seq, message)
            result_start = self.sim.now
            if self.result_path == "shm":
                # Result message as posted SHM stores into VH memory.
                yield from channel.ve.shm_write(
                    self._vehva(channel, channel.send.msg_addr(slot)), reply
                )
            else:
                # Ablation A3: stage the reply in HBM and user-DMA it out.
                hbm.write(channel.staging.addr, reply)
                yield from channel.ve.udma.write_host(
                    hbm, channel.staging.addr,
                    self._vehva(channel, channel.send.msg_addr(slot)), len(reply),
                )
            yield from channel.ve.shm_write_u64(
                self._vehva(channel, channel.send.flag_addr(slot)),
                encode_flag(1, len(reply), seq),
            )
            self._span("ve.result_store", result_start)
            # Ring once the posted flag store has become visible on the
            # host side (for in-sim waiters like cluster agents).
            visibility = self.timing.shm_visibility_delay(
                upi_hops=channel.ve.link.upi_hops
            )
            self.sim.timeout(visibility).callbacks.append(
                lambda _ev, ch=channel: ch.result_doorbell.ring()
            )
            slot = (slot + 1) % self.num_slots
