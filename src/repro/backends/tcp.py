"""TCP/IP communication backend — the pipelined channel transport.

The functional counterpart of the paper's generic TCP backend
("interoperability rather than performance", Sec. I-A): real sockets,
real processes, genuine asynchrony. The target runs
:class:`TcpTargetServer` — either spawned in a forked child via
:func:`spawn_local_server` (the fork inherits the application's
offloadable catalog, mirroring "build the same application for both
sides") or started manually on another machine.

Wire protocol (all integers little-endian)::

    frame   := length:u32 | op:u8 | corr:u64 | body      (length = 9 + len(body))
    op 0x01 INVOKE    body = HAM message          -> 0x81 body = HAM reply
    op 0x02 ALLOC     body = nbytes:u64           -> 0x82 body = addr:u64
    op 0x03 FREE      body = addr:u64             -> 0x83 body = ""
    op 0x04 WRITE     body = addr:u64 | data      -> 0x84 body = ""
    op 0x05 READ      body = addr:u64 | n:u64     -> 0x85 body = data
    op 0x06 SHUTDOWN  body = ""                   -> 0x86 body = ""
    op 0x07 PING      body = ""                   -> 0x87 body = ""
    op 0x08 TELEMETRY body = ""                   -> 0x88 body = pickled records
    op 0x09 CLOCK     body = ""                   -> 0x89 body = perf_ns:u64
    op 0x0A INTROSPECT body = ""                  -> 0x8A body = pickled state
    any failure                                    -> 0xFF body = pickled info

Every frame carries a **correlation id**; replies (including failure
replies) echo the request's id. The client matches replies through an
id-keyed table instead of a FIFO, so they may arrive in any order —
which is what lets the target execute invocations concurrently (worker
pool) while memory operations stay synchronous roundtrips.

Frames are assembled with vectored I/O (``sendmsg``): large array
payloads travel as ``memoryview`` parts straight from the arrays' own
storage, never concatenated host-side. Small invoke frames take the
**coalescing path** instead (:class:`~repro.backends.base.FrameCoalescer`):
they accumulate into one ``sendmsg`` batch flushed on byte budget,
frame count or a sub-millisecond deadline. A batch is just frames
back-to-back on the stream — the server's frame-at-a-time decode loop
is wire-compatible with both paths, unchanged.

The client's inbound side is owned by the process-wide reactor
(:mod:`repro.backends.eventloop`): the socket registers a read
callback and frames are parsed incrementally on the shared loop
thread. There is **no per-connection receiver thread** — fifty
connections cost one loop, not fifty blocking readers.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import socket
import struct
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.backends import eventloop
from repro.backends._target_memory import HostedBuffers
from repro.backends.base import Backend, CoalescePolicy, FrameCoalescer, InvokeHandle
from repro.errors import BackendError, OffloadTimeoutError, RemoteExecutionError
from repro.ham.execution import build_invoke_parts, execute_message
from repro.ham.functor import Functor
from repro.ham.message import peek_trace, peek_trace_flags
from repro.ham.registry import Catalog, ProcessImage
from repro.offload.buffer import BufferPtr
from repro.offload.node import HOST_NODE, NodeDescriptor, NodeId
from repro.telemetry import context as trace_context
from repro.telemetry import flightrecorder
from repro.telemetry import recorder as telemetry
from repro.telemetry.distributed import ClockSync, align_records
from repro.telemetry.export import dicts_to_records, records_to_dicts

__all__ = ["TcpBackend", "TcpTargetServer", "spawn_local_server"]

OP_INVOKE = 0x01
OP_ALLOC = 0x02
OP_FREE = 0x03
OP_WRITE = 0x04
OP_READ = 0x05
OP_SHUTDOWN = 0x06
OP_PING = 0x07
OP_TELEMETRY = 0x08
OP_CLOCK = 0x09
OP_INTROSPECT = 0x0A
OP_REPLY_BIT = 0x80
OP_FAILURE = 0xFF

_LEN = struct.Struct("<I")
_U64 = struct.Struct("<Q")
#: op byte + correlation id, counted inside the frame length.
_FRAME_META = 1 + _U64.size
#: Full on-wire overhead of one frame (length prefix + op + corr).
FRAME_OVERHEAD = _LEN.size + _FRAME_META

#: Default size of the target-side worker pool (concurrent INVOKEs).
DEFAULT_SERVER_WORKERS = 4

#: Bytes pulled off the socket per reactor read callback. Bounded so
#: one firehose connection cannot monopolize the shared loop; the
#: level-triggered selector re-fires while data remains.
_RECV_CHUNK = 256 * 1024


def _sendmsg_all(sock: socket.socket, parts: list) -> None:
    """Send every buffer in ``parts`` with scatter-gather writes.

    ``sendmsg`` hands the kernel the buffer list directly, so large
    array payloads are never concatenated in user space. Partial sends
    are resumed by slicing the remaining views.
    """
    views = [memoryview(part) for part in parts if len(part)]
    while views:
        sent = sock.sendmsg(views)
        while sent:
            head = views[0]
            if sent >= len(head):
                sent -= len(head)
                views.pop(0)
            else:
                views[0] = head[sent:]
                sent = 0


def _send_frame(sock: socket.socket, op: int, corr: int, *parts) -> int:
    """Send one frame; returns the number of wire bytes."""
    body_len = sum(len(part) for part in parts)
    prefix = (
        _LEN.pack(_FRAME_META + body_len) + bytes([op]) + _U64.pack(corr)
    )
    _sendmsg_all(sock, [prefix, *parts])
    return _LEN.size + _FRAME_META + body_len


def _recv_into_exact(
    sock: socket.socket,
    view: memoryview,
    what: str,
    pending: Callable[[], int] | None = None,
) -> None:
    """Fill ``view`` completely from the socket.

    Raises :class:`BackendError` on EOF, reporting how much of the
    expected data arrived and — when the caller supplies a ``pending``
    counter — how many operations were left waiting on the connection.
    """
    received = 0
    total = len(view)
    while received < total:
        n = sock.recv_into(view[received:])
        if n == 0:
            context = ""
            if pending is not None:
                count = pending()
                context = (
                    f"; {count} pending operation{'s' if count != 1 else ''}"
                    " can no longer be matched"
                )
            raise BackendError(
                f"connection closed mid-{what}: received {received} of "
                f"{total} expected bytes{context}"
            )
        received += n


def _recv_frame(
    sock: socket.socket, pending: Callable[[], int] | None = None
) -> tuple[int, int, memoryview]:
    """Read one frame; returns ``(op, correlation_id, body_view)``.

    The body is a :class:`memoryview` over a freshly allocated buffer —
    safe to hand to another thread, decoded without further copies.
    """
    header = bytearray(_LEN.size)
    _recv_into_exact(sock, memoryview(header), "frame header", pending)
    (length,) = _LEN.unpack(header)
    if length < _FRAME_META:
        raise BackendError(
            f"short frame: length {length} < op + correlation header "
            f"({_FRAME_META} bytes)"
        )
    payload = bytearray(length)
    _recv_into_exact(sock, memoryview(payload), "frame payload", pending)
    op = payload[0]
    (corr,) = _U64.unpack_from(payload, 1)
    return op, corr, memoryview(payload)[_FRAME_META:]


try:  # Linux-only kernel queue probes; depths read as zero elsewhere.
    import fcntl
    import termios

    _TIOCOUTQ: int | None = getattr(termios, "TIOCOUTQ", None)
    _FIONREAD: int | None = getattr(termios, "FIONREAD", None)
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]
    _TIOCOUTQ = None
    _FIONREAD = None


def _socket_ioctl(sock: socket.socket, request: int | None) -> int:
    if fcntl is None or request is None:
        return 0
    try:
        return int(
            struct.unpack("@i", fcntl.ioctl(sock.fileno(), request, b"\0" * 4))[0]
        )
    except (OSError, ValueError):
        return 0


def socket_queue_depths(sock: socket.socket) -> dict[str, int]:
    """Kernel-side socket queue occupancy, in bytes.

    ``send_queue`` is data accepted by the kernel but not yet acked by
    the peer (``TIOCOUTQ``); ``recv_queue`` is data the peer sent that
    this process has not yet read (``FIONREAD``). A persistently deep
    send queue means the *network or peer* is the bottleneck; a deep
    recv queue means *this process* is not draining replies. Both read
    as zero on platforms without the ioctls or once the socket closes.
    """
    return {
        "send_queue": _socket_ioctl(sock, _TIOCOUTQ),
        "recv_queue": _socket_ioctl(sock, _FIONREAD),
    }


class TcpTargetServer:
    """The target-side message loop: one client, concurrent execution.

    Invocations are dispatched to a pool of ``workers`` threads, so
    independent offloads execute concurrently and replies return in
    completion order (each tagged with its correlation id). Memory and
    control operations are handled inline on the receive thread —
    they are cheap and their strict ordering keeps alloc/free races out
    of the picture.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        catalog: Catalog | None = None,
        workers: int = DEFAULT_SERVER_WORKERS,
    ) -> None:
        if workers < 1:
            raise BackendError(f"worker pool needs at least 1 thread, got {workers}")
        self.image = ProcessImage("tcp-target", catalog)
        self.buffers = HostedBuffers()
        self.workers = workers
        self._listener = socket.create_server((host, port))
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self.messages_executed = 0
        #: Invocations currently inside the worker pool (executing or
        #: queued behind it) — the server-side backpressure depth.
        self._active_invokes = 0
        self._count_lock = threading.Lock()
        #: Workers and the receive loop share the socket for replies.
        self._send_lock = threading.Lock()

    def serve_forever(self) -> None:
        """Accept one client and serve requests until SHUTDOWN/EOF."""
        conn, _peer = self._listener.accept()
        pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="ham-worker"
        )
        try:
            with conn:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                while True:
                    try:
                        op, corr, body = _recv_frame(conn)
                    except BackendError:
                        return  # client went away
                    if op == OP_INVOKE:
                        with self._count_lock:
                            self._active_invokes += 1
                        pool.submit(self._execute_invoke, conn, corr, body)
                        continue
                    if op == OP_SHUTDOWN:
                        # Drain in-flight invocations before acknowledging,
                        # so the shutdown reply is the last frame sent.
                        pool.shutdown(wait=True)
                        self._reply(conn, OP_SHUTDOWN | OP_REPLY_BIT, corr, b"")
                        return
                    self._handle_inline(conn, op, corr, body)
        finally:
            pool.shutdown(wait=True)
            self._listener.close()

    def _reply(self, conn: socket.socket, op: int, corr: int, *parts) -> None:
        with self._send_lock:
            _send_frame(conn, op, corr, *parts)

    def _send_failure(
        self, conn: socket.socket, corr: int, exc: BaseException
    ) -> None:
        info = {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
        }
        try:
            self._reply(conn, OP_FAILURE, corr, pickle.dumps(info))
        except OSError:  # pragma: no cover - client is already gone
            pass

    def _execute_invoke(
        self, conn: socket.socket, corr: int, body: memoryview
    ) -> None:
        """Worker-pool entry: execute one invocation, reply with its id."""
        worker = threading.current_thread().name
        try:
            # The sampling verdict travels in the v2 header's flag byte:
            # unsampled messages (and only those — v1/flagless messages
            # predate sampling and record as before) skip the
            # server-side reply span entirely.
            flags = peek_trace_flags(body)
            sampled = flags is None or bool(flags & trace_context.FLAG_SAMPLED)
            reply, _keep = execute_message(self.image, body, resolver=self._resolve)
            with self._count_lock:
                self.messages_executed += 1
                active = self._active_invokes
            if not sampled:
                self._reply(conn, OP_INVOKE | OP_REPLY_BIT, corr, reply)
                return
            # Per-worker reply span: which pool thread produced which
            # correlation id (the execute span itself is recorded inside
            # execute_message, parented to the sender's trace). ``pending``
            # is the pool's concurrent-invoke depth at reply time — a slow
            # reply with pending ~= pool size is backpressure, with
            # pending ~= 1 it is this invocation's own execution.
            with telemetry.span(
                "tcp.server.reply", worker=worker, corr=corr, bytes=len(reply),
                pending=active,
            ):
                self._reply(conn, OP_INVOKE | OP_REPLY_BIT, corr, reply)
        except OSError:  # pragma: no cover - client is already gone
            pass
        except Exception as exc:  # noqa: BLE001 - shipped to the client
            self._send_failure(conn, corr, exc)
        finally:
            with self._count_lock:
                self._active_invokes -= 1

    def _handle_inline(
        self, conn: socket.socket, op: int, corr: int, body: memoryview
    ) -> None:
        try:
            if op == OP_ALLOC:
                (nbytes,) = _U64.unpack(body)
                addr = self.buffers.alloc(nbytes)
                self._reply(conn, OP_ALLOC | OP_REPLY_BIT, corr, _U64.pack(addr))
            elif op == OP_FREE:
                (addr,) = _U64.unpack(body)
                self.buffers.free(addr)
                self._reply(conn, OP_FREE | OP_REPLY_BIT, corr, b"")
            elif op == OP_WRITE:
                (addr,) = _U64.unpack(body[:8])
                self.buffers.write(addr, body[8:])
                self._reply(conn, OP_WRITE | OP_REPLY_BIT, corr, b"")
            elif op == OP_READ:
                (addr,) = _U64.unpack(body[:8])
                (nbytes,) = _U64.unpack(body[8:16])
                self._reply(
                    conn, OP_READ | OP_REPLY_BIT, corr,
                    self.buffers.read(addr, nbytes),
                )
            elif op == OP_PING:
                # Handshake: the body carries the client's catalog digest;
                # a mismatch means host and target were "built" from
                # different type sets and keys would not translate.
                digest = self.image.digest()
                if len(body) and bytes(body) != digest:
                    raise BackendError(
                        "offloadable catalogs differ between host and target "
                        "(both sides must import the same application modules)"
                    )
                self._reply(conn, OP_PING | OP_REPLY_BIT, corr, digest)
            elif op == OP_TELEMETRY:
                # Drain this process's telemetry so the host can merge
                # target-side spans (offload.execute, ...) into one
                # timeline. Empty when telemetry is disabled here; a
                # forked server inherits the parent's enabled state.
                recorder = telemetry.get()
                rows = records_to_dicts(recorder.drain()) if recorder else []
                self._reply(
                    conn, OP_TELEMETRY | OP_REPLY_BIT, corr,
                    pickle.dumps(rows, protocol=4),
                )
            elif op == OP_CLOCK:
                # Clock ping-pong: reply with this process's monotonic
                # clock so the client can estimate the offset between
                # the two perf_counter epochs (see telemetry.distributed).
                self._reply(
                    conn, OP_CLOCK | OP_REPLY_BIT, corr,
                    _U64.pack(time.perf_counter_ns()),
                )
            elif op == OP_INTROSPECT:
                self._reply(
                    conn, OP_INTROSPECT | OP_REPLY_BIT, corr,
                    pickle.dumps(self.introspect(), protocol=4),
                )
            else:
                raise BackendError(f"unknown op {op:#x}")
        except OSError:  # pragma: no cover - client is already gone
            pass
        except Exception as exc:  # noqa: BLE001 - shipped to the client
            self._send_failure(conn, corr, exc)

    def introspect(self) -> dict[str, Any]:
        """Live target state, in the transport-agnostic introspection shape.

        Every backend's target answers ``OP_INTROSPECT`` with this same
        dict layout so host-side tooling (``RuntimeInspector``,
        ``repro.telemetry.top``) needs no per-transport cases. ``rings``
        is ``None`` for stream transports; the shm target fills it in.
        """
        with self._count_lock:
            executed = self.messages_executed
            active = self._active_invokes
        return {
            "role": "target",
            "transport": "tcp",
            "pid": os.getpid(),
            "workers": {"pool_size": self.workers, "active": active},
            "pending_invokes": active,
            "messages_executed": executed,
            "live_buffers": self.buffers.live_count,
            "rings": None,
        }

    def _resolve(self, arg: Any) -> Any:
        if isinstance(arg, BufferPtr):
            return self.buffers.view(arg)
        return arg


def _unsampled_reply_context(body) -> "trace_context.TraceContext | None":
    """The reply's trace context, only when it is unsampled.

    Sampled (and untraced/v1) replies return ``None`` so their
    ``offload.reply`` span records exactly as before; an unsampled
    reply's context routes the span through the recorder's sampling
    gate, tying its fate to the trace's tail-retention verdict.
    """
    peeked = peek_trace(body)
    if peeked is None:
        return None
    tid, _parent, flags = peeked
    if tid == 0 or flags & trace_context.FLAG_SAMPLED:
        return None
    return trace_context.TraceContext(trace_id=tid, sampled=False)


def _server_entry(
    port_pipe: Any, catalog: Catalog | None, workers: int
) -> None:
    recorder = telemetry.get()
    if recorder is not None:
        # The fork inherits the host recorder wholesale, including the
        # host-only sampling machinery. A tail pipeline here would stage
        # unsampled spans that no completion ever settles (completions
        # happen host-side), and SLO windows would double-count — the
        # target is the "skip unsampled work entirely" side.
        recorder.sampler = None
        recorder.pipeline = None
        recorder.slo = None
    server = TcpTargetServer(catalog=catalog, workers=workers)
    port_pipe.send(server.address)
    port_pipe.close()
    server.serve_forever()


def spawn_local_server(
    catalog: Catalog | None = None,
    *,
    startup_timeout: float = 10.0,
    workers: int = DEFAULT_SERVER_WORKERS,
) -> tuple[multiprocessing.Process, tuple[str, int]]:
    """Fork a target-server child process; returns ``(process, address)``.

    Forking inherits the parent's imported modules and offloadable
    catalog — the moral equivalent of building host and target binaries
    from the same source. ``startup_timeout`` bounds the wait for the
    child to report its listening address; ``workers`` sizes the
    server's concurrent-execution pool.
    """
    ctx = multiprocessing.get_context("fork")
    parent_pipe, child_pipe = ctx.Pipe()
    process = ctx.Process(
        target=_server_entry, args=(child_pipe, catalog, workers), daemon=True
    )
    process.start()
    child_pipe.close()
    if not parent_pipe.poll(startup_timeout):
        process.terminate()
        raise BackendError(
            f"TCP target server did not start within {startup_timeout:g} s"
        )
    address = parent_pipe.recv()
    parent_pipe.close()
    return process, address


class TcpBackend(Backend):
    """Client side of the TCP backend (one target).

    The inbound side of the socket is owned by the process-wide
    reactor (:mod:`repro.backends.eventloop`): a read callback parses
    frames incrementally on the shared loop thread, matches each reply
    to its request through the correlation-id table, and completes the
    waiting handle — so replies complete out of order and a soft
    timeout never desynchronizes the stream (the frame is simply
    matched when it eventually arrives). No thread is spawned per
    connection; every ``TcpBackend`` in the process shares one loop.

    The outbound side coalesces small invoke frames into one
    ``sendmsg`` batch (see :class:`~repro.backends.base.FrameCoalescer`),
    adapting to the observed in-flight depth: batches build under
    pipelined load, single frames flush immediately when the caller is
    latency-bound. Synchronous roundtrips and large payloads flush the
    buffer first, so frame order on the stream is preserved.

    Parameters
    ----------
    address:
        ``(host, port)`` of a running :class:`TcpTargetServer`.
    catalog:
        The offloadable catalog (defaults to the global one).
    on_shutdown:
        Optional callable invoked after the connection closes (used to
        join a spawned server process).
    op_timeout:
        Default deadline in seconds for every blocking operation
        (roundtrips and blocking drives). ``None`` (the default)
        preserves the raw protocol's behavior of waiting indefinitely;
        installing a :class:`~repro.offload.resilience.ResiliencePolicy`
        on the runtime sets this via :meth:`set_default_timeout`.
    connect_timeout:
        Deadline for establishing the connection and handshake.
    batch:
        Coalescing knobs: ``True``/``None`` for the adaptive defaults,
        ``False`` to disable (every frame is its own send, the PR 4
        wire behavior), or a dict of
        :class:`~repro.backends.base.CoalescePolicy` overrides
        (``max_bytes``, ``max_frames``, ``max_delay_us``,
        ``idle_depth``).
    """

    name = "tcp"

    def __init__(
        self,
        address: tuple[str, int],
        catalog: Catalog | None = None,
        on_shutdown: Callable[[], None] | None = None,
        *,
        op_timeout: float | None = None,
        connect_timeout: float = 10.0,
        batch: Any = None,
    ) -> None:
        super().__init__()
        self.host_image = ProcessImage("tcp-host", catalog)
        self.address = address
        self._on_shutdown = on_shutdown
        self.op_timeout = op_timeout
        self._sock = socket.create_connection(address, timeout=connect_timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock.settimeout(None)
        #: Correlation id -> reply sink: ("invoke", handle) or ("sync", box).
        self._pending: dict[int, tuple[str, Any]] = {}
        self._pending_lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._msg_id = 0
        self._alive = True
        self._closed = False
        self._closing = False
        self.invokes_posted = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Partial-frame reassembly buffer, touched only on the loop.
        self._rbuf = bytearray()
        self._io_detached = False
        self._reactor = eventloop.get_reactor()
        policy = CoalescePolicy.from_option(batch)
        self._coalescer: FrameCoalescer | None = None
        if policy is not None:
            self._coalescer = FrameCoalescer(
                transmit=self._transmit_batch,
                schedule=self._reactor.call_later,
                policy=policy,
                depth=self._pending_count,
            )
        self._reactor.register(self._sock, self._on_readable)
        try:
            # Handshake: fetch the server's catalog digest and compare, to
            # fail fast when host and target registered different
            # offloadable sets. (An empty body asks without asserting, so
            # the comparison happens client-side with a precise error.)
            server_digest = self._roundtrip(OP_PING, timeout=connect_timeout)
            if server_digest and bytes(server_digest) != self.host_image.digest():
                raise BackendError(
                    "offloadable catalogs differ between host and target "
                    "(both sides must import the same application modules)"
                )
        except BaseException:
            self._closing = True
            self._alive = False
            self._teardown_io()
            raise
        #: Target->host clock mapping, estimated at connect by clock
        #: ping-pong (see :mod:`repro.telemetry.distributed`) and
        #: refreshed on every telemetry pull. Identity when the server
        #: predates ``OP_CLOCK``, or when telemetry is off (untraced
        #: workloads get zero extra connect traffic).
        if telemetry.get() is not None:
            self.clock_sync = self._estimate_clock()
        else:
            self.clock_sync = ClockSync.identity()

    def _clock_probe(self, timeout: float) -> tuple[int, int, int]:
        """One ping-pong round: ``(t0_host, t_target, t1_host)`` in ns."""
        t0 = time.perf_counter_ns()
        body = self._roundtrip(OP_CLOCK, timeout=timeout)
        t1 = time.perf_counter_ns()
        return t0, _U64.unpack(body)[0], t1

    def _estimate_clock(
        self, rounds: int = 8, timeout: float | None = None
    ) -> ClockSync:
        """Ping-pong the server's clock; identity if it lacks OP_CLOCK."""
        per_probe = timeout if timeout is not None else (self.op_timeout or 5.0)
        try:
            return ClockSync.estimate(
                lambda: self._clock_probe(per_probe), rounds=rounds
            )
        except (RemoteExecutionError, OffloadTimeoutError, BackendError):
            # Older server without OP_CLOCK (or one too wedged or broken
            # to answer): fall back to the shared monotonic clock. If the
            # probe killed the transport the next real op reports it.
            return ClockSync.identity()

    # -- topology -------------------------------------------------------------
    def num_nodes(self) -> int:
        return 2

    def descriptor(self, node: NodeId) -> NodeDescriptor:
        if node == HOST_NODE:
            return NodeDescriptor(node, "host", "host", "tcp backend host")
        self.check_target(node)
        return NodeDescriptor(
            node, f"tcp:{self.address[0]}:{self.address[1]}", "cpu", "tcp target"
        )

    # -- reply plumbing -----------------------------------------------------------
    def _pending_count(self) -> int:
        with self._pending_lock:
            return len(self._pending)

    def _next_corr(self) -> int:
        """Correlation id for a synchronous (non-invoke) operation.

        Drawn from the same process-wide counter as invoke handles so
        ids never collide across the two kinds of traffic.
        """
        return next(InvokeHandle._ids)

    def _fail_pending(self, error: BaseException) -> None:
        """Declare the connection lost: mark dead, fail every expectation.

        A receive error or EOF means no outstanding operation can ever be
        matched again — they all inherit ``error`` instead of hanging.
        Frames still sitting in the coalescing buffer can never be
        delivered either: they are dropped and the queued byte count is
        folded into the error every waiter sees.
        """
        self._alive = False
        if self._coalescer is not None:
            frames, queued = self._coalescer.discard()
            if frames:
                error = BackendError(
                    f"{error}; dropped {frames} coalesced frame"
                    f"{'s' if frames != 1 else ''} ({queued} bytes) still "
                    "queued for send"
                )
        with self._pending_lock:
            sinks = list(self._pending.values())
            self._pending.clear()
        if not (self._closing or self._closed):
            # Unplanned loss is exactly what the flight recorder exists
            # for: capture the last few seconds of events before the
            # failure cascades through retries and failover. A close
            # initiated by shutdown() records nothing (the receiver may
            # see the server's EOF before shutdown() flips _closing).
            flightrecorder.trigger(
                "peer_death",
                force=True,  # rare + catastrophic: never debounced away
                transport=self.name,
                address=f"{self.address[0]}:{self.address[1]}",
                orphaned=len(sinks),
                error=str(error),
            )
        for kind, sink in sinks:
            if kind == "invoke":
                sink.complete_with_error(error)
            else:
                sink["error"] = error
                sink["event"].set()
        self._teardown_io()

    def _teardown_io(self) -> None:
        """Detach from the reactor, close the socket, drop the loop ref.

        Idempotent; safe from any thread including the loop itself
        (a receive error tears down from inside the read callback).
        """
        if self._io_detached:
            return
        self._io_detached = True
        self._reactor.unregister(self._sock)
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close never fails on Linux
            pass
        eventloop.release_reactor(self._reactor)

    def _send(self, op: int, corr: int, *parts) -> None:
        """Send one frame now, flushing any coalesced frames first.

        The ordered path for synchronous operations and large
        payloads: everything buffered ahead of this frame goes out
        before it, so the stream never reorders around a roundtrip.
        Socket failures are translated into :class:`BackendError`.
        """
        if self._coalescer is not None:
            self._coalescer.flush("sync")
        try:
            with self._send_lock:
                sent = _send_frame(self._sock, op, corr, *parts)
        except OSError as exc:
            error = BackendError(f"tcp send failed: {exc}")
            self._fail_pending(error)
            raise error from exc
        self.bytes_sent += sent

    def _transmit_batch(self, parts: list[Any]) -> None:
        """Coalescer sink: one scatter-gather send for a whole batch."""
        nbytes = sum(len(part) for part in parts)
        try:
            with self._send_lock:
                _sendmsg_all(self._sock, parts)
        except OSError as exc:
            error = BackendError(f"tcp send failed: {exc}")
            self._fail_pending(error)
            raise error from exc
        self.bytes_sent += nbytes

    def _post_frame(self, op: int, corr: int, *parts) -> None:
        """Send or buffer one invoke frame (the coalescing path).

        Small frames are copied into the batch buffer — detaching them
        from caller-owned array storage, since the flush may happen up
        to the coalescing deadline later — and ride the next
        ``sendmsg`` batch. Large frames keep the zero-copy
        scatter-gather path, flushing the buffer first so stream order
        is preserved.
        """
        coalescer = self._coalescer
        body_len = sum(len(part) for part in parts)
        if (
            coalescer is None
            or _FRAME_META + body_len >= coalescer.policy.max_bytes
        ):
            self._send(op, corr, *parts)
            return
        frame = (
            _LEN.pack(_FRAME_META + body_len)
            + bytes([op])
            + _U64.pack(corr)
            + b"".join(bytes(part) for part in parts)
        )
        coalescer.add([frame], len(frame))

    def _on_readable(self) -> None:
        """Reactor read callback: drain a chunk, dispatch complete frames.

        Only the loop thread reads the socket, so a waiter's deadline
        expiring never consumes half a frame — soft timeouts leave the
        stream intact and the late reply is matched (or discarded) when
        it arrives. EOF and receive errors poison the backend and fail
        everything outstanding.
        """
        try:
            chunk = self._sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):  # pragma: no cover
            return
        except OSError as exc:
            self._connection_lost(BackendError(f"tcp receive failed: {exc}"))
            return
        if not chunk:
            self._connection_lost(self._eof_error())
            return
        self.bytes_received += len(chunk)
        buf = self._rbuf
        buf += chunk
        offset = 0
        size = len(buf)
        while True:
            if size - offset < _LEN.size:
                break
            (length,) = _LEN.unpack_from(buf, offset)
            if length < _FRAME_META:
                del buf[:offset]
                self._connection_lost(BackendError(
                    f"short frame: length {length} < op + correlation "
                    f"header ({_FRAME_META} bytes)"
                ))
                return
            if size - offset < _LEN.size + length:
                break
            start = offset + _LEN.size
            payload = bytes(buf[start:start + length])
            offset = start + length
            op = payload[0]
            (corr,) = _U64.unpack_from(payload, 1)
            body = memoryview(payload)[_FRAME_META:]
            # Telemetry phase ``offload.reply``: one reply frame pulled
            # off the wire (the pre-reply wait lives in
            # ``offload.transport``). The loop thread runs outside any
            # trace context, so the span is closed under the reply's
            # own (peeked) context when that trace is unsampled — the
            # recorder gate then stages it with the trace instead of
            # polluting the ring on the fast path.
            reply_span = telemetry.span("offload.reply")
            reply_span.__enter__()
            reply_span.set("bytes", length + _LEN.size)
            with trace_context.activate(_unsampled_reply_context(body)):
                reply_span.__exit__(None, None, None)
            self._dispatch_reply(op, corr, body)
        if offset:
            del buf[:offset]

    def _eof_error(self) -> BackendError:
        """Describe an EOF precisely: partial frame bytes + orphaned ops."""
        count = self._pending_count()
        context = ""
        if count:
            context = (
                f"; {count} pending operation{'s' if count != 1 else ''}"
                " can no longer be matched"
            )
        if self._rbuf:
            return BackendError(
                f"connection closed mid-frame: {len(self._rbuf)} byte(s) "
                f"of a partial frame received{context}"
            )
        return BackendError(f"connection closed by peer{context}")

    def _connection_lost(self, error: BackendError) -> None:
        """Loop-side connection teardown (EOF or receive error)."""
        if self._closing or self._closed:
            self._teardown_io()  # planned close: nothing left to fail
            return
        self._fail_pending(error)

    def _dispatch_reply(self, op: int, corr: int, body: memoryview) -> None:
        """Complete the expectation filed under ``corr`` (any order)."""
        with self._pending_lock:
            entry = self._pending.pop(corr, None)
        if entry is None:
            # A reply nothing waits for: its expectation was already
            # failed, or the peer invented a correlation id. Either way
            # the stream itself stays consistent — count and move on.
            telemetry.count("tcp.unmatched_replies")
            return
        kind, sink = entry
        if op == OP_FAILURE:
            info = pickle.loads(body)
            failure: BaseException = RemoteExecutionError(
                f"remote {info['type']}: {info['message']}",
                remote_traceback=info.get("traceback", ""),
            )
            if kind == "invoke":
                sink.complete_with_error(failure)
            else:
                sink["error"] = failure
                sink["event"].set()
            return
        if kind == "invoke":
            if op != (OP_INVOKE | OP_REPLY_BIT):
                sink.complete_with_error(
                    BackendError(f"expected invoke reply, got op {op:#x}")
                )
                return
            sink.complete_with_reply(body)
            telemetry.gauge("tcp.pending_replies", self._pending_count())
        else:
            if op != (sink["op"] | OP_REPLY_BIT):
                sink["error"] = BackendError(
                    f"expected reply to op {sink['op']:#x}, got {op:#x}"
                )
            else:
                sink["body"] = body
            sink["event"].set()

    def _roundtrip(
        self, op: int, *parts, timeout: float | None = None
    ) -> memoryview:
        """Synchronous request: send, then wait for the matching reply.

        ``timeout`` (defaulting to :attr:`op_timeout`) bounds the whole
        roundtrip; on expiry an :class:`OffloadTimeoutError` is raised
        *softly* — the expectation stays registered, so the stream is
        not poisoned and a late reply is consumed silently.
        """
        self._check_alive()
        effective = timeout if timeout is not None else self.op_timeout
        corr = self._next_corr()
        box: dict[str, Any] = {"op": op, "event": threading.Event()}
        with self._pending_lock:
            self._pending[corr] = ("sync", box)
        self._send(op, corr, *parts)
        if not box["event"].wait(effective):
            raise OffloadTimeoutError(
                f"no reply from {self.address[0]}:{self.address[1]} "
                "within the deadline"
            )
        if "error" in box:
            raise box["error"]
        return box["body"]

    # -- invocation --------------------------------------------------------------
    def post_invoke(self, node: NodeId, functor: Functor) -> InvokeHandle:
        self._check_alive()
        self.check_target(node)
        # Backpressure point: a window slot must free up (receiver thread
        # completes a handle) before another invoke may enter the pipe.
        self._admit_invoke(label=functor.type_name)
        try:
            self._check_alive()
            self._msg_id += 1
            parts = build_invoke_parts(self.host_image, functor, self._msg_id)
            total = sum(len(part) for part in parts)
            handle = InvokeHandle(self, label=functor.type_name)
        except BaseException:
            self.window.cancel()
            raise
        # Telemetry phase ``offload.enqueue``: filing the reply
        # expectation and pushing the frame onto the socket.
        with telemetry.span(
            "offload.enqueue", bytes=total, functor=functor.type_name,
            corr=handle.correlation_id,
        ):
            with self._pending_lock:
                self._pending[handle.correlation_id] = ("invoke", handle)
            self._register_invoke(handle)
            try:
                self._post_frame(OP_INVOKE, handle.correlation_id, *parts)
            except BaseException as exc:
                # The handle is already registered: completing it with
                # the error frees its window slot (a bare re-raise would
                # leak the slot until the window drained to zero).
                with self._pending_lock:
                    self._pending.pop(handle.correlation_id, None)
                handle.complete_with_error(
                    exc if isinstance(exc, BackendError)
                    else BackendError(f"send failed while posting invoke: {exc}")
                )
                raise
        # The receiver may have declared the connection lost between the
        # aliveness check and our registration; a handle filed after that
        # drain would wait forever, so fail it here ourselves.
        if not self._alive:
            with self._pending_lock:
                entry = self._pending.pop(handle.correlation_id, None)
            if entry is not None:
                handle.complete_with_error(
                    BackendError("tcp connection lost while posting invoke")
                )
        self.invokes_posted += 1
        telemetry.gauge("tcp.pending_replies", self._pending_count())
        return handle

    def stats(self) -> dict:
        """Transport counters of this connection."""
        depths = socket_queue_depths(self._sock) if self._alive else {
            "send_queue": 0, "recv_queue": 0,
        }
        telemetry.gauge("tcp.send_queue_bytes", depths["send_queue"])
        telemetry.gauge("tcp.recv_queue_bytes", depths["recv_queue"])
        return {
            "backend": self.name,
            "address": f"{self.address[0]}:{self.address[1]}",
            "invokes_posted": self.invokes_posted,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "inflight": self.inflight_count,
            "inflight_limit": self.window.limit,
            "pending_replies": self._pending_count(),
            "send_queue_bytes": depths["send_queue"],
            "recv_queue_bytes": depths["recv_queue"],
            # The channel runs on the shared reactor: no per-connection
            # receiver thread exists (introspection asserts this).
            "receiver_threads": 0,
            "reactor": self._reactor.stats(),
            "batch": (
                self._coalescer.stats() if self._coalescer is not None else None
            ),
        }

    def introspect_target(
        self, timeout: float | None = None
    ) -> dict[str, Any]:
        """Ask the target for its live state (``OP_INTROSPECT``).

        Returns the transport-agnostic introspection dict — worker-pool
        depth, executed-message count, live buffer count, ring cursors
        (``None`` on TCP). Raises the usual transport errors when the
        target is gone or predates the op.
        """
        payload = pickle.loads(self._roundtrip(OP_INTROSPECT, timeout=timeout))
        if not isinstance(payload, dict):
            raise BackendError(
                f"malformed introspection reply: {type(payload).__name__}"
            )
        return payload

    def drive(
        self, handle: InvokeHandle, *, blocking: bool, timeout: float | None = None
    ) -> None:
        if handle.completed:
            return
        self._check_alive()
        # A waiter implies latency-bound traffic: anything coalescing
        # (possibly this very handle's frame) goes out now rather than
        # at the batching deadline.
        if self._coalescer is not None:
            self._coalescer.flush("drive")
        if not blocking:
            # The reactor completes handles; nothing to pump here.
            return
        effective = timeout if timeout is not None else self.op_timeout
        if not handle.wait_event(effective):
            raise OffloadTimeoutError(
                f"no reply from {self.address[0]}:{self.address[1]} "
                "within the deadline"
            )

    # -- memory ----------------------------------------------------------------------
    def alloc_buffer(self, node: NodeId, nbytes: int) -> int:
        self.check_target(node)
        return _U64.unpack(self._roundtrip(OP_ALLOC, _U64.pack(nbytes)))[0]

    def free_buffer(self, node: NodeId, addr: int) -> None:
        self.check_target(node)
        self._roundtrip(OP_FREE, _U64.pack(addr))

    def write_buffer(self, node: NodeId, addr: int, data: bytes) -> None:
        self.check_target(node)
        # Vectored send: the payload rides as its own buffer, no copy.
        self._roundtrip(OP_WRITE, _U64.pack(addr), data)

    def read_buffer(self, node: NodeId, addr: int, nbytes: int) -> bytes:
        self.check_target(node)
        return bytes(self._roundtrip(OP_READ, _U64.pack(addr) + _U64.pack(nbytes)))

    # -- telemetry ----------------------------------------------------------------------
    def fetch_target_telemetry(
        self, timeout: float | None = None, align: bool = True
    ) -> list:
        """Pull (and clear) the target server's telemetry records.

        Returns :class:`~repro.telemetry.recorder.SpanRecord` /
        :class:`~repro.telemetry.recorder.EventRecord` objects recorded
        in the server process — empty if telemetry is disabled there.
        Servers forked via :func:`spawn_local_server` inherit the
        client's enabled state, so enabling telemetry *before* spawning
        captures target-side ``offload.execute`` spans too.

        With ``align`` (the default) the clock offset is re-estimated
        right before the pull and applied to the fetched timestamps, so
        the records land on the host's ``perf_counter_ns`` timeline. On
        a same-machine server the monotonic clock is shared and the
        offset is near zero; across machines it is essential.
        ``timeout`` bounds the pull round trip (falls back to
        :attr:`op_timeout`).
        """
        if align:
            self.clock_sync = self._estimate_clock(rounds=4, timeout=timeout)
        rows = pickle.loads(self._roundtrip(OP_TELEMETRY, timeout=timeout))
        records = dicts_to_records(rows)
        if align and self.clock_sync.offset_ns:
            records = align_records(records, self.clock_sync.offset_ns)
        return records

    # -- health -------------------------------------------------------------------------
    def ping(self, node: NodeId) -> float:
        """Round-trip an ``OP_PING`` heartbeat; returns wall seconds."""
        self.check_target(node)
        start = time.monotonic()
        self._roundtrip(OP_PING)
        return time.monotonic() - start

    def set_default_timeout(self, seconds: float | None) -> None:
        self.op_timeout = seconds

    # -- lifecycle ----------------------------------------------------------------------
    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._alive and self._coalescer is not None:
            # Drain the coalescing buffer before the shutdown exchange:
            # a half-flushed batch must reach the wire (and its replies
            # arrive, drained by the server ahead of the shutdown ack)
            # rather than being stranded.
            try:
                self._coalescer.flush("shutdown")
            except BackendError:
                pass  # transmit failed; _fail_pending already ran
        if self._alive:
            try:
                # The server drains its worker pool before acknowledging,
                # so outstanding invoke replies arrive (and complete their
                # handles) ahead of this reply.
                self._roundtrip(
                    OP_SHUTDOWN, timeout=self.op_timeout or 10.0
                )
            except (BackendError, OffloadTimeoutError, RemoteExecutionError):
                pass  # server already gone or wedged
        self._closing = True
        self._alive = False
        # Anything still expected or buffered can never complete now;
        # fail it (with the queued-bytes detail) instead of stranding
        # waiters on a closed connection.
        pending_frames = (
            self._coalescer.pending()[0] if self._coalescer is not None else 0
        )
        if self._pending_count() or pending_frames:
            self._fail_pending(
                BackendError("tcp backend shut down with operations outstanding")
            )
        self._teardown_io()
        if self._on_shutdown is not None:
            self._on_shutdown()

    def _check_alive(self) -> None:
        if not self._alive:
            raise BackendError("tcp backend is shut down")
