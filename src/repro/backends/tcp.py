"""TCP/IP communication backend.

The functional counterpart of the paper's generic TCP backend
("interoperability rather than performance", Sec. I-A): real sockets,
real processes, genuine asynchrony. The target runs
:class:`TcpTargetServer` — either spawned in a forked child via
:func:`spawn_local_server` (the fork inherits the application's
offloadable catalog, mirroring "build the same application for both
sides") or started manually on another machine.

Wire protocol (all integers little-endian)::

    frame   := length:u32 | op:u8 | body
    op 0x01 INVOKE    body = HAM message          -> 0x81 body = HAM reply
    op 0x02 ALLOC     body = nbytes:u64           -> 0x82 body = addr:u64
    op 0x03 FREE      body = addr:u64             -> 0x83 body = ""
    op 0x04 WRITE     body = addr:u64 | data      -> 0x84 body = ""
    op 0x05 READ      body = addr:u64 | n:u64     -> 0x85 body = data
    op 0x06 SHUTDOWN  body = ""                   -> 0x86 body = ""
    op 0x07 PING      body = ""                   -> 0x87 body = ""
    op 0x08 TELEMETRY body = ""                   -> 0x88 body = pickled records
    op 0x09 CLOCK     body = ""                   -> 0x89 body = perf_ns:u64
    any failure                                    -> 0xFF body = pickled info

Replies arrive strictly in request order, so the client matches them with
a FIFO of expectations — which is what allows multiple INVOKEs to be in
flight (asynchronous offloading) while memory operations stay
synchronous.
"""

from __future__ import annotations

import multiprocessing
import pickle
import select
import socket
import struct
import time
import traceback
from collections import deque
from typing import Any, Callable

from repro.backends._target_memory import HostedBuffers
from repro.backends.base import Backend, InvokeHandle
from repro.errors import BackendError, OffloadTimeoutError, RemoteExecutionError
from repro.ham.execution import build_invoke, execute_message
from repro.ham.functor import Functor
from repro.ham.registry import Catalog, ProcessImage
from repro.offload.buffer import BufferPtr
from repro.offload.node import HOST_NODE, NodeDescriptor, NodeId
from repro.telemetry import recorder as telemetry
from repro.telemetry.distributed import ClockSync, align_records
from repro.telemetry.export import dicts_to_records, records_to_dicts

__all__ = ["TcpBackend", "TcpTargetServer", "spawn_local_server"]

OP_INVOKE = 0x01
OP_ALLOC = 0x02
OP_FREE = 0x03
OP_WRITE = 0x04
OP_READ = 0x05
OP_SHUTDOWN = 0x06
OP_PING = 0x07
OP_TELEMETRY = 0x08
OP_CLOCK = 0x09
OP_REPLY_BIT = 0x80
OP_FAILURE = 0xFF

_LEN = struct.Struct("<I")
_U64 = struct.Struct("<Q")


def _send_frame(sock: socket.socket, op: int, body: bytes) -> None:
    sock.sendall(_LEN.pack(1 + len(body)) + bytes([op]) + body)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise BackendError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> tuple[int, bytes]:
    header = _recv_exact(sock, _LEN.size)
    (length,) = _LEN.unpack(header)
    if length < 1:
        raise BackendError("empty frame")
    payload = _recv_exact(sock, length)
    return payload[0], payload[1:]


class TcpTargetServer:
    """The target-side message loop: one client, sequential requests."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        catalog: Catalog | None = None,
    ) -> None:
        self.image = ProcessImage("tcp-target", catalog)
        self.buffers = HostedBuffers()
        self._listener = socket.create_server((host, port))
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self.messages_executed = 0

    def serve_forever(self) -> None:
        """Accept one client and serve requests until SHUTDOWN/EOF."""
        conn, _peer = self._listener.accept()
        try:
            with conn:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                while True:
                    try:
                        op, body = _recv_frame(conn)
                    except BackendError:
                        return  # client went away
                    if not self._handle(conn, op, body):
                        return
        finally:
            self._listener.close()

    def _handle(self, conn: socket.socket, op: int, body: bytes) -> bool:
        try:
            if op == OP_INVOKE:
                reply, _keep = execute_message(
                    self.image, body, resolver=self._resolve
                )
                self.messages_executed += 1
                _send_frame(conn, OP_INVOKE | OP_REPLY_BIT, reply)
            elif op == OP_ALLOC:
                (nbytes,) = _U64.unpack(body)
                addr = self.buffers.alloc(nbytes)
                _send_frame(conn, OP_ALLOC | OP_REPLY_BIT, _U64.pack(addr))
            elif op == OP_FREE:
                (addr,) = _U64.unpack(body)
                self.buffers.free(addr)
                _send_frame(conn, OP_FREE | OP_REPLY_BIT, b"")
            elif op == OP_WRITE:
                (addr,) = _U64.unpack(body[:8])
                self.buffers.write(addr, body[8:])
                _send_frame(conn, OP_WRITE | OP_REPLY_BIT, b"")
            elif op == OP_READ:
                addr, nbytes = _U64.unpack(body[:8])[0], _U64.unpack(body[8:16])[0]
                _send_frame(conn, OP_READ | OP_REPLY_BIT, self.buffers.read(addr, nbytes))
            elif op == OP_PING:
                # Handshake: the body carries the client's catalog digest;
                # a mismatch means host and target were "built" from
                # different type sets and keys would not translate.
                digest = self.image.digest()
                if body and body != digest:
                    raise BackendError(
                        "offloadable catalogs differ between host and target "
                        "(both sides must import the same application modules)"
                    )
                _send_frame(conn, OP_PING | OP_REPLY_BIT, digest)
            elif op == OP_TELEMETRY:
                # Drain this process's telemetry so the host can merge
                # target-side spans (offload.execute, ...) into one
                # timeline. Empty when telemetry is disabled here; a
                # forked server inherits the parent's enabled state.
                recorder = telemetry.get()
                rows = records_to_dicts(recorder.drain()) if recorder else []
                _send_frame(
                    conn, OP_TELEMETRY | OP_REPLY_BIT,
                    pickle.dumps(rows, protocol=4),
                )
            elif op == OP_CLOCK:
                # Clock ping-pong: reply with this process's monotonic
                # clock so the client can estimate the offset between
                # the two perf_counter epochs (see telemetry.distributed).
                _send_frame(
                    conn, OP_CLOCK | OP_REPLY_BIT,
                    _U64.pack(time.perf_counter_ns()),
                )
            elif op == OP_SHUTDOWN:
                _send_frame(conn, OP_SHUTDOWN | OP_REPLY_BIT, b"")
                return False
            else:
                raise BackendError(f"unknown op {op:#x}")
        except Exception as exc:  # noqa: BLE001 - shipped to the client
            info = {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            }
            _send_frame(conn, OP_FAILURE, pickle.dumps(info))
        return True

    def _resolve(self, arg: Any) -> Any:
        if isinstance(arg, BufferPtr):
            return self.buffers.view(arg)
        return arg


def _server_entry(port_pipe: Any, catalog: Catalog | None) -> None:
    server = TcpTargetServer(catalog=catalog)
    port_pipe.send(server.address)
    port_pipe.close()
    server.serve_forever()


def spawn_local_server(
    catalog: Catalog | None = None,
    *,
    startup_timeout: float = 10.0,
) -> tuple[multiprocessing.Process, tuple[str, int]]:
    """Fork a target-server child process; returns ``(process, address)``.

    Forking inherits the parent's imported modules and offloadable
    catalog — the moral equivalent of building host and target binaries
    from the same source. ``startup_timeout`` bounds the wait for the
    child to report its listening address.
    """
    ctx = multiprocessing.get_context("fork")
    parent_pipe, child_pipe = ctx.Pipe()
    process = ctx.Process(
        target=_server_entry, args=(child_pipe, catalog), daemon=True
    )
    process.start()
    child_pipe.close()
    if not parent_pipe.poll(startup_timeout):
        process.terminate()
        raise BackendError(
            f"TCP target server did not start within {startup_timeout:g} s"
        )
    address = parent_pipe.recv()
    parent_pipe.close()
    return process, address


class TcpBackend(Backend):
    """Client side of the TCP backend (one target).

    Parameters
    ----------
    address:
        ``(host, port)`` of a running :class:`TcpTargetServer`.
    catalog:
        The offloadable catalog (defaults to the global one).
    on_shutdown:
        Optional callable invoked after the connection closes (used to
        join a spawned server process).
    op_timeout:
        Default deadline in seconds for every blocking operation
        (roundtrips and blocking drives). ``None`` (the default)
        preserves the raw protocol's behavior of waiting indefinitely;
        installing a :class:`~repro.offload.resilience.ResiliencePolicy`
        on the runtime sets this via :meth:`set_default_timeout`.
    connect_timeout:
        Deadline for establishing the connection and handshake.
    """

    name = "tcp"

    def __init__(
        self,
        address: tuple[str, int],
        catalog: Catalog | None = None,
        on_shutdown: Callable[[], None] | None = None,
        *,
        op_timeout: float | None = None,
        connect_timeout: float = 10.0,
    ) -> None:
        self.host_image = ProcessImage("tcp-host", catalog)
        self.address = address
        self._on_shutdown = on_shutdown
        self.op_timeout = op_timeout
        self._sock = socket.create_connection(address, timeout=connect_timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock.settimeout(None)
        #: FIFO of reply consumers: ("invoke", handle) or ("sync", op, box).
        self._pending: deque[tuple[str, Any]] = deque()
        self._msg_id = 0
        self._alive = True
        self._closed = False
        self.invokes_posted = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        # Handshake: fetch the server's catalog digest and compare, to
        # fail fast when host and target registered different offloadable
        # sets. (An empty body asks without asserting, so the comparison
        # happens client-side with a precise error.)
        server_digest = self._roundtrip(OP_PING, b"")
        if server_digest and server_digest != self.host_image.digest():
            self._sock.close()
            self._alive = False
            raise BackendError(
                "offloadable catalogs differ between host and target "
                "(both sides must import the same application modules)"
            )
        #: Target->host clock mapping, estimated at connect by clock
        #: ping-pong (see :mod:`repro.telemetry.distributed`) and
        #: refreshed on every telemetry pull. Identity when the server
        #: predates ``OP_CLOCK``, or when telemetry is off (untraced
        #: workloads get zero extra connect traffic).
        if telemetry.get() is not None:
            self.clock_sync = self._estimate_clock()
        else:
            self.clock_sync = ClockSync.identity()

    def _clock_probe(self, timeout: float) -> tuple[int, int, int]:
        """One ping-pong round: ``(t0_host, t_target, t1_host)`` in ns."""
        t0 = time.perf_counter_ns()
        body = self._roundtrip(OP_CLOCK, b"", timeout=timeout)
        t1 = time.perf_counter_ns()
        return t0, _U64.unpack(body)[0], t1

    def _estimate_clock(
        self, rounds: int = 8, timeout: float | None = None
    ) -> ClockSync:
        """Ping-pong the server's clock; identity if it lacks OP_CLOCK."""
        per_probe = timeout if timeout is not None else (self.op_timeout or 5.0)
        try:
            return ClockSync.estimate(
                lambda: self._clock_probe(per_probe), rounds=rounds
            )
        except (RemoteExecutionError, OffloadTimeoutError, BackendError):
            # Older server without OP_CLOCK (or one too wedged or broken
            # to answer): fall back to the shared monotonic clock. If the
            # probe killed the transport the next real op reports it.
            return ClockSync.identity()

    # -- topology -------------------------------------------------------------
    def num_nodes(self) -> int:
        return 2

    def descriptor(self, node: NodeId) -> NodeDescriptor:
        if node == HOST_NODE:
            return NodeDescriptor(node, "host", "host", "tcp backend host")
        self.check_target(node)
        return NodeDescriptor(
            node, f"tcp:{self.address[0]}:{self.address[1]}", "cpu", "tcp target"
        )

    # -- reply plumbing -----------------------------------------------------------
    def _fail_pending(self, error: BaseException) -> None:
        """Declare the connection lost: mark dead, fail every expectation.

        Any send/receive error desyncs the strictly-ordered reply FIFO,
        so no outstanding operation can ever be matched again — they all
        inherit ``error`` instead of hanging.
        """
        self._alive = False
        while self._pending:
            kind, sink = self._pending.popleft()
            if kind == "invoke":
                sink.complete_with_error(error)
            else:
                sink["error"] = error
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close never fails on Linux
            pass

    def _send(self, op: int, body: bytes) -> None:
        """Send one frame, translating socket failures into BackendError."""
        try:
            _send_frame(self._sock, op, body)
            self.bytes_sent += len(body) + 5
        except OSError as exc:
            error = BackendError(f"tcp send failed: {exc}")
            self._fail_pending(error)
            raise error from exc

    def _dispatch_one_reply(self, deadline: float | None = None) -> None:
        """Read exactly one frame and hand it to the oldest expectation.

        ``deadline`` is an absolute :func:`time.monotonic` stamp. If it
        passes before the next frame *starts* arriving, an
        :class:`OffloadTimeoutError` is raised softly: nothing was
        consumed, so the stream and the FIFO stay consistent and the
        caller may resume waiting later. A timeout in the middle of a
        frame — like any other receive error — loses framing, so it
        poisons the backend and fails all pending operations.
        """
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not select.select(
                [self._sock], [], [], remaining
            )[0]:
                raise OffloadTimeoutError(
                    f"no reply from {self.address[0]}:{self.address[1]} "
                    "within the deadline"
                )
        try:
            if deadline is not None:
                self._sock.settimeout(max(deadline - time.monotonic(), 1e-3))
            try:
                # Telemetry phase ``offload.reply``: pulling one reply
                # frame off the wire (data is already waiting or close —
                # the pre-reply wait lives in ``offload.transport``).
                with telemetry.span("offload.reply") as reply_span:
                    op, body = _recv_frame(self._sock)
                    reply_span.set("bytes", len(body) + 5)
            finally:
                if deadline is not None:
                    self._sock.settimeout(None)
            self.bytes_received += len(body) + 5
        except (OSError, BackendError) as exc:
            if isinstance(exc, TimeoutError):
                error: BaseException = OffloadTimeoutError(
                    "tcp receive timed out mid-frame; connection state lost"
                )
            elif isinstance(exc, BackendError):
                error = exc
            else:
                error = BackendError(f"tcp receive failed: {exc}")
            self._fail_pending(error)
            if error is exc:
                raise
            raise error from exc
        if not self._pending:
            raise BackendError(f"unsolicited reply frame op={op:#x}")
        kind, sink = self._pending.popleft()
        if op == OP_FAILURE:
            info = pickle.loads(body)
            error: BaseException = RemoteExecutionError(
                f"remote {info['type']}: {info['message']}",
                remote_traceback=info.get("traceback", ""),
            )
            if kind == "invoke":
                sink.complete_with_error(error)
            else:
                sink["error"] = error
            return
        if kind == "invoke":
            if op != (OP_INVOKE | OP_REPLY_BIT):
                raise BackendError(f"expected invoke reply, got op {op:#x}")
            sink.complete_with_reply(body)
        else:
            expected_op, box = sink["op"], sink
            if op != (expected_op | OP_REPLY_BIT):
                raise BackendError(
                    f"expected reply to op {expected_op:#x}, got {op:#x}"
                )
            box["body"] = body

    def _roundtrip(
        self, op: int, body: bytes, timeout: float | None = None
    ) -> bytes:
        """Synchronous request: send, then drain replies until ours.

        ``timeout`` (defaulting to :attr:`op_timeout`) bounds the whole
        roundtrip; on expiry an :class:`OffloadTimeoutError` is raised.
        """
        self._check_alive()
        effective = timeout if timeout is not None else self.op_timeout
        deadline = None if effective is None else time.monotonic() + effective
        box: dict[str, Any] = {"op": op}
        self._pending.append(("sync", box))
        self._send(op, body)
        while "body" not in box and "error" not in box:
            self._dispatch_one_reply(deadline)
        if "error" in box:
            raise box["error"]
        return box["body"]

    # -- invocation --------------------------------------------------------------
    def post_invoke(self, node: NodeId, functor: Functor) -> InvokeHandle:
        self._check_alive()
        self.check_target(node)
        self._msg_id += 1
        invoke = build_invoke(self.host_image, functor, self._msg_id)
        handle = InvokeHandle(self, label=functor.type_name)
        # Telemetry phase ``offload.enqueue``: queueing the reply
        # expectation and pushing the frame onto the socket.
        with telemetry.span(
            "offload.enqueue", bytes=len(invoke), functor=functor.type_name
        ):
            self._pending.append(("invoke", handle))
            self._send(OP_INVOKE, invoke)
        self.invokes_posted += 1
        telemetry.gauge("tcp.pending_replies", len(self._pending))
        return handle

    def stats(self) -> dict:
        """Transport counters of this connection."""
        return {
            "backend": self.name,
            "address": f"{self.address[0]}:{self.address[1]}",
            "invokes_posted": self.invokes_posted,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
        }

    def drive(
        self, handle: InvokeHandle, *, blocking: bool, timeout: float | None = None
    ) -> None:
        self._check_alive()
        effective = timeout if timeout is not None else self.op_timeout
        deadline = (
            None if (effective is None or not blocking) else time.monotonic() + effective
        )
        while not handle.completed:
            if not blocking:
                readable, _, _ = select.select([self._sock], [], [], 0)
                if not readable:
                    return
            self._dispatch_one_reply(deadline)

    # -- memory ----------------------------------------------------------------------
    def alloc_buffer(self, node: NodeId, nbytes: int) -> int:
        self.check_target(node)
        return _U64.unpack(self._roundtrip(OP_ALLOC, _U64.pack(nbytes)))[0]

    def free_buffer(self, node: NodeId, addr: int) -> None:
        self.check_target(node)
        self._roundtrip(OP_FREE, _U64.pack(addr))

    def write_buffer(self, node: NodeId, addr: int, data: bytes) -> None:
        self.check_target(node)
        self._roundtrip(OP_WRITE, _U64.pack(addr) + data)

    def read_buffer(self, node: NodeId, addr: int, nbytes: int) -> bytes:
        self.check_target(node)
        return self._roundtrip(OP_READ, _U64.pack(addr) + _U64.pack(nbytes))

    # -- telemetry ----------------------------------------------------------------------
    def fetch_target_telemetry(
        self, timeout: float | None = None, align: bool = True
    ) -> list:
        """Pull (and clear) the target server's telemetry records.

        Returns :class:`~repro.telemetry.recorder.SpanRecord` /
        :class:`~repro.telemetry.recorder.EventRecord` objects recorded
        in the server process — empty if telemetry is disabled there.
        Servers forked via :func:`spawn_local_server` inherit the
        client's enabled state, so enabling telemetry *before* spawning
        captures target-side ``offload.execute`` spans too.

        With ``align`` (the default) the clock offset is re-estimated
        right before the pull and applied to the fetched timestamps, so
        the records land on the host's ``perf_counter_ns`` timeline. On
        a same-machine server the monotonic clock is shared and the
        offset is near zero; across machines it is essential.
        ``timeout`` bounds the pull round trip (falls back to
        :attr:`op_timeout`).
        """
        if align:
            self.clock_sync = self._estimate_clock(rounds=4, timeout=timeout)
        rows = pickle.loads(self._roundtrip(OP_TELEMETRY, b"", timeout=timeout))
        records = dicts_to_records(rows)
        if align and self.clock_sync.offset_ns:
            records = align_records(records, self.clock_sync.offset_ns)
        return records

    # -- health -------------------------------------------------------------------------
    def ping(self, node: NodeId) -> float:
        """Round-trip an ``OP_PING`` heartbeat; returns wall seconds."""
        self.check_target(node)
        start = time.monotonic()
        self._roundtrip(OP_PING, b"")
        return time.monotonic() - start

    def set_default_timeout(self, seconds: float | None) -> None:
        self.op_timeout = seconds

    # -- lifecycle ----------------------------------------------------------------------
    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._alive:
            try:
                self._roundtrip(OP_SHUTDOWN, b"")
            except (BackendError, OffloadTimeoutError):
                pass  # server already gone or wedged
        self._alive = False
        self._sock.close()
        if self._on_shutdown is not None:
            self._on_shutdown()

    def _check_alive(self) -> None:
        if not self._alive:
            raise BackendError("tcp backend is shut down")
