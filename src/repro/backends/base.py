"""Abstract communication backend — the pipelined **Channel** contract.

A backend connects the host process to one or more offload targets. The
runtime (:class:`repro.offload.runtime.Runtime`) delegates every remote
operation here; the backend owns transport, timing domain (wall clock or
simulated clock) and the target-side message loop.

Message-level contract (the *channel*):

* Every posted invocation carries a process-unique **correlation id**
  (:attr:`InvokeHandle.correlation_id`). Frames on the wire are tagged
  with it, replies echo it, and the backend matches replies through an
  id-keyed in-flight table — never by arrival order. Replies may
  therefore complete **out of order**, which is what lets independent
  offloads overlap on a pipelined transport.
* In-flight invocations are bounded by an :class:`InflightWindow`
  (default :data:`DEFAULT_INFLIGHT_LIMIT`). ``post_invoke`` acquires a
  window slot first — blocking (with the backend's window timeout) or
  making progress via a drive callback on single-threaded backends —
  so a runaway producer gets backpressure instead of unbounded queues.
* Completion is **thread-safe**: transports with receiver threads call
  :meth:`InvokeHandle.complete_with_reply` /
  :meth:`InvokeHandle.complete_with_error` from any thread; waiters
  block on an event, not on polling loops.

The target executes messages through
:func:`repro.ham.execution.execute_message` and returns reply bytes; the
backend matches replies to :class:`InvokeHandle` objects wrapped into
futures by the runtime.
"""

from __future__ import annotations

import abc
import contextlib
import contextvars
import itertools
import threading
import time
from typing import Any, Callable, Iterator

import numpy as np

from repro.errors import BackendError, NoSuchNodeError, OffloadTimeoutError
from repro.ham.execution import unpack_result
from repro.offload.buffer import BufferPtr
from repro.offload.node import HOST_NODE, NodeDescriptor, NodeId
from repro.telemetry import recorder as telemetry

__all__ = [
    "Backend",
    "CoalescePolicy",
    "DEFAULT_INFLIGHT_LIMIT",
    "FrameCoalescer",
    "InflightWindow",
    "InvokeHandle",
    "normalize_target_stats",
    "window_budget",
]


def normalize_target_stats(stats: "dict[str, Any]") -> "dict[str, Any]":
    """Project a backend ``stats()`` dict onto the scoreboard vector.

    Transports disagree on key names (TCP reports ``send_queue_bytes``,
    shm reports ring occupancy, proxies nest the real transport under
    ``inner``); this maps whatever is present onto the canonical
    ``in_flight`` / ``queue_bytes`` / ``ring_fill`` keys and omits the
    rest — absent signals stay absent rather than reading as zero.
    """
    inner = stats.get("inner")
    if isinstance(inner, dict):
        # Proxy backends (fault injection) nest the transport's stats.
        stats = inner
    vector: dict[str, Any] = {}
    pending = stats.get("pending_replies", stats.get("inflight"))
    if pending is not None:
        vector["in_flight"] = pending
    queue_bytes = stats.get("send_queue_bytes")
    if queue_bytes is not None:
        vector["queue_bytes"] = queue_bytes
    used = stats.get("request_ring_used")
    capacity = stats.get("ring_capacity")
    if used is not None and capacity:
        vector["ring_fill"] = used / capacity
    return vector

#: Default bound on invocations in flight per backend. Large enough to
#: keep a pipelined transport busy, small enough that a runaway producer
#: hits backpressure before exhausting memory.
DEFAULT_INFLIGHT_LIMIT = 64

#: Absolute ``time.monotonic`` deadline bounding window-slot waits for
#: the current offload (see :func:`window_budget`). ``None`` outside a
#: budget scope: the backend's static window timeout applies alone.
_window_budget: contextvars.ContextVar[float | None] = contextvars.ContextVar(
    "repro_window_budget", default=None
)


@contextlib.contextmanager
def window_budget(deadline: float | None) -> Iterator[None]:
    """Scope window-slot waits to one offload's *remaining* budget.

    ``deadline`` is an absolute ``time.monotonic`` instant, computed
    **once** when the offload (with its retries) starts. Every window
    acquisition inside the scope waits at most until that instant —
    not the policy's full deadline again — so an offload that retries
    N times cannot spend N full deadlines queueing for a slot. The
    effective wait is the *minimum* of the scoped remainder and the
    backend's static window timeout (:meth:`Backend.set_window_timeout`).
    """
    if deadline is None:
        yield
        return
    token = _window_budget.set(deadline)
    try:
        yield
    finally:
        _window_budget.reset(token)


class CoalescePolicy:
    """Flush thresholds of the adaptive message coalescer.

    The wire analogue of the paper's Sec. IV bulk-DMA translation:
    many small active messages amortized into one transfer. A batch is
    flushed by whichever trips first:

    * ``max_bytes`` — the byte budget of one ``sendmsg`` batch;
    * ``max_frames`` — the frame-count budget;
    * ``max_delay`` — a sub-millisecond deadline armed when the first
      frame is buffered, so a lull never strands a batch.

    Adaptivity: while the observed in-flight depth is at most
    ``idle_depth`` the producer is latency-bound, not rate-bound, and
    every frame is flushed immediately ("batch hard under load, flush
    eagerly when idle").
    """

    __slots__ = ("max_bytes", "max_frames", "max_delay", "idle_depth")

    def __init__(
        self,
        *,
        max_bytes: int = 64 * 1024,
        max_frames: int = 16,
        max_delay: float = 200e-6,
        idle_depth: int = 2,
    ) -> None:
        if max_bytes < 1 or max_frames < 1:
            raise BackendError("coalescing budgets must be positive")
        if max_delay < 0:
            raise BackendError("coalescing delay must be non-negative")
        self.max_bytes = max_bytes
        self.max_frames = max_frames
        self.max_delay = max_delay
        self.idle_depth = idle_depth

    @classmethod
    def from_option(cls, batch: Any) -> "CoalescePolicy | None":
        """Resolve a user-facing ``batch=`` knob.

        ``None``/``True`` → defaults; ``False`` → coalescing disabled
        (every frame is its own ``sendmsg``, the PR 4 wire behavior);
        a dict → keyword overrides (``max_bytes``, ``max_frames``,
        ``max_delay_us``, ``idle_depth``); a policy → itself.
        """
        if batch is None or batch is True:
            return cls()
        if batch is False:
            return None
        if isinstance(batch, cls):
            return batch
        if isinstance(batch, dict):
            options = dict(batch)
            delay_us = options.pop("max_delay_us", None)
            if delay_us is not None:
                options["max_delay"] = float(delay_us) * 1e-6
            try:
                return cls(**options)
            except TypeError as exc:
                raise BackendError(f"bad batch= options: {exc}") from None
        raise BackendError(
            f"batch= expects bool, dict or CoalescePolicy, got {type(batch).__name__}"
        )


class FrameCoalescer:
    """Accumulates encoded frames into one scatter-gather batch.

    Transport-agnostic: the owner supplies ``transmit`` (send a list of
    buffer parts — one kernel call for the whole batch), ``schedule``
    (arm a flush deadline on the shared reactor; returns a handle with
    ``cancel()``) and ``depth`` (the observed in-flight depth driving
    adaptivity). Thread-safe; the buffer is stolen under the internal
    lock and transmitted outside it, so a slow send never blocks
    producers from buffering the next batch.

    Telemetry: every flush records the ``net.batch_size`` (frames) and
    ``net.batch_bytes`` histograms and bumps the
    ``net.flush_reason.<reason>`` counter.
    """

    def __init__(
        self,
        *,
        transmit: Callable[[list[Any]], None],
        schedule: Callable[[float, Callable[[], None]], Any],
        policy: CoalescePolicy | None = None,
        depth: Callable[[], int] = lambda: 0,
    ) -> None:
        self.policy = policy or CoalescePolicy()
        self._transmit = transmit
        self._schedule = schedule
        self._depth = depth
        self._lock = threading.Lock()
        self._parts: list[Any] = []
        self._frames = 0
        self._bytes = 0
        self._timer: Any = None
        #: Cumulative counters (see :meth:`stats`).
        self.batches = 0
        self.frames_coalesced = 0
        self.flush_reasons: dict[str, int] = {}

    def add(self, parts: list[Any], nbytes: int) -> None:
        """Buffer one encoded frame; flush if a budget trips or idle."""
        policy = self.policy
        with self._lock:
            self._parts.extend(parts)
            self._frames += 1
            self._bytes += nbytes
            if (
                self._frames >= policy.max_frames
                or self._bytes >= policy.max_bytes
            ):
                reason = "size" if self._bytes >= policy.max_bytes else "count"
                batch, frames, nbytes = self._steal_locked()
            elif self._depth() <= policy.idle_depth:
                # Few offloads outstanding: the producer is waiting on
                # latency, not building a pipeline — send immediately.
                reason = "idle"
                batch, frames, nbytes = self._steal_locked()
            else:
                if self._timer is None:
                    self._timer = self._schedule(policy.max_delay, self._on_deadline)
                return
        self._send_batch(batch, frames, nbytes, reason)

    def flush(self, reason: str = "explicit") -> int:
        """Transmit everything buffered; returns the frame count sent."""
        with self._lock:
            if not self._frames:
                return 0
            batch, frames, nbytes = self._steal_locked()
        self._send_batch(batch, frames, nbytes, reason)
        return frames

    def discard(self) -> tuple[int, int]:
        """Drop the buffer without sending; ``(frames, bytes)`` dropped.

        Used when the transport is already dead: the frames can never
        be delivered, and the caller reports the count in the error it
        fails pending futures with.
        """
        with self._lock:
            frames, nbytes = self._frames, self._bytes
            self._steal_locked()
        return frames, nbytes

    def pending(self) -> tuple[int, int]:
        """Currently buffered ``(frames, bytes)``."""
        with self._lock:
            return self._frames, self._bytes

    def _steal_locked(self) -> tuple[list[Any], int, int]:
        batch, frames, nbytes = self._parts, self._frames, self._bytes
        self._parts, self._frames, self._bytes = [], 0, 0
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        return batch, frames, nbytes

    def _on_deadline(self) -> None:
        self.flush("deadline")

    def _send_batch(
        self, batch: list[Any], frames: int, nbytes: int, reason: str
    ) -> None:
        self.batches += 1
        self.frames_coalesced += frames
        self.flush_reasons[reason] = self.flush_reasons.get(reason, 0) + 1
        telemetry.observe("net.batch_size", frames)
        telemetry.observe("net.batch_bytes", nbytes)
        telemetry.count(f"net.flush_reason.{reason}")
        self._transmit(batch)

    def stats(self) -> dict[str, Any]:
        frames, nbytes = self.pending()
        return {
            "batches": self.batches,
            "frames_coalesced": self.frames_coalesced,
            "avg_batch_frames": round(
                self.frames_coalesced / self.batches, 2
            ) if self.batches else 0.0,
            "flush_reasons": dict(self.flush_reasons),
            "buffered_frames": frames,
            "buffered_bytes": nbytes,
        }


class InflightWindow:
    """Bounded, id-keyed table of in-flight invocations.

    The window is the flow-control half of the channel contract:
    :meth:`acquire` reserves capacity before a post (blocking, failing
    fast, or driving backend progress when the backend is
    single-threaded), :meth:`register` files the posted handle under its
    correlation id, and :meth:`release` frees the slot when the handle
    completes — from whichever thread delivers the reply.
    """

    def __init__(self, limit: int = DEFAULT_INFLIGHT_LIMIT) -> None:
        if limit < 1:
            raise BackendError(f"in-flight window needs a positive limit, got {limit}")
        self._limit = limit
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        #: correlation id -> in-flight handle (the id-keyed table).
        self._inflight: dict[int, "InvokeHandle"] = {}
        #: Slots acquired but not yet registered (post in progress).
        self._reserved = 0

    @property
    def limit(self) -> int:
        """Maximum invocations in flight."""
        return self._limit

    def set_limit(self, limit: int) -> None:
        """Resize the window (waking waiters when it grows)."""
        if limit < 1:
            raise BackendError(f"in-flight window needs a positive limit, got {limit}")
        with self._lock:
            self._limit = limit
            self._slot_freed.notify_all()

    @property
    def in_flight(self) -> int:
        """Invocations currently occupying the window."""
        with self._lock:
            return len(self._inflight) + self._reserved

    def handles(self) -> dict[int, "InvokeHandle"]:
        """Snapshot of the in-flight table (correlation id -> handle)."""
        with self._lock:
            return dict(self._inflight)

    def acquire(
        self,
        *,
        timeout: float | None = None,
        progress: Callable[[], None] | None = None,
        label: str = "",
    ) -> None:
        """Reserve one window slot, applying backpressure when full.

        Without ``progress``, blocks on the window condition until a
        completion (from a receiver thread) frees a slot, raising
        :class:`~repro.errors.OffloadTimeoutError` after ``timeout``
        seconds. With ``progress`` — required on single-threaded
        backends where completions only happen when the caller drives
        the transport — the callback is invoked repeatedly (lock
        released) until capacity appears.

        Telemetry: the wait, when one actually happens, is recorded as
        an ``offload.window_wait`` span.
        """
        with self._lock:
            if len(self._inflight) + self._reserved < self._limit:
                self._reserved += 1
                return
        with telemetry.span(
            "offload.window_wait", label=label, limit=self._limit
        ):
            deadline = None if timeout is None else time.monotonic() + timeout
            with self._lock:
                while len(self._inflight) + self._reserved >= self._limit:
                    if progress is not None:
                        self._lock.release()
                        try:
                            progress()
                        finally:
                            self._lock.acquire()
                        continue
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise OffloadTimeoutError(
                                f"in-flight window full ({self._limit} "
                                "operations outstanding) and no completion "
                                "within the deadline"
                            )
                    self._slot_freed.wait(remaining)
                self._reserved += 1

    def register(self, handle: "InvokeHandle") -> None:
        """File a posted handle under its correlation id."""
        with self._lock:
            if self._reserved > 0:
                self._reserved -= 1
            self._inflight[handle.correlation_id] = handle

    def cancel(self) -> None:
        """Return an acquired-but-unposted slot (post failed)."""
        with self._lock:
            if self._reserved > 0:
                self._reserved -= 1
            self._slot_freed.notify()

    def release(self, handle: "InvokeHandle") -> None:
        """Free a completed handle's slot (idempotent)."""
        with self._lock:
            if self._inflight.pop(handle.correlation_id, None) is not None:
                self._slot_freed.notify()


class InvokeHandle:
    """Pending remote invocation; satisfies the future's handle protocol.

    Each handle carries a process-unique :attr:`correlation_id` — the
    key frames are tagged with on the wire and replies are matched by.
    Backends complete it by calling :meth:`complete_with_reply` (raw HAM
    reply bytes) or :meth:`complete_with_error` from any thread; both
    set the completion event and release the backend's in-flight window
    slot. ``wait`` delegates to the backend's :meth:`Backend.drive` so
    each backend decides how to make progress (wait on the receiver
    thread's event, advance the simulator, ...).
    """

    _ids = itertools.count(1)

    def __init__(self, backend: "Backend", label: str = "") -> None:
        self.backend = backend
        self.correlation_id = next(self._ids)
        self.label = label
        self._reply: Any = None
        self._error: BaseException | None = None
        self._done = threading.Event()
        self._callbacks: list[Callable[["InvokeHandle"], None]] = []
        self._cb_lock = threading.Lock()
        # Synchronous backends that record their own transport span set
        # this so ``wait`` doesn't add a redundant zero-duration one.
        self._transport_spanned = False

    @property
    def handle_id(self) -> int:
        """Backward-compatible alias of :attr:`correlation_id`."""
        return self.correlation_id

    # -- backend side --------------------------------------------------------
    def complete_with_reply(self, reply: bytes) -> None:
        """Deliver the raw reply message (thread-safe)."""
        self._reply = reply
        self._finish()

    def complete_with_error(self, error: BaseException) -> None:
        """Deliver a transport-level failure (thread-safe)."""
        self._error = error
        self._finish()

    def _finish(self) -> None:
        self._done.set()
        self.backend._handle_completed(self)
        with self._cb_lock:
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self._run_callback(fn)

    def add_done_callback(
        self, fn: Callable[["InvokeHandle"], None]
    ) -> None:
        """Invoke ``fn(handle)`` once the handle completes (thread-safe).

        The push half of the asyncio bridge: callbacks fire *after* the
        window slot is released, from whichever thread delivers the
        completion — or immediately, in the calling thread, when the
        handle is already done. Callbacks must be cheap and must not
        block (on reactor-driven transports they run on the shared I/O
        loop); exceptions are counted and swallowed.
        """
        with self._cb_lock:
            if not self._done.is_set():
                self._callbacks.append(fn)
                self.backend._callback_armed(self)
                return
        self._run_callback(fn)

    def _run_callback(self, fn: Callable[["InvokeHandle"], None]) -> None:
        try:
            fn(self)
        except Exception:  # noqa: BLE001 - observers must not poison I/O
            telemetry.count("offload.callback_errors")

    # -- future side ------------------------------------------------------------
    @property
    def completed(self) -> bool:
        """Whether a reply or error has been delivered."""
        return self._done.is_set()

    def wait_event(self, timeout: float | None = None) -> bool:
        """Block on the completion event; used by threaded transports."""
        return self._done.wait(timeout)

    def test(self) -> bool:
        """Non-blocking probe; lets the backend poll without blocking."""
        if not self.completed:
            self.backend.drive(self, blocking=False)
        return self.completed

    def wait(self, timeout: float | None = None) -> Any:
        """Block until complete; decode and return the remote value.

        With ``timeout`` set, the backend raises
        :class:`~repro.errors.OffloadTimeoutError` instead of blocking
        past the deadline (the handle stays pending).

        Telemetry phase ``offload.transport``: the wait from "posted"
        until the reply (or a transport error) arrives — wire plus
        remote-execution time as seen by the host. Recorded even when a
        pipelined receiver already completed the handle (a ~0-duration
        span), so every awaited offload shows the full phase taxonomy.
        """
        if not self.completed or not self._transport_spanned:
            try:
                with telemetry.span("offload.transport", label=self.label):
                    if not self.completed:
                        self.backend.drive(self, blocking=True, timeout=timeout)
                self._transport_spanned = True
            except OffloadTimeoutError:
                telemetry.count("offload.timeouts")
                raise
        if self._error is not None:
            telemetry.count("offload.failed")
            raise self._error
        assert self._reply is not None
        _msg_id, value = unpack_result(self._reply)
        telemetry.count("offload.completed")
        return value


class Backend(abc.ABC):
    """Base class of all communication backends.

    Subclasses should call ``super().__init__()``; backends that predate
    the channel contract (or test stubs that skip it) still work — the
    window is created lazily on first use.
    """

    #: Backend name used in node descriptors and reports.
    name: str = "abstract"

    def __init__(self) -> None:
        self._window = InflightWindow()
        self._window_timeout: float | None = None

    # -- the in-flight window --------------------------------------------------
    @property
    def window(self) -> InflightWindow:
        """This backend's in-flight window (lazily created)."""
        window = getattr(self, "_window", None)
        if window is None:
            window = self._window = InflightWindow()
        return window

    def install_window(self, window: InflightWindow) -> None:
        """Replace this backend's in-flight window (the scheduler seam).

        The QoS layer swaps the default FIFO window for a
        :class:`~repro.offload.qos.FairInflightWindow` here, and
        :class:`~repro.backends.fanout.FanoutBackend` shares one window
        across its inner backends so admission and fairness are uniform.
        Only legal while nothing is in flight — handles registered in
        the old window would otherwise leak their slots on completion.
        """
        current = getattr(self, "_window", None)
        if current is not None and current.in_flight:
            raise BackendError(
                f"cannot replace the in-flight window with "
                f"{current.in_flight} operation(s) outstanding"
            )
        self._window = window

    @property
    def inflight_count(self) -> int:
        """Invocations currently in flight on this backend."""
        return self.window.in_flight

    def set_inflight_limit(self, limit: int) -> None:
        """Bound the number of in-flight invocations (backpressure)."""
        self.window.set_limit(limit)

    def set_window_timeout(self, seconds: float | None) -> None:
        """Deadline for acquiring a window slot when the window is full.

        ``None`` (the default) blocks until capacity frees up — on
        threaded transports a completion always wakes the waiter; on
        single-threaded backends the acquire drives progress instead of
        sleeping. The runtime sets this from the resilience policy so a
        full window against a dead target fails fast.
        """
        self._window_timeout = seconds

    def _admit_invoke(
        self, label: str = "", progress: Callable[[], None] | None = None
    ) -> None:
        """Reserve window capacity for one invoke (backpressure point).

        The wait is bounded by the backend's static window timeout
        *and* — inside a :func:`window_budget` scope — by the
        offload's remaining budget, whichever is tighter. The budget
        is an absolute deadline computed once per offload, so a
        retried offload re-arms with what is *left*, never with the
        full policy deadline again.
        """
        timeout = getattr(self, "_window_timeout", None)
        budget = _window_budget.get()
        if budget is not None:
            remaining = budget - time.monotonic()
            if remaining <= 0:
                raise OffloadTimeoutError(
                    "offload budget exhausted before a window slot was acquired"
                )
            timeout = remaining if timeout is None else min(timeout, remaining)
        self.window.acquire(timeout=timeout, progress=progress, label=label)

    def _callback_armed(self, handle: "InvokeHandle") -> None:
        """Hook: a done-callback was attached to a pending handle.

        Push-driven transports need no action (the reactor completes
        handles regardless); pull-driven ones (shm's driven client)
        override this to arm a backstop pump so a callback-only
        consumer — an asyncio awaiter with no thread blocked in
        ``drive`` — still observes completion.
        """

    def _register_invoke(self, handle: "InvokeHandle") -> None:
        """File a posted handle in the in-flight table; updates the gauge."""
        window = self.window
        window.register(handle)
        telemetry.gauge("offload.inflight", window.in_flight)

    def _handle_completed(self, handle: "InvokeHandle") -> None:
        """Completion hook: frees the handle's window slot (any thread)."""
        window = self.window
        window.release(handle)
        telemetry.gauge("offload.inflight", window.in_flight)

    # -- topology ---------------------------------------------------------
    @abc.abstractmethod
    def num_nodes(self) -> int:
        """Number of processes in the application (host + targets)."""

    @abc.abstractmethod
    def descriptor(self, node: NodeId) -> NodeDescriptor:
        """Descriptor of ``node``."""

    def check_target(self, node: NodeId) -> None:
        """Validate that ``node`` names an offload target."""
        if node == HOST_NODE:
            raise NoSuchNodeError("node 0 is the host, not an offload target")
        if not 0 < node < self.num_nodes():
            raise NoSuchNodeError(
                f"node {node} outside application of {self.num_nodes()} processes"
            )

    # -- invocation -----------------------------------------------------------
    @abc.abstractmethod
    def post_invoke(self, node: NodeId, functor: Any) -> InvokeHandle:
        """Send a functor to ``node`` for execution; returns a handle.

        Implementations acquire an in-flight window slot first (via
        :meth:`_admit_invoke`) and register the handle in the window's
        id-keyed table (:meth:`_register_invoke`) before the frame hits
        the transport, so backpressure and reply matching are uniform
        across backends.
        """

    @abc.abstractmethod
    def drive(
        self, handle: InvokeHandle, *, blocking: bool, timeout: float | None = None
    ) -> None:
        """Make progress toward completing ``handle``.

        Non-blocking calls must return promptly; blocking calls must not
        return before the handle completes (or raise
        :class:`BackendError` if that is impossible). With ``timeout``
        set, a blocking call raises
        :class:`~repro.errors.OffloadTimeoutError` once the deadline
        passes — seconds of wall clock on functional backends, simulated
        seconds on the sim backends.
        """

    # -- memory ------------------------------------------------------------------
    @abc.abstractmethod
    def alloc_buffer(self, node: NodeId, nbytes: int) -> int:
        """Allocate ``nbytes`` on ``node``; returns the target address."""

    @abc.abstractmethod
    def free_buffer(self, node: NodeId, addr: int) -> None:
        """Free a target allocation."""

    @abc.abstractmethod
    def write_buffer(self, node: NodeId, addr: int, data: bytes) -> None:
        """Write host bytes into target memory (the ``put`` transport)."""

    @abc.abstractmethod
    def read_buffer(self, node: NodeId, addr: int, nbytes: int) -> bytes:
        """Read target memory into host bytes (the ``get`` transport)."""

    def copy_buffer(
        self,
        src_node: NodeId,
        src_addr: int,
        dst_node: NodeId,
        dst_addr: int,
        nbytes: int,
    ) -> None:
        """Target-to-target copy, orchestrated by the host (paper Table II).

        The default stages through host memory; backends with direct
        paths may override.
        """
        self.write_buffer(dst_node, dst_addr, self.read_buffer(src_node, src_addr, nbytes))

    # -- health ------------------------------------------------------------------
    def ping(self, node: NodeId) -> float:
        """Liveness probe of ``node``; returns the round-trip seconds.

        Raises an :class:`~repro.errors.OffloadError` subclass if the
        node is unreachable. The default validates the node id and
        reports zero latency — correct for in-process and simulated
        targets that cannot silently die; transport backends override
        with a real heartbeat (the TCP backend's ``OP_PING``).
        """
        self.check_target(node)
        return 0.0

    def set_default_timeout(self, seconds: float | None) -> None:
        """Default per-operation deadline for synchronous transports.

        A no-op on backends without blocking I/O; the TCP backend applies
        it to every roundtrip and blocking drive. The runtime calls this
        with ``ResiliencePolicy.deadline`` so no offload path can block
        forever once a policy is installed.
        """

    # -- target-side argument resolution ------------------------------------------
    def resolve_buffer(self, node: NodeId, ptr: BufferPtr) -> np.ndarray:
        """Turn a :class:`BufferPtr` into a live view on the target.

        Called by the target-side message loop for every BufferPtr
        argument. Backends owning real target memory override this;
        the default refuses.
        """
        raise BackendError(f"backend {self.name!r} cannot resolve buffer pointers")

    # -- introspection -------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Backend counters for monitoring/debugging.

        The base implementation returns an empty dict; backends add
        transport-specific counters (messages executed, bytes moved,
        hardware-operation counts, simulated time).
        """
        return {}

    def per_target_stats(self) -> dict[NodeId, dict[str, Any]]:
        """Normalized load vector per target node, for the scoreboard.

        ``{node: {"in_flight": .., "queue_bytes": .., "ring_fill": ..}}``
        with absent signals omitted. The base maps the backend's own
        :meth:`stats` onto its single target (node 1); the fan-out
        backend overrides to report every member. Values feed the
        TSDB's ``target.*.<node>`` series, so keys here ARE series name
        segments — extend the table, don't rename it.
        """
        stats = self.stats()
        vector = normalize_target_stats(stats)
        return {1: vector} if vector else {}

    # -- lifecycle -----------------------------------------------------------------
    @abc.abstractmethod
    def shutdown(self) -> None:
        """Stop target message loops and release transport resources."""
