"""Abstract communication backend — the pipelined **Channel** contract.

A backend connects the host process to one or more offload targets. The
runtime (:class:`repro.offload.runtime.Runtime`) delegates every remote
operation here; the backend owns transport, timing domain (wall clock or
simulated clock) and the target-side message loop.

Message-level contract (the *channel*):

* Every posted invocation carries a process-unique **correlation id**
  (:attr:`InvokeHandle.correlation_id`). Frames on the wire are tagged
  with it, replies echo it, and the backend matches replies through an
  id-keyed in-flight table — never by arrival order. Replies may
  therefore complete **out of order**, which is what lets independent
  offloads overlap on a pipelined transport.
* In-flight invocations are bounded by an :class:`InflightWindow`
  (default :data:`DEFAULT_INFLIGHT_LIMIT`). ``post_invoke`` acquires a
  window slot first — blocking (with the backend's window timeout) or
  making progress via a drive callback on single-threaded backends —
  so a runaway producer gets backpressure instead of unbounded queues.
* Completion is **thread-safe**: transports with receiver threads call
  :meth:`InvokeHandle.complete_with_reply` /
  :meth:`InvokeHandle.complete_with_error` from any thread; waiters
  block on an event, not on polling loops.

The target executes messages through
:func:`repro.ham.execution.execute_message` and returns reply bytes; the
backend matches replies to :class:`InvokeHandle` objects wrapped into
futures by the runtime.
"""

from __future__ import annotations

import abc
import itertools
import threading
import time
from typing import Any, Callable

import numpy as np

from repro.errors import BackendError, NoSuchNodeError, OffloadTimeoutError
from repro.ham.execution import unpack_result
from repro.offload.buffer import BufferPtr
from repro.offload.node import HOST_NODE, NodeDescriptor, NodeId
from repro.telemetry import recorder as telemetry

__all__ = [
    "Backend",
    "DEFAULT_INFLIGHT_LIMIT",
    "InflightWindow",
    "InvokeHandle",
]

#: Default bound on invocations in flight per backend. Large enough to
#: keep a pipelined transport busy, small enough that a runaway producer
#: hits backpressure before exhausting memory.
DEFAULT_INFLIGHT_LIMIT = 64


class InflightWindow:
    """Bounded, id-keyed table of in-flight invocations.

    The window is the flow-control half of the channel contract:
    :meth:`acquire` reserves capacity before a post (blocking, failing
    fast, or driving backend progress when the backend is
    single-threaded), :meth:`register` files the posted handle under its
    correlation id, and :meth:`release` frees the slot when the handle
    completes — from whichever thread delivers the reply.
    """

    def __init__(self, limit: int = DEFAULT_INFLIGHT_LIMIT) -> None:
        if limit < 1:
            raise BackendError(f"in-flight window needs a positive limit, got {limit}")
        self._limit = limit
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        #: correlation id -> in-flight handle (the id-keyed table).
        self._inflight: dict[int, "InvokeHandle"] = {}
        #: Slots acquired but not yet registered (post in progress).
        self._reserved = 0

    @property
    def limit(self) -> int:
        """Maximum invocations in flight."""
        return self._limit

    def set_limit(self, limit: int) -> None:
        """Resize the window (waking waiters when it grows)."""
        if limit < 1:
            raise BackendError(f"in-flight window needs a positive limit, got {limit}")
        with self._lock:
            self._limit = limit
            self._slot_freed.notify_all()

    @property
    def in_flight(self) -> int:
        """Invocations currently occupying the window."""
        with self._lock:
            return len(self._inflight) + self._reserved

    def handles(self) -> dict[int, "InvokeHandle"]:
        """Snapshot of the in-flight table (correlation id -> handle)."""
        with self._lock:
            return dict(self._inflight)

    def acquire(
        self,
        *,
        timeout: float | None = None,
        progress: Callable[[], None] | None = None,
        label: str = "",
    ) -> None:
        """Reserve one window slot, applying backpressure when full.

        Without ``progress``, blocks on the window condition until a
        completion (from a receiver thread) frees a slot, raising
        :class:`~repro.errors.OffloadTimeoutError` after ``timeout``
        seconds. With ``progress`` — required on single-threaded
        backends where completions only happen when the caller drives
        the transport — the callback is invoked repeatedly (lock
        released) until capacity appears.

        Telemetry: the wait, when one actually happens, is recorded as
        an ``offload.window_wait`` span.
        """
        with self._lock:
            if len(self._inflight) + self._reserved < self._limit:
                self._reserved += 1
                return
        with telemetry.span(
            "offload.window_wait", label=label, limit=self._limit
        ):
            deadline = None if timeout is None else time.monotonic() + timeout
            with self._lock:
                while len(self._inflight) + self._reserved >= self._limit:
                    if progress is not None:
                        self._lock.release()
                        try:
                            progress()
                        finally:
                            self._lock.acquire()
                        continue
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise OffloadTimeoutError(
                                f"in-flight window full ({self._limit} "
                                "operations outstanding) and no completion "
                                "within the deadline"
                            )
                    self._slot_freed.wait(remaining)
                self._reserved += 1

    def register(self, handle: "InvokeHandle") -> None:
        """File a posted handle under its correlation id."""
        with self._lock:
            if self._reserved > 0:
                self._reserved -= 1
            self._inflight[handle.correlation_id] = handle

    def cancel(self) -> None:
        """Return an acquired-but-unposted slot (post failed)."""
        with self._lock:
            if self._reserved > 0:
                self._reserved -= 1
            self._slot_freed.notify()

    def release(self, handle: "InvokeHandle") -> None:
        """Free a completed handle's slot (idempotent)."""
        with self._lock:
            if self._inflight.pop(handle.correlation_id, None) is not None:
                self._slot_freed.notify()


class InvokeHandle:
    """Pending remote invocation; satisfies the future's handle protocol.

    Each handle carries a process-unique :attr:`correlation_id` — the
    key frames are tagged with on the wire and replies are matched by.
    Backends complete it by calling :meth:`complete_with_reply` (raw HAM
    reply bytes) or :meth:`complete_with_error` from any thread; both
    set the completion event and release the backend's in-flight window
    slot. ``wait`` delegates to the backend's :meth:`Backend.drive` so
    each backend decides how to make progress (wait on the receiver
    thread's event, advance the simulator, ...).
    """

    _ids = itertools.count(1)

    def __init__(self, backend: "Backend", label: str = "") -> None:
        self.backend = backend
        self.correlation_id = next(self._ids)
        self.label = label
        self._reply: Any = None
        self._error: BaseException | None = None
        self._done = threading.Event()
        # Synchronous backends that record their own transport span set
        # this so ``wait`` doesn't add a redundant zero-duration one.
        self._transport_spanned = False

    @property
    def handle_id(self) -> int:
        """Backward-compatible alias of :attr:`correlation_id`."""
        return self.correlation_id

    # -- backend side --------------------------------------------------------
    def complete_with_reply(self, reply: bytes) -> None:
        """Deliver the raw reply message (thread-safe)."""
        self._reply = reply
        self._finish()

    def complete_with_error(self, error: BaseException) -> None:
        """Deliver a transport-level failure (thread-safe)."""
        self._error = error
        self._finish()

    def _finish(self) -> None:
        self._done.set()
        self.backend._handle_completed(self)

    # -- future side ------------------------------------------------------------
    @property
    def completed(self) -> bool:
        """Whether a reply or error has been delivered."""
        return self._done.is_set()

    def wait_event(self, timeout: float | None = None) -> bool:
        """Block on the completion event; used by threaded transports."""
        return self._done.wait(timeout)

    def test(self) -> bool:
        """Non-blocking probe; lets the backend poll without blocking."""
        if not self.completed:
            self.backend.drive(self, blocking=False)
        return self.completed

    def wait(self, timeout: float | None = None) -> Any:
        """Block until complete; decode and return the remote value.

        With ``timeout`` set, the backend raises
        :class:`~repro.errors.OffloadTimeoutError` instead of blocking
        past the deadline (the handle stays pending).

        Telemetry phase ``offload.transport``: the wait from "posted"
        until the reply (or a transport error) arrives — wire plus
        remote-execution time as seen by the host. Recorded even when a
        pipelined receiver already completed the handle (a ~0-duration
        span), so every awaited offload shows the full phase taxonomy.
        """
        if not self.completed or not self._transport_spanned:
            try:
                with telemetry.span("offload.transport", label=self.label):
                    if not self.completed:
                        self.backend.drive(self, blocking=True, timeout=timeout)
                self._transport_spanned = True
            except OffloadTimeoutError:
                telemetry.count("offload.timeouts")
                raise
        if self._error is not None:
            telemetry.count("offload.failed")
            raise self._error
        assert self._reply is not None
        _msg_id, value = unpack_result(self._reply)
        telemetry.count("offload.completed")
        return value


class Backend(abc.ABC):
    """Base class of all communication backends.

    Subclasses should call ``super().__init__()``; backends that predate
    the channel contract (or test stubs that skip it) still work — the
    window is created lazily on first use.
    """

    #: Backend name used in node descriptors and reports.
    name: str = "abstract"

    def __init__(self) -> None:
        self._window = InflightWindow()
        self._window_timeout: float | None = None

    # -- the in-flight window --------------------------------------------------
    @property
    def window(self) -> InflightWindow:
        """This backend's in-flight window (lazily created)."""
        window = getattr(self, "_window", None)
        if window is None:
            window = self._window = InflightWindow()
        return window

    def install_window(self, window: InflightWindow) -> None:
        """Replace this backend's in-flight window (the scheduler seam).

        The QoS layer swaps the default FIFO window for a
        :class:`~repro.offload.qos.FairInflightWindow` here, and
        :class:`~repro.backends.fanout.FanoutBackend` shares one window
        across its inner backends so admission and fairness are uniform.
        Only legal while nothing is in flight — handles registered in
        the old window would otherwise leak their slots on completion.
        """
        current = getattr(self, "_window", None)
        if current is not None and current.in_flight:
            raise BackendError(
                f"cannot replace the in-flight window with "
                f"{current.in_flight} operation(s) outstanding"
            )
        self._window = window

    @property
    def inflight_count(self) -> int:
        """Invocations currently in flight on this backend."""
        return self.window.in_flight

    def set_inflight_limit(self, limit: int) -> None:
        """Bound the number of in-flight invocations (backpressure)."""
        self.window.set_limit(limit)

    def set_window_timeout(self, seconds: float | None) -> None:
        """Deadline for acquiring a window slot when the window is full.

        ``None`` (the default) blocks until capacity frees up — on
        threaded transports a completion always wakes the waiter; on
        single-threaded backends the acquire drives progress instead of
        sleeping. The runtime sets this from the resilience policy so a
        full window against a dead target fails fast.
        """
        self._window_timeout = seconds

    def _admit_invoke(
        self, label: str = "", progress: Callable[[], None] | None = None
    ) -> None:
        """Reserve window capacity for one invoke (backpressure point)."""
        self.window.acquire(
            timeout=getattr(self, "_window_timeout", None),
            progress=progress,
            label=label,
        )

    def _register_invoke(self, handle: "InvokeHandle") -> None:
        """File a posted handle in the in-flight table; updates the gauge."""
        window = self.window
        window.register(handle)
        telemetry.gauge("offload.inflight", window.in_flight)

    def _handle_completed(self, handle: "InvokeHandle") -> None:
        """Completion hook: frees the handle's window slot (any thread)."""
        window = self.window
        window.release(handle)
        telemetry.gauge("offload.inflight", window.in_flight)

    # -- topology ---------------------------------------------------------
    @abc.abstractmethod
    def num_nodes(self) -> int:
        """Number of processes in the application (host + targets)."""

    @abc.abstractmethod
    def descriptor(self, node: NodeId) -> NodeDescriptor:
        """Descriptor of ``node``."""

    def check_target(self, node: NodeId) -> None:
        """Validate that ``node`` names an offload target."""
        if node == HOST_NODE:
            raise NoSuchNodeError("node 0 is the host, not an offload target")
        if not 0 < node < self.num_nodes():
            raise NoSuchNodeError(
                f"node {node} outside application of {self.num_nodes()} processes"
            )

    # -- invocation -----------------------------------------------------------
    @abc.abstractmethod
    def post_invoke(self, node: NodeId, functor: Any) -> InvokeHandle:
        """Send a functor to ``node`` for execution; returns a handle.

        Implementations acquire an in-flight window slot first (via
        :meth:`_admit_invoke`) and register the handle in the window's
        id-keyed table (:meth:`_register_invoke`) before the frame hits
        the transport, so backpressure and reply matching are uniform
        across backends.
        """

    @abc.abstractmethod
    def drive(
        self, handle: InvokeHandle, *, blocking: bool, timeout: float | None = None
    ) -> None:
        """Make progress toward completing ``handle``.

        Non-blocking calls must return promptly; blocking calls must not
        return before the handle completes (or raise
        :class:`BackendError` if that is impossible). With ``timeout``
        set, a blocking call raises
        :class:`~repro.errors.OffloadTimeoutError` once the deadline
        passes — seconds of wall clock on functional backends, simulated
        seconds on the sim backends.
        """

    # -- memory ------------------------------------------------------------------
    @abc.abstractmethod
    def alloc_buffer(self, node: NodeId, nbytes: int) -> int:
        """Allocate ``nbytes`` on ``node``; returns the target address."""

    @abc.abstractmethod
    def free_buffer(self, node: NodeId, addr: int) -> None:
        """Free a target allocation."""

    @abc.abstractmethod
    def write_buffer(self, node: NodeId, addr: int, data: bytes) -> None:
        """Write host bytes into target memory (the ``put`` transport)."""

    @abc.abstractmethod
    def read_buffer(self, node: NodeId, addr: int, nbytes: int) -> bytes:
        """Read target memory into host bytes (the ``get`` transport)."""

    def copy_buffer(
        self,
        src_node: NodeId,
        src_addr: int,
        dst_node: NodeId,
        dst_addr: int,
        nbytes: int,
    ) -> None:
        """Target-to-target copy, orchestrated by the host (paper Table II).

        The default stages through host memory; backends with direct
        paths may override.
        """
        self.write_buffer(dst_node, dst_addr, self.read_buffer(src_node, src_addr, nbytes))

    # -- health ------------------------------------------------------------------
    def ping(self, node: NodeId) -> float:
        """Liveness probe of ``node``; returns the round-trip seconds.

        Raises an :class:`~repro.errors.OffloadError` subclass if the
        node is unreachable. The default validates the node id and
        reports zero latency — correct for in-process and simulated
        targets that cannot silently die; transport backends override
        with a real heartbeat (the TCP backend's ``OP_PING``).
        """
        self.check_target(node)
        return 0.0

    def set_default_timeout(self, seconds: float | None) -> None:
        """Default per-operation deadline for synchronous transports.

        A no-op on backends without blocking I/O; the TCP backend applies
        it to every roundtrip and blocking drive. The runtime calls this
        with ``ResiliencePolicy.deadline`` so no offload path can block
        forever once a policy is installed.
        """

    # -- target-side argument resolution ------------------------------------------
    def resolve_buffer(self, node: NodeId, ptr: BufferPtr) -> np.ndarray:
        """Turn a :class:`BufferPtr` into a live view on the target.

        Called by the target-side message loop for every BufferPtr
        argument. Backends owning real target memory override this;
        the default refuses.
        """
        raise BackendError(f"backend {self.name!r} cannot resolve buffer pointers")

    # -- introspection -------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Backend counters for monitoring/debugging.

        The base implementation returns an empty dict; backends add
        transport-specific counters (messages executed, bytes moved,
        hardware-operation counts, simulated time).
        """
        return {}

    # -- lifecycle -----------------------------------------------------------------
    @abc.abstractmethod
    def shutdown(self) -> None:
        """Stop target message loops and release transport resources."""
