"""Abstract communication backend.

A backend connects the host process to one or more offload targets. The
runtime (:class:`repro.offload.runtime.Runtime`) delegates every remote
operation here; the backend owns transport, timing domain (wall clock or
simulated clock) and the target-side message loop.

Message-level contract: the host posts serialized HAM invoke messages;
the target executes them through :func:`repro.ham.execution.execute_message`
and returns reply bytes; the backend matches replies to
:class:`InvokeHandle` objects wrapped into futures by the runtime.
"""

from __future__ import annotations

import abc
import itertools
from typing import Any

import numpy as np

from repro.errors import BackendError, NoSuchNodeError, OffloadTimeoutError
from repro.ham.execution import unpack_result
from repro.offload.buffer import BufferPtr
from repro.offload.node import HOST_NODE, NodeDescriptor, NodeId
from repro.telemetry import recorder as telemetry

__all__ = ["Backend", "InvokeHandle"]


class InvokeHandle:
    """Pending remote invocation; satisfies the future's handle protocol.

    Backends complete it by calling :meth:`complete_with_reply` (raw HAM
    reply bytes) or :meth:`complete_with_error`. ``wait`` delegates to the
    backend's :meth:`Backend.drive` so each backend decides how to make
    progress (drain a socket, advance the simulator, ...).
    """

    _ids = itertools.count(1)

    def __init__(self, backend: "Backend", label: str = "") -> None:
        self.backend = backend
        self.handle_id = next(self._ids)
        self.label = label
        self._reply: bytes | None = None
        self._error: BaseException | None = None

    # -- backend side --------------------------------------------------------
    def complete_with_reply(self, reply: bytes) -> None:
        """Deliver the raw reply message."""
        self._reply = reply

    def complete_with_error(self, error: BaseException) -> None:
        """Deliver a transport-level failure."""
        self._error = error

    # -- future side ------------------------------------------------------------
    @property
    def completed(self) -> bool:
        """Whether a reply or error has been delivered."""
        return self._reply is not None or self._error is not None

    def test(self) -> bool:
        """Non-blocking probe; lets the backend poll without blocking."""
        if not self.completed:
            self.backend.drive(self, blocking=False)
        return self.completed

    def wait(self, timeout: float | None = None) -> Any:
        """Block until complete; decode and return the remote value.

        With ``timeout`` set, the backend raises
        :class:`~repro.errors.OffloadTimeoutError` instead of blocking
        past the deadline (the handle stays pending).

        Telemetry phase ``offload.transport``: the wait from "posted"
        until the reply (or a transport error) arrives — wire plus
        remote-execution time as seen by the host.
        """
        if not self.completed:
            try:
                with telemetry.span("offload.transport", label=self.label):
                    self.backend.drive(self, blocking=True, timeout=timeout)
            except OffloadTimeoutError:
                telemetry.count("offload.timeouts")
                raise
        if self._error is not None:
            telemetry.count("offload.failed")
            raise self._error
        assert self._reply is not None
        _msg_id, value = unpack_result(self._reply)
        telemetry.count("offload.completed")
        return value


class Backend(abc.ABC):
    """Base class of all communication backends."""

    #: Backend name used in node descriptors and reports.
    name: str = "abstract"

    # -- topology ---------------------------------------------------------
    @abc.abstractmethod
    def num_nodes(self) -> int:
        """Number of processes in the application (host + targets)."""

    @abc.abstractmethod
    def descriptor(self, node: NodeId) -> NodeDescriptor:
        """Descriptor of ``node``."""

    def check_target(self, node: NodeId) -> None:
        """Validate that ``node`` names an offload target."""
        if node == HOST_NODE:
            raise NoSuchNodeError("node 0 is the host, not an offload target")
        if not 0 < node < self.num_nodes():
            raise NoSuchNodeError(
                f"node {node} outside application of {self.num_nodes()} processes"
            )

    # -- invocation -----------------------------------------------------------
    @abc.abstractmethod
    def post_invoke(self, node: NodeId, functor: Any) -> InvokeHandle:
        """Send a functor to ``node`` for execution; returns a handle."""

    @abc.abstractmethod
    def drive(
        self, handle: InvokeHandle, *, blocking: bool, timeout: float | None = None
    ) -> None:
        """Make progress toward completing ``handle``.

        Non-blocking calls must return promptly; blocking calls must not
        return before the handle completes (or raise
        :class:`BackendError` if that is impossible). With ``timeout``
        set, a blocking call raises
        :class:`~repro.errors.OffloadTimeoutError` once the deadline
        passes — seconds of wall clock on functional backends, simulated
        seconds on the sim backends.
        """

    # -- memory ------------------------------------------------------------------
    @abc.abstractmethod
    def alloc_buffer(self, node: NodeId, nbytes: int) -> int:
        """Allocate ``nbytes`` on ``node``; returns the target address."""

    @abc.abstractmethod
    def free_buffer(self, node: NodeId, addr: int) -> None:
        """Free a target allocation."""

    @abc.abstractmethod
    def write_buffer(self, node: NodeId, addr: int, data: bytes) -> None:
        """Write host bytes into target memory (the ``put`` transport)."""

    @abc.abstractmethod
    def read_buffer(self, node: NodeId, addr: int, nbytes: int) -> bytes:
        """Read target memory into host bytes (the ``get`` transport)."""

    def copy_buffer(
        self,
        src_node: NodeId,
        src_addr: int,
        dst_node: NodeId,
        dst_addr: int,
        nbytes: int,
    ) -> None:
        """Target-to-target copy, orchestrated by the host (paper Table II).

        The default stages through host memory; backends with direct
        paths may override.
        """
        self.write_buffer(dst_node, dst_addr, self.read_buffer(src_node, src_addr, nbytes))

    # -- health ------------------------------------------------------------------
    def ping(self, node: NodeId) -> float:
        """Liveness probe of ``node``; returns the round-trip seconds.

        Raises an :class:`~repro.errors.OffloadError` subclass if the
        node is unreachable. The default validates the node id and
        reports zero latency — correct for in-process and simulated
        targets that cannot silently die; transport backends override
        with a real heartbeat (the TCP backend's ``OP_PING``).
        """
        self.check_target(node)
        return 0.0

    def set_default_timeout(self, seconds: float | None) -> None:
        """Default per-operation deadline for synchronous transports.

        A no-op on backends without blocking I/O; the TCP backend applies
        it to every roundtrip and blocking drive. The runtime calls this
        with ``ResiliencePolicy.deadline`` so no offload path can block
        forever once a policy is installed.
        """

    # -- target-side argument resolution ------------------------------------------
    def resolve_buffer(self, node: NodeId, ptr: BufferPtr) -> np.ndarray:
        """Turn a :class:`BufferPtr` into a live view on the target.

        Called by the target-side message loop for every BufferPtr
        argument. Backends owning real target memory override this;
        the default refuses.
        """
        raise BackendError(f"backend {self.name!r} cannot resolve buffer pointers")

    # -- introspection -------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Backend counters for monitoring/debugging.

        The base implementation returns an empty dict; backends add
        transport-specific counters (messages executed, bytes moved,
        hardware-operation counts, simulated time).
        """
        return {}

    # -- lifecycle -----------------------------------------------------------------
    @abc.abstractmethod
    def shutdown(self) -> None:
        """Stop target message loops and release transport resources."""
